// Google-benchmark microbenchmarks of the library's computational kernels:
// branch extraction, GBD evaluation, Lambda1 columns, assignment solvers,
// the seriation eigenvector, exact A* GED, and the runtime-dispatched scan
// kernels (scalar vs AVX2 side by side).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "baselines/astar_ged.h"
#include "baselines/graph_seriation.h"
#include "baselines/greedy_sort_ged.h"
#include "baselines/lsap_ged.h"
#include "common/kernels.h"
#include "common/rng.h"
#include "core/branch.h"
#include "core/lambda1.h"
#include "math/hungarian.h"
#include "graph/generators.h"

namespace gbda {
namespace {

Graph MakeGraph(size_t n, bool scale_free, uint64_t seed) {
  Rng rng(seed);
  GeneratorOptions opts;
  opts.num_vertices = n;
  opts.scale_free = scale_free;
  opts.edges_per_vertex = scale_free ? 2 : 0;
  opts.extra_edges = n;
  opts.num_vertex_labels = 10;
  opts.num_edge_labels = 5;
  return *GenerateConnectedGraph(opts, &rng);
}

void BM_BranchExtraction(benchmark::State& state) {
  const Graph g = MakeGraph(static_cast<size_t>(state.range(0)), true, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractBranches(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BranchExtraction)->Range(64, 16384)->Complexity();

void BM_GbdFromBranches(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const BranchMultiset b1 = ExtractBranches(MakeGraph(n, true, 2));
  const BranchMultiset b2 = ExtractBranches(MakeGraph(n, true, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GbdFromBranches(b1, b2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GbdFromBranches)->Range(64, 16384)->Complexity();

void BM_Lambda1Column(benchmark::State& state) {
  const int64_t tau_max = state.range(0);
  const Lambda1Calculator calc(MakeModelParams(1000, 10, 5), tau_max);
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.Column(tau_max));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Lambda1Column)->DenseRange(5, 30, 5)->Complexity();

void BM_HungarianAssignment(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  DenseMatrix cost(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) cost.At(r, c) = rng.Uniform(0.0, 10.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveAssignment(cost));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HungarianAssignment)->Range(16, 512)->Complexity();

void BM_GreedySortAssignment(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(8);
  DenseMatrix cost(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) cost.At(r, c) = rng.Uniform(0.0, 10.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveAssignmentGreedySort(cost));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedySortAssignment)->Range(16, 512)->Complexity();

void BM_SeriationProfile(benchmark::State& state) {
  const Graph g = MakeGraph(static_cast<size_t>(state.range(0)), true, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSeriationProfile(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SeriationProfile)->Range(64, 4096)->Complexity();

void BM_LsapGedPair(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Graph a = MakeGraph(n, true, 10);
  const Graph b = MakeGraph(n, true, 11);
  const auto pa = BuildVertexProfiles(a);
  const auto pb = BuildVertexProfiles(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LsapGedLowerBound(pa, pb));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LsapGedPair)->Range(16, 256)->Complexity();

// -- Scan kernels (common/kernels.h): scalar vs AVX2 -------------------------
//
// Sorted ascending uint64 key arrays with a controlled overlap fraction —
// the exact shape the tier-2 cut and the fp-exact scoring path feed the
// kernels. Each benchmark registers once per implementation so `--bench`
// output shows the two side by side on identical inputs.

std::vector<uint64_t> SortedKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys(n);
  uint64_t v = 0;
  for (size_t i = 0; i < n; ++i) {
    v += 1 + (rng.NextUint64() % 64);
    keys[i] = v;
  }
  return keys;
}

// Shares roughly half of `base`'s keys, interleaved with fresh ones.
std::vector<uint64_t> OverlappingKeys(const std::vector<uint64_t>& base,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    keys.push_back(i % 2 == 0 ? base[i] : base[i] + 1 + (rng.NextUint64() % 32));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void BM_KernelIntersectCount(benchmark::State& state) {
  const KernelImpl impl = static_cast<KernelImpl>(state.range(1));
  if (impl == KernelImpl::kAvx2 && !CpuSupportsAvx2()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  const ScanKernels& kernels = GetScanKernels(impl);
  state.SetLabel(kernels.name);
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<uint64_t> a = SortedKeys(n, 21);
  const std::vector<uint64_t> b = OverlappingKeys(a, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels.intersect_count(a.data(), a.size(), b.data(), b.size()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n));
}
BENCHMARK(BM_KernelIntersectCount)
    ->ArgsProduct({{64, 512, 4096, 32768},
                   {static_cast<int64_t>(KernelImpl::kScalar),
                    static_cast<int64_t>(KernelImpl::kAvx2)}});

void BM_KernelIntersectAtMost(benchmark::State& state) {
  const KernelImpl impl = static_cast<KernelImpl>(state.range(1));
  if (impl == KernelImpl::kAvx2 && !CpuSupportsAvx2()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  const ScanKernels& kernels = GetScanKernels(impl);
  state.SetLabel(kernels.name);
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<uint64_t> a = SortedKeys(n, 23);
  const std::vector<uint64_t> b = OverlappingKeys(a, 24);
  // A cap around half the true intersection exercises the early exit the
  // tier-2 cut lives on.
  const int64_t cap =
      kernels.intersect_count(a.data(), a.size(), b.data(), b.size()) / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels.intersect_at_most(
        a.data(), a.size(), b.data(), b.size(), cap));
  }
}
BENCHMARK(BM_KernelIntersectAtMost)
    ->ArgsProduct({{64, 512, 4096, 32768},
                   {static_cast<int64_t>(KernelImpl::kScalar),
                    static_cast<int64_t>(KernelImpl::kAvx2)}});

void BM_KernelTier1SizeBounds(benchmark::State& state) {
  const KernelImpl impl = static_cast<KernelImpl>(state.range(1));
  if (impl == KernelImpl::kAvx2 && !CpuSupportsAvx2()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  const ScanKernels& kernels = GetScanKernels(impl);
  state.SetLabel(kernels.name);
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(25);
  std::vector<uint32_t> sizes(n);
  for (uint32_t& s : sizes) s = 8 + (rng.NextUint64() % 120);
  std::vector<uint32_t> out(n);
  for (auto _ : state) {
    kernels.tier1_size_bounds(sizes.data(), n, 64, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelTier1SizeBounds)
    ->ArgsProduct({{128, 1024, 16384},
                   {static_cast<int64_t>(KernelImpl::kScalar),
                    static_cast<int64_t>(KernelImpl::kAvx2)}});

void BM_ExactGedSmall(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Graph a = MakeGraph(n, false, 12);
  const Graph b = MakeGraph(n, false, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactGed(a, b));
  }
}
BENCHMARK(BM_ExactGedSmall)->DenseRange(4, 8, 1);

}  // namespace
}  // namespace gbda
