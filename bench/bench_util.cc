#include "bench_util.h"

#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace gbda::bench {

BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      flags.full = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      Result<int64_t> seed = ParseInt(argv[++i]);
      if (seed.ok()) flags.seed = static_cast<uint64_t>(*seed);
    } else {
      std::fprintf(stderr, "unknown flag: %s (supported: --full, --seed N)\n",
                   argv[i]);
    }
  }
  SetLogLevel(LogLevel::kWarning);  // keep the table output clean
  return flags;
}

bool ParseFlagValue(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

Result<DatasetProfile> ProfileByName(const std::string& name, double scale) {
  if (name == "fingerprint") return FingerprintProfile(scale);
  if (name == "aids") return AidsProfile(scale);
  if (name == "grec") return GrecProfile(scale);
  if (name == "aasd") return AasdProfile(scale);
  return Status::InvalidArgument("unknown profile: " + name);
}

std::vector<DatasetProfile> RealProfiles(const BenchFlags& flags) {
  std::vector<DatasetProfile> profiles;
  if (flags.full) {
    profiles = {AidsProfile(1.0), FingerprintProfile(1.0), GrecProfile(1.0),
                AasdProfile(1.0)};
  } else {
    profiles = {AidsProfile(0.06), FingerprintProfile(0.08),
                GrecProfile(0.10), AasdProfile(0.008)};
  }
  if (flags.seed != 0) {
    for (DatasetProfile& p : profiles) p.seed = flags.seed;
  }
  return profiles;
}

DatasetProfile SynBenchProfile(bool scale_free, const BenchFlags& flags) {
  DatasetProfile p =
      flags.full
          ? SynProfile(scale_free, {1000, 2000, 5000, 10000, 20000}, 40, 5)
          : SynProfile(scale_free, {100, 200, 500, 1000}, 12, 3);
  if (flags.seed != 0) p.seed = flags.seed;
  return p;
}

Result<Bundle> MakeBundle(DatasetProfile profile, int64_t tau_max,
                          const BenchFlags& flags) {
  Result<GeneratedDataset> dataset = GenerateDataset(profile);
  if (!dataset.ok()) return dataset.status();
  Bundle bundle;
  bundle.dataset = std::make_unique<GeneratedDataset>(std::move(*dataset));
  GbdPriorOptions prior;
  prior.num_sample_pairs = flags.full ? 100000 : 20000;
  Result<std::unique_ptr<ExperimentRunner>> runner =
      ExperimentRunner::Create(bundle.dataset.get(), tau_max, prior);
  if (!runner.ok()) return runner.status();
  bundle.runner = std::move(*runner);
  return Result<Bundle>(std::move(bundle));
}

std::string Cell(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string TimeCell(double seconds) { return HumanSeconds(seconds); }

void PrintHeader(const std::string& title, const BenchFlags& flags) {
  std::printf("=== %s [%s mode] ===\n", title.c_str(),
              flags.full ? "full/paper-scale" : "quick");
  std::fflush(stdout);
}

}  // namespace gbda::bench
