// Cold-start bench: open -> first-query latency and resident memory for the
// two index artifact formats (docs/BENCHMARKS.md, "Cold-start bench").
//
//   v2  GbdaIndex::LoadFromFile  — full stream decode, one heap allocation
//                                  per branch multiset;
//   v3  GbdaIndexView::Open      — mmap + header/offset validation + prior
//                                  decode, branch arena served in place.
//
// Both artifacts are generated from the same freshly built index, then each
// format is opened and queried `--iters` times. Before any number is
// reported, full query results through the v3 view are checked bit-identical
// (ids, phi bits, GBD, counters) to results through the decoded v2 index —
// the bench aborts non-zero on divergence, so the latency figures can never
// come from a diverging read path.
//
// Emits one JSON object on stdout; schema in docs/BENCHMARKS.md.
//
// Typical runs:
//   bench_coldstart                          # benchmark corpus (38k graphs)
//   bench_coldstart --profile=aids --scale=0.3
//   bench_coldstart --scale=0.05 --iters=2   # CI smoke
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "storage/index_arena.h"
#include "storage/index_view.h"

using namespace gbda;
using bench::ParseFlagValue;
using bench::ProfileByName;

namespace {

struct Flags {
  // The benchmark corpus: full-scale AASD (38K graphs, ~43 MB artifact),
  // where the acceptance number lives — v3 open -> first query is >= 10x
  // lower than the v2 decode. Smaller scales shrink the decode while the
  // per-query posterior warmup stays constant, so the ratio drops with
  // --scale; quote speedups at scale 1.0.
  std::string profile = "aasd";
  double scale = 1.0;
  size_t iters = 5;
  size_t num_queries = 3;  // queries folded into the first-query timing gate
  int64_t tau_hat = 5;
  double gamma = 0.5;
  size_t sample_pairs = 2000;
  std::string dir = "/tmp";
  uint64_t seed = 0;  // 0 = profile default
};

Flags Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlagValue(argv[i], "--profile", &v)) {
      flags.profile = v;
    } else if (ParseFlagValue(argv[i], "--scale", &v)) {
      flags.scale = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlagValue(argv[i], "--iters", &v)) {
      flags.iters = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--queries", &v)) {
      flags.num_queries = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--tau", &v)) {
      flags.tau_hat = std::strtoll(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--gamma", &v)) {
      flags.gamma = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlagValue(argv[i], "--sample-pairs", &v)) {
      flags.sample_pairs = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--dir", &v)) {
      flags.dir = v;
    } else if (ParseFlagValue(argv[i], "--seed", &v)) {
      flags.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

/// VmRSS in bytes from /proc/self/status; 0 where unavailable.
size_t CurrentRssBytes() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
  }
#endif
  return 0;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

/// The two generated artifacts, removed on ANY exit (including Die paths) —
/// they are ~43 MB each on the default corpus, and docs/BENCHMARKS.md
/// promises they do not outlive the run.
std::string g_v2_path, g_v3_path;

void RemoveArtifacts() {
  if (!g_v2_path.empty()) std::remove(g_v2_path.c_str());
  if (!g_v3_path.empty()) std::remove(g_v3_path.c_str());
}

struct ColdStartSample {
  double open_seconds = 0.0;
  double open_first_query_seconds = 0.0;
  size_t rss_delta_bytes = 0;
};

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "bench_coldstart: %s\n", message.c_str());
  std::exit(1);
}

/// One timed cold start through either format. `open` returns an opened
/// IndexReader (plus keeps its backing alive); the first query runs through
/// a fresh GbdaSearch over the shared database.
template <typename OpenFn>
ColdStartSample TimeColdStart(const GraphDatabase& db,
                              const std::vector<Graph>& queries,
                              const SearchOptions& options, OpenFn open) {
  ColdStartSample sample;
  const size_t rss_before = CurrentRssBytes();
  WallTimer timer;
  auto opened = open();  // unique_ptr-like holder exposing reader()
  sample.open_seconds = timer.Seconds();
  GbdaSearch search(&db, opened.reader);
  Result<SearchResult> first = search.Query(queries[0], options);
  if (!first.ok()) Die(first.status().ToString());
  sample.open_first_query_seconds = timer.Seconds();
  const size_t rss_after = CurrentRssBytes();
  sample.rss_delta_bytes =
      rss_after > rss_before ? rss_after - rss_before : 0;
  return sample;
}

struct OpenedV2 {
  std::unique_ptr<GbdaIndex> index;
  const IndexReader* reader = nullptr;
};

struct OpenedV3 {
  std::unique_ptr<GbdaIndexView> view;
  const IndexReader* reader = nullptr;
};

void PrintStats(const char* key, const std::vector<ColdStartSample>& samples,
                bool trailing_comma) {
  std::vector<double> open, open_first;
  std::vector<double> rss;
  for (const ColdStartSample& s : samples) {
    open.push_back(s.open_seconds);
    open_first.push_back(s.open_first_query_seconds);
    rss.push_back(static_cast<double>(s.rss_delta_bytes));
  }
  std::printf(
      "  \"%s\": {\"open_seconds_median\": %.6f, "
      "\"open_first_query_seconds_median\": %.6f, "
      "\"rss_delta_bytes_median\": %.0f}%s\n",
      key, Median(open), Median(open_first), Median(rss),
      trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Parse(argc, argv);

  Result<DatasetProfile> profile = ProfileByName(flags.profile, flags.scale);
  if (!profile.ok()) Die(profile.status().ToString());
  if (flags.seed != 0) profile->seed = flags.seed;
  Result<GeneratedDataset> dataset = GenerateDataset(*profile);
  if (!dataset.ok()) Die(dataset.status().ToString());
  const GraphDatabase& db = dataset->db;
  if (dataset->queries.empty()) Die("profile generated no queries");
  const size_t num_queries =
      std::max<size_t>(1, std::min(flags.num_queries,
                                   dataset->queries.size()));

  GbdaIndexOptions index_options;
  index_options.tau_max = std::max<int64_t>(flags.tau_hat, 8);
  index_options.gbd_prior.num_sample_pairs = flags.sample_pairs;
  Result<GbdaIndex> built = GbdaIndex::Build(db, index_options);
  if (!built.ok()) Die(built.status().ToString());

  const std::string stem = flags.dir + "/gbda_coldstart_" +
                           std::to_string(static_cast<long long>(getpid()));
  const std::string v2_path = stem + ".v2.idx";
  const std::string v3_path = stem + ".v3.idx";
  g_v2_path = v2_path;
  g_v3_path = v3_path;
  std::atexit(RemoveArtifacts);
  Status v2_saved = built->SaveToFile(v2_path);
  if (!v2_saved.ok()) Die(v2_saved.ToString());
  Status v3_saved = WriteArenaFile(*built, v3_path);
  if (!v3_saved.ok()) Die(v3_saved.ToString());

  SearchOptions options;
  options.tau_hat = flags.tau_hat;
  options.gamma = flags.gamma;

  // ---- Equivalence gate: v3 view results must be bit-identical to the
  // decoded v2 index before any latency figure is trusted.
  {
    Result<GbdaIndex> decoded = GbdaIndex::LoadFromFile(v2_path);
    if (!decoded.ok()) Die(decoded.status().ToString());
    Result<GbdaIndexView> view = GbdaIndexView::Open(v3_path);
    if (!view.ok()) Die(view.status().ToString());
    GbdaSearch search_decoded(&db, &*decoded);
    GbdaSearch search_view(&db, &*view);
    for (size_t q = 0; q < num_queries; ++q) {
      Result<SearchResult> a =
          search_decoded.Query(dataset->queries[q], options);
      Result<SearchResult> b = search_view.Query(dataset->queries[q], options);
      if (!a.ok()) Die(a.status().ToString());
      if (!b.ok()) Die(b.status().ToString());
      if (a->matches.size() != b->matches.size() ||
          a->candidates_evaluated != b->candidates_evaluated ||
          a->prefiltered_out != b->prefiltered_out) {
        Die("v2/v3 divergence: result shape differs on query " +
            std::to_string(q));
      }
      for (size_t i = 0; i < a->matches.size(); ++i) {
        if (a->matches[i].graph_id != b->matches[i].graph_id ||
            std::memcmp(&a->matches[i].phi_score, &b->matches[i].phi_score,
                        sizeof(double)) != 0 ||
            a->matches[i].gbd != b->matches[i].gbd) {
          Die("v2/v3 divergence: match " + std::to_string(i) + " of query " +
              std::to_string(q) + " differs");
        }
      }
    }
  }

  // ---- Timed cold starts.
  std::vector<ColdStartSample> v2_samples, v3_samples;
  for (size_t it = 0; it < flags.iters; ++it) {
    v2_samples.push_back(TimeColdStart(db, dataset->queries, options, [&] {
      Result<GbdaIndex> loaded = GbdaIndex::LoadFromFile(v2_path);
      if (!loaded.ok()) Die(loaded.status().ToString());
      OpenedV2 opened;
      opened.index = std::make_unique<GbdaIndex>(std::move(*loaded));
      opened.reader = opened.index.get();
      return opened;
    }));
    v3_samples.push_back(TimeColdStart(db, dataset->queries, options, [&] {
      Result<GbdaIndexView> view = GbdaIndexView::Open(v3_path);
      if (!view.ok()) Die(view.status().ToString());
      OpenedV3 opened;
      opened.view = std::make_unique<GbdaIndexView>(std::move(*view));
      opened.reader = opened.view.get();
      return opened;
    }));
  }

  std::vector<double> v2_of, v3_of;
  for (const ColdStartSample& s : v2_samples) {
    v2_of.push_back(s.open_first_query_seconds);
  }
  for (const ColdStartSample& s : v3_samples) {
    v3_of.push_back(s.open_first_query_seconds);
  }
  const double v2_median = Median(v2_of);
  const double v3_median = Median(v3_of);
  const double speedup = v3_median > 0.0 ? v2_median / v3_median : 0.0;

  std::ifstream v2_file(v2_path, std::ios::binary | std::ios::ate);
  std::ifstream v3_file(v3_path, std::ios::binary | std::ios::ate);
  std::printf("{\n");
  std::printf(
      "  \"profile\": \"%s\", \"scale\": %.4f, \"num_graphs\": %zu, "
      "\"iters\": %zu, \"tau_hat\": %lld,\n",
      flags.profile.c_str(), flags.scale, db.size(), flags.iters,
      static_cast<long long>(flags.tau_hat));
  std::printf(
      "  \"v2_file_bytes\": %lld, \"v3_file_bytes\": %lld,\n",
      static_cast<long long>(v2_file.tellg()),
      static_cast<long long>(v3_file.tellg()));
  PrintStats("v2_decode", v2_samples, true);
  PrintStats("v3_map", v3_samples, true);
  std::printf("  \"open_first_query_speedup\": %.2f,\n", speedup);
  std::printf("  \"equivalence\": \"bit-identical\"\n}\n");
  return 0;  // artifacts removed by the atexit hook
}
