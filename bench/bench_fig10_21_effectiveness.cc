// Regenerates Figures 10-21: precision (Figs 10-13), recall (Figs 14-17)
// and F1-score (Figs 18-21) versus the similarity threshold tau_hat on the
// four real-profile data sets, for GBDA at gamma in {0.70, 0.80, 0.90} and
// the three competitors.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"

using namespace gbda;
using namespace gbda::bench;

namespace {

struct Series {
  std::string label;
  std::vector<MethodMetrics> metrics;  // one per tau
};

Status Run(const BenchFlags& flags) {
  const std::vector<int64_t> taus = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<DatasetProfile> profiles = RealProfiles(flags);
  // Figure numbering: precision 10-13, recall 14-17, F1 18-21, dataset order
  // AIDS, Fingerprint, GREC, AASD.
  for (size_t d = 0; d < profiles.size(); ++d) {
    const DatasetProfile& profile = profiles[d];
    Result<Bundle> bundle = MakeBundle(profile, /*tau_max=*/10, flags);
    if (!bundle.ok()) {
      return Status(bundle.status().code(),
                    profile.name + ": " + bundle.status().message());
    }
    ExperimentRunner& runner = *bundle->runner;

    std::vector<Series> series;
    for (Method m :
         {Method::kLsap, Method::kGreedySort, Method::kSeriation}) {
      ExperimentConfig config;
      config.method = m;
      Result<std::vector<MethodMetrics>> sweep = runner.RunTauSweep(config, taus);
      if (!sweep.ok()) return sweep.status();
      series.push_back({MethodName(m), std::move(*sweep)});
    }
    for (double gamma : {0.70, 0.80, 0.90}) {
      ExperimentConfig config;
      config.method = Method::kGbda;
      config.gamma = gamma;
      Result<std::vector<MethodMetrics>> sweep = runner.RunTauSweep(config, taus);
      if (!sweep.ok()) return sweep.status();
      series.push_back({StrFormat("GBDA(g=%.2f)", gamma), std::move(*sweep)});
    }

    struct MetricView {
      const char* name;
      int figure;
      double (*get)(const MethodMetrics&);
    };
    const MetricView views[] = {
        {"precision", static_cast<int>(10 + d),
         [](const MethodMetrics& m) { return m.precision; }},
        {"recall", static_cast<int>(14 + d),
         [](const MethodMetrics& m) { return m.recall; }},
        {"F1-score", static_cast<int>(18 + d),
         [](const MethodMetrics& m) { return m.f1; }},
    };
    for (const MetricView& view : views) {
      std::vector<std::string> headers = {"method \\ tau"};
      for (int64_t tau : taus) headers.push_back(std::to_string(tau));
      TableWriter table(headers);
      for (const Series& s : series) {
        std::vector<std::string> row = {s.label};
        for (const MethodMetrics& m : s.metrics) {
          row.push_back(Cell(view.get(m), 3));
        }
        table.AddRow(row);
      }
      table.Print(StrFormat("Figure %d: %s vs tau_hat on %s", view.figure,
                            view.name, profile.name.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figures 10-21: effectiveness on real data sets", flags);
  Status st = Run(flags);
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
