// Regenerates Figures 31-42 (Appendix J): precision (31-34), recall (35-38)
// and F1-score (39-42) versus graph size on the Syn-1 data set, at
// tau_hat in {15, 20, 25, 30} with GBDA gamma in {0.60, 0.70, 0.80}.
//
// Each subset size is evaluated as its own database, as in the paper. LSAP
// sizes whose first measured pair exceeds the per-pair budget are skipped
// (its Hungarian solver is O(n^3) per pair).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "common/timer.h"

using namespace gbda;
using namespace gbda::bench;

namespace {

struct SizePoint {
  size_t graph_size = 0;
  // label -> metrics, aligned with the labels vector below.
  std::vector<MethodMetrics> per_label;
};

Status Run(const BenchFlags& flags) {
  const std::vector<int64_t> taus = {15, 20, 25, 30};
  const double lsap_pair_budget = flags.full ? 60.0 : 1.0;

  const DatasetProfile base = SynBenchProfile(/*scale_free=*/true, flags);
  std::vector<size_t> sizes = base.rung_sizes;
  std::sort(sizes.begin(), sizes.end());

  std::vector<std::string> labels = {"LSAP", "greedysort", "seriation",
                                     "GBDA(g=0.60)", "GBDA(g=0.70)",
                                     "GBDA(g=0.80)"};

  // metrics[tau_index][size_index][label_index]
  std::vector<std::vector<SizePoint>> metrics(taus.size());
  bool lsap_dropped = false;

  for (size_t n : sizes) {
    DatasetProfile profile = base;
    profile.rung_sizes = {n};
    profile.graphs_per_rung = {base.graphs_per_rung.front()};
    profile.queries_per_rung = {base.queries_per_rung.front()};
    profile.seed = base.seed + 31 * n;
    Result<Bundle> bundle = MakeBundle(profile, /*tau_max=*/30, flags);
    if (!bundle.ok()) {
      return Status(bundle.status().code(),
                    profile.name + ": " + bundle.status().message());
    }
    ExperimentRunner& runner = *bundle->runner;
    const GeneratedDataset& ds = *bundle->dataset;

    // Probe LSAP cost on one pair before committing to full scans.
    if (!lsap_dropped) {
      WallTimer probe;
      (void)runner.baselines().Estimate(ds.queries[0], 0,
                                        BaselineMethod::kLsap);
      if (probe.Seconds() > lsap_pair_budget) lsap_dropped = true;
    }

    std::vector<std::vector<MethodMetrics>> per_label_sweeps;
    for (const std::string& label : labels) {
      if (label == "LSAP" && lsap_dropped) {
        per_label_sweeps.emplace_back();  // empty = skipped
        continue;
      }
      ExperimentConfig config;
      if (label == "LSAP") {
        config.method = Method::kLsap;
      } else if (label == "greedysort") {
        config.method = Method::kGreedySort;
      } else if (label == "seriation") {
        config.method = Method::kSeriation;
      } else {
        config.method = Method::kGbda;
        config.gamma = label == "GBDA(g=0.60)"
                           ? 0.60
                           : (label == "GBDA(g=0.70)" ? 0.70 : 0.80);
      }
      Result<std::vector<MethodMetrics>> sweep = runner.RunTauSweep(config, taus);
      if (!sweep.ok()) return sweep.status();
      per_label_sweeps.push_back(std::move(*sweep));
    }

    for (size_t t = 0; t < taus.size(); ++t) {
      SizePoint point;
      point.graph_size = n;
      for (const auto& sweep : per_label_sweeps) {
        point.per_label.push_back(sweep.empty() ? MethodMetrics{} : sweep[t]);
      }
      for (size_t i = 0; i < per_label_sweeps.size(); ++i) {
        if (per_label_sweeps[i].empty()) {
          point.per_label[i].num_queries = 0;  // marks "skipped"
        }
      }
      metrics[t].push_back(std::move(point));
    }
  }

  struct MetricView {
    const char* name;
    int first_figure;
    double (*get)(const MethodMetrics&);
  };
  const MetricView views[] = {
      {"precision", 31, [](const MethodMetrics& m) { return m.precision; }},
      {"recall", 35, [](const MethodMetrics& m) { return m.recall; }},
      {"F1-score", 39, [](const MethodMetrics& m) { return m.f1; }},
  };
  for (const MetricView& view : views) {
    for (size_t t = 0; t < taus.size(); ++t) {
      std::vector<std::string> headers = {"method \\ size"};
      for (const SizePoint& p : metrics[t]) {
        headers.push_back(std::to_string(p.graph_size));
      }
      TableWriter table(headers);
      for (size_t i = 0; i < labels.size(); ++i) {
        std::vector<std::string> row = {labels[i]};
        for (const SizePoint& p : metrics[t]) {
          row.push_back(p.per_label[i].num_queries == 0
                            ? "skip"
                            : Cell(view.get(p.per_label[i]), 3));
        }
        table.AddRow(row);
      }
      table.Print(StrFormat("Figure %d: %s vs graph size on Syn-1 (tau=%lld)",
                            view.first_figure + static_cast<int>(t), view.name,
                            static_cast<long long>(taus[t])));
    }
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figures 31-42: effectiveness vs size on Syn-1", flags);
  Status st = Run(flags);
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
