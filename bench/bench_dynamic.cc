// Dynamic-corpus serving bench (docs/BENCHMARKS.md, "Dynamic bench").
// Runs DynamicGbdaService under mixed traffic: R reader threads stream
// threshold queries while a writer thread commits add/remove mutations,
// each commit publishing a fresh snapshot. Emits one machine-readable JSON
// object on stdout: read throughput and latency, write commit throughput,
// and the snapshot rebuild/swap latency figures. When the Lambda2 refit
// fraction is 0 (the default), the final corpus is checked bit-identical
// against a from-scratch GbdaIndex::Build + GbdaService before any number
// is reported, so the figures can never come from a diverging dynamic path.
//
// Typical runs:
//   bench_dynamic                                        # default mix
//   bench_dynamic --threads=4 --readers=4 --mutations=64
//   bench_dynamic --threads=2 --readers=2 --mutations=12 --queries=16 --scale=0.03  # CI
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "service/dynamic_service.h"
#include "service/gbda_service.h"

using namespace gbda;
using bench::ParseFlagValue;
using bench::ProfileByName;

namespace {

struct Flags {
  size_t threads = 4;        // pool workers of the dynamic service
  size_t shards = 0;         // 0 = one per worker
  size_t readers = 4;        // concurrent query threads
  size_t num_queries = 64;   // queries per reader
  size_t mutations = 32;     // minimum writer commits
  size_t write_batch = 2;    // graphs per add commit
  double initial_fraction = 0.6;
  double refit_fraction = 0.0;
  std::string profile = "fingerprint";
  double scale = 0.05;
  int64_t tau_hat = 5;
  double gamma = 0.5;
  bool prefilter = false;
  size_t sample_pairs = 2000;
  uint64_t seed = 0;  // 0 = profile default
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlagValue(argv[i], "--threads", &v)) {
      flags.threads = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--shards", &v)) {
      flags.shards = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--readers", &v)) {
      flags.readers = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--queries", &v)) {
      flags.num_queries = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--mutations", &v)) {
      flags.mutations = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--write-batch", &v)) {
      flags.write_batch = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--initial-fraction", &v)) {
      flags.initial_fraction = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlagValue(argv[i], "--refit-fraction", &v)) {
      flags.refit_fraction = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlagValue(argv[i], "--profile", &v)) {
      flags.profile = v;
    } else if (ParseFlagValue(argv[i], "--scale", &v)) {
      flags.scale = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlagValue(argv[i], "--tau", &v)) {
      flags.tau_hat = std::strtoll(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--gamma", &v)) {
      flags.gamma = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlagValue(argv[i], "--prefilter", &v)) {
      flags.prefilter = v != "0" && v != "false";
    } else if (ParseFlagValue(argv[i], "--pairs", &v)) {
      flags.sample_pairs = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--seed", &v)) {
      flags.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nflags: --threads=N --shards=N "
                   "--readers=N --queries=N --mutations=N --write-batch=N "
                   "--initial-fraction=F --refit-fraction=F "
                   "--profile=fingerprint|aids|grec|aasd --scale=F --tau=N "
                   "--gamma=F --prefilter=0|1 --pairs=N --seed=N\n",
                   argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

// Final-state equivalence gate: results of the dynamic service over its
// published snapshot must be bit-identical (match set, ordering, counters)
// to a fresh Build + GbdaService over a database holding exactly the live
// graphs, mapped through stable ids.
bool FinalCorpusMatchesFreshBuild(DynamicGbdaService& dyn,
                                  const GbdaIndexOptions& index_options,
                                  const ServiceOptions& service_options,
                                  const std::vector<Graph>& queries,
                                  const SearchOptions& search_options) {
  const std::vector<size_t> live_ids = dyn.db().LiveIds();
  GraphDatabase ref_db;
  ref_db.vertex_labels() = dyn.db().vertex_labels();
  ref_db.edge_labels() = dyn.db().edge_labels();
  for (size_t id : live_ids) ref_db.Add(dyn.db().graph(id));
  Result<GbdaIndex> index = GbdaIndex::Build(ref_db, index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "gate: %s\n", index.status().ToString().c_str());
    return false;
  }
  Result<std::unique_ptr<GbdaService>> ref =
      GbdaService::Create(&ref_db, &*index, service_options);
  if (!ref.ok()) {
    std::fprintf(stderr, "gate: %s\n", ref.status().ToString().c_str());
    return false;
  }
  for (size_t q = 0; q < queries.size(); ++q) {
    Result<SearchResult> expect = (*ref)->Query(queries[q], search_options);
    Result<SearchResult> got = dyn.Query(queries[q], search_options);
    if (!expect.ok() || !got.ok()) return false;
    if (expect->matches.size() != got->matches.size() ||
        expect->candidates_evaluated != got->candidates_evaluated ||
        expect->prefiltered_out != got->prefiltered_out) {
      return false;
    }
    for (size_t i = 0; i < expect->matches.size(); ++i) {
      if (live_ids[expect->matches[i].graph_id] != got->matches[i].graph_id ||
          expect->matches[i].phi_score != got->matches[i].phi_score ||
          expect->matches[i].gbd != got->matches[i].gbd) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  if (flags.readers == 0 || flags.num_queries == 0 || flags.mutations == 0) {
    std::fprintf(stderr, "empty workload\n");
    return 2;
  }

  Result<DatasetProfile> profile = ProfileByName(flags.profile, flags.scale);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  if (flags.seed != 0) profile->seed = flags.seed;
  Result<GeneratedDataset> dataset = GenerateDataset(*profile);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const size_t total = dataset->db.size();
  const size_t initial = std::max<size_t>(
      4, static_cast<size_t>(static_cast<double>(total) * flags.initial_fraction));
  if (initial >= total) {
    std::fprintf(stderr, "initial fraction leaves no graphs to stream in\n");
    return 1;
  }

  // Initial corpus: the first `initial` dataset graphs; the rest arrive
  // through AddGraphs during the mixed phase.
  GraphDatabase db;
  db.vertex_labels() = dataset->db.vertex_labels();
  db.edge_labels() = dataset->db.edge_labels();
  for (size_t i = 0; i < initial; ++i) db.Add(dataset->db.graph(i));

  GbdaIndexOptions index_options;
  index_options.tau_max = std::max<int64_t>(10, flags.tau_hat);
  index_options.gbd_prior.num_sample_pairs = flags.sample_pairs;
  index_options.model_vertex_labels =
      static_cast<int64_t>(profile->num_vertex_labels);
  index_options.model_edge_labels =
      static_cast<int64_t>(profile->num_edge_labels);

  DynamicServiceOptions options;
  options.service.num_threads = flags.threads;
  options.service.num_shards = flags.shards;
  options.gbd_refit_fraction = flags.refit_fraction;
  Result<std::unique_ptr<DynamicGbdaService>> created =
      DynamicGbdaService::Create(std::move(db), index_options, options);
  if (!created.ok()) {
    std::fprintf(stderr, "service: %s\n", created.status().ToString().c_str());
    return 1;
  }
  DynamicGbdaService& service = **created;
  service.ResetStats();  // measure only the mixed phase

  SearchOptions search_options;
  search_options.tau_hat = flags.tau_hat;
  search_options.gamma = flags.gamma;
  search_options.use_prefilter = flags.prefilter;

  // ---- Mixed phase: R readers x 1 writer --------------------------------
  std::atomic<bool> readers_done_flag{false};
  std::atomic<size_t> readers_remaining{flags.readers};
  std::atomic<int> read_errors{0};
  WallTimer phase_timer;
  std::vector<std::thread> readers;
  readers.reserve(flags.readers);
  for (size_t r = 0; r < flags.readers; ++r) {
    readers.emplace_back([&service, &dataset, &search_options, &flags,
                          &readers_remaining, &readers_done_flag,
                          &read_errors, r]() {
      for (size_t q = 0; q < flags.num_queries; ++q) {
        const Graph& query =
            dataset->queries[(r + q) % dataset->queries.size()];
        if (!service.Query(query, search_options).ok()) ++read_errors;
      }
      if (readers_remaining.fetch_sub(1) == 1) {
        readers_done_flag.store(true);
      }
    });
  }

  // Writer: alternate add-batch and remove commits. After the arrival pool
  // drains, re-add copies of retired graphs so the mix keeps churning until
  // both the commit quota and the readers are done.
  Rng write_rng(readers.size() + 99);
  size_t next_arrival = initial;
  size_t commits = 0;
  int write_errors = 0;
  while (commits < flags.mutations || !readers_done_flag.load()) {
    const std::vector<size_t> live = service.db().LiveIds();
    const bool remove = live.size() > initial / 2 && commits % 3 == 2;
    if (remove) {
      const size_t pick = live[static_cast<size_t>(write_rng.UniformInt(
          0, static_cast<int64_t>(live.size()) - 1))];
      if (!service.RemoveGraphs({pick}).ok()) ++write_errors;
    } else {
      std::vector<Graph> batch;
      for (size_t i = 0; i < flags.write_batch; ++i) {
        const size_t src = next_arrival < total
                               ? next_arrival++
                               : static_cast<size_t>(write_rng.UniformInt(
                                     0, static_cast<int64_t>(total) - 1));
        batch.push_back(dataset->db.graph(src));
      }
      if (!service.AddGraphs(std::move(batch)).ok()) ++write_errors;
    }
    ++commits;
  }
  for (std::thread& t : readers) t.join();
  const double phase_wall = phase_timer.Seconds();

  if (read_errors.load() != 0 || write_errors != 0) {
    std::fprintf(stderr, "mixed phase errors: %d reads, %d writes\n",
                 read_errors.load(), write_errors);
    return 1;
  }

  // Capture BEFORE the gate: the gate issues extra queries with no write
  // contention, which would dilute the mixed-phase latency figures.
  const ServiceStats read_stats = service.stats();
  const DynamicServiceStats write_stats = service.dynamic_stats();

  // ---- Equivalence gate --------------------------------------------------
  bool equivalence_ok = true;
  bool gate_ran = false;
  if (flags.refit_fraction <= 0.0) {
    gate_ran = true;
    equivalence_ok = FinalCorpusMatchesFreshBuild(
        service, index_options, options.service, dataset->queries,
        search_options);
    if (!equivalence_ok) {
      std::fprintf(stderr,
                   "EQUIVALENCE FAILURE: dynamic corpus diverges from a "
                   "fresh offline build\n");
      return 1;
    }
  }

  const size_t reads = flags.readers * flags.num_queries;

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_dynamic\",\n");
  std::printf("  \"profile\": \"%s\",\n", flags.profile.c_str());
  std::printf("  \"scale\": %g,\n", flags.scale);
  std::printf("  \"db_graphs\": %zu,\n", total);
  std::printf("  \"initial_live\": %zu,\n", initial);
  std::printf("  \"final_live\": %zu,\n", service.num_live());
  std::printf("  \"threads\": %zu,\n", service.num_threads());
  std::printf("  \"shards\": %zu,\n", flags.shards);
  std::printf("  \"readers\": %zu,\n", flags.readers);
  std::printf("  \"queries_per_reader\": %zu,\n", flags.num_queries);
  std::printf("  \"write_batch\": %zu,\n", flags.write_batch);
  std::printf("  \"refit_fraction\": %g,\n", flags.refit_fraction);
  std::printf("  \"tau_hat\": %lld,\n", static_cast<long long>(flags.tau_hat));
  std::printf("  \"gamma\": %g,\n", flags.gamma);
  std::printf("  \"prefilter\": %s,\n", flags.prefilter ? "true" : "false");
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"equivalence_gate\": \"%s\",\n",
              gate_ran ? "passed" : "skipped (refit_fraction > 0)");
  std::printf("  \"mixed\": {\"wall_seconds\": %.6f, \"reads\": %zu, "
              "\"read_qps\": %.2f, \"mean_read_latency_seconds\": %.6f, "
              "\"commits\": %zu, \"commits_per_second\": %.2f, "
              "\"graphs_added\": %llu, \"graphs_removed\": %llu, "
              "\"gbd_refits\": %llu},\n",
              phase_wall, reads,
              phase_wall > 0 ? static_cast<double>(reads) / phase_wall : 0.0,
              read_stats.MeanLatencySeconds(), commits,
              phase_wall > 0 ? static_cast<double>(commits) / phase_wall : 0.0,
              static_cast<unsigned long long>(write_stats.graphs_added),
              static_cast<unsigned long long>(write_stats.graphs_removed),
              static_cast<unsigned long long>(write_stats.gbd_refits));
  const double snapshots =
      write_stats.snapshots_published > 0
          ? static_cast<double>(write_stats.snapshots_published)
          : 1.0;
  std::printf("  \"snapshot\": {\"published\": %llu, "
              "\"rebuild_mean_seconds\": %.6f, \"rebuild_max_seconds\": %.6f, "
              "\"swap_mean_seconds\": %.9f, \"swap_max_seconds\": %.9f, "
              "\"last_swap_seconds\": %.9f}\n",
              static_cast<unsigned long long>(write_stats.snapshots_published),
              write_stats.total_rebuild_seconds / snapshots,
              write_stats.max_rebuild_seconds,
              write_stats.total_swap_seconds / snapshots,
              write_stats.max_swap_seconds, write_stats.last_swap_seconds);
  std::printf("}\n");
  return 0;
}
