// Regenerates Figures 22-29: F1-score of GBDA against its two variants on
// the four real-profile data sets (gamma = 0.9):
//  - Figures 22-25: GBDA vs GBDA-V1 with alpha in {10, 50, 100} (database
//    average |V'1| instead of the pair's extended size);
//  - Figures 26-29: GBDA vs GBDA-V2 with w in {0.1, 0.5} (weighted VGBD of
//    Eq. 26 instead of GBD).

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"

using namespace gbda;
using namespace gbda::bench;

namespace {

Status Run(const BenchFlags& flags) {
  const std::vector<int64_t> taus = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<DatasetProfile> profiles = RealProfiles(flags);

  for (size_t d = 0; d < profiles.size(); ++d) {
    const DatasetProfile& profile = profiles[d];
    Result<Bundle> bundle = MakeBundle(profile, /*tau_max=*/10, flags);
    if (!bundle.ok()) {
      return Status(bundle.status().code(),
                    profile.name + ": " + bundle.status().message());
    }
    ExperimentRunner& runner = *bundle->runner;

    struct Config {
      std::string label;
      ExperimentConfig config;
    };
    std::vector<Config> configs;
    {
      ExperimentConfig base;
      base.method = Method::kGbda;
      base.gamma = 0.9;
      configs.push_back({"GBDA", base});
      for (size_t alpha : {10u, 50u, 100u}) {
        ExperimentConfig v1 = base;
        v1.method = Method::kGbdaV1;
        v1.v1_alpha = alpha;
        configs.push_back({StrFormat("V1(a=%zu)", static_cast<size_t>(alpha)),
                           v1});
      }
      for (double w : {0.1, 0.5}) {
        ExperimentConfig v2 = base;
        v2.method = Method::kGbdaV2;
        v2.vgbd_w = w;
        configs.push_back({StrFormat("V2(w=%.1f)", w), v2});
      }
    }

    std::vector<std::string> headers = {"method \\ tau"};
    for (int64_t tau : taus) headers.push_back(std::to_string(tau));
    TableWriter v1_table(headers);
    TableWriter v2_table(headers);
    for (const Config& c : configs) {
      Result<std::vector<MethodMetrics>> sweep =
          runner.RunTauSweep(c.config, taus);
      if (!sweep.ok()) return sweep.status();
      std::vector<std::string> row = {c.label};
      for (const MethodMetrics& m : *sweep) row.push_back(Cell(m.f1, 3));
      const bool is_v2 = c.label.rfind("V2", 0) == 0;
      const bool is_v1 = c.label.rfind("V1", 0) == 0;
      if (!is_v2) v1_table.AddRow(row);
      if (!is_v1) v2_table.AddRow(row);
    }
    v1_table.Print(StrFormat("Figure %d: F1 vs tau_hat on %s (GBDA vs V1)",
                             static_cast<int>(22 + d), profile.name.c_str()));
    v2_table.Print(StrFormat("Figure %d: F1 vs tau_hat on %s (GBDA vs V2)",
                             static_cast<int>(26 + d), profile.name.c_str()));
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figures 22-29: GBDA variant ablations", flags);
  Status st = Run(flags);
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
