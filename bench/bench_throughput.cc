// Serving-layer throughput sweep (docs/BENCHMARKS.md, "Throughput bench").
// Sweeps thread counts x batch sizes of GbdaService over a dataset_profiles
// database and emits one machine-readable JSON object on stdout: per-config
// wall time, QPS, mean latency, counters, and speedups vs the single-thread
// config and the serial GbdaSearch loop. Before sweeping, the first config's
// results are checked bit-identical against the serial engine so the numbers
// can never come from a diverging concurrent path.
//
// --top-k=N switches to the pruned-vs-exhaustive ranking sweep
// (docs/BENCHMARKS.md, "Pruned top-k sweep"): every config runs QueryTopKBatch
// twice — top-k early termination armed and disarmed — and reports both walls
// plus the prune speedup. The built-in gate hard-fails unless BOTH runs of
// EVERY config are bit-identical to the exhaustive serial QueryTopK
// (matches, ordering, deterministic counters), so a reported speedup can
// never come from a result-changing prune.
//
// Typical runs:
//   bench_throughput                                   # default sweep
//   bench_throughput --threads=1,4 --batches=8         # acceptance check
//   bench_throughput --threads=2 --batches=4 --queries=8 --scale=0.03  # CI
//   bench_throughput --threads=2 --top-k=10            # CI pruning gate

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/kernels.h"
#include "common/timer.h"
#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "obs/trace.h"
#include "service/gbda_service.h"

using namespace gbda;
using bench::ParseFlagValue;
using bench::ProfileByName;

namespace {

struct Flags {
  std::vector<size_t> threads = {1, 2, 4};
  std::vector<size_t> batch_sizes = {1, 8, 32};
  size_t num_queries = 32;
  std::string profile = "fingerprint";
  double scale = 0.05;
  size_t shards = 0;  // 0 = one per worker
  int64_t tau_hat = 5;
  double gamma = 0.5;
  bool prefilter = false;
  size_t sample_pairs = 2000;
  uint64_t seed = 0;  // 0 = profile default
  size_t top_k = 0;   // 0 = threshold sweep; N > 0 = pruned top-k sweep
  /// --kernels=CSV of auto|scalar|avx2. One entry pins the dispatch for the
  /// whole bench; several run a serial side-by-side sweep first (with a
  /// bit-identity gate across the modes) and then pin the first entry.
  std::vector<KernelDispatch> kernels = {KernelDispatch::kAuto};
  /// --trace=0|1 arms obs tracing (sample_every=1) for the whole run. The
  /// equivalence gates run either way, which is the acceptance check that
  /// tracing cannot change results; comparing walls across --trace=0 and
  /// --trace=1 runs measures the enabled-mode overhead (docs/BENCHMARKS.md).
  bool trace = false;
};

const char* DispatchName(KernelDispatch d) {
  switch (d) {
    case KernelDispatch::kAuto:
      return "auto";
    case KernelDispatch::kForceScalar:
      return "scalar";
    case KernelDispatch::kForceAvx2:
      return "avx2";
  }
  return "?";
}

bool ParseKernelList(const std::string& csv,
                     std::vector<KernelDispatch>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string name = csv.substr(pos, comma - pos);
    if (name == "auto") {
      out->push_back(KernelDispatch::kAuto);
    } else if (name == "scalar") {
      out->push_back(KernelDispatch::kForceScalar);
    } else if (name == "avx2") {
      out->push_back(KernelDispatch::kForceAvx2);
    } else {
      return false;
    }
    pos = comma + 1;
  }
  return !out->empty();
}

std::vector<size_t> ParseSizeList(const std::string& csv) {
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(static_cast<size_t>(
        std::strtoull(csv.substr(pos, comma - pos).c_str(), nullptr, 10)));
    pos = comma + 1;
  }
  return out;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlagValue(argv[i], "--threads", &v)) {
      flags.threads = ParseSizeList(v);
    } else if (ParseFlagValue(argv[i], "--batches", &v)) {
      flags.batch_sizes = ParseSizeList(v);
    } else if (ParseFlagValue(argv[i], "--queries", &v)) {
      flags.num_queries = static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--profile", &v)) {
      flags.profile = v;
    } else if (ParseFlagValue(argv[i], "--scale", &v)) {
      flags.scale = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlagValue(argv[i], "--shards", &v)) {
      flags.shards = static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--tau", &v)) {
      flags.tau_hat = std::strtoll(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--gamma", &v)) {
      flags.gamma = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlagValue(argv[i], "--prefilter", &v)) {
      flags.prefilter = v != "0" && v != "false";
    } else if (ParseFlagValue(argv[i], "--pairs", &v)) {
      flags.sample_pairs = static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--seed", &v)) {
      flags.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--top-k", &v)) {
      flags.top_k = static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--kernels", &v)) {
      if (!ParseKernelList(v, &flags.kernels)) {
        std::fprintf(stderr, "bad --kernels value %s (CSV of auto|scalar|avx2)\n",
                     v.c_str());
        std::exit(2);
      }
    } else if (ParseFlagValue(argv[i], "--trace", &v)) {
      flags.trace = v != "0" && v != "false";
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nflags: --threads=CSV --batches=CSV "
                   "--queries=N --profile=fingerprint|aids|grec|aasd "
                   "--scale=F --shards=N --tau=N --gamma=F --prefilter=0|1 "
                   "--pairs=N --seed=N --top-k=N --kernels=CSV --trace=0|1\n",
                   argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

bool SameMatches(const SearchResult& a, const SearchResult& b) {
  if (a.matches.size() != b.matches.size()) return false;
  for (size_t i = 0; i < a.matches.size(); ++i) {
    if (a.matches[i].graph_id != b.matches[i].graph_id ||
        a.matches[i].phi_score != b.matches[i].phi_score ||
        a.matches[i].gbd != b.matches[i].gbd) {
      return false;
    }
  }
  return a.candidates_evaluated == b.candidates_evaluated &&
         a.prefiltered_out == b.prefiltered_out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  if (flags.threads.empty() || flags.batch_sizes.empty() ||
      flags.num_queries == 0) {
    std::fprintf(stderr, "empty sweep\n");
    return 2;
  }

  {
    obs::TraceConfig trace_config = obs::GetTraceConfig();
    trace_config.enabled = flags.trace;
    trace_config.sample_every = 1;
    obs::SetTraceConfig(trace_config);
  }

  Result<DatasetProfile> profile = ProfileByName(flags.profile, flags.scale);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  if (flags.seed != 0) profile->seed = flags.seed;
  Result<GeneratedDataset> dataset = GenerateDataset(*profile);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  GbdaIndexOptions index_options;
  index_options.tau_max = std::max<int64_t>(10, flags.tau_hat);
  index_options.gbd_prior.num_sample_pairs = flags.sample_pairs;
  index_options.model_vertex_labels =
      static_cast<int64_t>(profile->num_vertex_labels);
  index_options.model_edge_labels =
      static_cast<int64_t>(profile->num_edge_labels);
  Result<GbdaIndex> index = GbdaIndex::Build(dataset->db, index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "index: %s\n", index.status().ToString().c_str());
    return 1;
  }

  // The query stream: dataset queries cycled to the requested length.
  std::vector<Graph> queries;
  queries.reserve(flags.num_queries);
  for (size_t i = 0; i < flags.num_queries; ++i) {
    queries.push_back(dataset->queries[i % dataset->queries.size()]);
  }

  SearchOptions search_options;
  search_options.tau_hat = flags.tau_hat;
  search_options.gamma = flags.gamma;
  search_options.use_prefilter = flags.prefilter;
  // Everything downstream — serial references and service sweeps alike —
  // runs under the first requested dispatch.
  search_options.kernel_dispatch = flags.kernels.front();

  // ---- Kernel-dispatch sweep (docs/BENCHMARKS.md, "Kernel sweep") ----
  // With several --kernels entries, run the serial scan once per mode and
  // gate every mode bit-identical against the first before reporting its
  // wall — a reported scalar-vs-AVX2 delta can never come from diverging
  // results. Emitted later as the "kernel_sweep" array of the JSON object.
  std::string kernel_sweep_json;
  if (flags.kernels.size() > 1) {
    std::vector<SearchResult> reference;
    for (size_t m = 0; m < flags.kernels.size(); ++m) {
      SearchOptions opts = search_options;
      opts.kernel_dispatch = flags.kernels[m];
      GbdaSearch serial(&dataset->db, &*index);
      std::vector<SearchResult> results;
      results.reserve(queries.size());
      double wall = 0.0;
      // One untimed warm-up pass (lazy Lambda1/Phi/bound tables), then the
      // timed pass.
      for (int pass = 0; pass < 2; ++pass) {
        results.clear();
        WallTimer timer;
        for (const Graph& query : queries) {
          Result<SearchResult> r =
              flags.top_k > 0 ? serial.QueryTopK(query, flags.top_k, opts)
                              : serial.Query(query, opts);
          if (!r.ok()) {
            std::fprintf(stderr, "kernel sweep (%s): %s\n",
                         DispatchName(flags.kernels[m]),
                         r.status().ToString().c_str());
            return 1;
          }
          results.push_back(std::move(*r));
        }
        wall = timer.Seconds();
      }
      if (m == 0) {
        reference = std::move(results);
      } else {
        for (size_t i = 0; i < queries.size(); ++i) {
          if (!SameMatches(reference[i], results[i])) {
            std::fprintf(stderr,
                         "KERNEL EQUIVALENCE FAILURE: dispatch %s diverges "
                         "from %s on query %zu\n",
                         DispatchName(flags.kernels[m]),
                         DispatchName(flags.kernels[0]), i);
            return 1;
          }
        }
      }
      char entry[256];
      std::snprintf(entry, sizeof(entry),
                    "%s    {\"requested\": \"%s\", \"resolved\": \"%s\", "
                    "\"wall_seconds\": %.6f, \"qps\": %.2f}",
                    m == 0 ? "" : ",\n", DispatchName(flags.kernels[m]),
                    KernelImplName(ResolveKernels(flags.kernels[m])), wall,
                    wall > 0 ? static_cast<double>(queries.size()) / wall
                             : 0.0);
      kernel_sweep_json += entry;
    }
  }

  if (flags.top_k > 0) {
    // ---- Pruned top-k sweep (docs/BENCHMARKS.md, "Pruned top-k sweep") ----
    SearchOptions pruned_options = search_options;
    pruned_options.topk_early_termination = true;
    SearchOptions exhaustive_options = search_options;
    exhaustive_options.topk_early_termination = false;

    // Exhaustive serial reference: the source of truth every config (both
    // pruned and exhaustive runs) must reproduce bit-identically.
    std::vector<SearchResult> serial_results;
    serial_results.reserve(queries.size());
    double serial_wall;
    {
      GbdaSearch serial(&dataset->db, &*index);
      WallTimer timer;
      for (const Graph& query : queries) {
        Result<SearchResult> r =
            serial.QueryTopK(query, flags.top_k, exhaustive_options);
        if (!r.ok()) {
          std::fprintf(stderr, "serial top-k query: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
        serial_results.push_back(std::move(*r));
      }
      serial_wall = timer.Seconds();
    }

    std::printf("{\n");
    std::printf("  \"bench\": \"bench_throughput\",\n");
    std::printf("  \"mode\": \"topk_prune_sweep\",\n");
    std::printf("  \"profile\": \"%s\",\n", flags.profile.c_str());
    std::printf("  \"scale\": %g,\n", flags.scale);
    std::printf("  \"db_graphs\": %zu,\n", dataset->db.size());
    std::printf("  \"queries\": %zu,\n", queries.size());
    std::printf("  \"top_k\": %zu,\n", flags.top_k);
    std::printf("  \"tau_hat\": %lld,\n",
                static_cast<long long>(flags.tau_hat));
    std::printf("  \"prefilter\": %s,\n", flags.prefilter ? "true" : "false");
    std::printf("  \"trace\": %s,\n", flags.trace ? "true" : "false");
    std::printf("  \"hardware_concurrency\": %u,\n",
                std::thread::hardware_concurrency());
    std::printf("  \"kernels\": \"%s\",\n",
                KernelImplName(ResolveKernels(flags.kernels.front())));
    if (!kernel_sweep_json.empty()) {
      std::printf("  \"kernel_sweep\": [\n%s\n  ],\n",
                  kernel_sweep_json.c_str());
    }
    std::printf("  \"serial_exhaustive\": {\"wall_seconds\": %.6f},\n",
                serial_wall);
    std::printf("  \"configs\": [\n");

    bool first_config = true;
    for (size_t threads : flags.threads) {
      for (size_t batch_size : flags.batch_sizes) {
        ServiceOptions service_options;
        service_options.num_threads = threads;
        service_options.num_shards = flags.shards;
        GbdaService service(&dataset->db, &*index, service_options);

        // One full pass over the query stream; returns the wall time and
        // keeps every result for the equivalence gate below.
        auto run_pass = [&](const SearchOptions& opts, double* wall,
                            std::vector<SearchResult>* all) -> bool {
          service.ResetStats();
          all->clear();
          all->reserve(queries.size());
          WallTimer timer;
          for (size_t begin = 0; begin < queries.size(); begin += batch_size) {
            const size_t count = std::min(batch_size, queries.size() - begin);
            Result<std::vector<SearchResult>> batch = service.QueryTopKBatch(
                Span<Graph>(queries.data() + begin, count), flags.top_k, opts);
            if (!batch.ok()) {
              std::fprintf(stderr, "config (%zu threads, batch %zu): %s\n",
                           threads, batch_size,
                           batch.status().ToString().c_str());
              return false;
            }
            for (SearchResult& r : *batch) all->push_back(std::move(r));
          }
          *wall = timer.Seconds();
          return true;
        };

        double pruned_wall = 0.0, exhaustive_wall = 0.0, warmup_wall = 0.0;
        std::vector<SearchResult> pruned_results, exhaustive_results;
        // Untimed warm-up, with pruning ARMED: it triggers every lazy
        // one-off both passes depend on — per-worker Lambda1 calculators
        // and Phi memos, the service's O(corpus) prefilter-profile build,
        // and the suffix-max bound tables — so the timed walls below
        // measure steady-state serving for both modes rather than whichever
        // pass happened to touch a cold cache first.
        if (!run_pass(pruned_options, &warmup_wall, &pruned_results)) {
          return 1;
        }
        if (!run_pass(exhaustive_options, &exhaustive_wall,
                      &exhaustive_results)) {
          return 1;
        }
        if (!run_pass(pruned_options, &pruned_wall, &pruned_results)) return 1;
        const ServiceStats pruned_stats = service.stats();

        // Equivalence gate: BOTH runs must reproduce the exhaustive serial
        // ranking bit-identically before any speedup is reported.
        for (size_t i = 0; i < queries.size(); ++i) {
          if (!SameMatches(serial_results[i], pruned_results[i]) ||
              !SameMatches(serial_results[i], exhaustive_results[i])) {
            std::fprintf(stderr,
                         "EQUIVALENCE FAILURE: config (%zu threads, batch "
                         "%zu) query %zu diverges from the exhaustive serial "
                         "top-k scan\n",
                         threads, batch_size, i);
            return 1;
          }
        }

        std::printf(
            "%s    {\"threads\": %zu, \"shards\": %zu, \"batch_size\": %zu, "
            "\"pruned_wall_seconds\": %.6f, \"exhaustive_wall_seconds\": %.6f, "
            "\"prune_speedup\": %.3f, \"qps\": %.2f, "
            "\"mean_latency_seconds\": %.6f, \"candidates_evaluated\": %zu, "
            "\"pruned_by_bound\": %zu, \"speedup_vs_serial_exhaustive\": %.3f}",
            first_config ? "" : ",\n", threads, service.num_shards(),
            batch_size, pruned_wall, exhaustive_wall,
            pruned_wall > 0 ? exhaustive_wall / pruned_wall : 0.0,
            pruned_wall > 0
                ? static_cast<double>(queries.size()) / pruned_wall
                : 0.0,
            pruned_stats.MeanLatencySeconds(),
            pruned_stats.candidates_evaluated, pruned_stats.pruned_by_bound,
            pruned_wall > 0 ? serial_wall / pruned_wall : 0.0);
        first_config = false;
      }
    }
    std::printf("\n  ],\n");
    std::printf("  \"equivalence_ok\": true\n");
    std::printf("}\n");
    return 0;
  }

  // Serial reference: one engine, one query at a time — the pre-service
  // code path, also the source of truth for the equivalence check.
  std::vector<SearchResult> serial_results;
  serial_results.reserve(queries.size());
  double serial_wall;
  {
    GbdaSearch serial(&dataset->db, &*index);
    WallTimer timer;
    for (const Graph& query : queries) {
      Result<SearchResult> r = serial.Query(query, search_options);
      if (!r.ok()) {
        std::fprintf(stderr, "serial query: %s\n", r.status().ToString().c_str());
        return 1;
      }
      serial_results.push_back(std::move(*r));
    }
    serial_wall = timer.Seconds();
  }

  // Equivalence gate: the first sweep config must reproduce the serial
  // results bit-identically before any throughput number is reported.
  {
    ServiceOptions service_options;
    service_options.num_threads = flags.threads.front();
    service_options.num_shards = flags.shards;
    GbdaService service(&dataset->db, &*index, service_options);
    Result<std::vector<SearchResult>> batch =
        service.QueryBatch(queries, search_options);
    if (!batch.ok()) {
      std::fprintf(stderr, "service batch: %s\n",
                   batch.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!SameMatches(serial_results[i], (*batch)[i])) {
        std::fprintf(stderr,
                     "EQUIVALENCE FAILURE: query %zu diverges from the "
                     "serial scan\n",
                     i);
        return 1;
      }
    }
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_throughput\",\n");
  std::printf("  \"profile\": \"%s\",\n", flags.profile.c_str());
  std::printf("  \"scale\": %g,\n", flags.scale);
  std::printf("  \"db_graphs\": %zu,\n", dataset->db.size());
  std::printf("  \"queries\": %zu,\n", queries.size());
  std::printf("  \"tau_hat\": %lld,\n",
              static_cast<long long>(flags.tau_hat));
  std::printf("  \"gamma\": %g,\n", flags.gamma);
  std::printf("  \"prefilter\": %s,\n", flags.prefilter ? "true" : "false");
  std::printf("  \"trace\": %s,\n", flags.trace ? "true" : "false");
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"kernels\": \"%s\",\n",
              KernelImplName(ResolveKernels(flags.kernels.front())));
  if (!kernel_sweep_json.empty()) {
    std::printf("  \"kernel_sweep\": [\n%s\n  ],\n",
                kernel_sweep_json.c_str());
  }
  std::printf("  \"equivalence_ok\": true,\n");
  std::printf("  \"serial\": {\"wall_seconds\": %.6f, \"qps\": %.2f},\n",
              serial_wall,
              serial_wall > 0 ? static_cast<double>(queries.size()) / serial_wall
                              : 0.0);
  std::printf("  \"configs\": [\n");

  bool first_config = true;
  // wall_seconds of the threads==1 config per batch size, for speedup.
  std::vector<double> one_thread_wall(flags.batch_sizes.size(), 0.0);
  for (size_t ti = 0; ti < flags.threads.size(); ++ti) {
    const size_t threads = flags.threads[ti];
    for (size_t bi = 0; bi < flags.batch_sizes.size(); ++bi) {
      const size_t batch_size = flags.batch_sizes[bi];
      ServiceOptions service_options;
      service_options.num_threads = threads;
      service_options.num_shards = flags.shards;
      GbdaService service(&dataset->db, &*index, service_options);

      WallTimer timer;
      for (size_t begin = 0; begin < queries.size(); begin += batch_size) {
        const size_t count = std::min(batch_size, queries.size() - begin);
        Result<std::vector<SearchResult>> batch = service.QueryBatch(
            Span<Graph>(queries.data() + begin, count), search_options);
        if (!batch.ok()) {
          std::fprintf(stderr, "config (%zu threads, batch %zu): %s\n",
                       threads, batch_size,
                       batch.status().ToString().c_str());
          return 1;
        }
      }
      const double wall = timer.Seconds();
      const ServiceStats stats = service.stats();
      if (threads == 1 && one_thread_wall[bi] == 0.0) {
        one_thread_wall[bi] = wall;
      }
      const double speedup_1t =
          one_thread_wall[bi] > 0.0 ? one_thread_wall[bi] / wall : 0.0;

      std::printf("%s    {\"threads\": %zu, \"shards\": %zu, "
                  "\"batch_size\": %zu, \"wall_seconds\": %.6f, "
                  "\"qps\": %.2f, \"mean_latency_seconds\": %.6f, "
                  "\"candidates_evaluated\": %zu, \"prefiltered_out\": %zu, "
                  "\"matches_returned\": %zu, "
                  "\"speedup_vs_1thread\": %.3f, "
                  "\"speedup_vs_serial\": %.3f}",
                  first_config ? "" : ",\n", threads, service.num_shards(),
                  batch_size, wall,
                  wall > 0 ? static_cast<double>(queries.size()) / wall : 0.0,
                  stats.MeanLatencySeconds(), stats.candidates_evaluated,
                  stats.prefiltered_out, stats.matches_returned, speedup_1t,
                  wall > 0 ? serial_wall / wall : 0.0);
      first_config = false;
    }
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
