// Regenerates Figure 6: the Jeffreys prior distribution of GEDs on the
// Fingerprint data set, as a (tau x |V'1|) matrix of Pr[GED = tau] values
// (the paper renders it as a gray-scale heatmap).

#include <cstdio>

#include "bench_util.h"
#include "common/table_writer.h"
#include "core/ged_prior.h"

using namespace gbda;
using namespace gbda::bench;

namespace {

Status Run(const BenchFlags& flags) {
  const DatasetProfile profile = FingerprintProfile(0.1);
  const int64_t tau_max = 10;
  GedPriorTable prior(static_cast<int64_t>(profile.num_vertex_labels),
                      static_cast<int64_t>(profile.num_edge_labels), tau_max);

  std::vector<int64_t> sizes;
  if (flags.full) {
    for (int64_t v = 2; v <= 26; ++v) sizes.push_back(v);
  } else {
    sizes = {5, 10, 15, 20, 26};
  }

  std::vector<std::string> headers = {"tau \\ |V'1|"};
  for (int64_t v : sizes) headers.push_back(std::to_string(v));
  TableWriter table(headers);
  for (int64_t tau = 0; tau <= tau_max; ++tau) {
    std::vector<std::string> row = {std::to_string(tau)};
    for (int64_t v : sizes) row.push_back(Cell(prior.Probability(tau, v), 4));
    table.AddRow(row);
  }
  table.Print("Figure 6: Jeffreys prior Pr[GED = tau] per extended size "
              "|V'1| on the Fingerprint label alphabet (each column is a "
              "normalised distribution; the paper's heatmap gray levels)");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figure 6: GED prior matrix", flags);
  Status st = Run(flags);
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
