// Regenerates Table III: statistics of the benchmark datasets.
//
// Paper columns: |D|, |Q|, V_m, E_m, d, scale-free. Quick mode shrinks the
// graph counts (|D|, |Q|) but preserves sizes, degrees, label alphabets and
// the scale-free property; --full reproduces the paper's counts.

#include <cstdio>

#include "bench_util.h"
#include "common/result.h"
#include "common/table_writer.h"
#include "datagen/dataset_profiles.h"

using namespace gbda;
using namespace gbda::bench;

namespace {

Status Run(const BenchFlags& flags) {
  TableWriter table({"Data Set", "|D|", "|Q|", "Vm", "Em", "d", "Scale-free"});

  std::vector<DatasetProfile> profiles = RealProfiles(flags);
  profiles.push_back(SynBenchProfile(/*scale_free=*/true, flags));
  profiles.push_back(SynBenchProfile(/*scale_free=*/false, flags));

  for (const DatasetProfile& profile : profiles) {
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    if (!ds.ok()) {
      return Status(ds.status().code(),
                    profile.name + ": " + ds.status().message());
    }
    const DatabaseStats stats = ds->db.Stats();
    table.AddRow({profile.name, std::to_string(ds->db.size()),
                  std::to_string(ds->queries.size()),
                  std::to_string(stats.max_vertices),
                  std::to_string(stats.max_edges), Cell(stats.avg_degree, 1),
                  stats.scale_free ? "Yes" : "No"});
  }
  table.Print("Table III: statistics of data sets (paper: AIDS 1896/100/95/"
              "103/2.1/Y, Finger 2159/114/26/26/1.7/Y, GREC 1045/55/24/29/"
              "2.1/Y, AASD 37995/100/93/99/2.1/Y, Syn 3430/70/100K/1M/9.x)");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Table III: dataset statistics", flags);
  Status st = Run(flags);
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
