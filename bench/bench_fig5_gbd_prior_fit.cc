// Regenerates Figure 5: the sampled GBD histogram on the Fingerprint data
// set against the inferred GMM prior, printed as an ASCII chart plus the
// underlying series (sampled frequency vs inferred probability per phi).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/table_writer.h"
#include "core/gbda_index.h"

using namespace gbda;
using namespace gbda::bench;

namespace {

Status Run(const BenchFlags& flags) {
  DatasetProfile profile = flags.full ? FingerprintProfile(1.0)
                                      : FingerprintProfile(0.15);
  if (flags.seed != 0) profile.seed = flags.seed;
  Result<GeneratedDataset> ds = GenerateDataset(profile);
  if (!ds.ok()) return ds.status();

  GbdaIndexOptions options;
  options.tau_max = 10;
  options.gbd_prior.num_sample_pairs = flags.full ? 60000 : 20000;
  options.model_vertex_labels =
      static_cast<int64_t>(profile.num_vertex_labels);
  options.model_edge_labels = static_cast<int64_t>(profile.num_edge_labels);
  Result<GbdaIndex> index = GbdaIndex::Build(ds->db, options);
  if (!index.ok()) return index.status();

  const GbdPrior& prior = index->gbd_prior();
  const std::vector<size_t>& hist = prior.sample_histogram();
  const size_t total = prior.pairs_sampled();

  std::printf("GMM components (K=%zu):\n", prior.gmm().components().size());
  for (const GmmComponent& c : prior.gmm().components()) {
    std::printf("  weight=%.3f mean=%.2f stddev=%.2f\n", c.weight, c.mean,
                c.stddev);
  }

  TableWriter table({"GBD (phi)", "Sampled freq", "Inferred Pr[GBD=phi]",
                     "Histogram"});
  const int64_t max_phi = static_cast<int64_t>(hist.size());
  double max_freq = 0.0;
  for (size_t c : hist) {
    max_freq = std::max(max_freq,
                        static_cast<double>(c) / static_cast<double>(total));
  }
  for (int64_t phi = 0; phi < max_phi; ++phi) {
    const double freq = static_cast<double>(hist[static_cast<size_t>(phi)]) /
                        static_cast<double>(total);
    const double inferred = prior.Probability(phi);
    if (freq < 1e-6 && inferred < 1e-6) continue;
    const int bars = max_freq > 0.0
                         ? static_cast<int>(40.0 * freq / max_freq)
                         : 0;
    table.AddRow({std::to_string(phi), Cell(freq, 4), Cell(inferred, 4),
                  std::string(static_cast<size_t>(bars), '#')});
  }
  table.Print("Figure 5: inferred prior distribution of GBDs on the "
              "Fingerprint data set (sampled vs GMM-inferred)");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figure 5: GBD prior fit", flags);
  Status st = Run(flags);
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
