// Network serving latency-vs-load sweep (docs/BENCHMARKS.md, "Loadgen").
// Starts an in-process GbdaServer on a loopback ephemeral port over a
// dataset_profiles corpus, then drives it with N client connections at a
// sweep of offered QPS rates and reports tail latency percentiles
// (p50/p99/p999) per rate as one machine-readable JSON object on stdout.
//
//   - offered rate 0 = CLOSED loop: each connection issues its next query
//     the moment the previous response lands (peak-throughput mode);
//   - offered rate > 0 = OPEN loop: each connection schedules sends on a
//     fixed timetable (rate/connections per connection) and pipelines —
//     send times do not wait for responses, so queueing delay is charged to
//     latency exactly as a real arrival process would experience it.
//
// Before any rate runs, a BIT-IDENTITY GATE replays every distinct query
// through one connection and compares the wire response — match set,
// ordering, phi/gbd bit patterns and the deterministic counters — against
// the in-process GbdaService::QueryTopK answer. The sweep refuses to run
// (exit 1) on any divergence, so a reported latency can never come from a
// result-changing serving path.
//
// With --target=HOST:PORT the sweep drives an EXTERNAL gbda_serverd instead
// of an in-process server: the corpus/queries are still generated locally
// (use the same --profile/--scale/--seed the daemon was started with), the
// in-process bit-identity gate is skipped (there is no local service to
// compare against — the gate belongs to the daemon's own CI), and the
// before/after server counters come from the wire kStatsRequest message.
//
// Latency aggregation uses the log-bucketed obs::Histogram (p50/p99/p999
// within one bucket — <= 6.25% relative — of the exact nearest-rank sample
// quantiles the old sorted-array math produced; max stays exact).
//
// Typical runs:
//   bench_loadgen                                  # default sweep
//   bench_loadgen --duration=2 --rates=0           # CI smoke (closed loop)
//   bench_loadgen --connections=8 --rates=200,500,1000,2000
//   bench_loadgen --target=127.0.0.1:7070 --rates=0  # drive a live daemon

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/gbda_index.h"
#include "datagen/dataset_profiles.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/histogram.h"
#include "service/gbda_service.h"

using namespace gbda;
using bench::ParseFlagValue;
using bench::ProfileByName;

namespace {

struct Flags {
  std::string profile = "aids";
  double scale = 0.05;
  size_t connections = 4;
  std::vector<double> rates = {0.0, 100.0, 500.0, 2000.0};  // 0 = closed loop
  double duration = 2.0;   // seconds per rate point
  size_t top_k = 10;
  int64_t tau_hat = 5;
  double gamma = 0.5;
  uint64_t deadline_ms = 10000;
  size_t sample_pairs = 2000;
  uint64_t seed = 0;
  // Server knobs under test.
  size_t max_batch = 16;
  uint64_t max_linger_micros = 200;
  size_t workers = 1;
  size_t threads = 0;  // service pool; 0 = hardware concurrency
  std::string target;  // HOST:PORT of an external server; empty = in-process
};

std::vector<double> ParseRateList(const std::string& csv) {
  std::vector<double> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(std::strtod(csv.substr(pos, comma - pos).c_str(), nullptr));
    pos = comma + 1;
  }
  return out;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlagValue(argv[i], "--profile", &v)) {
      flags.profile = v;
    } else if (ParseFlagValue(argv[i], "--scale", &v)) {
      flags.scale = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlagValue(argv[i], "--connections", &v)) {
      flags.connections =
          static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--rates", &v)) {
      flags.rates = ParseRateList(v);
    } else if (ParseFlagValue(argv[i], "--duration", &v)) {
      flags.duration = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlagValue(argv[i], "--top-k", &v)) {
      flags.top_k = static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--tau", &v)) {
      flags.tau_hat = std::strtoll(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--gamma", &v)) {
      flags.gamma = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlagValue(argv[i], "--deadline-ms", &v)) {
      flags.deadline_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--pairs", &v)) {
      flags.sample_pairs =
          static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--seed", &v)) {
      flags.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--max-batch", &v)) {
      flags.max_batch =
          static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--max-linger-micros", &v)) {
      flags.max_linger_micros = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--workers", &v)) {
      flags.workers = static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--threads", &v)) {
      flags.threads = static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--target", &v)) {
      flags.target = v;
    } else {
      std::fprintf(
          stderr,
          "unknown flag %s\nflags: --profile=NAME --scale=F --connections=N "
          "--rates=CSV (0 = closed loop) --duration=SECONDS --top-k=N "
          "--tau=N --gamma=F --deadline-ms=N --pairs=N --seed=N "
          "--max-batch=N --max-linger-micros=N --workers=N --threads=N "
          "--target=HOST:PORT\n",
          argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

double ElapsedSeconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since)
      .count();
}

/// Outcome counters + latency histogram of one connection at one rate point.
/// Latencies are recorded in microseconds into the mergeable log-bucketed
/// histogram; quantiles are therefore within one bucket of the old exact
/// sorted-array math (count/sum/min/max stay exact).
struct ConnResult {
  obs::Histogram latency_micros;  // kOk responses only
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t deadline = 0;
  uint64_t other = 0;
  bool io_failed = false;
};

double QuantileMs(const obs::Histogram& h, double q) {
  return static_cast<double>(h.Quantile(q)) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  if (flags.connections == 0 || flags.rates.empty() || flags.duration <= 0) {
    std::fprintf(stderr, "empty sweep\n");
    return 2;
  }

  // ---- Corpus + offline index + in-process server ------------------------
  Result<DatasetProfile> profile = ProfileByName(flags.profile, flags.scale);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  if (flags.seed != 0) profile->seed = flags.seed;
  Result<GeneratedDataset> dataset = GenerateDataset(*profile);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // In-process mode builds index + service + server; --target mode drives an
  // external daemon and only needs the generated queries.
  std::unique_ptr<GbdaIndex> index;
  std::unique_ptr<GbdaService> service;
  std::unique_ptr<net::GbdaServer> server;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  if (flags.target.empty()) {
    GbdaIndexOptions index_options;
    index_options.tau_max = std::max<int64_t>(10, flags.tau_hat);
    index_options.gbd_prior.num_sample_pairs = flags.sample_pairs;
    index_options.model_vertex_labels =
        static_cast<int64_t>(profile->num_vertex_labels);
    index_options.model_edge_labels =
        static_cast<int64_t>(profile->num_edge_labels);
    Result<GbdaIndex> built = GbdaIndex::Build(dataset->db, index_options);
    if (!built.ok()) {
      std::fprintf(stderr, "index: %s\n", built.status().ToString().c_str());
      return 1;
    }
    index = std::make_unique<GbdaIndex>(std::move(*built));

    ServiceOptions service_options;
    service_options.num_threads = flags.threads;
    Result<std::unique_ptr<GbdaService>> created =
        GbdaService::Create(&dataset->db, index.get(), service_options);
    if (!created.ok()) {
      std::fprintf(stderr, "service: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    service = std::move(*created);

    net::ServerConfig server_config;
    server_config.max_batch = flags.max_batch;
    server_config.max_linger_micros = flags.max_linger_micros;
    server_config.num_workers = flags.workers;
    server_config.default_deadline_ms = flags.deadline_ms;
    Result<std::unique_ptr<net::GbdaServer>> started =
        net::GbdaServer::Serve(service.get(), server_config);
    if (!started.ok()) {
      std::fprintf(stderr, "server: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    server = std::move(*started);
    port = server->port();
  } else {
    const size_t colon = flags.target.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= flags.target.size()) {
      std::fprintf(stderr, "--target must be HOST:PORT, got %s\n",
                   flags.target.c_str());
      return 2;
    }
    host = flags.target.substr(0, colon);
    port = static_cast<uint16_t>(
        std::strtoul(flags.target.c_str() + colon + 1, nullptr, 10));
  }

  // Server counters: from the in-process object, or over the wire
  // (kStatsRequest) when driving an external daemon.
  net::GbdaClient stats_client;
  if (server == nullptr) {
    Result<net::GbdaClient> connected = net::GbdaClient::Connect(host, port);
    if (!connected.ok()) {
      std::fprintf(stderr, "target connect: %s\n",
                   connected.status().ToString().c_str());
      return 1;
    }
    stats_client = std::move(*connected);
  }
  auto server_stats = [&]() -> net::WireServerStats {
    if (server != nullptr) return server->stats();
    Result<net::StatsResponse> resp = stats_client.Stats();
    if (!resp.ok()) {
      std::fprintf(stderr, "wire stats: %s\n",
                   resp.status().ToString().c_str());
      std::exit(1);
    }
    return resp->stats;
  };

  SearchOptions search_options;
  search_options.tau_hat = flags.tau_hat;
  search_options.gamma = flags.gamma;

  // ---- Bit-identity gate: wire answers == in-process answers -------------
  // (Skipped under --target: there is no local service to compare against.)
  if (server != nullptr) {
    Result<net::GbdaClient> client = net::GbdaClient::Connect(host, port);
    if (!client.ok()) {
      std::fprintf(stderr, "gate connect: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    for (size_t qi = 0; qi < dataset->queries.size(); ++qi) {
      Result<SearchResult> local =
          service->QueryTopK(dataset->queries[qi], flags.top_k,
                             search_options);
      if (!local.ok()) {
        std::fprintf(stderr, "gate local query %zu: %s\n", qi,
                     local.status().ToString().c_str());
        return 1;
      }
      net::TopKRequest req;
      req.request_id = qi;
      req.k = flags.top_k;
      req.deadline_ms = flags.deadline_ms;
      req.options = search_options;
      req.query = dataset->queries[qi];
      Result<net::TopKResponse> remote = client->QueryTopK(req);
      if (!remote.ok()) {
        std::fprintf(stderr, "gate wire query %zu: %s\n", qi,
                     remote.status().ToString().c_str());
        return 1;
      }
      bool same = remote->status == net::WireStatus::kOk &&
                  remote->matches.size() == local->matches.size() &&
                  remote->candidates_evaluated == local->candidates_evaluated &&
                  remote->prefiltered_out == local->prefiltered_out &&
                  remote->pruned_by_bound == local->pruned_by_bound;
      for (size_t m = 0; same && m < local->matches.size(); ++m) {
        same = remote->matches[m].graph_id == local->matches[m].graph_id &&
               remote->matches[m].phi_score == local->matches[m].phi_score &&
               remote->matches[m].gbd == local->matches[m].gbd;
      }
      if (!same) {
        std::fprintf(stderr,
                     "BIT-IDENTITY FAILURE: query %zu served over the wire "
                     "diverges from in-process QueryTopK\n",
                     qi);
        return 1;
      }
    }
  }

  // ---- The sweep ---------------------------------------------------------
  std::printf("{\n");
  std::printf("  \"bench\": \"bench_loadgen\",\n");
  std::printf("  \"profile\": \"%s\",\n", flags.profile.c_str());
  std::printf("  \"scale\": %g,\n", flags.scale);
  std::printf("  \"db_graphs\": %zu,\n", dataset->db.size());
  std::printf("  \"top_k\": %zu,\n", flags.top_k);
  std::printf("  \"tau_hat\": %lld,\n", static_cast<long long>(flags.tau_hat));
  std::printf("  \"connections\": %zu,\n", flags.connections);
  std::printf("  \"duration_seconds\": %g,\n", flags.duration);
  std::printf("  \"max_batch\": %zu,\n", flags.max_batch);
  std::printf("  \"max_linger_micros\": %llu,\n",
              static_cast<unsigned long long>(flags.max_linger_micros));
  std::printf("  \"workers\": %zu,\n", flags.workers);
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  if (flags.target.empty()) {
    std::printf("  \"bit_identity_ok\": true,\n");
  } else {
    std::printf("  \"target\": \"%s\",\n", flags.target.c_str());
    std::printf("  \"bit_identity_ok\": null,\n");
  }
  std::printf("  \"sweep\": [\n");

  bool first_rate = true;
  for (double rate : flags.rates) {
    const net::WireServerStats before = server_stats();
    std::vector<ConnResult> results(flags.connections);
    std::vector<std::thread> conn_threads;
    conn_threads.reserve(flags.connections);
    const auto t0 = std::chrono::steady_clock::now();

    for (size_t c = 0; c < flags.connections; ++c) {
      conn_threads.emplace_back([&, c] {
        ConnResult& out = results[c];
        Result<net::GbdaClient> client =
            net::GbdaClient::Connect(host, port);
        if (!client.ok()) {
          out.io_failed = true;
          return;
        }
        auto make_request = [&](uint64_t id) {
          net::TopKRequest req;
          req.request_id = id;
          req.k = flags.top_k;
          req.deadline_ms = flags.deadline_ms;
          req.options = search_options;
          req.query =
              dataset->queries[(c + id) % dataset->queries.size()];
          return req;
        };
        auto count_response = [&](const net::TopKResponse& resp,
                                  double latency_ms) {
          switch (resp.status) {
            case net::WireStatus::kOk:
              ++out.ok;
              out.latency_micros.Record(
                  static_cast<uint64_t>(latency_ms * 1000.0 + 0.5));
              break;
            case net::WireStatus::kOverloaded:
              ++out.overloaded;
              break;
            case net::WireStatus::kDeadlineExceeded:
              ++out.deadline;
              break;
            default:
              ++out.other;
              break;
          }
        };

        if (rate <= 0.0) {
          // Closed loop: next request on response.
          while (ElapsedSeconds(t0) < flags.duration) {
            const auto sent_at = std::chrono::steady_clock::now();
            Result<net::TopKResponse> resp =
                client->QueryTopK(make_request(out.sent));
            ++out.sent;
            if (!resp.ok()) {
              out.io_failed = true;
              return;
            }
            count_response(*resp, ElapsedSeconds(sent_at) * 1e3);
          }
          return;
        }

        // Open loop: fixed timetable, pipelined sends; a dedicated receiver
        // thread matches responses by request id. Latency is measured from
        // the SCHEDULED send time, so server-side queueing under overload is
        // charged to the tail exactly as an external arrival would see it.
        const double interval =
            static_cast<double>(flags.connections) / rate;  // per connection
        // Preallocated send-time slots: the sender writes slot `id` before
        // publishing num_sent = id + 1 (release), the receiver reads only
        // slots below num_sent (acquire) — no resizing, no locking.
        const size_t max_sends = static_cast<size_t>(
            rate * flags.duration / static_cast<double>(flags.connections)) + 2;
        std::vector<std::chrono::steady_clock::time_point> send_times(max_sends);
        std::atomic<uint64_t> num_sent{0};
        std::atomic<bool> sender_done{false};

        std::thread receiver([&] {
          uint64_t received = 0;
          for (;;) {
            const uint64_t sent_now = num_sent.load(std::memory_order_acquire);
            if (sender_done.load(std::memory_order_acquire) &&
                received == sent_now) {
              return;
            }
            if (received == sent_now) {
              std::this_thread::sleep_for(std::chrono::microseconds(200));
              continue;
            }
            Result<net::Frame> frame = client->ReadFrame();
            if (!frame.ok()) {
              out.io_failed = true;
              return;
            }
            Result<net::TopKResponse> resp =
                net::DecodeTopKResponse(frame->payload);
            if (!resp.ok() || resp->request_id >= sent_now) {
              out.io_failed = true;
              return;
            }
            const double latency_ms =
                ElapsedSeconds(send_times[resp->request_id]) * 1e3;
            count_response(*resp, latency_ms);
            ++received;
          }
        });

        uint64_t id = 0;
        for (;;) {
          const auto scheduled =
              t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(static_cast<double>(id) *
                                                     interval));
          if (id >= send_times.size() ||
              std::chrono::duration<double>(scheduled - t0).count() >=
                  flags.duration) {
            break;
          }
          std::this_thread::sleep_until(scheduled);
          send_times[id] = scheduled;
          Status sent = client->SendBytes(
              net::EncodeTopKRequest(make_request(id)));
          if (!sent.ok()) {
            out.io_failed = true;
            break;
          }
          num_sent.store(id + 1, std::memory_order_release);
          ++out.sent;
          ++id;
        }
        sender_done.store(true, std::memory_order_release);
        receiver.join();
      });
    }
    for (std::thread& t : conn_threads) t.join();
    const double wall = ElapsedSeconds(t0);
    const net::WireServerStats after = server_stats();

    // Aggregate: histogram merge is associative, so the per-connection
    // histograms combine into exactly the state one global recorder would
    // have produced.
    obs::Histogram latency;
    uint64_t sent = 0, ok = 0, overloaded = 0, deadline = 0, other = 0;
    bool io_failed = false;
    for (const ConnResult& r : results) {
      latency.Merge(r.latency_micros);
      sent += r.sent;
      ok += r.ok;
      overloaded += r.overloaded;
      deadline += r.deadline;
      other += r.other;
      io_failed = io_failed || r.io_failed;
    }
    if (io_failed || other > 0) {
      std::fprintf(stderr,
                   "rate %g: connection I/O failure or unexpected response "
                   "status (other=%llu)\n",
                   rate, static_cast<unsigned long long>(other));
      return 1;
    }
    const uint64_t batches =
        after.batches_executed - before.batches_executed;
    const uint64_t batched_requests =
        after.requests_accepted - before.requests_accepted -
        (after.rejected_deadline - before.rejected_deadline);
    std::printf(
        "%s    {\"offered_qps\": %g, \"achieved_qps\": %.2f, "
        "\"sent\": %llu, \"ok\": %llu, \"overloaded\": %llu, "
        "\"deadline_exceeded\": %llu, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"p999_ms\": %.3f, "
        "\"max_ms\": %.3f, \"mean_batch_size\": %.2f}",
        first_rate ? "" : ",\n", rate,
        wall > 0 ? static_cast<double>(ok) / wall : 0.0,
        static_cast<unsigned long long>(sent),
        static_cast<unsigned long long>(ok),
        static_cast<unsigned long long>(overloaded),
        static_cast<unsigned long long>(deadline),
        QuantileMs(latency, 0.50), QuantileMs(latency, 0.99),
        QuantileMs(latency, 0.999),
        static_cast<double>(latency.max()) / 1000.0,
        batches > 0 ? static_cast<double>(batched_requests) /
                          static_cast<double>(batches)
                    : 0.0);
    first_rate = false;
  }

  const net::WireServerStats final_stats = server_stats();
  std::printf("\n  ],\n");
  std::printf("  \"batch_size_histogram\": [");
  for (size_t i = 0; i < final_stats.batch_size_histogram.size(); ++i) {
    std::printf("%s%llu", i == 0 ? "" : ", ",
                static_cast<unsigned long long>(
                    final_stats.batch_size_histogram[i]));
  }
  std::printf("]\n}\n");
  if (server != nullptr) server->Shutdown();
  return 0;
}
