// Ablation microbenchmarks for the design choices called out in docs/ARCHITECTURE.md:
//  - the O(tau^3) shared-table Lambda1 evaluation vs naive per-tau
//    recomputation (Section VI-B);
//  - the Omega2 coverage recurrence vs the paper's inclusion-exclusion form;
//  - sorted-merge branch intersection vs a hash-multiset intersection;
//  - GMM component count K sensitivity in fit time.

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "common/rng.h"
#include "core/branch.h"
#include "core/lambda1.h"
#include "graph/generators.h"
#include "math/gmm.h"

namespace gbda {
namespace {

// --- Lambda1: shared tables vs per-tau rebuild ------------------------------

void BM_Lambda1SharedTables(benchmark::State& state) {
  const int64_t tau_max = state.range(0);
  const ModelParams params = MakeModelParams(500, 10, 5);
  for (auto _ : state) {
    // One calculator serves every tau <= tau_max (the Section VI-B scheme).
    const Lambda1Calculator calc(params, tau_max);
    benchmark::DoNotOptimize(calc.Column(tau_max));
  }
}
BENCHMARK(BM_Lambda1SharedTables)->DenseRange(10, 30, 10);

void BM_Lambda1NaivePerTau(benchmark::State& state) {
  const int64_t tau_max = state.range(0);
  const ModelParams params = MakeModelParams(500, 10, 5);
  for (auto _ : state) {
    // Naive: rebuild the tables for every tau separately.
    double acc = 0.0;
    for (int64_t tau = 0; tau <= tau_max; ++tau) {
      const Lambda1Calculator calc(params, tau);
      acc += calc.Column(tau_max).back();
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_Lambda1NaivePerTau)->DenseRange(10, 30, 10);

// --- Omega2: recurrence vs inclusion-exclusion ------------------------------

void BM_Omega2Recurrence(benchmark::State& state) {
  const int64_t v = state.range(0);
  for (auto _ : state) {
    const Omega2Table table(v, 12);
    benchmark::DoNotOptimize(table.At(12, 10));
  }
}
BENCHMARK(BM_Omega2Recurrence)->Arg(16)->Arg(32);

void BM_Omega2InclusionExclusion(benchmark::State& state) {
  const int64_t v = state.range(0);
  for (auto _ : state) {
    double acc = 0.0;
    for (int64_t y = 0; y <= 12; ++y) {
      for (int64_t m = 0; m <= std::min<int64_t>(2 * y, v); ++m) {
        acc += Omega2InclusionExclusion(m, y, v);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_Omega2InclusionExclusion)->Arg(16)->Arg(32);

// --- Branch intersection: sorted merge vs hashing ---------------------------

BranchMultiset MakeBranches(size_t n, uint64_t seed) {
  Rng rng(seed);
  GeneratorOptions opts;
  opts.num_vertices = n;
  opts.scale_free = true;
  opts.edges_per_vertex = 2;
  opts.num_vertex_labels = 10;
  opts.num_edge_labels = 5;
  return ExtractBranches(*GenerateConnectedGraph(opts, &rng));
}

void BM_IntersectionSortedMerge(benchmark::State& state) {
  const BranchMultiset a = MakeBranches(static_cast<size_t>(state.range(0)), 1);
  const BranchMultiset b = MakeBranches(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BranchIntersectionSize(a, b));
  }
}
BENCHMARK(BM_IntersectionSortedMerge)->Range(256, 16384);

size_t HashIntersection(const BranchMultiset& a, const BranchMultiset& b) {
  // Strawman alternative: count via a hash multimap keyed by a cheap hash.
  std::unordered_map<size_t, std::vector<const Branch*>> buckets;
  auto hash = [](const Branch& br) {
    size_t h = br.root * 1000003u;
    for (LabelId l : br.edge_labels) h = h * 31 + l;
    return h;
  };
  for (const Branch& br : a) buckets[hash(br)].push_back(&br);
  size_t common = 0;
  for (const Branch& br : b) {
    auto it = buckets.find(hash(br));
    if (it == buckets.end()) continue;
    for (auto pit = it->second.begin(); pit != it->second.end(); ++pit) {
      if (**pit == br) {
        it->second.erase(pit);
        ++common;
        break;
      }
    }
  }
  return common;
}

void BM_IntersectionHashed(benchmark::State& state) {
  const BranchMultiset a = MakeBranches(static_cast<size_t>(state.range(0)), 1);
  const BranchMultiset b = MakeBranches(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashIntersection(a, b));
  }
}
BENCHMARK(BM_IntersectionHashed)->Range(256, 16384);

// --- GMM fit: component count K ---------------------------------------------

void BM_GmmFit(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) {
    data.push_back(rng.Bernoulli(0.5) ? rng.Gaussian(5.0, 2.0)
                                      : rng.Gaussian(20.0, 3.0));
  }
  GmmFitOptions opts;
  opts.num_components = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GaussianMixture::Fit(data, opts));
  }
}
BENCHMARK(BM_GmmFit)->DenseRange(1, 5, 1);

}  // namespace
}  // namespace gbda
