// Regenerates Figure 7: average query response time on the real-profile
// data sets for LSAP, Greedy-Sort-GED, Graph Seriation, and GBDA at
// tau_hat in {1, 5, 10} (gamma fixed at 0.9; it does not affect timing).
//
// GBDA queries run on a fresh search engine each, so the posterior memo is
// cold per query, matching the paper's per-query accounting.

#include <cstdio>

#include "bench_util.h"
#include "common/table_writer.h"
#include "core/gbda_search.h"

using namespace gbda;
using namespace gbda::bench;

namespace {

Status Run(const BenchFlags& flags) {
  TableWriter table({"Data Set", "LSAP", "greedysort", "seriation",
                     "GBDA(t=1)", "GBDA(t=5)", "GBDA(t=10)"});

  for (const DatasetProfile& profile : RealProfiles(flags)) {
    Result<Bundle> bundle = MakeBundle(profile, /*tau_max=*/10, flags);
    if (!bundle.ok()) {
      return Status(bundle.status().code(),
                    profile.name + ": " + bundle.status().message());
    }
    ExperimentRunner& runner = *bundle->runner;
    const GeneratedDataset& ds = *bundle->dataset;
    const size_t num_queries = std::min<size_t>(ds.queries.size(),
                                                flags.full ? 20 : 5);

    std::vector<std::string> row = {profile.name};
    // Baselines: one full scan per query.
    for (Method m :
         {Method::kLsap, Method::kGreedySort, Method::kSeriation}) {
      ExperimentConfig config;
      config.method = m;
      config.tau_hat = 5;
      std::vector<size_t> subset;
      for (size_t q = 0; q < num_queries; ++q) subset.push_back(q);
      Result<MethodMetrics> metrics = runner.Run(config, &subset);
      if (!metrics.ok()) return metrics.status();
      row.push_back(TimeCell(metrics->avg_query_seconds));
    }
    // GBDA at the three thresholds, cold engine per query.
    for (int64_t tau : {1, 5, 10}) {
      double total = 0.0;
      for (size_t q = 0; q < num_queries; ++q) {
        GbdaSearch search(&ds.db, runner.mutable_index());
        SearchOptions opts;
        opts.tau_hat = tau;
        opts.gamma = 0.9;
        Result<SearchResult> result = search.Query(ds.queries[q], opts);
        if (!result.ok()) return result.status();
        total += result->seconds;
      }
      row.push_back(TimeCell(total / static_cast<double>(num_queries)));
    }
    table.AddRow(row);
  }
  table.Print(
      "Figure 7: average query response time on real data sets "
      "(paper shape: GBDA fastest at every threshold, then seriation/"
      "greedysort, LSAP slowest)");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figure 7: query time on real data sets", flags);
  Status st = Run(flags);
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
