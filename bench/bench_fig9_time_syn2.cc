// Regenerates Figure 9: query response time vs graph size on the Syn-2
// (non-scale-free random) synthetic data, for GBDA at tau_hat in
// {10, 20, 30} and the three competitors. See bench_syn_common.h.

#include <cstdio>

#include "bench_syn_common.h"

int main(int argc, char** argv) {
  const gbda::bench::BenchFlags flags = gbda::bench::ParseFlags(argc, argv);
  gbda::bench::PrintHeader("Figure 9: time vs n on Syn-2", flags);
  gbda::Status st = gbda::bench::RunSynTimingBench(/*scale_free=*/false, flags);
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
