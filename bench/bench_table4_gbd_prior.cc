// Regenerates Table IV: time and space costs of computing the GBD prior
// distribution (the offline Lambda2 stage: pair sampling, GBD computation,
// GMM fit, tabulation).

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"

using namespace gbda;
using namespace gbda::bench;

namespace {

Status Run(const BenchFlags& flags) {
  TableWriter table({"Data Set", "Pairs sampled", "Time", "Space"});

  std::vector<DatasetProfile> profiles = RealProfiles(flags);
  profiles.push_back(SynBenchProfile(true, flags));
  profiles.push_back(SynBenchProfile(false, flags));

  for (const DatasetProfile& profile : profiles) {
    const int64_t tau_max = profile.certified_tau;
    Result<Bundle> bundle = MakeBundle(profile, tau_max, flags);
    if (!bundle.ok()) {
      return Status(bundle.status().code(),
                    profile.name + ": " + bundle.status().message());
    }
    const OfflineCosts& costs = bundle->runner->offline_costs();
    table.AddRow({profile.name, std::to_string(costs.pairs_sampled),
                  TimeCell(costs.gbd_prior_seconds),
                  HumanBytes(costs.gbd_prior_bytes)});
  }
  table.Print(
      "Table IV: costs of computing the GBD prior distribution "
      "(paper, N=100000: AIDS 11.1s/0.06KB, Finger 7.5s/0.04KB, GREC "
      "20.6s/0.10KB, AASD 232.4s/1.21KB, Syn-1 3.8h/13.3GB, Syn-2 "
      "3.2h/0.3GB)");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Table IV: GBD prior offline costs", flags);
  Status st = Run(flags);
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
