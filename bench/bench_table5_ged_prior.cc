// Regenerates Table V: time and space costs of computing the GED prior
// distribution (the offline Lambda3 stage: Jeffreys prior rows over
// (tau, |V'1|)).
//
// The paper precomputes a row for every |V'1| in [1, n]; like the paper's
// synthetic runs we exploit that only the sizes occurring in the data are
// needed (its own explanation for why Table V's synthetic costs are small).
// Pass --full to also report the eager all-sizes build.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "common/timer.h"
#include "core/ged_prior.h"

using namespace gbda;
using namespace gbda::bench;

namespace {

Status Run(const BenchFlags& flags) {
  TableWriter table(
      {"Data Set", "Distinct sizes", "Rows built", "Time", "Space"});

  std::vector<DatasetProfile> profiles = RealProfiles(flags);
  profiles.push_back(SynBenchProfile(true, flags));
  profiles.push_back(SynBenchProfile(false, flags));

  for (const DatasetProfile& profile : profiles) {
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    if (!ds.ok()) {
      return Status(ds.status().code(),
                    profile.name + ": " + ds.status().message());
    }
    // Rebuild only the GED prior so its cost is isolated, as in Table V.
    GedPriorTable prior(static_cast<int64_t>(profile.num_vertex_labels),
                        static_cast<int64_t>(profile.num_edge_labels),
                        profile.certified_tau);
    std::vector<int64_t> sizes;
    if (flags.full) {
      for (int64_t v = 1;
           v <= static_cast<int64_t>(ds->db.MaxVertices()); ++v) {
        sizes.push_back(v);
      }
    } else {
      for (size_t n : profile.rung_sizes) {
        sizes.push_back(static_cast<int64_t>(n));
      }
    }
    WallTimer timer;
    prior.EagerBuild(sizes);
    const double seconds = timer.Seconds();
    table.AddRow({profile.name, std::to_string(profile.rung_sizes.size()),
                  std::to_string(prior.num_cached_rows()), TimeCell(seconds),
                  HumanBytes(prior.MemoryBytes())});
  }
  table.Print(
      "Table V: costs of computing the GED prior distribution "
      "(paper: AIDS 70.32h/1.5KB, Finger 16.91h/0.4KB, GREC 15.40h/0.4KB, "
      "AASD 69.16h/1.4KB, Syn 6.31h/0.1KB; our Z evaluation avoids the "
      "paper's repeated closed-form recomputation, hence the large speedup)");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Table V: GED prior offline costs", flags);
  Status st = Run(flags);
  if (!st.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
