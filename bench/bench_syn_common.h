#pragma once

// Shared driver for the synthetic-graph benches: the time-vs-size series of
// Figures 8 and 9 (the two binaries differ only in the generator kind).
//
// Each subset size becomes its own single-rung database, as in the paper
// (Syn-1/Syn-2 contain one 500-graph subset per size). LSAP's Hungarian
// solver is O(n^3) per pair; sizes whose first measured pair exceeds the
// per-pair budget are skipped with a note — the small-scale analogue of the
// paper's competitors exhausting 128 GB beyond 20K vertices.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "common/timer.h"
#include "core/gbda_search.h"

namespace gbda::bench {

inline Status RunSynTimingBench(bool scale_free, const BenchFlags& flags) {
  const DatasetProfile base = SynBenchProfile(scale_free, flags);
  const double lsap_pair_budget = flags.full ? 120.0 : 15.0;
  const size_t pairs_to_time = 3;

  TableWriter table({"graph size", "LSAP", "greedysort", "seriation",
                     "GBDA(t=10)", "GBDA(t=20)", "GBDA(t=30)"});
  bool lsap_dropped = false;

  std::vector<size_t> sizes = base.rung_sizes;
  std::sort(sizes.begin(), sizes.end());
  for (size_t n : sizes) {
    DatasetProfile profile = base;
    profile.rung_sizes = {n};
    profile.graphs_per_rung = {base.graphs_per_rung.front()};
    profile.queries_per_rung = {base.queries_per_rung.front()};
    profile.seed = base.seed + n;
    Result<Bundle> bundle = MakeBundle(profile, /*tau_max=*/30, flags);
    if (!bundle.ok()) {
      return Status(bundle.status().code(),
                    profile.name + ": " + bundle.status().message());
    }
    ExperimentRunner& runner = *bundle->runner;
    const GeneratedDataset& ds = *bundle->dataset;
    const double db_size = static_cast<double>(ds.db.size());

    std::vector<std::string> row = {std::to_string(n)};
    // Baselines: per-pair cost from a few measured pairs, scaled to a full
    // database scan (labelled per-query estimates).
    for (Method m :
         {Method::kLsap, Method::kGreedySort, Method::kSeriation}) {
      if (m == Method::kLsap && lsap_dropped) {
        row.push_back("skipped");
        continue;
      }
      const BaselineMethod bm =
          m == Method::kLsap
              ? BaselineMethod::kLsap
              : (m == Method::kGreedySort ? BaselineMethod::kGreedySort
                                          : BaselineMethod::kSeriation);
      WallTimer timer;
      size_t timed = 0;
      for (size_t g = 0; g < std::min<size_t>(pairs_to_time, ds.db.size());
           ++g) {
        (void)runner.baselines().Estimate(ds.queries[0], g, bm);
        ++timed;
        if (m == Method::kLsap && timer.Seconds() > lsap_pair_budget) break;
      }
      const double per_pair = timer.Seconds() / static_cast<double>(timed);
      if (m == Method::kLsap && per_pair > lsap_pair_budget) {
        lsap_dropped = true;
        row.push_back("budget");
        continue;
      }
      row.push_back(TimeCell(per_pair * db_size));
    }
    // GBDA: full scans with a cold engine per query.
    for (int64_t tau : {10, 20, 30}) {
      double total = 0.0;
      const size_t num_queries = std::min<size_t>(ds.queries.size(), 3);
      for (size_t q = 0; q < num_queries; ++q) {
        GbdaSearch search(&ds.db, runner.mutable_index());
        SearchOptions opts;
        opts.tau_hat = tau;
        opts.gamma = 0.9;
        Result<SearchResult> result = search.Query(ds.queries[q], opts);
        if (!result.ok()) return result.status();
        total += result->seconds;
      }
      row.push_back(TimeCell(total / static_cast<double>(num_queries)));
    }
    table.AddRow(row);
  }
  table.Print(StrFormat(
      "Figure %d: query time vs graph size on %s (paper shape: GBDA "
      "scales past every competitor; at tau=30 GBDA loses on the smallest "
      "graphs and wins beyond ~2K vertices; LSAP drops out first)",
      scale_free ? 8 : 9, scale_free ? "Syn-1 (scale-free)" : "Syn-2 (random)"));
  return Status::OK();
}

}  // namespace gbda::bench
