#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "datagen/dataset_profiles.h"
#include "eval/experiment.h"

namespace gbda::bench {

/// Command-line switches shared by every table/figure binary:
///   --full     paper-scale parameters (minutes to hours);
///   --seed N   override the dataset seed.
/// The default "quick" mode shrinks dataset sizes so the whole suite runs in
/// a few minutes while preserving the comparative shapes.
struct BenchFlags {
  bool full = false;
  uint64_t seed = 0;  // 0 = profile default
};

BenchFlags ParseFlags(int argc, char** argv);

/// `--name=value` matcher shared by the serving benches' flag parsers:
/// returns true and fills `value` when `arg` is `<name>=<value>`.
bool ParseFlagValue(const char* arg, const char* name, std::string* value);

/// Table III profile by CLI name ("fingerprint" | "aids" | "grec" |
/// "aasd") at the given scale; fails on unknown names.
Result<DatasetProfile> ProfileByName(const std::string& name, double scale);

/// The four Table III dataset profiles at quick or paper scale.
std::vector<DatasetProfile> RealProfiles(const BenchFlags& flags);

/// Syn-1 (scale-free) / Syn-2 (random) profiles. Quick mode uses subset
/// sizes {100, 200, 500, 1000}; full mode {1000, 2000, 5000, 10000, 20000}
/// (the paper goes to 100K; see docs/BENCHMARKS.md for the scaling note).
DatasetProfile SynBenchProfile(bool scale_free, const BenchFlags& flags);

/// Generated dataset + ready experiment runner. The dataset lives on the
/// heap so the runner's pointer into it survives moves of the Bundle.
struct Bundle {
  std::unique_ptr<GeneratedDataset> dataset;
  std::unique_ptr<ExperimentRunner> runner;
};

/// Generates the dataset and builds the offline index (timing recorded in
/// runner->offline_costs()).
Result<Bundle> MakeBundle(DatasetProfile profile, int64_t tau_max,
                          const BenchFlags& flags);

/// "12.3 us" / "4.56 ms" — consistent time formatting for table cells.
std::string Cell(double value, int precision = 3);
std::string TimeCell(double seconds);

/// Prints the standard bench header (mode, dataset sizes).
void PrintHeader(const std::string& title, const BenchFlags& flags);

}  // namespace gbda::bench
