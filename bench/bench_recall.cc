// Approximate-navigation recall/latency sweep (docs/BENCHMARKS.md, "Recall
// bench"). Runs top-k ranking through GbdaService twice over a
// dataset_profiles database — exhaustively, and approximately at each
// --windows size — and emits one JSON object on stdout: per-window
// recall@k, wall time, speedup vs the exhaustive scan, and the navigator's
// cost counters.
//
// Two built-in gates make the numbers trustworthy:
//   - Exactness: every approximate match must be bit-identical (phi, gbd)
//     to the exhaustive ranking's entry for the same graph id. Approximate
//     mode may MISS candidates; it may never fabricate or perturb a score.
//     Any mismatch is a hard failure.
//   - Recall floor: recall@k at --floor-window (the SearchOptions default
//     window) must reach --recall-floor, or the bench exits non-zero. This
//     is the CI contract for approximate mode — the one mode exempt from
//     bit-identity, gated by explicit recall instead (ROADMAP.md).
//
// Typical runs:
//   bench_recall                                        # AIDS sweep
//   bench_recall --windows=8,16,32,64,128 --k=10
//   bench_recall --queries=16 --scale=0.03 --threads=2  # CI smoke
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "service/gbda_service.h"

using namespace gbda;
using bench::ParseFlagValue;
using bench::ProfileByName;

namespace {

struct Flags {
  std::string profile = "aids";
  double scale = 0.05;
  size_t num_queries = 32;
  size_t k = 10;
  std::vector<size_t> windows = {16, 32, 64, 128};
  size_t floor_window = SearchOptions().search_window_size;
  double recall_floor = 0.95;
  int64_t tau_hat = 5;
  size_t threads = 0;
  size_t shards = 0;
  size_t sample_pairs = 2000;
  uint64_t seed = 0;  // 0 = profile default
  uint32_t ann_degree = 0;  // 0 = AnnBuildParams default
};

std::vector<size_t> ParseSizeList(const std::string& csv) {
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(static_cast<size_t>(
        std::strtoull(csv.substr(pos, comma - pos).c_str(), nullptr, 10)));
    pos = comma + 1;
  }
  return out;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlagValue(argv[i], "--profile", &v)) {
      flags.profile = v;
    } else if (ParseFlagValue(argv[i], "--scale", &v)) {
      flags.scale = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlagValue(argv[i], "--queries", &v)) {
      flags.num_queries =
          static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--k", &v)) {
      flags.k = static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--windows", &v)) {
      flags.windows = ParseSizeList(v);
    } else if (ParseFlagValue(argv[i], "--floor-window", &v)) {
      flags.floor_window =
          static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--recall-floor", &v)) {
      flags.recall_floor = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlagValue(argv[i], "--tau", &v)) {
      flags.tau_hat = std::strtoll(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--threads", &v)) {
      flags.threads =
          static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--shards", &v)) {
      flags.shards = static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--pairs", &v)) {
      flags.sample_pairs =
          static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlagValue(argv[i], "--seed", &v)) {
      flags.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlagValue(argv[i], "--ann-degree", &v)) {
      flags.ann_degree =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nflags: --profile=aids|fingerprint|grec|"
                   "aasd --scale=F --queries=N --k=N --windows=CSV "
                   "--floor-window=N --recall-floor=F --tau=N --threads=N "
                   "--shards=N --pairs=N --seed=N --ann-degree=N\n",
                   argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  if (flags.num_queries == 0 || flags.k == 0 || flags.windows.empty()) {
    std::fprintf(stderr, "empty sweep\n");
    return 2;
  }
  // The floor gate needs a measurement at its window.
  if (std::find(flags.windows.begin(), flags.windows.end(),
                flags.floor_window) == flags.windows.end()) {
    flags.windows.push_back(flags.floor_window);
    std::sort(flags.windows.begin(), flags.windows.end());
  }

  Result<DatasetProfile> profile = ProfileByName(flags.profile, flags.scale);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  if (flags.seed != 0) profile->seed = flags.seed;
  Result<GeneratedDataset> dataset = GenerateDataset(*profile);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const size_t corpus = dataset->db.size();

  GbdaIndexOptions index_options;
  index_options.tau_max = std::max<int64_t>(10, flags.tau_hat);
  index_options.gbd_prior.num_sample_pairs = flags.sample_pairs;
  index_options.model_vertex_labels =
      static_cast<int64_t>(profile->num_vertex_labels);
  index_options.model_edge_labels =
      static_cast<int64_t>(profile->num_edge_labels);
  Result<GbdaIndex> index = GbdaIndex::Build(dataset->db, index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "index: %s\n", index.status().ToString().c_str());
    return 1;
  }

  std::vector<Graph> queries;
  queries.reserve(flags.num_queries);
  for (size_t i = 0; i < flags.num_queries; ++i) {
    queries.push_back(dataset->queries[i % dataset->queries.size()]);
  }

  ServiceOptions service_options;
  service_options.num_threads = flags.threads;
  service_options.num_shards = flags.shards;
  if (flags.ann_degree != 0) {
    service_options.ann_build.graph_degree = flags.ann_degree;
  }
  GbdaService service(&dataset->db, &*index, service_options);

  SearchOptions exhaustive_options;
  exhaustive_options.tau_hat = flags.tau_hat;

  // Ground truth, one pass: the FULL exhaustive ranking of every query.
  // Its first k entries are the recall reference, and the id -> (phi, gbd)
  // map behind it backs the exactness gate for matches an approximate
  // window surfaces from beyond the top-k.
  std::vector<std::vector<SearchMatch>> full_rankings;
  full_rankings.reserve(queries.size());
  {
    Result<std::vector<SearchResult>> full =
        service.QueryTopKBatch(queries, corpus, exhaustive_options);
    if (!full.ok()) {
      std::fprintf(stderr, "exhaustive ranking: %s\n",
                   full.status().ToString().c_str());
      return 1;
    }
    for (SearchResult& r : *full) full_rankings.push_back(std::move(r.matches));
  }
  std::vector<std::unordered_map<size_t, const SearchMatch*>> score_by_id(
      queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    score_by_id[qi].reserve(full_rankings[qi].size());
    for (const SearchMatch& m : full_rankings[qi]) {
      score_by_id[qi].emplace(m.graph_id, &m);
    }
  }
  const size_t k = std::min(flags.k, corpus);

  // Warm everything both timed passes share — prefilter profiles, engine
  // memos, and the proximity graph — so per-window walls measure steady
  // state.
  Status warmed = service.WarmAnnGraph();
  if (!warmed.ok()) {
    std::fprintf(stderr, "ann graph: %s\n", warmed.ToString().c_str());
    return 1;
  }

  // Timed exhaustive top-k pass: the latency baseline.
  double exhaustive_wall = 0.0;
  {
    WallTimer timer;
    Result<std::vector<SearchResult>> batch =
        service.QueryTopKBatch(queries, k, exhaustive_options);
    if (!batch.ok()) {
      std::fprintf(stderr, "exhaustive top-k: %s\n",
                   batch.status().ToString().c_str());
      return 1;
    }
    exhaustive_wall = timer.Seconds();
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"bench_recall\",\n");
  std::printf("  \"profile\": \"%s\",\n", flags.profile.c_str());
  std::printf("  \"scale\": %g,\n", flags.scale);
  std::printf("  \"db_graphs\": %zu,\n", corpus);
  std::printf("  \"queries\": %zu,\n", queries.size());
  std::printf("  \"k\": %zu,\n", k);
  std::printf("  \"tau_hat\": %lld,\n", static_cast<long long>(flags.tau_hat));
  std::printf("  \"threads\": %zu,\n", service.num_threads());
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"recall_floor\": %g,\n", flags.recall_floor);
  std::printf("  \"floor_window\": %zu,\n", flags.floor_window);
  std::printf("  \"exhaustive\": {\"wall_seconds\": %.6f, \"qps\": %.2f},\n",
              exhaustive_wall,
              exhaustive_wall > 0
                  ? static_cast<double>(queries.size()) / exhaustive_wall
                  : 0.0);
  std::printf("  \"windows\": [\n");

  double floor_recall = -1.0;
  bool first = true;
  for (size_t window : flags.windows) {
    SearchOptions approx_options = exhaustive_options;
    approx_options.approximate = true;
    approx_options.search_window_size = window;

    service.ResetStats();
    WallTimer timer;
    Result<std::vector<SearchResult>> batch =
        service.QueryTopKBatch(queries, k, approx_options);
    const double wall = timer.Seconds();
    if (!batch.ok()) {
      std::fprintf(stderr, "approximate window %zu: %s\n", window,
                   batch.status().ToString().c_str());
      return 1;
    }
    const ServiceStats stats = service.stats();

    double recall_sum = 0.0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const std::vector<SearchMatch>& approx = (*batch)[qi].matches;
      const std::vector<SearchMatch>& full = full_rankings[qi];
      const size_t truth = std::min(k, full.size());
      // Exactness gate: a score the exhaustive scan did not compute for the
      // same graph is fabricated — hard failure, not a recall deduction.
      for (const SearchMatch& m : approx) {
        auto it = score_by_id[qi].find(m.graph_id);
        if (it == score_by_id[qi].end() ||
            it->second->phi_score != m.phi_score || it->second->gbd != m.gbd) {
          std::fprintf(stderr,
                       "EXACTNESS FAILURE: window %zu query %zu graph %zu "
                       "disagrees with the exhaustive ranking\n",
                       window, qi, m.graph_id);
          return 1;
        }
      }
      if (truth == 0) {
        recall_sum += 1.0;
        continue;
      }
      size_t hits = 0;
      for (size_t t = 0; t < truth; ++t) {
        const size_t want = full[t].graph_id;
        for (const SearchMatch& m : approx) {
          if (m.graph_id == want) {
            ++hits;
            break;
          }
        }
      }
      recall_sum += static_cast<double>(hits) / static_cast<double>(truth);
    }
    const double recall = recall_sum / static_cast<double>(queries.size());
    if (window == flags.floor_window) floor_recall = recall;

    std::printf(
        "%s    {\"window\": %zu, \"recall_at_k\": %.4f, "
        "\"wall_seconds\": %.6f, \"qps\": %.2f, "
        "\"speedup_vs_exhaustive\": %.3f, \"candidates_visited\": %zu, "
        "\"verified_count\": %zu, \"visited_fraction\": %.4f}",
        first ? "" : ",\n", window, recall, wall,
        wall > 0 ? static_cast<double>(queries.size()) / wall : 0.0,
        wall > 0 ? exhaustive_wall / wall : 0.0, stats.candidates_visited,
        stats.verified_count,
        corpus > 0 ? static_cast<double>(stats.candidates_visited) /
                         static_cast<double>(corpus * queries.size())
                   : 0.0);
    first = false;
  }
  std::printf("\n  ],\n");

  const bool floor_ok = floor_recall >= flags.recall_floor;
  std::printf("  \"floor_recall\": %.4f,\n", floor_recall);
  std::printf("  \"exactness_ok\": true,\n");
  std::printf("  \"floor_ok\": %s\n}\n", floor_ok ? "true" : "false");
  if (!floor_ok) {
    std::fprintf(stderr,
                 "RECALL FLOOR FAILURE: recall@%zu = %.4f at window %zu, "
                 "floor is %.2f\n",
                 k, floor_recall, flags.floor_window, flags.recall_floor);
    return 1;
  }
  return 0;
}
