// Fingerprint triage: compare every search method on a Fingerprint-profile
// workload against exact ground truth — the decision a practitioner faces
// when picking an estimator for an identification pipeline where both missed
// matches (recall) and false alarms (precision) carry costs.

#include <cstdio>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "datagen/dataset_profiles.h"
#include "eval/experiment.h"

using namespace gbda;

int main() {
  DatasetProfile profile = FingerprintProfile(0.08);
  Result<GeneratedDataset> dataset = GenerateDataset(profile);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("Fingerprint workload: %zu database graphs, %zu queries, "
              "%zu families with certified ground truth\n\n",
              dataset->db.size(), dataset->queries.size(),
              dataset->num_families);

  Result<std::unique_ptr<ExperimentRunner>> runner =
      ExperimentRunner::Create(&*dataset, /*index_tau_max=*/10);
  if (!runner.ok()) {
    std::fprintf(stderr, "runner: %s\n", runner.status().ToString().c_str());
    return 1;
  }

  TableWriter table({"method", "tau", "precision", "recall", "F1",
                     "avg query time"});
  for (Method m : {Method::kGbda, Method::kLsap, Method::kGreedySort,
                   Method::kSeriation}) {
    for (int64_t tau : {3, 6, 9}) {
      ExperimentConfig config;
      config.method = m;
      config.tau_hat = tau;
      config.gamma = 0.8;
      Result<MethodMetrics> metrics = (*runner)->Run(config);
      if (!metrics.ok()) {
        std::fprintf(stderr, "%s: %s\n", MethodName(m),
                     metrics.status().ToString().c_str());
        return 1;
      }
      table.AddRow({MethodName(m), std::to_string(tau),
                    StrFormat("%.3f", metrics->precision),
                    StrFormat("%.3f", metrics->recall),
                    StrFormat("%.3f", metrics->f1),
                    HumanSeconds(metrics->avg_query_seconds)});
    }
  }
  table.Print("Estimator triage (gamma = 0.8 for GBDA):");
  std::printf(
      "\nReading guide: LSAP never misses a match (lower bound, recall 1) "
      "but pays O(n^3) per pair; Greedy-Sort trades recall for precision; "
      "GBDA keeps recall with competitive precision at a fraction of the "
      "cost.\n");
  return 0;
}
