// Molecule similarity search: the bio-informatics scenario of the paper's
// introduction. Builds an AIDS-profile molecule database, runs the offline
// stage (branch index + priors), persists the index, reloads it, and answers
// similarity queries with GBDA, printing the top matches with their
// posterior scores.

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"

using namespace gbda;

int main() {
  // A scaled-down AIDS-like molecule collection (use scale 1.0 for the
  // paper's 1896 graphs).
  DatasetProfile profile = AidsProfile(0.05);
  Result<GeneratedDataset> dataset = GenerateDataset(profile);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("Molecule database: %zu graphs, max %zu atoms, avg degree %.2f\n",
              dataset->db.size(), dataset->db.MaxVertices(),
              dataset->db.Stats().avg_degree);

  // Offline stage: branch multisets + GBD prior (GMM) + GED prior (Jeffreys).
  GbdaIndexOptions options;
  options.tau_max = 10;
  options.gbd_prior.num_sample_pairs = 5000;
  options.model_vertex_labels = static_cast<int64_t>(profile.num_vertex_labels);
  options.model_edge_labels = static_cast<int64_t>(profile.num_edge_labels);
  Result<GbdaIndex> index = GbdaIndex::Build(dataset->db, options);
  if (!index.ok()) {
    std::fprintf(stderr, "index: %s\n", index.status().ToString().c_str());
    return 1;
  }
  const OfflineCosts& costs = index->costs();
  std::printf("Offline stage: branches %s, GBD prior %s (%zu pairs), GED "
              "prior %s\n",
              HumanSeconds(costs.branch_seconds).c_str(),
              HumanSeconds(costs.gbd_prior_seconds).c_str(),
              costs.pairs_sampled,
              HumanSeconds(costs.ged_prior_seconds).c_str());

  // Persist and reload, as a production service would at startup.
  const std::string path = "/tmp/gbda_molecules.idx";
  if (Status st = index->SaveToFile(path); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  Result<GbdaIndex> loaded = GbdaIndex::LoadFromFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("Index persisted to %s and reloaded.\n\n", path.c_str());

  // Online stage: Algorithm 1 for a handful of query molecules.
  GbdaSearch search(&dataset->db, &*loaded);
  SearchOptions opts;
  opts.tau_hat = 5;
  opts.gamma = 0.8;
  const size_t num_queries = std::min<size_t>(dataset->queries.size(), 3);
  for (size_t q = 0; q < num_queries; ++q) {
    Result<SearchResult> result = search.Query(dataset->queries[q], opts);
    if (!result.ok()) {
      std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::vector<SearchMatch> matches = result->matches;
    std::sort(matches.begin(), matches.end(),
              [](const SearchMatch& a, const SearchMatch& b) {
                return a.phi_score > b.phi_score;
              });
    std::printf("Query %zu (%zu atoms): %zu candidates in %s, %zu accepted "
                "at tau=%lld, gamma=%.1f\n",
                q, dataset->queries[q].num_vertices(),
                result->candidates_evaluated,
                HumanSeconds(result->seconds).c_str(), matches.size(),
                static_cast<long long>(opts.tau_hat), opts.gamma);
    for (size_t i = 0; i < std::min<size_t>(matches.size(), 5); ++i) {
      const int64_t true_ged = dataset->KnownGedOrFar(q, matches[i].graph_id);
      const std::string truth =
          true_ged < 0 ? "far" : std::to_string(true_ged);
      std::printf("   graph %-5zu GBD=%-3lld Phi=%-8.3f true GED=%s\n",
                  matches[i].graph_id,
                  static_cast<long long>(matches[i].gbd),
                  matches[i].phi_score, truth.c_str());
    }
  }
  return 0;
}
