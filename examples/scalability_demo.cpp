// Scalability demo: the protein-scale motivation of the paper's
// introduction. Generates scale-free graphs of growing size and compares the
// per-query cost of GBDA's O(nd + tau^3) online stage against the
// assignment- and spectral-based estimators.

#include <cstdio>

#include "baselines/baseline_search.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "common/timer.h"
#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"

using namespace gbda;

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::string(argv[1]) == "--full";
  const std::vector<size_t> sizes =
      full ? std::vector<size_t>{1000, 2000, 5000, 10000}
           : std::vector<size_t>{100, 300, 1000};

  TableWriter table({"graph size", "GBDA(t=10)", "greedysort", "seriation",
                     "LSAP"});
  for (size_t n : sizes) {
    DatasetProfile profile = SynProfile(/*scale_free=*/true, {n}, 10, 2);
    Result<GeneratedDataset> dataset = GenerateDataset(profile);
    if (!dataset.ok()) {
      std::fprintf(stderr, "dataset(%zu): %s\n", n,
                   dataset.status().ToString().c_str());
      return 1;
    }
    GbdaIndexOptions options;
    options.tau_max = 10;
    options.gbd_prior.num_sample_pairs = 500;
    options.model_vertex_labels =
        static_cast<int64_t>(profile.num_vertex_labels);
    options.model_edge_labels = static_cast<int64_t>(profile.num_edge_labels);
    Result<GbdaIndex> index = GbdaIndex::Build(dataset->db, options);
    if (!index.ok()) {
      std::fprintf(stderr, "index(%zu): %s\n", n,
                   index.status().ToString().c_str());
      return 1;
    }

    std::vector<std::string> row = {std::to_string(n)};
    {
      GbdaSearch search(&dataset->db, &*index);
      SearchOptions opts;
      opts.tau_hat = 10;
      opts.gamma = 0.9;
      Result<SearchResult> result = search.Query(dataset->queries[0], opts);
      if (!result.ok()) return 1;
      row.push_back(HumanSeconds(result->seconds));
    }
    BaselineSearch baselines(&dataset->db);
    for (BaselineMethod m :
         {BaselineMethod::kGreedySort, BaselineMethod::kSeriation}) {
      WallTimer timer;
      for (size_t g = 0; g < dataset->db.size(); ++g) {
        (void)baselines.Estimate(dataset->queries[0], g, m);
      }
      row.push_back(HumanSeconds(timer.Seconds()));
    }
    // LSAP is O(n^3) per pair; estimate one pair and scale, skipping sizes
    // that would take minutes (the paper's competitors exhaust memory past
    // 20K vertices; time is our small-scale analogue).
    if (n <= (full ? 2000u : 1000u)) {
      WallTimer timer;
      (void)baselines.Estimate(dataset->queries[0], 0, BaselineMethod::kLsap);
      const double per_pair = timer.Seconds();
      row.push_back(
          StrFormat("%s (est.)",
                    HumanSeconds(per_pair *
                                 static_cast<double>(dataset->db.size()))
                        .c_str()));
    } else {
      row.push_back("skipped");
    }
    table.AddRow(row);
  }
  table.Print("Per-query cost vs graph size (scale-free graphs, 10-graph "
              "database; LSAP extrapolated from one pair):");
  std::printf("\nGBDA's per-pair cost is O(nd + tau^3) after the offline "
              "stage, so queries stay interactive at sizes where the "
              "assignment methods take seconds to minutes.\n");
  return 0;
}
