// Scalability demo: the protein-scale motivation of the paper's
// introduction. Generates scale-free graphs of growing size and compares the
// per-query cost of GBDA's O(nd + tau^3) online stage against the
// assignment- and spectral-based estimators. A second section drives the
// serving layer (GbdaService): the same queries as a concurrent batch over
// 1/2/4 worker threads, with the serial GbdaSearch loop as the baseline.

#include <cstdio>

#include "baselines/baseline_search.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "common/timer.h"
#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "service/gbda_service.h"

using namespace gbda;

namespace {

// Serving-layer section: batch the queries through GbdaService at growing
// thread counts and report wall time / QPS next to the serial loop. Results
// are bit-identical at any thread/shard count (see gbda_service.h), so only
// the timing column moves.
int RunServiceSection(bool full) {
  const size_t n = full ? 2000 : 300;
  DatasetProfile profile = SynProfile(/*scale_free=*/true, {n},
                                      /*graphs_per_subset=*/full ? 48 : 24,
                                      /*queries_per_subset=*/8);
  Result<GeneratedDataset> dataset = GenerateDataset(profile);
  if (!dataset.ok()) {
    std::fprintf(stderr, "service dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  GbdaIndexOptions index_options;
  index_options.tau_max = 10;
  index_options.gbd_prior.num_sample_pairs = 500;
  index_options.model_vertex_labels =
      static_cast<int64_t>(profile.num_vertex_labels);
  index_options.model_edge_labels =
      static_cast<int64_t>(profile.num_edge_labels);
  Result<GbdaIndex> index = GbdaIndex::Build(dataset->db, index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "service index: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  SearchOptions opts;
  opts.tau_hat = 10;
  opts.gamma = 0.9;

  TableWriter table({"engine", "wall", "QPS", "mean latency"});
  {
    GbdaSearch serial(&dataset->db, &*index);
    WallTimer timer;
    for (const Graph& query : dataset->queries) {
      Result<SearchResult> r = serial.Query(query, opts);
      if (!r.ok()) {
        std::fprintf(stderr, "serial query: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }
    const double wall = timer.Seconds();
    table.AddRow({"GbdaSearch (serial loop)", HumanSeconds(wall),
                  StrFormat("%.1f",
                            static_cast<double>(dataset->queries.size()) / wall),
                  HumanSeconds(wall /
                               static_cast<double>(dataset->queries.size()))});
  }
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    ServiceOptions service_options;
    service_options.num_threads = threads;
    GbdaService service(&dataset->db, &*index, service_options);
    WallTimer timer;
    Result<std::vector<SearchResult>> batch =
        service.QueryBatch(dataset->queries, opts);
    if (!batch.ok()) {
      std::fprintf(stderr, "service batch: %s\n",
                   batch.status().ToString().c_str());
      return 1;
    }
    const double wall = timer.Seconds();
    const ServiceStats stats = service.stats();
    table.AddRow({StrFormat("GbdaService (%zu threads, %zu shards)", threads,
                            service.num_shards()),
                  HumanSeconds(wall),
                  StrFormat("%.1f", stats.QueriesPerSecond()),
                  HumanSeconds(stats.MeanLatencySeconds())});
  }
  table.Print(StrFormat("Serving layer: %zu queries as one batch "
                        "(%zu-vertex scale-free graphs, %zu-graph database):",
                        dataset->queries.size(), n, dataset->db.size()));
  std::printf("\nGbdaService fans (query, shard) pairs onto a thread pool "
              "and merges deterministically; with more cores the batch "
              "scales while results stay bit-identical to the serial "
              "scan.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::string(argv[1]) == "--full";
  const std::vector<size_t> sizes =
      full ? std::vector<size_t>{1000, 2000, 5000, 10000}
           : std::vector<size_t>{100, 300, 1000};

  TableWriter table({"graph size", "GBDA(t=10)", "greedysort", "seriation",
                     "LSAP"});
  for (size_t n : sizes) {
    DatasetProfile profile = SynProfile(/*scale_free=*/true, {n}, 10, 2);
    Result<GeneratedDataset> dataset = GenerateDataset(profile);
    if (!dataset.ok()) {
      std::fprintf(stderr, "dataset(%zu): %s\n", n,
                   dataset.status().ToString().c_str());
      return 1;
    }
    GbdaIndexOptions options;
    options.tau_max = 10;
    options.gbd_prior.num_sample_pairs = 500;
    options.model_vertex_labels =
        static_cast<int64_t>(profile.num_vertex_labels);
    options.model_edge_labels = static_cast<int64_t>(profile.num_edge_labels);
    Result<GbdaIndex> index = GbdaIndex::Build(dataset->db, options);
    if (!index.ok()) {
      std::fprintf(stderr, "index(%zu): %s\n", n,
                   index.status().ToString().c_str());
      return 1;
    }

    std::vector<std::string> row = {std::to_string(n)};
    {
      GbdaSearch search(&dataset->db, &*index);
      SearchOptions opts;
      opts.tau_hat = 10;
      opts.gamma = 0.9;
      Result<SearchResult> result = search.Query(dataset->queries[0], opts);
      if (!result.ok()) return 1;
      row.push_back(HumanSeconds(result->seconds));
    }
    BaselineSearch baselines(&dataset->db);
    for (BaselineMethod m :
         {BaselineMethod::kGreedySort, BaselineMethod::kSeriation}) {
      WallTimer timer;
      for (size_t g = 0; g < dataset->db.size(); ++g) {
        (void)baselines.Estimate(dataset->queries[0], g, m);
      }
      row.push_back(HumanSeconds(timer.Seconds()));
    }
    // LSAP is O(n^3) per pair; estimate one pair and scale, skipping sizes
    // that would take minutes (the paper's competitors exhaust memory past
    // 20K vertices; time is our small-scale analogue).
    if (n <= (full ? 2000u : 1000u)) {
      WallTimer timer;
      (void)baselines.Estimate(dataset->queries[0], 0, BaselineMethod::kLsap);
      const double per_pair = timer.Seconds();
      row.push_back(
          StrFormat("%s (est.)",
                    HumanSeconds(per_pair *
                                 static_cast<double>(dataset->db.size()))
                        .c_str()));
    } else {
      row.push_back("skipped");
    }
    table.AddRow(row);
  }
  table.Print("Per-query cost vs graph size (scale-free graphs, 10-graph "
              "database; LSAP extrapolated from one pair):");
  std::printf("\nGBDA's per-pair cost is O(nd + tau^3) after the offline "
              "stage, so queries stay interactive at sizes where the "
              "assignment methods take seconds to minutes.\n\n");
  return RunServiceSection(full);
}
