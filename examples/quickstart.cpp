// Quickstart: the paper's running example end to end.
//
// Builds the Figure 1 graphs, computes their exact GED (Example 1), their
// Graph Branch Distance (Example 2), the conditional probabilities
// Lambda1(tau, phi) of the probabilistic model (Example 7), and finally the
// posterior Pr[GED <= tau_hat | GBD] that drives Algorithm 1.

#include <cstdio>

#include "baselines/astar_ged.h"
#include "core/branch.h"
#include "core/lambda1.h"
#include "graph/graph.h"
#include "graph/label_dict.h"

using namespace gbda;

int main() {
  // --- Build G1 and G2 of Figure 1 -----------------------------------------
  LabelDict vertex_labels, edge_labels;
  const LabelId A = vertex_labels.Intern("A");
  const LabelId B = vertex_labels.Intern("B");
  const LabelId C = vertex_labels.Intern("C");
  const LabelId x = edge_labels.Intern("x");
  const LabelId y = edge_labels.Intern("y");
  const LabelId z = edge_labels.Intern("z");

  Graph g1;  // v1(A)-v2(C):y, v1-v3(B):y, v2-v3:z
  g1.AddVertex(A);
  g1.AddVertex(C);
  g1.AddVertex(B);
  if (!g1.AddEdge(0, 1, y).ok() || !g1.AddEdge(0, 2, y).ok() ||
      !g1.AddEdge(1, 2, z).ok()) {
    std::fprintf(stderr, "building G1 failed\n");
    return 1;
  }

  Graph g2;  // u1(B)-u3(A):x, u1-u4(C):z, u2(A)-u4:y
  g2.AddVertex(B);
  g2.AddVertex(A);
  g2.AddVertex(A);
  g2.AddVertex(C);
  if (!g2.AddEdge(0, 2, x).ok() || !g2.AddEdge(0, 3, z).ok() ||
      !g2.AddEdge(1, 3, y).ok()) {
    std::fprintf(stderr, "building G2 failed\n");
    return 1;
  }

  // --- Example 1: exact GED via A* ------------------------------------------
  Result<ExactGedResult> exact = ExactGed(g1, g2);
  if (!exact.ok()) {
    std::fprintf(stderr, "A* failed: %s\n", exact.status().ToString().c_str());
    return 1;
  }
  std::printf("Exact GED(G1, G2) = %lld   (paper Example 1: 3)\n",
              static_cast<long long>(exact->distance));

  // --- Example 2: Graph Branch Distance --------------------------------------
  const BranchMultiset b1 = ExtractBranches(g1);
  const BranchMultiset b2 = ExtractBranches(g2);
  std::printf("GBD(G1, G2)      = %zu   (paper Example 2: 3)\n",
              GbdFromBranches(b1, b2));
  std::printf("|B_G1| = %zu, |B_G2| = %zu, |intersection| = %zu\n", b1.size(),
              b2.size(), BranchIntersectionSize(b1, b2));

  // --- Example 7: the probabilistic model ------------------------------------
  // |V'1| = max(|V1|, |V2|) = 4, |L_V| = 3, |L_E| = 3.
  const Lambda1Calculator calc(MakeModelParams(4, 3, 3), 4);
  const std::vector<double> lambda1 = calc.Column(/*phi=*/3);
  std::printf("Lambda1(tau=2, phi=3) = %.4f   (paper Example 7: 0.5113)\n",
              lambda1[2]);
  std::printf("Lambda1(tau=3, phi=3) = %.4f   (paper Example 7: 0.5631)\n",
              lambda1[3]);

  // With the paper's assumed ratio Lambda3/Lambda2 = 0.8 (Example 7 assumes
  // this constant since there is no concrete database):
  const double ratio = 0.8;
  double phi_score = 0.0;
  for (int64_t tau = 0; tau <= 3; ++tau) {
    phi_score += lambda1[static_cast<size_t>(tau)] * ratio;
  }
  std::printf("Phi = Pr[GED <= 3 | GBD = 3] = %.4f   (paper: 0.8595)\n",
              phi_score);
  std::printf("Phi >= gamma = 0.8, so G2 joins the search result, as in "
              "Example 7.\n");
  return 0;
}
