#include "graph/graph_database.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gbda {
namespace {

TEST(GraphDatabaseTest, EmptyDatabase) {
  GraphDatabase db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.MaxVertices(), 0u);
  const DatabaseStats stats = db.Stats();
  EXPECT_EQ(stats.num_graphs, 0u);
  EXPECT_EQ(stats.max_vertices, 0u);
}

TEST(GraphDatabaseTest, AddAssignsDenseIds) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  GraphDatabase db = std::move(p.db);
  EXPECT_EQ(db.Add(p.g1), 0u);
  EXPECT_EQ(db.Add(p.g2), 1u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.graph(0).num_vertices(), 3u);
  EXPECT_EQ(db.graph(1).num_vertices(), 4u);
  EXPECT_EQ(db.MaxVertices(), 4u);
}

TEST(GraphDatabaseTest, StatsAggregateAcrossGraphs) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  GraphDatabase db = std::move(p.db);
  db.Add(p.g1);
  db.Add(p.g2);
  const DatabaseStats stats = db.Stats();
  EXPECT_EQ(stats.num_graphs, 2u);
  EXPECT_EQ(stats.max_vertices, 4u);
  EXPECT_EQ(stats.max_edges, 3u);
  // g1: avg degree 2.0; g2: 1.5 -> mean 1.75.
  EXPECT_NEAR(stats.avg_degree, 1.75, 1e-12);
  EXPECT_NEAR(stats.avg_vertices, 3.5, 1e-12);
  EXPECT_EQ(stats.num_vertex_labels, 3u);  // A, B, C
  EXPECT_EQ(stats.num_edge_labels, 3u);    // x, y, z
}

TEST(GraphDatabaseTest, ScaleFreeFlagOnPreferentialAttachment) {
  GraphDatabase db;
  Rng rng(12);
  GeneratorOptions opts;
  opts.num_vertices = 300;
  opts.scale_free = true;
  for (int i = 0; i < 30; ++i) {
    db.Add(*GenerateConnectedGraph(opts, &rng));
  }
  EXPECT_TRUE(db.Stats().scale_free);
}

TEST(GraphDatabaseTest, MemoryGrowsWithContent) {
  GraphDatabase small;
  GraphDatabase big;
  Rng rng(13);
  GeneratorOptions opts;
  opts.num_vertices = 200;
  for (int i = 0; i < 10; ++i) big.Add(*GenerateConnectedGraph(opts, &rng));
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

TEST(GraphDatabaseTest, RemoveGraphsTombstonesInPlace) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  GraphDatabase db = std::move(p.db);
  db.Add(p.g1);
  db.Add(p.g2);
  db.Add(p.g1);
  EXPECT_FALSE(db.has_tombstones());
  EXPECT_EQ(db.num_live(), 3u);

  ASSERT_TRUE(db.RemoveGraphs({1}).ok());
  EXPECT_TRUE(db.has_tombstones());
  EXPECT_EQ(db.size(), 3u);  // slots stay dense; ids are stable
  EXPECT_EQ(db.num_live(), 2u);
  EXPECT_TRUE(db.is_live(0));
  EXPECT_FALSE(db.is_live(1));
  EXPECT_TRUE(db.is_live(2));
  EXPECT_EQ(db.LiveIds(), (std::vector<size_t>{0, 2}));

  // Stats and MaxVertices see only the live graphs (g2, the 4-vertex graph,
  // is gone).
  EXPECT_EQ(db.Stats().num_graphs, 2u);
  EXPECT_EQ(db.MaxVertices(), 3u);

  // Adding after a removal appends a live graph under a fresh stable id.
  EXPECT_EQ(db.Add(p.g2), 3u);
  EXPECT_TRUE(db.is_live(3));
  EXPECT_EQ(db.num_live(), 3u);
  EXPECT_EQ(db.MaxVertices(), 4u);
}

TEST(GraphDatabaseTest, RemoveGraphsValidatesAndIsAtomic) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  GraphDatabase db = std::move(p.db);
  db.Add(p.g1);
  db.Add(p.g2);

  // Out of range: nothing removed.
  EXPECT_EQ(db.RemoveGraphs({0, 7}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.num_live(), 2u);
  // Duplicate in one call: nothing removed.
  EXPECT_EQ(db.RemoveGraphs({1, 1}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.num_live(), 2u);
  // Double removal across calls.
  ASSERT_TRUE(db.RemoveGraphs({1}).ok());
  EXPECT_EQ(db.RemoveGraphs({1}).code(), StatusCode::kNotFound);
  // Mixed valid/invalid stays atomic: 0 must survive the failed call.
  EXPECT_FALSE(db.RemoveGraphs({0, 1}).ok());
  EXPECT_TRUE(db.is_live(0));
}

TEST(GraphDatabaseTest, GraphReferencesSurviveAppends) {
  // The dynamic serving layer publishes snapshots holding Graph pointers
  // while the writer appends; deque storage must keep them valid.
  GraphDatabase db;
  Rng rng(21);
  GeneratorOptions opts;
  opts.num_vertices = 12;
  db.Add(*GenerateConnectedGraph(opts, &rng));
  const Graph* first = &db.graph(0);
  const size_t vertices = first->num_vertices();
  const size_t edges = first->num_edges();
  for (int i = 0; i < 500; ++i) db.Add(*GenerateConnectedGraph(opts, &rng));
  EXPECT_EQ(first, &db.graph(0));
  EXPECT_EQ(first->num_vertices(), vertices);
  EXPECT_EQ(first->num_edges(), edges);
}

TEST(GraphDatabaseTest, SharedDictionariesAcrossGraphs) {
  GraphDatabase db;
  const LabelId c = db.vertex_labels().Intern("C");
  Graph g1;
  g1.AddVertex(c);
  Graph g2;
  g2.AddVertex(c);
  db.Add(g1);
  db.Add(g2);
  // Both graphs reference the same interned id.
  EXPECT_EQ(db.graph(0).VertexLabel(0), db.graph(1).VertexLabel(0));
  EXPECT_EQ(db.Stats().num_vertex_labels, 1u);
}

}  // namespace
}  // namespace gbda
