#include "core/prefilter.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/astar_ged.h"
#include "common/rng.h"
#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gbda {
namespace {

TEST(FilterProfileTest, ExtractsSortedSummaries) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const FilterProfile prof = BuildFilterProfile(p.g1);
  EXPECT_EQ(prof.num_vertices, 3);
  EXPECT_EQ(prof.num_edges, 3);
  ASSERT_EQ(prof.vertex_labels.size(), 3u);
  ASSERT_EQ(prof.edge_labels.size(), 3u);
  EXPECT_TRUE(std::is_sorted(prof.vertex_labels.begin(),
                             prof.vertex_labels.end()));
  EXPECT_TRUE(std::is_sorted(prof.edge_labels.begin(), prof.edge_labels.end()));
}

TEST(FilterLowerBoundTest, ZeroForIdenticalProfiles) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const FilterProfile a = BuildFilterProfile(p.g1);
  EXPECT_EQ(FilterLowerBound(a, a), 0);
}

TEST(FilterLowerBoundTest, PaperPairIsBoundedByExactGed) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const int64_t lb = FilterLowerBound(BuildFilterProfile(p.g1),
                                      BuildFilterProfile(p.g2));
  EXPECT_GE(lb, 1);
  EXPECT_LE(lb, 3);  // exact GED is 3 (Example 1)
}

class FilterBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FilterBoundSweep, NeverExceedsExactGed) {
  Rng rng(GetParam());
  GeneratorOptions opts;
  opts.num_vertices = 6;
  opts.extra_edges = 3;
  opts.num_vertex_labels = 3;
  opts.num_edge_labels = 2;
  for (int trial = 0; trial < 8; ++trial) {
    opts.num_vertices = 4 + static_cast<size_t>(rng.UniformInt(0, 3));
    Result<Graph> a = GenerateConnectedGraph(opts, &rng);
    opts.num_vertices = 4 + static_cast<size_t>(rng.UniformInt(0, 3));
    Result<Graph> b = GenerateConnectedGraph(opts, &rng);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    Result<int64_t> exact = ExactGedValue(*a, *b);
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(FilterLowerBound(BuildFilterProfile(*a), BuildFilterProfile(*b)),
              *exact)
        << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterBoundSweep,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

class PrefilterFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = GrecProfile(0.04);
    profile.seed = 909;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));
    prefilter_ = new Prefilter(&dataset_->db);
  }
  static void TearDownTestSuite() {
    delete prefilter_;
    delete dataset_;
    prefilter_ = nullptr;
    dataset_ = nullptr;
  }
  static GeneratedDataset* dataset_;
  static Prefilter* prefilter_;
};

GeneratedDataset* PrefilterFixture::dataset_ = nullptr;
Prefilter* PrefilterFixture::prefilter_ = nullptr;

TEST_F(PrefilterFixture, NeverDropsATrueMatch) {
  // Soundness: every graph within true GED tau survives the filter.
  for (size_t q = 0; q < dataset_->queries.size(); ++q) {
    for (int64_t tau : {2, 5, 8}) {
      const std::vector<size_t> candidates =
          prefilter_->Candidates(dataset_->queries[q], tau);
      const std::set<size_t> surviving(candidates.begin(), candidates.end());
      for (size_t g : dataset_->TrueMatches(q, tau)) {
        EXPECT_TRUE(surviving.count(g))
            << "query " << q << " tau " << tau << " graph " << g;
      }
    }
  }
}

TEST_F(PrefilterFixture, RemovesCrossFamilyCandidates) {
  // The marker chains force a label-multiset distance above certified_tau,
  // so cross-family graphs never survive at tau <= certified_tau.
  const std::vector<size_t> candidates =
      prefilter_->Candidates(dataset_->queries[0], 5);
  for (size_t g : candidates) {
    EXPECT_EQ(dataset_->query_family[0], dataset_->graph_family[g]);
  }
  EXPECT_LT(candidates.size(), dataset_->db.size());
}

TEST_F(PrefilterFixture, TauZeroKeepsExactProfileMatchesOnly) {
  // The tau_hat = 0 boundary: Passes keeps exactly the graphs whose
  // admissible lower bound is 0 — a graph is always its own candidate, and
  // any profile difference (size or label multiset) is disqualifying.
  for (size_t id : {size_t{0}, dataset_->db.size() / 2}) {
    const FilterProfile self = BuildFilterProfile(dataset_->db.graph(id));
    EXPECT_TRUE(prefilter_->Passes(self, id, 0));
    const std::vector<size_t> candidates =
        prefilter_->Candidates(dataset_->db.graph(id), 0);
    std::set<size_t> surviving(candidates.begin(), candidates.end());
    EXPECT_TRUE(surviving.count(id));
    for (size_t g : candidates) {
      EXPECT_EQ(FilterLowerBound(self, BuildFilterProfile(dataset_->db.graph(g))),
                0)
          << "graph " << g;
    }
  }
  // Cross-family pairs have marker-forced label distance > 0, so they can
  // never pass at tau 0.
  const FilterProfile query_profile =
      BuildFilterProfile(dataset_->queries[0]);
  for (size_t g = 0; g < dataset_->db.size(); ++g) {
    if (dataset_->graph_family[g] != dataset_->query_family[0]) {
      EXPECT_FALSE(prefilter_->Passes(query_profile, g, 0)) << "graph " << g;
    }
  }
}

TEST_F(PrefilterFixture, MonotoneInTau) {
  const std::vector<size_t> tight =
      prefilter_->Candidates(dataset_->queries[0], 2);
  const std::vector<size_t> loose =
      prefilter_->Candidates(dataset_->queries[0], 9);
  const std::set<size_t> loose_set(loose.begin(), loose.end());
  for (size_t g : tight) EXPECT_TRUE(loose_set.count(g));
}

TEST_F(PrefilterFixture, SearchWithPrefilterKeepsTrueMatches) {
  GbdaIndexOptions options;
  options.tau_max = 10;
  options.gbd_prior.num_sample_pairs = 1000;
  Result<GbdaIndex> index = GbdaIndex::Build(dataset_->db, options);
  ASSERT_TRUE(index.ok());
  GbdaSearch search(&dataset_->db, &*index);

  SearchOptions plain;
  plain.tau_hat = 6;
  plain.gamma = 0.5;
  SearchOptions filtered = plain;
  filtered.use_prefilter = true;

  for (size_t q = 0; q < std::min<size_t>(dataset_->queries.size(), 3); ++q) {
    Result<SearchResult> a = search.Query(dataset_->queries[q], plain);
    Result<SearchResult> b = search.Query(dataset_->queries[q], filtered);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // The filtered result is a subset of the plain result...
    std::set<size_t> plain_ids;
    for (const SearchMatch& m : a->matches) plain_ids.insert(m.graph_id);
    for (const SearchMatch& m : b->matches) {
      EXPECT_TRUE(plain_ids.count(m.graph_id));
    }
    // ...that still contains every accepted TRUE match.
    const std::vector<size_t> truth = dataset_->TrueMatches(q, plain.tau_hat);
    std::set<size_t> filtered_ids;
    for (const SearchMatch& m : b->matches) filtered_ids.insert(m.graph_id);
    for (size_t g : truth) {
      if (plain_ids.count(g)) {
        EXPECT_TRUE(filtered_ids.count(g)) << "query " << q << " graph " << g;
      }
    }
    EXPECT_EQ(b->candidates_evaluated + b->prefiltered_out,
              dataset_->db.size());
    EXPECT_GT(b->prefiltered_out, 0u);
  }
}

TEST_F(PrefilterFixture, ReportsMemory) {
  EXPECT_GT(prefilter_->MemoryBytes(), 0u);
  EXPECT_EQ(prefilter_->size(), dataset_->db.size());
}

}  // namespace
}  // namespace gbda
