// Protocol battery for the wire codec (src/net/codec.h): round-trips for
// every message type, the exhaustive truncation sweep (every strict prefix
// of every frame and every strict prefix of every payload must fail or wait
// — never parse, never crash), hostile declared lengths, CRC bit-flip
// rejection, trailing-byte rejection and out-of-domain enum rejection —
// the same hardening contract as the artifact loaders (index_io_test.cc).

#include "net/codec.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.h"

namespace gbda::net {
namespace {

Graph SampleGraph() {
  Graph g;
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddVertex(1);
  g.AddVertex(3);
  EXPECT_TRUE(g.AddEdge(0, 1, 1).ok());
  EXPECT_TRUE(g.AddEdge(1, 2, 2).ok());
  EXPECT_TRUE(g.AddEdge(2, 3, 1).ok());
  return g;
}

SearchOptions SampleOptions() {
  SearchOptions options;
  options.tau_hat = 7;
  options.gamma = 0.25;
  options.variant = GbdaVariant::kAverageSize;
  options.vgbd_w = 1.5;
  options.v1_sample_alpha = 3;
  options.seed = 42;
  options.use_prefilter = true;
  options.topk_early_termination = true;
  options.approximate = true;
  options.search_window_size = 96;
  return options;
}

TopKRequest SampleTopKRequest() {
  TopKRequest msg;
  msg.request_id = 11;
  msg.k = 5;
  msg.deadline_ms = 250;
  msg.options = SampleOptions();
  msg.query = SampleGraph();
  return msg;
}

TopKResponse SampleTopKResponse() {
  TopKResponse msg;
  msg.request_id = 12;
  msg.status = WireStatus::kOk;
  msg.generation = 9;
  msg.candidates_evaluated = 100;
  msg.prefiltered_out = 40;
  msg.pruned_by_bound = 25;
  msg.candidates_visited = 33;
  msg.verified_count = 75;
  msg.queue_micros = 314;
  msg.batch_size = 4;
  msg.admission_micros = 7;
  msg.batch_micros = 42;
  msg.scan_micros = 2718;
  msg.matches.push_back({3, 0.875, 2});
  msg.matches.push_back({17, 0.25, 5});
  return msg;
}

MutateRequest SampleMutateRequest() {
  MutateRequest msg;
  msg.request_id = 13;
  msg.op = MutationOp::kAddGraphs;
  msg.deadline_ms = 500;
  msg.graphs.push_back(SampleGraph());
  msg.graphs.push_back(Graph());
  msg.ids = {4, 9};
  msg.label = "carbon";
  return msg;
}

MutateResponse SampleMutateResponse() {
  MutateResponse msg;
  msg.request_id = 14;
  msg.status = WireStatus::kInvalidRequest;
  msg.message = "unknown id";
  msg.generation = 6;
  msg.assigned_ids = {21, 22};
  msg.label_id = 8;
  return msg;
}

StatsResponse SampleStatsResponse() {
  StatsResponse msg;
  msg.request_id = 15;
  msg.stats.connections_opened = 3;
  msg.stats.frames_received = 120;
  msg.stats.requests_accepted = 100;
  msg.stats.rejected_overloaded = 7;
  msg.stats.batches_executed = 30;
  msg.stats.batch_size_histogram = {20, 8, 2};
  // Four per-stage summaries in obs::QueryStage order (v3).
  for (uint64_t s = 0; s < 4; ++s) {
    WireStageStats stage;
    stage.count = 100 + s;
    stage.sum_micros = 5000 * (s + 1);
    stage.min_micros = s;
    stage.max_micros = 900 + s;
    stage.p50_micros = 40 + s;
    stage.p99_micros = 400 + s;
    stage.p999_micros = 800 + s;
    msg.stats.stage_latency.push_back(stage);
  }
  return msg;
}

/// Every message type, encoded as a complete frame. The protocol battery
/// iterates this list so adding a message type without extending the sweep
/// is impossible (the count assertion below fails).
std::vector<std::pair<std::string, std::string>> AllFrames() {
  std::vector<std::pair<std::string, std::string>> frames;
  frames.emplace_back("ping request", EncodePingRequest({21}));
  frames.emplace_back("ping response", EncodePingResponse({22}));
  frames.emplace_back("topk request", EncodeTopKRequest(SampleTopKRequest()));
  frames.emplace_back("topk response",
                      EncodeTopKResponse(SampleTopKResponse()));
  frames.emplace_back("mutate request",
                      EncodeMutateRequest(SampleMutateRequest()));
  frames.emplace_back("mutate response",
                      EncodeMutateResponse(SampleMutateResponse()));
  frames.emplace_back("stats request", EncodeStatsRequest({23}));
  frames.emplace_back("stats response",
                      EncodeStatsResponse(SampleStatsResponse()));
  return frames;
}

/// Decodes a payload as its message type; returns the decode status.
Status DecodeAs(MessageType type, std::string_view payload) {
  switch (type) {
    case MessageType::kPingRequest:
      return DecodePingRequest(payload).status();
    case MessageType::kPingResponse:
      return DecodePingResponse(payload).status();
    case MessageType::kTopKRequest:
      return DecodeTopKRequest(payload).status();
    case MessageType::kTopKResponse:
      return DecodeTopKResponse(payload).status();
    case MessageType::kMutateRequest:
      return DecodeMutateRequest(payload).status();
    case MessageType::kMutateResponse:
      return DecodeMutateResponse(payload).status();
    case MessageType::kStatsRequest:
      return DecodeStatsRequest(payload).status();
    case MessageType::kStatsResponse:
      return DecodeStatsResponse(payload).status();
  }
  return Status::Internal("unreachable");
}

/// Feeds `bytes` to a fresh decoder and returns the first Next() result.
Result<std::optional<Frame>> FeedOnce(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  return decoder.Next();
}

// ---------------------------------------------------------------------------
// Round-trips
// ---------------------------------------------------------------------------

TEST(NetCodecTest, FrameRoundTripsEveryMessageType) {
  const auto frames = AllFrames();
  ASSERT_EQ(frames.size(), static_cast<size_t>(kMaxMessageType));
  for (const auto& [name, bytes] : frames) {
    Result<std::optional<Frame>> frame = FeedOnce(bytes);
    ASSERT_TRUE(frame.ok()) << name << ": " << frame.status().ToString();
    ASSERT_TRUE(frame->has_value()) << name;
    EXPECT_TRUE(DecodeAs((*frame)->type, (*frame)->payload).ok()) << name;
  }
}

TEST(NetCodecTest, TopKRequestRoundTripPreservesEveryField) {
  const TopKRequest original = SampleTopKRequest();
  Result<std::optional<Frame>> frame = FeedOnce(EncodeTopKRequest(original));
  ASSERT_TRUE(frame.ok() && frame->has_value());
  Result<TopKRequest> decoded = DecodeTopKRequest((*frame)->payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, original.request_id);
  EXPECT_EQ(decoded->k, original.k);
  EXPECT_EQ(decoded->deadline_ms, original.deadline_ms);
  EXPECT_EQ(decoded->options.tau_hat, original.options.tau_hat);
  EXPECT_EQ(decoded->options.gamma, original.options.gamma);
  EXPECT_EQ(decoded->options.variant, original.options.variant);
  EXPECT_EQ(decoded->options.vgbd_w, original.options.vgbd_w);
  EXPECT_EQ(decoded->options.v1_sample_alpha, original.options.v1_sample_alpha);
  EXPECT_EQ(decoded->options.seed, original.options.seed);
  EXPECT_EQ(decoded->options.use_prefilter, original.options.use_prefilter);
  EXPECT_EQ(decoded->options.topk_early_termination,
            original.options.topk_early_termination);
  EXPECT_EQ(decoded->options.approximate, original.options.approximate);
  EXPECT_EQ(decoded->options.search_window_size,
            original.options.search_window_size);
  EXPECT_EQ(decoded->query.num_vertices(), original.query.num_vertices());
  EXPECT_EQ(decoded->query.num_edges(), original.query.num_edges());
  EXPECT_EQ(decoded->query.SortedEdges(), original.query.SortedEdges());
}

TEST(NetCodecTest, TopKResponseRoundTripPreservesMatchesBitExactly) {
  const TopKResponse original = SampleTopKResponse();
  Result<std::optional<Frame>> frame = FeedOnce(EncodeTopKResponse(original));
  ASSERT_TRUE(frame.ok() && frame->has_value());
  Result<TopKResponse> decoded = DecodeTopKResponse((*frame)->payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->generation, original.generation);
  EXPECT_EQ(decoded->candidates_evaluated, original.candidates_evaluated);
  EXPECT_EQ(decoded->candidates_visited, original.candidates_visited);
  EXPECT_EQ(decoded->verified_count, original.verified_count);
  EXPECT_EQ(decoded->queue_micros, original.queue_micros);
  EXPECT_EQ(decoded->batch_size, original.batch_size);
  EXPECT_EQ(decoded->admission_micros, original.admission_micros);
  EXPECT_EQ(decoded->batch_micros, original.batch_micros);
  EXPECT_EQ(decoded->scan_micros, original.scan_micros);
  ASSERT_EQ(decoded->matches.size(), original.matches.size());
  for (size_t i = 0; i < original.matches.size(); ++i) {
    EXPECT_EQ(decoded->matches[i].graph_id, original.matches[i].graph_id);
    EXPECT_EQ(decoded->matches[i].phi_score, original.matches[i].phi_score);
    EXPECT_EQ(decoded->matches[i].gbd, original.matches[i].gbd);
  }
}

TEST(NetCodecTest, MutateRequestRoundTripPreservesGraphsIdsAndLabel) {
  const MutateRequest original = SampleMutateRequest();
  Result<std::optional<Frame>> frame = FeedOnce(EncodeMutateRequest(original));
  ASSERT_TRUE(frame.ok() && frame->has_value());
  Result<MutateRequest> decoded = DecodeMutateRequest((*frame)->payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, original.op);
  ASSERT_EQ(decoded->graphs.size(), original.graphs.size());
  EXPECT_EQ(decoded->graphs[0].SortedEdges(), original.graphs[0].SortedEdges());
  EXPECT_EQ(decoded->graphs[1].num_vertices(), 0u);
  EXPECT_EQ(decoded->ids, original.ids);
  EXPECT_EQ(decoded->label, original.label);
}

// ---------------------------------------------------------------------------
// Stream reassembly
// ---------------------------------------------------------------------------

TEST(NetCodecTest, ByteAtATimeDeliveryYieldsExactlyOneFrame) {
  const std::string bytes = EncodeTopKRequest(SampleTopKRequest());
  FrameDecoder decoder;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(bytes.data() + i, 1);
    Result<std::optional<Frame>> next = decoder.Next();
    ASSERT_TRUE(next.ok()) << "byte " << i;
    EXPECT_FALSE(next->has_value()) << "frame complete early at byte " << i;
  }
  decoder.Feed(bytes.data() + bytes.size() - 1, 1);
  Result<std::optional<Frame>> next = decoder.Next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ((*next)->type, MessageType::kTopKRequest);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(NetCodecTest, PipelinedFramesDecodeInOrder) {
  std::string bytes = EncodePingRequest({1});
  bytes += EncodeTopKRequest(SampleTopKRequest());
  bytes += EncodeStatsRequest({2});
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  const MessageType expected[] = {MessageType::kPingRequest,
                                  MessageType::kTopKRequest,
                                  MessageType::kStatsRequest};
  for (MessageType type : expected) {
    Result<std::optional<Frame>> next = decoder.Next();
    ASSERT_TRUE(next.ok() && next->has_value());
    EXPECT_EQ((*next)->type, type);
  }
  Result<std::optional<Frame>> done = decoder.Next();
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(done->has_value());
}

// ---------------------------------------------------------------------------
// The truncation sweep
// ---------------------------------------------------------------------------

TEST(NetCodecTest, EveryStrictFramePrefixWaitsOrFailsNeverParses) {
  for (const auto& [name, bytes] : AllFrames()) {
    for (size_t len = 0; len < bytes.size(); ++len) {
      Result<std::optional<Frame>> next = FeedOnce(bytes.substr(0, len));
      // A strict prefix has a complete valid frame only if the cut removed
      // bytes the header still promises — so Next() must either wait for
      // more bytes or (never here: the header itself is valid) fail. It
      // must never produce a frame.
      ASSERT_TRUE(next.ok()) << name << " prefix " << len << ": "
                             << next.status().ToString();
      ASSERT_FALSE(next->has_value()) << name << " prefix " << len;
    }
  }
}

TEST(NetCodecTest, EveryStrictPayloadPrefixFailsToDecode) {
  for (const auto& [name, bytes] : AllFrames()) {
    Result<std::optional<Frame>> whole = FeedOnce(bytes);
    ASSERT_TRUE(whole.ok() && whole->has_value()) << name;
    const Frame& frame = **whole;
    for (size_t len = 0; len < frame.payload.size(); ++len) {
      const Status status =
          DecodeAs(frame.type, std::string_view(frame.payload).substr(0, len));
      EXPECT_FALSE(status.ok()) << name << " payload prefix " << len;
    }
  }
}

TEST(NetCodecTest, TrailingBytesAfterEveryMessageAreRejected) {
  for (const auto& [name, bytes] : AllFrames()) {
    Result<std::optional<Frame>> whole = FeedOnce(bytes);
    ASSERT_TRUE(whole.ok() && whole->has_value()) << name;
    const Frame& frame = **whole;
    const std::string padded = frame.payload + std::string(1, '\0');
    EXPECT_FALSE(DecodeAs(frame.type, padded).ok()) << name;
  }
}

// ---------------------------------------------------------------------------
// Hostile headers
// ---------------------------------------------------------------------------

std::string ValidHeaderWithPayloadLen(uint64_t payload_len) {
  BinaryWriter w;
  w.PutU32(kWireMagic);
  w.PutU32(kWireVersion);
  w.PutU32(static_cast<uint32_t>(MessageType::kPingRequest));
  w.PutU64(payload_len);
  w.PutU32(0);  // CRC never reached: the length check fires first
  return std::move(w).TakeBuffer();
}

TEST(NetCodecTest, OversizedDeclaredLengthIsRejectedBeforeAllocation) {
  for (uint64_t hostile :
       {kMaxPayloadBytes + 1, uint64_t{1} << 48, ~uint64_t{0}}) {
    Result<std::optional<Frame>> next =
        FeedOnce(ValidHeaderWithPayloadLen(hostile));
    EXPECT_FALSE(next.ok()) << "declared length " << hostile;
  }
}

TEST(NetCodecTest, BadMagicVersionAndTypeAreRejected) {
  const std::string good = EncodePingRequest({1});

  std::string bad_magic = good;
  bad_magic[0] ^= 0x01;
  EXPECT_FALSE(FeedOnce(bad_magic).ok());

  std::string bad_version = good;
  bad_version[4] = 0x7f;
  EXPECT_FALSE(FeedOnce(bad_version).ok());

  std::string type_zero = good;
  std::memset(&type_zero[8], 0, 4);
  EXPECT_FALSE(FeedOnce(type_zero).ok());

  std::string type_past_max = good;
  type_past_max[8] = static_cast<char>(kMaxMessageType + 1);
  EXPECT_FALSE(FeedOnce(type_past_max).ok());
}

TEST(NetCodecTest, PayloadBitFlipFailsTheCrc) {
  const std::string good = EncodeTopKRequest(SampleTopKRequest());
  ASSERT_GT(good.size(), kFrameHeaderBytes);
  // Flip one bit in every payload byte position (each its own stream).
  for (size_t pos = kFrameHeaderBytes; pos < good.size(); ++pos) {
    std::string corrupted = good;
    corrupted[pos] ^= 0x20;
    Result<std::optional<Frame>> next = FeedOnce(corrupted);
    EXPECT_FALSE(next.ok()) << "payload byte " << (pos - kFrameHeaderBytes);
  }
}

TEST(NetCodecTest, HeaderCrcFieldBitFlipFailsTheCrc) {
  std::string corrupted = EncodeTopKRequest(SampleTopKRequest());
  corrupted[20] ^= 0x01;  // the payload_crc field itself
  EXPECT_FALSE(FeedOnce(corrupted).ok());
}

// ---------------------------------------------------------------------------
// Hostile payloads (well-framed, malformed bodies)
// ---------------------------------------------------------------------------

TEST(NetCodecTest, StructurallyInvalidGraphIsRejected) {
  // Vertex count 2, one edge referencing vertex 5: DecodeGraph must push the
  // edge through Graph::AddEdge validation and fail.
  BinaryWriter w;
  w.PutU64(77);   // request_id
  w.PutU64(3);    // k
  w.PutU64(0);    // deadline
  EncodeSearchOptions(SearchOptions(), &w);
  w.PutPodVector(std::vector<LabelId>{1, 2});  // two vertices
  std::vector<Graph::EdgeTriple> edges;
  edges.push_back({0, 5, 1});
  w.PutPodVector(edges);
  EXPECT_FALSE(DecodeTopKRequest(w.buffer()).ok());
}

TEST(NetCodecTest, OutOfDomainSearchVariantAndFlagsAreRejected) {
  const TopKRequest msg = SampleTopKRequest();
  Result<std::optional<Frame>> frame = FeedOnce(EncodeTopKRequest(msg));
  ASSERT_TRUE(frame.ok() && frame->has_value());
  std::string payload = (*frame)->payload;
  // SearchOptions layout after the three leading u64s: tau(i64) gamma(f64)
  // variant(u32) ...
  const size_t variant_at = 24 + 8 + 8;
  payload[variant_at] = 0x7f;
  EXPECT_FALSE(DecodeTopKRequest(payload).ok());

  payload = (*frame)->payload;
  const size_t flags_at = variant_at + 4 + 8 + 8 + 8;
  payload[flags_at] = 0x08;  // bit past the three defined flags
  EXPECT_FALSE(DecodeTopKRequest(payload).ok());

  // 0x04 IS defined (approximate mode, wire v2) and must decode.
  payload = (*frame)->payload;
  payload[flags_at] = 0x04;
  Result<TopKRequest> approximate = DecodeTopKRequest(payload);
  ASSERT_TRUE(approximate.ok()) << approximate.status().ToString();
  EXPECT_TRUE(approximate->options.approximate);
  EXPECT_FALSE(approximate->options.use_prefilter);
}

TEST(NetCodecTest, ZeroSearchWindowIsRejected) {
  // A window of 0 could never hold a result; the decoder rejects it at the
  // wire so the serving layers never see one.
  const TopKRequest msg = SampleTopKRequest();
  Result<std::optional<Frame>> frame = FeedOnce(EncodeTopKRequest(msg));
  ASSERT_TRUE(frame.ok() && frame->has_value());
  std::string payload = (*frame)->payload;
  const size_t window_at = 24 + 8 + 8 + 4 + 8 + 8 + 8 + 4;
  const uint64_t zero = 0;
  std::memcpy(&payload[window_at], &zero, sizeof(zero));
  EXPECT_FALSE(DecodeTopKRequest(payload).ok());
}

TEST(NetCodecTest, HostileMatchCountIsRejectedWithoutAllocation) {
  TopKResponse msg = SampleTopKResponse();
  msg.matches.clear();
  Result<std::optional<Frame>> frame = FeedOnce(EncodeTopKResponse(msg));
  ASSERT_TRUE(frame.ok() && frame->has_value());
  std::string payload = (*frame)->payload;
  // The match count is the final u64 of the payload (empty match list).
  ASSERT_GE(payload.size(), 8u);
  const uint64_t hostile = ~uint64_t{0};
  std::memcpy(&payload[payload.size() - 8], &hostile, 8);
  EXPECT_FALSE(DecodeTopKResponse(payload).ok());
}

TEST(NetCodecTest, HostileMutateGraphCountIsRejectedWithoutAllocation) {
  MutateRequest msg;
  msg.op = MutationOp::kRemoveGraphs;
  Result<std::optional<Frame>> frame = FeedOnce(EncodeMutateRequest(msg));
  ASSERT_TRUE(frame.ok() && frame->has_value());
  std::string payload = (*frame)->payload;
  // Layout: request_id u64, op u32, deadline u64, graph count u64.
  const size_t count_at = 8 + 4 + 8;
  const uint64_t hostile = uint64_t{1} << 60;
  std::memcpy(&payload[count_at], &hostile, 8);
  EXPECT_FALSE(DecodeMutateRequest(payload).ok());
}

TEST(NetCodecTest, StatsResponseRoundTripPreservesStageLatency) {
  const StatsResponse original = SampleStatsResponse();
  Result<std::optional<Frame>> frame = FeedOnce(EncodeStatsResponse(original));
  ASSERT_TRUE(frame.ok() && frame->has_value());
  Result<StatsResponse> decoded = DecodeStatsResponse((*frame)->payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->stats.requests_accepted,
            original.stats.requests_accepted);
  EXPECT_EQ(decoded->stats.batch_size_histogram,
            original.stats.batch_size_histogram);
  ASSERT_EQ(decoded->stats.stage_latency.size(),
            original.stats.stage_latency.size());
  for (size_t i = 0; i < original.stats.stage_latency.size(); ++i) {
    const WireStageStats& a = original.stats.stage_latency[i];
    const WireStageStats& b = decoded->stats.stage_latency[i];
    EXPECT_EQ(b.count, a.count);
    EXPECT_EQ(b.sum_micros, a.sum_micros);
    EXPECT_EQ(b.min_micros, a.min_micros);
    EXPECT_EQ(b.max_micros, a.max_micros);
    EXPECT_EQ(b.p50_micros, a.p50_micros);
    EXPECT_EQ(b.p99_micros, a.p99_micros);
    EXPECT_EQ(b.p999_micros, a.p999_micros);
  }
}

TEST(NetCodecTest, HostileStageStatsCountIsRejectedWithoutAllocation) {
  StatsResponse msg = SampleStatsResponse();
  msg.stats.stage_latency.clear();
  Result<std::optional<Frame>> frame = FeedOnce(EncodeStatsResponse(msg));
  ASSERT_TRUE(frame.ok() && frame->has_value());
  std::string payload = (*frame)->payload;
  // The stage count is the final u64 of the payload (empty stage list).
  ASSERT_GE(payload.size(), 8u);
  const uint64_t hostile = ~uint64_t{0};
  std::memcpy(&payload[payload.size() - 8], &hostile, 8);
  EXPECT_FALSE(DecodeStatsResponse(payload).ok());
}

TEST(NetCodecTest, UnknownWireStatusAndMutationOpAreRejected) {
  MutateResponse resp = SampleMutateResponse();
  Result<std::optional<Frame>> frame = FeedOnce(EncodeMutateResponse(resp));
  ASSERT_TRUE(frame.ok() && frame->has_value());
  std::string payload = (*frame)->payload;
  payload[8] = static_cast<char>(kMaxWireStatus + 1);  // status after id
  EXPECT_FALSE(DecodeMutateResponse(payload).ok());

  MutateRequest req = SampleMutateRequest();
  Result<std::optional<Frame>> req_frame =
      FeedOnce(EncodeMutateRequest(req));
  ASSERT_TRUE(req_frame.ok() && req_frame->has_value());
  std::string req_payload = (*req_frame)->payload;
  req_payload[8] = 0;  // op = 0 (reserved)
  EXPECT_FALSE(DecodeMutateRequest(req_payload).ok());
  req_payload[8] = static_cast<char>(kMaxMutationOp + 1);
  EXPECT_FALSE(DecodeMutateRequest(req_payload).ok());
}

TEST(NetCodecTest, DecoderBufferCompactsAcrossManyFrames) {
  // A long-lived connection must not grow the decoder buffer without bound:
  // after many decode cycles the buffered prefix stays bounded by roughly
  // one frame.
  FrameDecoder decoder;
  const std::string bytes = EncodePingRequest({5});
  for (int i = 0; i < 1000; ++i) {
    decoder.Feed(bytes.data(), bytes.size());
    Result<std::optional<Frame>> next = decoder.Next();
    ASSERT_TRUE(next.ok() && next->has_value());
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

}  // namespace
}  // namespace gbda::net
