// Violation under test: defines gtest cases but is not named *_test.cc, so
// the glob in tests/CMakeLists.txt never builds or runs it.
#include <gtest/gtest.h>

TEST(ScanChecks, NeverRuns) { EXPECT_TRUE(true); }
