#!/usr/bin/env python3
"""Regression tests for tools/gbda_lint.py.

Each fixture directory is a miniature repo tree that violates exactly one
invariant; the linter must exit nonzero and name the violation in an
actionable message. The `clean` fixture must pass. Run directly or via
ctest (gbda_lint_fixtures).
"""

import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
LINTER = HERE.parent.parent / "tools" / "gbda_lint.py"

# (fixture dir, expected exit code, substrings that must appear in stderr)
CASES = [
    (
        "layering_violation",
        1,
        ['layering: module "common" includes "core/engine.h"', "module DAG"],
    ),
    (
        "unregistered_test",
        1,
        ["tests: scan_checks.cc defines gtest cases", "_test.cc"],
    ),
    (
        "intrinsics_leak",
        1,
        ["intrinsics:", "src/common/kernels_avx2.cc", "fast_scan.cc"],
    ),
    ("clean", 0, []),
]


def main():
    failures = []
    for fixture, want_exit, want_substrings in CASES:
        proc = subprocess.run(
            [sys.executable, str(LINTER), "--root", str(HERE / fixture)],
            capture_output=True,
            text=True,
        )
        label = f"fixture {fixture!r}"
        if proc.returncode != want_exit:
            failures.append(
                f"{label}: expected exit {want_exit}, got {proc.returncode}\n"
                f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
            )
            continue
        for substring in want_substrings:
            if substring not in proc.stderr:
                failures.append(
                    f"{label}: stderr missing {substring!r}\nstderr: {proc.stderr}"
                )
        # The intrinsics fixture's message must point at the offending file,
        # not merely restate the rule.
        print(f"PASS {label}")

    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"{len(failures)} fixture check(s) failed", file=sys.stderr)
        return 1
    print("all lint fixtures behave as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
