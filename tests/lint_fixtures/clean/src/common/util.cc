int CommonHelper() { return 7; }
