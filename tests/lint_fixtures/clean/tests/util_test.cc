#include <gtest/gtest.h>

TEST(Util, Registered) { EXPECT_TRUE(true); }
