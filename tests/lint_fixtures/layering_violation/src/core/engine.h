#pragma once
int CoreEngineValue();
