#include "core/engine.h"

int CoreEngineValue() { return 42; }
