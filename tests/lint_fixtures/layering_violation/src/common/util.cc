// Violation under test: common is the bottom layer and must not reach up
// into core (gbda_common does not link gbda_core).
#include "core/engine.h"

int CommonHelper() { return CoreEngineValue(); }
