// Violation under test: AVX2 intrinsics outside the cpuid-gated
// src/common/kernels_avx2.cc translation unit.
#include <immintrin.h>

float SumEight(const float* p) {
  __m256 v = _mm256_loadu_ps(p);
  float out[8];
  _mm256_storeu_ps(out, v);
  float total = 0.0f;
  for (float x : out) total += x;
  return total;
}
