#include "math/gmm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace gbda {
namespace {

TEST(GmmTest, FitFailsOnEmptyData) {
  GmmFitOptions opts;
  EXPECT_FALSE(GaussianMixture::Fit({}, opts).ok());
}

TEST(GmmTest, FitFailsOnNonPositiveK) {
  GmmFitOptions opts;
  opts.num_components = 0;
  EXPECT_FALSE(GaussianMixture::Fit({1.0, 2.0}, opts).ok());
}

TEST(GmmTest, RecoversSingleGaussian) {
  Rng rng(5);
  std::vector<double> data;
  for (int i = 0; i < 20000; ++i) data.push_back(rng.Gaussian(4.0, 1.5));
  GmmFitOptions opts;
  opts.num_components = 1;
  Result<GaussianMixture> gmm = GaussianMixture::Fit(data, opts);
  ASSERT_TRUE(gmm.ok()) << gmm.status().ToString();
  ASSERT_EQ(gmm->components().size(), 1u);
  EXPECT_NEAR(gmm->components()[0].mean, 4.0, 0.05);
  EXPECT_NEAR(gmm->components()[0].stddev, 1.5, 0.05);
  EXPECT_NEAR(gmm->components()[0].weight, 1.0, 1e-9);
}

TEST(GmmTest, SeparatesTwoModes) {
  Rng rng(7);
  std::vector<double> data;
  for (int i = 0; i < 10000; ++i) data.push_back(rng.Gaussian(0.0, 1.0));
  for (int i = 0; i < 10000; ++i) data.push_back(rng.Gaussian(20.0, 1.0));
  GmmFitOptions opts;
  opts.num_components = 2;
  Result<GaussianMixture> gmm = GaussianMixture::Fit(data, opts);
  ASSERT_TRUE(gmm.ok());
  double lo = 1e9, hi = -1e9;
  for (const GmmComponent& c : gmm->components()) {
    lo = std::min(lo, c.mean);
    hi = std::max(hi, c.mean);
    EXPECT_NEAR(c.weight, 0.5, 0.05);
  }
  EXPECT_NEAR(lo, 0.0, 0.2);
  EXPECT_NEAR(hi, 20.0, 0.2);
}

TEST(GmmTest, WeightsSumToOne) {
  Rng rng(11);
  std::vector<double> data;
  for (int i = 0; i < 3000; ++i) data.push_back(rng.Gaussian(5.0, 2.0));
  GmmFitOptions opts;
  opts.num_components = 3;
  Result<GaussianMixture> gmm = GaussianMixture::Fit(data, opts);
  ASSERT_TRUE(gmm.ok());
  double total = 0.0;
  for (const GmmComponent& c : gmm->components()) total += c.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GmmTest, DegenerateRepeatedDataRespectsVarianceFloor) {
  std::vector<double> data(500, 3.0);
  GmmFitOptions opts;
  opts.num_components = 2;
  Result<GaussianMixture> gmm = GaussianMixture::Fit(data, opts);
  ASSERT_TRUE(gmm.ok());
  for (const GmmComponent& c : gmm->components()) {
    EXPECT_GE(c.stddev, opts.stddev_floor);
  }
  // Mass should concentrate at 3.
  EXPECT_GT(gmm->IntervalProbability(2.0, 4.0), 0.9);
}

TEST(GmmTest, PdfIntegratesToOneNumerically) {
  Result<GaussianMixture> gmm = GaussianMixture::FromComponents(
      {{0.4, 0.0, 1.0}, {0.6, 5.0, 2.0}});
  ASSERT_TRUE(gmm.ok());
  double integral = 0.0;
  const double step = 0.01;
  for (double x = -20.0; x < 30.0; x += step) integral += gmm->Pdf(x) * step;
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(GmmTest, CdfAndIntervalConsistent) {
  Result<GaussianMixture> gmm = GaussianMixture::FromComponents(
      {{0.5, 1.0, 1.0}, {0.5, 8.0, 1.5}});
  ASSERT_TRUE(gmm.ok());
  EXPECT_NEAR(gmm->IntervalProbability(0.0, 10.0),
              gmm->Cdf(10.0) - gmm->Cdf(0.0), 1e-12);
  EXPECT_EQ(gmm->IntervalProbability(5.0, 5.0), 0.0);
  EXPECT_EQ(gmm->IntervalProbability(6.0, 5.0), 0.0);
}

TEST(GmmTest, FromComponentsValidation) {
  EXPECT_FALSE(GaussianMixture::FromComponents({}).ok());
  EXPECT_FALSE(GaussianMixture::FromComponents({{1.0, 0.0, 0.0}}).ok());
  EXPECT_FALSE(GaussianMixture::FromComponents({{-1.0, 0.0, 1.0}}).ok());
  EXPECT_FALSE(GaussianMixture::FromComponents({{0.0, 0.0, 1.0}}).ok());
  // Weights are renormalised.
  Result<GaussianMixture> gmm =
      GaussianMixture::FromComponents({{2.0, 0.0, 1.0}, {2.0, 1.0, 1.0}});
  ASSERT_TRUE(gmm.ok());
  EXPECT_NEAR(gmm->components()[0].weight, 0.5, 1e-12);
}

TEST(GmmTest, DeterministicForFixedSeed) {
  Rng rng(13);
  std::vector<double> data;
  for (int i = 0; i < 2000; ++i) data.push_back(rng.Gaussian(2.0, 1.0));
  GmmFitOptions opts;
  opts.num_components = 2;
  Result<GaussianMixture> a = GaussianMixture::Fit(data, opts);
  Result<GaussianMixture> b = GaussianMixture::Fit(data, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->components().size(); ++i) {
    EXPECT_DOUBLE_EQ(a->components()[i].mean, b->components()[i].mean);
    EXPECT_DOUBLE_EQ(a->components()[i].stddev, b->components()[i].stddev);
  }
}

}  // namespace
}  // namespace gbda
