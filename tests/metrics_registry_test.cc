// Tests of the process-wide metrics registry (src/obs/metrics_registry.h):
// sharded counter exactness under concurrent writers, gauge semantics,
// find-or-create identity, type-mismatch rejection, collectors, and the
// Prometheus / JSON exposition formats.

#include "obs/metrics_registry.h"

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace gbda::obs {
namespace {

TEST(CounterTest, ConcurrentAddsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(CounterTest, AddAndReset) {
  Counter counter;
  counter.Add(41);
  counter.Increment();
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.25);
  EXPECT_EQ(gauge.Value(), 1.25);
  gauge.Set(-7.0);
  EXPECT_EQ(gauge.Value(), -7.0);
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("reqs_total", "requests");
  ASSERT_NE(a, nullptr);
  a->Add(3);
  Counter* b = registry.GetCounter("reqs_total", "requests");
  EXPECT_EQ(a, b);  // same (name, labels) -> same instrument
  Counter* labeled = registry.GetCounter("reqs_total", "requests",
                                         "shard=\"1\"");
  EXPECT_NE(a, labeled);  // different labels -> distinct point
  EXPECT_EQ(a->Value(), 3u);
}

TEST(MetricsRegistryTest, TypeMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("x", "help"), nullptr);
  EXPECT_EQ(registry.GetGauge("x", "help"), nullptr);
  EXPECT_EQ(registry.GetHistogram("x", "help"), nullptr);
  // Same name with different labels is a fresh key, so a different type is
  // still rejected family-wide only when the key collides.
  ASSERT_NE(registry.GetCounter("x", "help", "l=\"1\""), nullptr);
}

TEST(MetricsRegistryTest, SnapshotGroupsPointsIntoSortedFamilies) {
  MetricsRegistry registry;
  registry.GetCounter("zzz_total", "last")->Add(1);
  registry.GetCounter("aaa_total", "first", "k=\"a\"")->Add(2);
  registry.GetCounter("aaa_total", "first", "k=\"b\"")->Add(3);
  registry.GetGauge("mmm", "middle")->Set(4.0);

  const std::vector<MetricFamily> families = registry.Snapshot();
  ASSERT_EQ(families.size(), 3u);
  EXPECT_EQ(families[0].name, "aaa_total");
  EXPECT_EQ(families[0].points.size(), 2u);
  EXPECT_EQ(families[1].name, "mmm");
  EXPECT_EQ(families[2].name, "zzz_total");
}

TEST(MetricsRegistryTest, CollectorsAppendFamiliesAndUnregister) {
  MetricsRegistry registry;
  {
    CollectorHandle handle(&registry, [](std::vector<MetricFamily>* out) {
      MetricFamily family;
      family.name = "component_metric";
      family.type = MetricType::kCounter;
      MetricPoint point;
      point.value = 7.0;
      family.points.push_back(point);
      out->push_back(std::move(family));
    });
    const std::vector<MetricFamily> families = registry.Snapshot();
    ASSERT_EQ(families.size(), 1u);
    EXPECT_EQ(families[0].name, "component_metric");
    EXPECT_EQ(families[0].points[0].value, 7.0);
  }
  // Handle released: the collector no longer contributes.
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(MetricsRegistryTest, PrometheusRenderContainsFamiliesAndValues) {
  MetricsRegistry registry;
  registry.GetCounter("gbda_requests_total", "Requests served")->Add(42);
  registry.GetGauge("gbda_queue_depth", "Current queue depth")->Set(3.0);
  ConcurrentHistogram* hist = registry.GetHistogram(
      "gbda_latency_micros", "Latency", "stage=\"scan\"");
  ASSERT_NE(hist, nullptr);
  hist->Record(5);
  hist->Record(100);
  hist->Record(100000);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE gbda_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("gbda_requests_total 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gbda_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("gbda_queue_depth 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gbda_latency_micros histogram"),
            std::string::npos);
  EXPECT_NE(text.find("gbda_latency_micros_count{stage=\"scan\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("gbda_latency_micros_sum{stage=\"scan\"} 100105"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  ConcurrentHistogram* hist = registry.GetHistogram("h", "help");
  ASSERT_NE(hist, nullptr);
  for (uint64_t v : {1, 1, 2, 50, 5000}) hist->Record(v);

  const std::string text = registry.RenderPrometheus();
  // Walk every `le=...` bucket line in order; cumulative counts must be
  // non-decreasing and end at the total count on +Inf.
  uint64_t prev = 0;
  size_t pos = 0;
  uint64_t last = 0;
  int lines = 0;
  while ((pos = text.find("h_bucket{le=\"", pos)) != std::string::npos) {
    const size_t value_at = text.find("} ", pos);
    ASSERT_NE(value_at, std::string::npos);
    const uint64_t cumulative =
        std::strtoull(text.c_str() + value_at + 2, nullptr, 10);
    EXPECT_GE(cumulative, prev);
    prev = cumulative;
    last = cumulative;
    ++lines;
    pos = value_at;
  }
  EXPECT_GT(lines, 1);
  EXPECT_EQ(last, 5u);  // +Inf bucket == count
}

TEST(MetricsRegistryTest, JsonRenderContainsQuantiles) {
  MetricsRegistry registry;
  registry.GetCounter("c_total", "help")->Add(5);
  ConcurrentHistogram* hist = registry.GetHistogram("lat", "help");
  for (int i = 1; i <= 100; ++i) hist->Record(static_cast<uint64_t>(i));

  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"c_total\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace gbda::obs
