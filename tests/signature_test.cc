#include "datagen/signature.h"

#include <gtest/gtest.h>

namespace gbda {
namespace {

/// Star with distinct leaf labels: the hub is a modification center.
Graph DistinctStar() {
  Graph g;
  g.AddVertex(1);  // hub
  for (LabelId l = 2; l <= 5; ++l) {
    const uint32_t leaf = g.AddVertex(l);
    (void)g.AddEdge(0, leaf, 1);
  }
  return g;
}

/// Star with identical leaves: the hub is not a modification center.
Graph UniformStar() {
  Graph g;
  g.AddVertex(1);
  for (int i = 0; i < 4; ++i) {
    const uint32_t leaf = g.AddVertex(7);
    (void)g.AddEdge(0, leaf, 3);
  }
  return g;
}

TEST(SignatureTest, ZeroHopsIsOwnLabel) {
  Graph g = DistinctStar();
  EXPECT_EQ(KHopSignature(g, 1, 0), "s0:2");
  EXPECT_EQ(KHopSignature(g, 2, 0), "s0:3");
}

TEST(SignatureTest, DistinguishesDifferentNeighborhoods) {
  Graph g = DistinctStar();
  EXPECT_NE(KHopSignature(g, 1, 1), KHopSignature(g, 2, 1));
}

TEST(SignatureTest, IdenticalContextsShareSignature) {
  Graph g = UniformStar();
  EXPECT_EQ(KHopSignature(g, 1, 2), KHopSignature(g, 2, 2));
}

TEST(SignatureTest, SecondHopMatters) {
  // Path 0-1-2 vs path 0-1-3 where 2 and 3 differ only at hop 2 from 0.
  Graph a;
  a.AddVertex(1);
  a.AddVertex(2);
  a.AddVertex(3);
  (void)a.AddEdge(0, 1, 1);
  (void)a.AddEdge(1, 2, 1);
  Graph b = a;
  ASSERT_TRUE(b.RelabelVertex(2, 9).ok());
  EXPECT_EQ(KHopSignature(a, 0, 1), KHopSignature(b, 0, 1));
  EXPECT_NE(KHopSignature(a, 0, 2), KHopSignature(b, 0, 2));
}

TEST(ModificationCenterTest, DistinctStarHubQualifies) {
  Graph g = DistinctStar();
  EXPECT_TRUE(IsModificationCenter(g, 0, 1));
  EXPECT_TRUE(IsModificationCenter(g, 0, 2));
}

TEST(ModificationCenterTest, UniformStarHubDoesNot) {
  Graph g = UniformStar();
  EXPECT_FALSE(IsModificationCenter(g, 0, 1));
  EXPECT_FALSE(IsModificationCenter(g, 0, 2));
}

TEST(ModificationCenterTest, LeafIsTriviallyACenter) {
  // A vertex with a single neighbour has pairwise-distinct signatures
  // vacuously.
  Graph g = DistinctStar();
  EXPECT_TRUE(IsModificationCenter(g, 1, 2));
}

TEST(ModificationCenterTest, FindFiltersMinDegree) {
  Graph g = DistinctStar();
  const std::vector<uint32_t> centers = FindModificationCenters(g, 4, 2);
  ASSERT_EQ(centers.size(), 1u);
  EXPECT_EQ(centers[0], 0u);
  EXPECT_TRUE(FindModificationCenters(g, 5, 2).empty());
  const std::vector<uint32_t> all = FindModificationCenters(g, 1, 2);
  EXPECT_EQ(all.size(), 5u);  // hub + leaves (leaves vacuously qualify)
  EXPECT_TRUE(FindModificationCenters(UniformStar(), 4, 2).empty());
}

}  // namespace
}  // namespace gbda
