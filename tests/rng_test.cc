#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace gbda {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t x = rng.UniformInt(3, 7);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 7);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);  // every value in [3,7] hit
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(13);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(rng.UniformInt(0, 9))];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 4 * std::sqrt(n / 10.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(31);
  for (size_t k : {1u, 5u, 50u, 99u, 100u}) {
    std::vector<size_t> s = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (size_t x : s) EXPECT_LT(x, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementClampsOversizedK) {
  Rng rng(37);
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 10).size(), 5u);
}

TEST(RngTest, SmallSampleFromLargeUniverse) {
  Rng rng(41);
  std::vector<size_t> s = rng.SampleWithoutReplacement(1u << 30, 10);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(43);
  std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.25);
}

TEST(RngTest, WeightedIndexAllZeroReturnsSize) {
  Rng rng(47);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(w), w.size());
  EXPECT_EQ(rng.WeightedIndex({}), 0u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.Fork();
  // The child is deterministic given the parent state...
  Rng parent2(53);
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.NextUint64(), child2.NextUint64());
}

}  // namespace
}  // namespace gbda
