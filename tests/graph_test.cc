#include "graph/graph.h"

#include <gtest/gtest.h>

namespace gbda {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_DOUBLE_EQ(g.AvgDegree(), 0.0);
}

TEST(GraphTest, AddVerticesAndEdges) {
  Graph g;
  EXPECT_EQ(g.AddVertex(1), 0u);
  EXPECT_EQ(g.AddVertex(2), 1u);
  EXPECT_EQ(g.AddVertex(3), 2u);
  ASSERT_TRUE(g.AddEdge(0, 1, 5).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, 6).ok());
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));  // undirected
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_EQ(*g.EdgeLabel(0, 1), 5u);
  EXPECT_EQ(*g.EdgeLabel(0, 2), 6u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(GraphTest, RejectsSelfLoopsAndParallelEdges) {
  Graph g = Graph::WithVertices(3, 1);
  EXPECT_EQ(g.AddEdge(1, 1, 2).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(g.AddEdge(0, 1, 2).ok());
  EXPECT_EQ(g.AddEdge(0, 1, 3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(1, 0, 3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, RejectsOutOfRangeEndpoints) {
  Graph g = Graph::WithVertices(2, 1);
  EXPECT_EQ(g.AddEdge(0, 5, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.RelabelVertex(9, 1).code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(g.EdgeLabel(0, 9).ok());
  EXPECT_FALSE(g.HasEdge(0, 9));
}

TEST(GraphTest, RelabelVertexAndEdge) {
  Graph g = Graph::WithVertices(2, 1);
  ASSERT_TRUE(g.AddEdge(0, 1, 7).ok());
  ASSERT_TRUE(g.RelabelVertex(0, 9).ok());
  EXPECT_EQ(g.VertexLabel(0), 9u);
  ASSERT_TRUE(g.RelabelEdge(1, 0, 8).ok());
  EXPECT_EQ(*g.EdgeLabel(0, 1), 8u);
  EXPECT_EQ(*g.EdgeLabel(1, 0), 8u);  // both directions updated
  EXPECT_EQ(g.RelabelEdge(0, 1, 8).code(), StatusCode::kOk);
  Graph h = Graph::WithVertices(3, 1);
  EXPECT_EQ(h.RelabelEdge(0, 1, 2).code(), StatusCode::kNotFound);
}

TEST(GraphTest, RemoveEdge) {
  Graph g = Graph::WithVertices(3, 1);
  ASSERT_TRUE(g.AddEdge(0, 1, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 3).ok());
  ASSERT_TRUE(g.RemoveEdge(0, 1).ok());
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.RemoveEdge(0, 1).code(), StatusCode::kNotFound);
}

TEST(GraphTest, RemoveIsolatedVertexSwapsLast) {
  Graph g;
  g.AddVertex(10);  // 0, will become isolated
  g.AddVertex(20);  // 1
  g.AddVertex(30);  // 2 (last, swapped into 0)
  ASSERT_TRUE(g.AddEdge(1, 2, 7).ok());
  EXPECT_EQ(g.RemoveIsolatedVertex(1).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(g.RemoveIsolatedVertex(0).ok());
  EXPECT_EQ(g.num_vertices(), 2u);
  // Old vertex 2 (label 30) now sits at index 0; the edge follows it.
  EXPECT_EQ(g.VertexLabel(0), 30u);
  EXPECT_EQ(g.VertexLabel(1), 20u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_EQ(*g.EdgeLabel(0, 1), 7u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, RemoveLastIsolatedVertex) {
  Graph g;
  g.AddVertex(1);
  g.AddVertex(2);
  ASSERT_TRUE(g.RemoveIsolatedVertex(1).ok());
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.VertexLabel(0), 1u);
}

TEST(GraphTest, NeighborsAreSortedByIndex) {
  Graph g = Graph::WithVertices(5, 1);
  ASSERT_TRUE(g.AddEdge(2, 4, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 1, 1).ok());
  const auto& nbrs = g.Neighbors(2);
  for (size_t i = 1; i < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i - 1].to, nbrs[i].to);
  }
}

TEST(GraphTest, ConnectivityDetection) {
  Graph g = Graph::WithVertices(4, 1);
  ASSERT_TRUE(g.AddEdge(0, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 1).ok());
  EXPECT_FALSE(g.IsConnected());
  ASSERT_TRUE(g.AddEdge(1, 2, 1).ok());
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, AvgDegreeAndHistogram) {
  Graph g = Graph::WithVertices(4, 1);
  ASSERT_TRUE(g.AddEdge(0, 1, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 3, 1).ok());
  EXPECT_DOUBLE_EQ(g.AvgDegree(), 1.5);  // 2*3/4
  const auto hist = g.DegreeHistogram();
  EXPECT_EQ(hist.at(1), 3u);
  EXPECT_EQ(hist.at(3), 1u);
}

TEST(GraphTest, SortedEdgesAndIdentity) {
  Graph g = Graph::WithVertices(3, 1);
  ASSERT_TRUE(g.AddEdge(2, 0, 5).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, 4).ok());
  const auto edges = g.SortedEdges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].u, 0u);
  EXPECT_EQ(edges[0].v, 1u);
  EXPECT_EQ(edges[0].label, 4u);
  EXPECT_EQ(edges[1].v, 2u);

  Graph h = Graph::WithVertices(3, 1);
  ASSERT_TRUE(h.AddEdge(0, 1, 4).ok());
  ASSERT_TRUE(h.AddEdge(0, 2, 5).ok());
  EXPECT_TRUE(g.IdenticalTo(h));
  ASSERT_TRUE(h.RelabelEdge(0, 1, 9).ok());
  EXPECT_FALSE(g.IdenticalTo(h));
}

TEST(GraphTest, MemoryBytesGrowsWithContent) {
  Graph small = Graph::WithVertices(2, 1);
  Graph big = Graph::WithVertices(1000, 1);
  for (uint32_t i = 1; i < 1000; ++i) {
    ASSERT_TRUE(big.AddEdge(i - 1, i, 1).ok());
  }
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

}  // namespace
}  // namespace gbda
