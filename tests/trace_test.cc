// Tests of per-query trace plumbing (src/obs/trace.h): span slots and
// totals, the process-wide config knobs, the sampling stride, and the
// slow-query threshold/format. Trace state is process-global, so every test
// restores the config it found.

#include "obs/trace.h"

#include <string>

#include "gtest/gtest.h"

namespace gbda::obs {
namespace {

// Saves the global trace config on construction and restores it on
// destruction, so tests can flip knobs without leaking state.
class ScopedTraceConfig {
 public:
  ScopedTraceConfig() : saved_(GetTraceConfig()) {}
  ~ScopedTraceConfig() { SetTraceConfig(saved_); }

 private:
  TraceConfig saved_;
};

TEST(TraceTest, StageNamesMatchPipelineOrder) {
  EXPECT_STREQ(QueryStageName(QueryStage::kAdmission), "admission");
  EXPECT_STREQ(QueryStageName(QueryStage::kQueue), "queue");
  EXPECT_STREQ(QueryStageName(QueryStage::kBatch), "batch");
  EXPECT_STREQ(QueryStageName(QueryStage::kScan), "scan");
}

TEST(TraceTest, SpansDefaultToZeroAndSumExactly) {
  TraceSpans spans;
  EXPECT_EQ(spans.TotalMicros(), 0u);
  for (int s = 0; s < kNumQueryStages; ++s) {
    EXPECT_EQ(spans.Get(static_cast<QueryStage>(s)), 0u);
  }
  spans.Set(QueryStage::kAdmission, 3);
  spans.Set(QueryStage::kQueue, 40);
  spans.Set(QueryStage::kBatch, 500);
  spans.Set(QueryStage::kScan, 6000);
  EXPECT_EQ(spans.Get(QueryStage::kQueue), 40u);
  EXPECT_EQ(spans.TotalMicros(), 6543u);
  // Overwriting a slot replaces, not accumulates.
  spans.Set(QueryStage::kQueue, 1);
  EXPECT_EQ(spans.TotalMicros(), 6504u);
}

TEST(TraceTest, ConfigRoundTripsAndNormalizesZeroStride) {
  ScopedTraceConfig restore;
  TraceConfig config;
  config.enabled = true;
  config.sample_every = 7;
  config.slow_query_micros = 2500;
  SetTraceConfig(config);
  const TraceConfig got = GetTraceConfig();
  EXPECT_TRUE(got.enabled);
  EXPECT_EQ(got.sample_every, 7u);
  EXPECT_EQ(got.slow_query_micros, 2500u);

  config.sample_every = 0;  // invalid stride snaps to 1 (sample everything)
  SetTraceConfig(config);
  EXPECT_EQ(GetTraceConfig().sample_every, 1u);
}

TEST(TraceTest, DisabledTracingNeverSamples) {
  ScopedTraceConfig restore;
  TraceConfig config;
  config.enabled = false;
  SetTraceConfig(config);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(TraceSampled());
}

TEST(TraceTest, EnabledUnitStrideAlwaysSamples) {
  ScopedTraceConfig restore;
  TraceConfig config;
  config.enabled = true;
  config.sample_every = 1;
  SetTraceConfig(config);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(TraceSampled());
}

TEST(TraceTest, StrideSamplesExactlyOneInN) {
  ScopedTraceConfig restore;
  TraceConfig config;
  config.enabled = true;
  config.sample_every = 3;
  SetTraceConfig(config);
  // The sampling clock is global and keeps its phase, but over any window of
  // k*N consecutive calls exactly k land on the stride.
  int sampled = 0;
  for (int i = 0; i < 300; ++i) sampled += TraceSampled() ? 1 : 0;
  EXPECT_EQ(sampled, 100);
}

TEST(TraceTest, SlowQueryLogFollowsThresholdKnob) {
  ScopedTraceConfig restore;
  TraceConfig config = GetTraceConfig();
  config.slow_query_micros = 0;
  SetTraceConfig(config);
  EXPECT_FALSE(SlowQueryLogEnabled());

  config.slow_query_micros = 1000;
  SetTraceConfig(config);
  EXPECT_TRUE(SlowQueryLogEnabled());

  TraceSpans spans;
  spans.Set(QueryStage::kScan, 999);
  EXPECT_FALSE(MaybeLogSlowQuery(999, spans, 0, 0, 1));   // under threshold
  spans.Set(QueryStage::kScan, 1000);
  EXPECT_TRUE(MaybeLogSlowQuery(1000, spans, 0, 0, 1));   // at threshold
  EXPECT_TRUE(MaybeLogSlowQuery(50000, spans, 12, 34, 8));

  config.slow_query_micros = 0;
  SetTraceConfig(config);
  EXPECT_FALSE(MaybeLogSlowQuery(50000, spans, 0, 0, 1));  // disabled again
}

TEST(TraceTest, FormatSlowQueryNamesEveryStageAndCounter) {
  TraceSpans spans;
  spans.Set(QueryStage::kAdmission, 1);
  spans.Set(QueryStage::kQueue, 22);
  spans.Set(QueryStage::kBatch, 333);
  spans.Set(QueryStage::kScan, 4444);
  const std::string line = FormatSlowQuery(4800, spans, 17, 256, 4);
  EXPECT_NE(line.find("slow query:"), std::string::npos);
  EXPECT_NE(line.find("total=4800us"), std::string::npos);
  EXPECT_NE(line.find("admission=1us"), std::string::npos);
  EXPECT_NE(line.find("queue=22us"), std::string::npos);
  EXPECT_NE(line.find("batch=333us"), std::string::npos);
  EXPECT_NE(line.find("scan=4444us"), std::string::npos);
  EXPECT_NE(line.find("pruned_by_bound=17"), std::string::npos);
  EXPECT_NE(line.find("candidates_visited=256"), std::string::npos);
  EXPECT_NE(line.find("batch_size=4"), std::string::npos);
}

}  // namespace
}  // namespace gbda::obs
