#include "eval/experiment.h"

#include <gtest/gtest.h>

namespace gbda {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Large enough that the GBD prior concentrates away from the match
    // range (the regime the method is designed for).
    DatasetProfile profile = FingerprintProfile(0.08);
    profile.seed = 55;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));

    GbdPriorOptions prior;
    prior.num_sample_pairs = 1500;
    Result<std::unique_ptr<ExperimentRunner>> runner =
        ExperimentRunner::Create(dataset_, /*index_tau_max=*/10, prior);
    ASSERT_TRUE(runner.ok()) << runner.status().ToString();
    runner_ = runner->release();
  }
  static void TearDownTestSuite() {
    delete runner_;
    delete dataset_;
    runner_ = nullptr;
    dataset_ = nullptr;
  }
  static GeneratedDataset* dataset_;
  static ExperimentRunner* runner_;
};

GeneratedDataset* ExperimentTest::dataset_ = nullptr;
ExperimentRunner* ExperimentTest::runner_ = nullptr;

TEST_F(ExperimentTest, MethodNamesAreStable) {
  EXPECT_STREQ(MethodName(Method::kGbda), "GBDA");
  EXPECT_STREQ(MethodName(Method::kGbdaV1), "GBDA-V1");
  EXPECT_STREQ(MethodName(Method::kGbdaV2), "GBDA-V2");
  EXPECT_STREQ(MethodName(Method::kLsap), "LSAP");
  EXPECT_STREQ(MethodName(Method::kGreedySort), "greedysort");
  EXPECT_STREQ(MethodName(Method::kSeriation), "seriation");
}

TEST_F(ExperimentTest, AllMethodsProduceMetricsInRange) {
  for (Method m : {Method::kGbda, Method::kGbdaV1, Method::kGbdaV2,
                   Method::kLsap, Method::kGreedySort, Method::kSeriation}) {
    ExperimentConfig config;
    config.method = m;
    config.tau_hat = 5;
    config.gamma = 0.8;
    Result<MethodMetrics> metrics = runner_->Run(config);
    ASSERT_TRUE(metrics.ok()) << MethodName(m) << ": "
                              << metrics.status().ToString();
    EXPECT_GE(metrics->precision, 0.0);
    EXPECT_LE(metrics->precision, 1.0);
    EXPECT_GE(metrics->recall, 0.0);
    EXPECT_LE(metrics->recall, 1.0);
    EXPECT_GE(metrics->f1, 0.0);
    EXPECT_LE(metrics->f1, 1.0);
    EXPECT_GE(metrics->avg_query_seconds, 0.0);
    EXPECT_EQ(metrics->num_queries, dataset_->queries.size());
  }
}

TEST_F(ExperimentTest, LsapAchievesTotalRecall) {
  // The defining property of the LSAP baseline (Section VII-C): its lower
  // bound never prunes a true match, so recall is always 100%.
  for (int64_t tau : {1, 4, 8, 10}) {
    ExperimentConfig config;
    config.method = Method::kLsap;
    config.tau_hat = tau;
    Result<MethodMetrics> metrics = runner_->Run(config);
    ASSERT_TRUE(metrics.ok());
    EXPECT_DOUBLE_EQ(metrics->recall, 1.0) << "tau=" << tau;
  }
}

TEST_F(ExperimentTest, GbdaBeatsSeriationOnF1) {
  // The paper's headline effectiveness claim, at a moderate threshold.
  ExperimentConfig gbda;
  gbda.method = Method::kGbda;
  gbda.tau_hat = 5;
  gbda.gamma = 0.8;
  ExperimentConfig seriation = gbda;
  seriation.method = Method::kSeriation;
  Result<MethodMetrics> m_gbda = runner_->Run(gbda);
  Result<MethodMetrics> m_ser = runner_->Run(seriation);
  ASSERT_TRUE(m_gbda.ok());
  ASSERT_TRUE(m_ser.ok());
  EXPECT_GE(m_gbda->f1, m_ser->f1 - 0.05);
}

TEST_F(ExperimentTest, OfflineCostsPopulated) {
  const OfflineCosts& costs = runner_->offline_costs();
  EXPECT_GT(costs.gbd_prior_seconds, 0.0);
  EXPECT_GT(costs.ged_prior_seconds, 0.0);
  EXPECT_GT(costs.gbd_prior_bytes, 0u);
  EXPECT_GT(costs.ged_prior_bytes, 0u);
  EXPECT_GT(costs.pairs_sampled, 0u);
}

TEST_F(ExperimentTest, RunRejectsTauBeyondCertifiedGap) {
  ExperimentConfig config;
  config.method = Method::kLsap;
  config.tau_hat = dataset_->profile.certified_gap() + 1;
  EXPECT_FALSE(runner_->Run(config).ok());
}

}  // namespace
}  // namespace gbda
