#include "graph/generators.h"

#include <gtest/gtest.h>

#include <map>

#include "math/stats.h"

namespace gbda {
namespace {

TEST(GeneratorTest, RejectsBadOptions) {
  Rng rng(1);
  GeneratorOptions opts;
  opts.num_vertices = 0;
  EXPECT_FALSE(GenerateConnectedGraph(opts, &rng).ok());
  opts.num_vertices = 5;
  opts.num_vertex_labels = 0;
  EXPECT_FALSE(GenerateConnectedGraph(opts, &rng).ok());
}

TEST(GeneratorTest, SingleVertexGraph) {
  Rng rng(2);
  GeneratorOptions opts;
  opts.num_vertices = 1;
  Result<Graph> g = GenerateConnectedGraph(opts, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 1u);
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(GeneratorTest, RandomGraphsAreConnectedWithExpectedCounts) {
  Rng rng(3);
  GeneratorOptions opts;
  opts.num_vertices = 60;
  opts.extra_edges = 30;
  opts.scale_free = false;
  for (int trial = 0; trial < 10; ++trial) {
    Result<Graph> g = GenerateConnectedGraph(opts, &rng);
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(g->IsConnected());
    EXPECT_EQ(g->num_vertices(), 60u);
    EXPECT_EQ(g->num_edges(), 59u + 30u);
  }
}

TEST(GeneratorTest, LabelsWithinAlphabets) {
  Rng rng(4);
  GeneratorOptions opts;
  opts.num_vertices = 40;
  opts.num_vertex_labels = 3;
  opts.num_edge_labels = 2;
  Result<Graph> g = GenerateConnectedGraph(opts, &rng);
  ASSERT_TRUE(g.ok());
  for (uint32_t v = 0; v < g->num_vertices(); ++v) {
    EXPECT_GE(g->VertexLabel(v), 1u);
    EXPECT_LE(g->VertexLabel(v), 3u);
  }
  for (const auto& e : g->SortedEdges()) {
    EXPECT_GE(e.label, 1u);
    EXPECT_LE(e.label, 2u);
  }
}

TEST(GeneratorTest, ScaleFreeDegreesFollowPowerLaw) {
  Rng rng(5);
  GeneratorOptions opts;
  opts.num_vertices = 400;
  opts.scale_free = true;
  opts.edges_per_vertex = 1;
  std::map<int64_t, size_t> degree_counts;
  for (int trial = 0; trial < 25; ++trial) {
    Result<Graph> g = GenerateConnectedGraph(opts, &rng);
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(g->IsConnected());
    for (const auto& [deg, cnt] : g->DegreeHistogram()) {
      degree_counts[deg] += cnt;
    }
  }
  EXPECT_TRUE(LooksScaleFree(degree_counts));
}

TEST(GeneratorTest, RandomGraphDegreesAreNotPowerLaw) {
  Rng rng(6);
  GeneratorOptions opts;
  opts.num_vertices = 300;
  opts.extra_edges = 900;  // dense-ish ER graph concentrates degrees
  opts.scale_free = false;
  std::map<int64_t, size_t> degree_counts;
  for (int trial = 0; trial < 15; ++trial) {
    Result<Graph> g = GenerateConnectedGraph(opts, &rng);
    ASSERT_TRUE(g.ok());
    for (const auto& [deg, cnt] : g->DegreeHistogram()) {
      degree_counts[deg] += cnt;
    }
  }
  EXPECT_FALSE(LooksScaleFree(degree_counts));
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  GeneratorOptions opts;
  opts.num_vertices = 30;
  Rng a(42), b(42);
  Result<Graph> g1 = GenerateConnectedGraph(opts, &a);
  Result<Graph> g2 = GenerateConnectedGraph(opts, &b);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_TRUE(g1->IdenticalTo(*g2));
}

TEST(GeneratorTest, ExtraEdgesClampedToCompleteGraph) {
  Rng rng(7);
  GeneratorOptions opts;
  opts.num_vertices = 5;
  opts.extra_edges = 1000;  // far more than C(5,2)
  Result<Graph> g = GenerateConnectedGraph(opts, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_LE(g->num_edges(), 10u);
}

}  // namespace
}  // namespace gbda
