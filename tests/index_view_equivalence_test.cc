// The storage engine's serving contract (docs/ARCHITECTURE.md, "Storage
// engine"): queries served through a GbdaIndexView over a mapped v3 arena
// are bit-identical — ids, exact phi doubles, GBDs, ordering, and the
// candidates/prefilter counters — to queries served through the decoded
// GbdaIndex of the same artifact, across every variant x prefilter x shard
// configuration, serially (GbdaSearch) and sharded (GbdaService).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "service/gbda_service.h"
#include "storage/index_arena.h"
#include "storage/index_view.h"

namespace gbda {
namespace {

void ExpectSameResult(const SearchResult& owned, const SearchResult& mapped,
                      const std::string& label) {
  ASSERT_EQ(owned.matches.size(), mapped.matches.size()) << label;
  for (size_t i = 0; i < owned.matches.size(); ++i) {
    EXPECT_EQ(owned.matches[i].graph_id, mapped.matches[i].graph_id)
        << label << " match " << i;
    EXPECT_EQ(owned.matches[i].phi_score, mapped.matches[i].phi_score)
        << label << " match " << i;
    EXPECT_EQ(owned.matches[i].gbd, mapped.matches[i].gbd)
        << label << " match " << i;
  }
  EXPECT_EQ(owned.candidates_evaluated, mapped.candidates_evaluated) << label;
  EXPECT_EQ(owned.prefiltered_out, mapped.prefiltered_out) << label;
}

class IndexViewEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = FingerprintProfile(0.03);
    profile.seed = 41;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));

    GbdaIndexOptions options;
    options.tau_max = 10;
    options.gbd_prior.num_sample_pairs = 1500;
    Result<GbdaIndex> built = GbdaIndex::Build(dataset_->db, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();

    // One artifact, two access paths: the v2 stream decoded back into an
    // owning index, and the v3 arena mapped in place. Round-tripping the
    // owned side through v2 too keeps the comparison between the two
    // PERSISTED forms rather than between build output and artifact.
    const std::string v2_path =
        ::testing::TempDir() + "/view_equivalence.v2";
    const std::string v3_path =
        ::testing::TempDir() + "/view_equivalence.v3";
    ASSERT_TRUE(built->SaveToFile(v2_path).ok());
    ASSERT_TRUE(WriteArenaFile(*built, v3_path).ok());

    Result<GbdaIndex> decoded = GbdaIndex::LoadFromFile(v2_path);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    decoded_ = new GbdaIndex(std::move(*decoded));
    Result<GbdaIndexView> view = GbdaIndexView::Open(v3_path);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    view_ = new GbdaIndexView(std::move(*view));
  }
  static void TearDownTestSuite() {
    delete view_;
    delete decoded_;
    delete dataset_;
    view_ = nullptr;
    decoded_ = nullptr;
    dataset_ = nullptr;
  }

  static GeneratedDataset* dataset_;
  static GbdaIndex* decoded_;
  static GbdaIndexView* view_;
};

GeneratedDataset* IndexViewEquivalenceTest::dataset_ = nullptr;
GbdaIndex* IndexViewEquivalenceTest::decoded_ = nullptr;
GbdaIndexView* IndexViewEquivalenceTest::view_ = nullptr;

TEST_F(IndexViewEquivalenceTest, SerialScanAcrossVariantsAndPrefilter) {
  GbdaSearch search_owned(&dataset_->db, decoded_);
  GbdaSearch search_mapped(&dataset_->db, view_);
  const size_t num_queries = std::min<size_t>(dataset_->queries.size(), 6);
  for (GbdaVariant variant : {GbdaVariant::kStandard,
                              GbdaVariant::kAverageSize,
                              GbdaVariant::kWeightedGbd}) {
    for (bool prefilter : {false, true}) {
      SearchOptions options;
      options.tau_hat = 6;
      options.gamma = 0.3;
      options.variant = variant;
      options.use_prefilter = prefilter;
      for (size_t q = 0; q < num_queries; ++q) {
        const std::string label =
            "variant=" + std::to_string(static_cast<int>(variant)) +
            " prefilter=" + std::to_string(prefilter) +
            " query=" + std::to_string(q);
        Result<SearchResult> owned =
            search_owned.Query(dataset_->queries[q], options);
        Result<SearchResult> mapped =
            search_mapped.Query(dataset_->queries[q], options);
        ASSERT_TRUE(owned.ok()) << label << ": " << owned.status().ToString();
        ASSERT_TRUE(mapped.ok()) << label << ": "
                                 << mapped.status().ToString();
        ExpectSameResult(*owned, *mapped, label);
      }
    }
  }
}

TEST_F(IndexViewEquivalenceTest, ShardedServiceAcrossShardCounts) {
  const size_t num_queries = std::min<size_t>(dataset_->queries.size(), 4);
  for (size_t shards : {size_t{1}, size_t{2}, size_t{7}}) {
    ServiceOptions service_options;
    service_options.num_threads = 3;
    service_options.num_shards = shards;
    Result<std::unique_ptr<GbdaService>> owned =
        GbdaService::Create(&dataset_->db, decoded_, service_options);
    Result<std::unique_ptr<GbdaService>> mapped =
        GbdaService::Create(&dataset_->db, view_, service_options);
    ASSERT_TRUE(owned.ok()) << owned.status().ToString();
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    for (GbdaVariant variant : {GbdaVariant::kStandard,
                                GbdaVariant::kAverageSize,
                                GbdaVariant::kWeightedGbd}) {
      for (bool prefilter : {false, true}) {
        SearchOptions options;
        options.tau_hat = 6;
        options.gamma = 0.3;
        options.variant = variant;
        options.use_prefilter = prefilter;
        for (size_t q = 0; q < num_queries; ++q) {
          const std::string label =
              "shards=" + std::to_string(shards) +
              " variant=" + std::to_string(static_cast<int>(variant)) +
              " prefilter=" + std::to_string(prefilter) +
              " query=" + std::to_string(q);
          Result<SearchResult> a =
              (*owned)->Query(dataset_->queries[q], options);
          Result<SearchResult> b =
              (*mapped)->Query(dataset_->queries[q], options);
          ASSERT_TRUE(a.ok()) << label;
          ASSERT_TRUE(b.ok()) << label;
          ExpectSameResult(*a, *b, label);

          Result<SearchResult> ka =
              (*owned)->QueryTopK(dataset_->queries[q], 9, options);
          Result<SearchResult> kb =
              (*mapped)->QueryTopK(dataset_->queries[q], 9, options);
          ASSERT_TRUE(ka.ok()) << label;
          ASSERT_TRUE(kb.ok()) << label;
          ExpectSameResult(*ka, *kb, label + " topk");
        }
      }
    }
  }
}

TEST_F(IndexViewEquivalenceTest, ViewRejectsMismatchedDatabase) {
  // The same construction-time agreement check owned indexes get: a view
  // over yesterday's artifact must not attach to today's corpus.
  GraphDatabase other;
  other.vertex_labels().Intern("A");
  Graph g;
  g.AddVertex(0);
  other.Add(std::move(g));
  Result<std::unique_ptr<GbdaSearch>> search =
      GbdaSearch::Create(&other, view_);
  ASSERT_FALSE(search.ok());
  EXPECT_EQ(search.status().code(), StatusCode::kFailedPrecondition);
  Result<std::unique_ptr<GbdaService>> service =
      GbdaService::Create(&other, view_, ServiceOptions());
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace gbda
