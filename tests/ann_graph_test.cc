// The offline half of approximate candidate navigation (src/ann):
// FingerprintDistance, the FingerprintStore's two construction paths, the
// Vamana-style builder's invariants, the section serialize/parse round trip
// and the beam navigator's determinism/termination properties — including
// the degenerate corpora (identical fingerprints, collision-heavy label
// soups) where a naive nearest-neighbor walk could cycle.
#include "ann/proximity_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "ann/navigator.h"
#include "core/gbda_index.h"
#include "core/prefilter.h"
#include "datagen/dataset_profiles.h"
#include "graph/graph_database.h"

namespace gbda {
namespace {

Span<const uint64_t> KeySpan(const std::vector<uint64_t>& keys) {
  return Span<const uint64_t>(keys.data(), keys.size());
}

// Parses a serialized payload through an 8-byte-aligned copy
// (SerializeProximityGraph returns a std::string, whose buffer alignment is
// unspecified; the arena guarantees 64-byte-aligned sections).
Result<ProximityGraphRef> ParseAligned(const std::string& payload,
                                       uint64_t expected_nodes,
                                       std::vector<uint64_t>* storage) {
  storage->assign((payload.size() + 7) / 8, 0);
  std::memcpy(storage->data(), payload.data(), payload.size());
  return ParseProximityGraphSection(storage->data(), payload.size(),
                                    expected_nodes, "test");
}

// BFS over the CSR adjacency from the entry point.
size_t CountReachable(const ProximityGraphRef& g) {
  std::vector<char> seen(g.num_nodes, 0);
  std::vector<uint32_t> frontier = {g.entry_point};
  seen[g.entry_point] = 1;
  size_t reached = 1;
  while (!frontier.empty()) {
    const uint32_t node = frontier.back();
    frontier.pop_back();
    for (uint64_t e = g.offsets[node]; e < g.offsets[node + 1]; ++e) {
      const uint32_t next = g.neighbors[e];
      if (!seen[next]) {
        seen[next] = 1;
        ++reached;
        frontier.push_back(next);
      }
    }
  }
  return reached;
}

void ExpectCsrInvariants(const ProximityGraph& g, size_t expected_nodes) {
  ASSERT_EQ(g.num_nodes(), expected_nodes);
  ASSERT_EQ(g.offsets.size(), expected_nodes + 1);
  EXPECT_EQ(g.offsets.front(), 0u);
  for (size_t i = 0; i < expected_nodes; ++i) {
    ASSERT_LE(g.offsets[i], g.offsets[i + 1]) << "node " << i;
    const uint64_t degree = g.offsets[i + 1] - g.offsets[i];
    if (i != g.entry_point) {
      // Only the entry point may exceed the bound (reachability repair).
      EXPECT_LE(degree, g.degree_bound) << "node " << i;
    }
  }
  EXPECT_EQ(g.offsets.back(), g.neighbors.size());
  for (uint32_t neighbor : g.neighbors) {
    EXPECT_LT(neighbor, expected_nodes);
  }
  EXPECT_LT(g.entry_point, expected_nodes);
  EXPECT_EQ(CountReachable(g.ref()), expected_nodes);
}

// A corpus of `copies` structurally identical graphs: every node carries the
// SAME fingerprint multiset, so all pairwise distances are 0 — the
// worst case for tie-breaking in both the builder and the navigator.
GraphDatabase IdenticalCorpus(size_t copies) {
  GraphDatabase db;
  const LabelId a = db.vertex_labels().Intern("A");
  const LabelId b = db.vertex_labels().Intern("B");
  const LabelId x = db.edge_labels().Intern("x");
  for (size_t i = 0; i < copies; ++i) {
    Graph g;
    g.AddVertex(a);
    g.AddVertex(b);
    g.AddVertex(a);
    (void)g.AddEdge(0, 1, x);
    (void)g.AddEdge(1, 2, x);
    db.Add(g);
  }
  return db;
}

// ---------------------------------------------------------------------------
// FingerprintDistance
// ---------------------------------------------------------------------------

TEST(FingerprintDistanceTest, EmptyMultisets) {
  const std::vector<uint64_t> empty;
  const std::vector<uint64_t> three = {5, 9, 9};
  // Two empty branch multisets are identical: distance 0, not an error.
  EXPECT_EQ(FingerprintDistance(KeySpan(empty), KeySpan(empty)), 0);
  EXPECT_EQ(FingerprintDistance(KeySpan(empty), KeySpan(three)), 3);
  EXPECT_EQ(FingerprintDistance(KeySpan(three), KeySpan(empty)), 3);
}

TEST(FingerprintDistanceTest, MatchesDefinition) {
  const std::vector<uint64_t> a = {1, 1, 2, 7};
  const std::vector<uint64_t> b = {1, 2, 2, 7, 9};
  // Multiset intersection {1, 2, 7} = 3; max(4, 5) - 3 = 2.
  EXPECT_EQ(FingerprintDistance(KeySpan(a), KeySpan(b)), 2);
  EXPECT_EQ(FingerprintDistance(KeySpan(b), KeySpan(a)), 2);  // symmetric
  EXPECT_EQ(FingerprintDistance(KeySpan(a), KeySpan(a)), 0);
  const std::vector<uint64_t> disjoint = {100, 200};
  EXPECT_EQ(FingerprintDistance(KeySpan(a), KeySpan(disjoint)), 4);
}

TEST(FingerprintDistanceTest, DuplicateKeysCountWithMultiplicity) {
  // Collision-heavy shape: one key repeated many times on both sides.
  const std::vector<uint64_t> a(6, 42);
  const std::vector<uint64_t> b(4, 42);
  EXPECT_EQ(FingerprintDistance(KeySpan(a), KeySpan(b)), 2);  // 6 - 4
  EXPECT_EQ(FingerprintDistance(KeySpan(a), KeySpan(a)), 0);
}

// ---------------------------------------------------------------------------
// FingerprintStore
// ---------------------------------------------------------------------------

TEST(FingerprintStoreTest, FromPrefilterAndFromIndexAgree) {
  DatasetProfile profile = GrecProfile(0.03);
  profile.seed = 23;
  Result<GeneratedDataset> ds = GenerateDataset(profile);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  GbdaIndexOptions options;
  options.tau_max = 6;
  options.gbd_prior.num_sample_pairs = 200;
  Result<GbdaIndex> index = GbdaIndex::Build(ds->db, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  const Prefilter prefilter(&ds->db);
  const FingerprintStore from_profiles =
      FingerprintStore::FromPrefilter(prefilter);
  const FingerprintStore from_index = FingerprintStore::FromIndex(*index);

  // The two construction paths (FilterProfile branch_keys vs fingerprinting
  // the index's flat branch arrays) must yield identical keys — the
  // services build from profiles, the tooling from artifacts, and both must
  // navigate the same space.
  ASSERT_EQ(from_profiles.size(), ds->db.size());
  ASSERT_EQ(from_index.size(), ds->db.size());
  for (size_t g = 0; g < ds->db.size(); ++g) {
    const Span<const uint64_t> a = from_profiles.keys(g);
    const Span<const uint64_t> b = from_index.keys(g);
    ASSERT_EQ(a.size(), b.size()) << "graph " << g;
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end())) << "graph " << g;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "graph " << g << " key " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// BuildProximityGraph
// ---------------------------------------------------------------------------

TEST(ProximityGraphBuildTest, RejectsInvalidParams) {
  GraphDatabase db = IdenticalCorpus(4);
  const Prefilter prefilter(&db);
  const FingerprintStore store = FingerprintStore::FromPrefilter(prefilter);

  AnnBuildParams params;
  params.graph_degree = 0;
  EXPECT_EQ(BuildProximityGraph(store, params).status().code(),
            StatusCode::kInvalidArgument);
  params = AnnBuildParams();
  params.build_window = 0;
  EXPECT_EQ(BuildProximityGraph(store, params).status().code(),
            StatusCode::kInvalidArgument);
  params = AnnBuildParams();
  params.alpha = 0.5;
  EXPECT_EQ(BuildProximityGraph(store, params).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ProximityGraphBuildTest, InvariantsAndDeterminismOnRealCorpus) {
  DatasetProfile profile = AidsProfile(0.03);
  profile.seed = 31;
  Result<GeneratedDataset> ds = GenerateDataset(profile);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  const Prefilter prefilter(&ds->db);
  const FingerprintStore store = FingerprintStore::FromPrefilter(prefilter);

  AnnBuildParams params;
  params.graph_degree = 8;
  params.build_window = 16;
  Result<ProximityGraph> graph = BuildProximityGraph(store, params);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ExpectCsrInvariants(*graph, store.size());

  // Bit-identical rebuild: same (store, params) -> same graph.
  Result<ProximityGraph> again = BuildProximityGraph(store, params);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(graph->entry_point, again->entry_point);
  EXPECT_EQ(graph->degree_bound, again->degree_bound);
  EXPECT_EQ(graph->offsets, again->offsets);
  EXPECT_EQ(graph->neighbors, again->neighbors);
}

TEST(ProximityGraphBuildTest, IdenticalFingerprintCorpus) {
  // Every pairwise distance is 0: the builder must still produce a valid,
  // fully reachable, deterministic graph (ties broken by id).
  GraphDatabase db = IdenticalCorpus(12);
  const Prefilter prefilter(&db);
  const FingerprintStore store = FingerprintStore::FromPrefilter(prefilter);
  AnnBuildParams params;
  params.graph_degree = 4;
  params.build_window = 8;
  Result<ProximityGraph> graph = BuildProximityGraph(store, params);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ExpectCsrInvariants(*graph, 12);
  Result<ProximityGraph> again = BuildProximityGraph(store, params);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(graph->neighbors, again->neighbors);
}

TEST(ProximityGraphBuildTest, TinyCorpus) {
  // Fewer nodes than the degree bound: the graph degenerates gracefully.
  GraphDatabase db = IdenticalCorpus(2);
  const Prefilter prefilter(&db);
  const FingerprintStore store = FingerprintStore::FromPrefilter(prefilter);
  Result<ProximityGraph> graph = BuildProximityGraph(store, AnnBuildParams());
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ExpectCsrInvariants(*graph, 2);
}

// ---------------------------------------------------------------------------
// Serialize / parse round trip
// ---------------------------------------------------------------------------

TEST(ProximityGraphSerializeTest, RoundTripPreservesEverything) {
  GraphDatabase db = IdenticalCorpus(9);
  const Prefilter prefilter(&db);
  const FingerprintStore store = FingerprintStore::FromPrefilter(prefilter);
  AnnBuildParams params;
  params.graph_degree = 3;
  params.build_window = 6;
  Result<ProximityGraph> graph = BuildProximityGraph(store, params);
  ASSERT_TRUE(graph.ok());

  const std::string payload = SerializeProximityGraph(*graph);
  std::vector<uint64_t> storage;
  Result<ProximityGraphRef> parsed = ParseAligned(payload, 9, &storage);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_nodes, graph->num_nodes());
  EXPECT_EQ(parsed->num_edges, graph->neighbors.size());
  EXPECT_EQ(parsed->entry_point, graph->entry_point);
  EXPECT_EQ(parsed->degree_bound, graph->degree_bound);
  for (size_t i = 0; i <= graph->num_nodes(); ++i) {
    EXPECT_EQ(parsed->offsets[i], graph->offsets[i]) << "offset " << i;
  }
  for (size_t e = 0; e < graph->neighbors.size(); ++e) {
    EXPECT_EQ(parsed->neighbors[e], graph->neighbors[e]) << "edge " << e;
  }
}

TEST(ProximityGraphSerializeTest, RejectsHostilePayloads) {
  GraphDatabase db = IdenticalCorpus(5);
  const Prefilter prefilter(&db);
  const FingerprintStore store = FingerprintStore::FromPrefilter(prefilter);
  Result<ProximityGraph> graph = BuildProximityGraph(store, AnnBuildParams());
  ASSERT_TRUE(graph.ok());
  const std::string payload = SerializeProximityGraph(*graph);
  std::vector<uint64_t> storage;

  // A future format version is kNotSupported — the degrade-don't-fail
  // signal GbdaIndexView::Open keys on.
  {
    std::string future = payload;
    const uint32_t version = kAnnGraphFormatVersion + 1;
    std::memcpy(&future[0], &version, sizeof(version));
    EXPECT_EQ(ParseAligned(future, 5, &storage).status().code(),
              StatusCode::kNotSupported);
  }
  // Truncation.
  EXPECT_FALSE(
      ParseAligned(payload.substr(0, payload.size() - 4), 5, &storage).ok());
  // Node-count disagreement with the artifact header.
  EXPECT_FALSE(ParseAligned(payload, 6, &storage).ok());
  // Entry point out of range (u32 at payload offset 8).
  {
    std::string bad = payload;
    const uint32_t hostile = 1000;
    std::memcpy(&bad[8], &hostile, sizeof(hostile));
    EXPECT_FALSE(ParseAligned(bad, 5, &storage).ok());
  }
}

// ---------------------------------------------------------------------------
// NavigateProximityGraph
// ---------------------------------------------------------------------------

class NavigationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetProfile profile = AidsProfile(0.03);
    profile.seed = 47;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    db_ = std::move(ds->db);
    queries_ = std::move(ds->queries);
    prefilter_ = std::make_unique<Prefilter>(&db_);
    store_ = FingerprintStore::FromPrefilter(*prefilter_);
    AnnBuildParams params;
    params.graph_degree = 8;
    params.build_window = 16;
    Result<ProximityGraph> graph = BuildProximityGraph(store_, params);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = std::move(*graph);
  }

  std::vector<uint64_t> QueryKeys(const Graph& q) const {
    return BuildFilterProfile(q).branch_keys;
  }

  GraphDatabase db_;
  std::vector<Graph> queries_;
  std::unique_ptr<Prefilter> prefilter_;
  FingerprintStore store_;
  ProximityGraph graph_;
};

TEST_F(NavigationTest, FullWindowVisitsTheWholeCorpus) {
  // window >= corpus size must visit every node — the property that makes
  // full-window approximate queries provably bit-identical to exhaustive
  // ones (the reachability repair guarantees it).
  const std::vector<uint64_t> keys = QueryKeys(queries_[0]);
  const std::vector<uint32_t> visited = NavigateProximityGraph(
      graph_.ref(), store_, KeySpan(keys), store_.size());
  EXPECT_EQ(visited.size(), store_.size());
  std::set<uint32_t> unique(visited.begin(), visited.end());
  EXPECT_EQ(unique.size(), store_.size());
}

TEST_F(NavigationTest, SmallWindowIsDeterministicAndBounded) {
  for (size_t window : {size_t{1}, size_t{4}, size_t{16}}) {
    for (size_t q = 0; q < std::min<size_t>(queries_.size(), 4); ++q) {
      const std::vector<uint64_t> keys = QueryKeys(queries_[q]);
      const std::vector<uint32_t> a = NavigateProximityGraph(
          graph_.ref(), store_, KeySpan(keys), window);
      const std::vector<uint32_t> b = NavigateProximityGraph(
          graph_.ref(), store_, KeySpan(keys), window);
      EXPECT_EQ(a, b) << "window " << window << " query " << q;
      ASSERT_FALSE(a.empty()) << "window " << window;
      std::set<uint32_t> unique(a.begin(), a.end());
      EXPECT_EQ(unique.size(), a.size()) << "duplicate candidate ids";
      for (uint32_t id : a) EXPECT_LT(id, store_.size());
    }
  }
}

TEST_F(NavigationTest, EmptyQueryKeysTerminate) {
  // An empty branch multiset makes every distance |candidate keys| — valid,
  // and navigation must terminate deterministically rather than cycle.
  const std::vector<uint64_t> empty;
  const std::vector<uint32_t> a =
      NavigateProximityGraph(graph_.ref(), store_, KeySpan(empty), 8);
  const std::vector<uint32_t> b =
      NavigateProximityGraph(graph_.ref(), store_, KeySpan(empty), 8);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST_F(NavigationTest, AllTiedDistancesTerminate) {
  // Identical-fingerprint corpus: every candidate ties at distance 0 from a
  // matching query. Termination rests purely on the id tie-break.
  GraphDatabase db = IdenticalCorpus(16);
  const Prefilter prefilter(&db);
  const FingerprintStore store = FingerprintStore::FromPrefilter(prefilter);
  AnnBuildParams params;
  params.graph_degree = 4;
  params.build_window = 8;
  Result<ProximityGraph> graph = BuildProximityGraph(store, params);
  ASSERT_TRUE(graph.ok());
  const std::vector<uint64_t> keys(store.keys(0).begin(),
                                   store.keys(0).end());
  const std::vector<uint32_t> small =
      NavigateProximityGraph(graph->ref(), store, KeySpan(keys), 4);
  EXPECT_FALSE(small.empty());
  const std::vector<uint32_t> full =
      NavigateProximityGraph(graph->ref(), store, KeySpan(keys), 16);
  EXPECT_EQ(full.size(), 16u);
}

// ---------------------------------------------------------------------------
// AnnContext
// ---------------------------------------------------------------------------

TEST(AnnContextTest, BuildOwnsAValidGraph) {
  GraphDatabase db = IdenticalCorpus(6);
  const Prefilter prefilter(&db);
  Result<AnnContext> ctx = AnnContext::Build(
      FingerprintStore::FromPrefilter(prefilter), AnnBuildParams());
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  EXPECT_EQ(ctx->store().size(), 6u);
  EXPECT_EQ(ctx->owned_graph().num_nodes(), 6u);
  EXPECT_EQ(ctx->graph().num_nodes, 6u);
}

TEST(AnnContextTest, AdoptRejectsNodeCountMismatch) {
  GraphDatabase small = IdenticalCorpus(4);
  GraphDatabase big = IdenticalCorpus(7);
  const Prefilter small_pf(&small);
  const Prefilter big_pf(&big);
  Result<ProximityGraph> graph = BuildProximityGraph(
      FingerprintStore::FromPrefilter(small_pf), AnnBuildParams());
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(AnnContext::Adopt(FingerprintStore::FromPrefilter(big_pf),
                                 graph->ref())
                   .ok());
  EXPECT_TRUE(AnnContext::Adopt(FingerprintStore::FromPrefilter(small_pf),
                                graph->ref())
                  .ok());
}

}  // namespace
}  // namespace gbda
