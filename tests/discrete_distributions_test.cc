#include "math/discrete_distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "math/log_combinatorics.h"

namespace gbda {
namespace {

TEST(HypergeometricTest, KnownValue) {
  // Drawing 2 from {3 marked, 2 unmarked}: P[X=1] = C(3,1)C(2,1)/C(5,2) = 0.6.
  EXPECT_NEAR(HypergeometricPmf(1, 5, 3, 2), 0.6, 1e-12);
  EXPECT_NEAR(HypergeometricPmf(2, 5, 3, 2), 0.3, 1e-12);
  EXPECT_NEAR(HypergeometricPmf(0, 5, 3, 2), 0.1, 1e-12);
}

TEST(HypergeometricTest, OutOfSupportIsZero) {
  EXPECT_EQ(HypergeometricPmf(-1, 10, 4, 3), 0.0);
  EXPECT_EQ(HypergeometricPmf(5, 10, 4, 3), 0.0);   // x > N
  EXPECT_EQ(HypergeometricPmf(4, 10, 3, 5), 0.0);   // x > K
  EXPECT_EQ(HypergeometricPmf(0, 10, 8, 5), 0.0);   // N - x > M - K
}

class HypergeometricSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(HypergeometricSweep, SumsToOneAndMeanMatches) {
  const auto [m, k, n] = GetParam();
  double total = 0.0, mean = 0.0;
  for (int64_t x = 0; x <= n; ++x) {
    const double p = HypergeometricPmf(x, m, k, n);
    EXPECT_GE(p, 0.0);
    total += p;
    mean += p * static_cast<double>(x);
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
  // E[X] = n*K/M.
  EXPECT_NEAR(mean,
              static_cast<double>(n) * static_cast<double>(k) /
                  static_cast<double>(m),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Params, HypergeometricSweep,
    ::testing::Values(std::make_tuple(10, 4, 3), std::make_tuple(50, 20, 10),
                      std::make_tuple(100, 1, 5), std::make_tuple(7, 7, 7),
                      std::make_tuple(1000, 500, 30),
                      std::make_tuple(12, 3, 12)));

TEST(HypergeometricTest, HugePopulationStaysFinite) {
  // The Omega1 regime: M = v + C(v,2) with v = 100000.
  const int64_t v = 100000;
  const int64_t m = v + v * (v - 1) / 2;
  double total = 0.0;
  for (int64_t x = 0; x <= 10; ++x) {
    const double p = HypergeometricPmf(x, m, v, 10);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LogBinomialPmfTest, MatchesDirectComputation) {
  const double p = 0.3;
  const double log_p = std::log(p);
  const double log_1mp = std::log1p(-p);
  for (int64_t k = 0; k <= 10; ++k) {
    const double expected = std::exp(LogBinomial(10, k)) * std::pow(p, k) *
                            std::pow(1 - p, 10 - k);
    EXPECT_NEAR(ExpSafe(LogBinomialPmfFromLogs(k, 10, log_p, log_1mp)),
                expected, 1e-12);
  }
  EXPECT_TRUE(std::isinf(LogBinomialPmfFromLogs(-1, 10, log_p, log_1mp)));
  EXPECT_TRUE(std::isinf(LogBinomialPmfFromLogs(11, 10, log_p, log_1mp)));
}

TEST(LogBinomialPmfTest, ExtremeProbabilitySurvives) {
  // p extremely close to 1 (the Omega3 regime with huge D).
  const double log_p = -1e-30;       // ln p, p ~ 1
  const double log_1mp = -69.0;      // ln(1-p) ~ 1e-30
  const double log_pmf = LogBinomialPmfFromLogs(9, 10, log_p, log_1mp);
  // One "failure" among ten trials: C(10,9) * p^9 * (1-p).
  EXPECT_NEAR(log_pmf, std::log(10.0) - 69.0, 1e-9);
}

}  // namespace
}  // namespace gbda
