// Property suite for the runtime-dispatched scan kernels (common/kernels.h):
// the scalar table is the reference, and the AVX2 table must agree with it
// EXACTLY — same counts, same capped decisions, same tier-1 bound columns —
// over randomized sorted-key sets covering the shapes the scan produces:
// empty sides, identical sides, collision-heavy multisets (few distinct
// keys, high multiplicities), unaligned lengths 0..257 straddling the 4-lane
// and 8-lane vector widths, and saturating at_most caps (negative, 0, exact
// count, count +/- 1, huge). Dispatch resolution and the
// GBDA_FORCE_SCALAR_KERNELS override are pinned here too.

#include "common/kernels.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace gbda {
namespace {

const ScanKernels& Scalar() { return GetScanKernels(KernelImpl::kScalar); }
const ScanKernels& Avx2() { return GetScanKernels(KernelImpl::kAvx2); }

bool Avx2Available() {
  return CpuSupportsAvx2() && internal::Avx2ScanKernels() != nullptr;
}

/// Oracle: multiset intersection via std::set_intersection semantics.
int64_t NaiveIntersect(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return static_cast<int64_t>(out.size());
}

/// An ascending key multiset of length n drawn from `universe` distinct
/// values — small universes make collision-heavy multisets with long runs
/// of duplicates, the adversarial shape for a vectorized merge.
std::vector<uint64_t> RandomKeys(Rng* rng, size_t n, uint64_t universe) {
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    // Spread draws over the full uint64 range (sign-bit straddling matters:
    // the AVX2 compare is signed under the hood).
    keys[i] = rng->NextUint64() % universe * 0x9E3779B97F4A7C15ull +
              static_cast<uint64_t>(rng->NextUint64() % universe);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void ExpectKernelAgreement(const std::vector<uint64_t>& a,
                           const std::vector<uint64_t>& b) {
  const int64_t expected = NaiveIntersect(a, b);
  const int64_t scalar =
      Scalar().intersect_count(a.data(), a.size(), b.data(), b.size());
  EXPECT_EQ(expected, scalar);
  if (Avx2Available()) {
    EXPECT_EQ(scalar,
              Avx2().intersect_count(a.data(), a.size(), b.data(), b.size()));
  }
  // Saturating caps around the exact count, plus degenerate ones.
  const int64_t caps[] = {-5, -1, 0, 1, expected - 1, expected, expected + 1,
                          static_cast<int64_t>(a.size() + b.size()),
                          INT64_C(1) << 60};
  for (int64_t cap : caps) {
    const bool want = cap >= 0 && expected <= cap;
    EXPECT_EQ(want, Scalar().intersect_at_most(a.data(), a.size(), b.data(),
                                               b.size(), cap))
        << "cap=" << cap;
    if (Avx2Available()) {
      EXPECT_EQ(want, Avx2().intersect_at_most(a.data(), a.size(), b.data(),
                                               b.size(), cap))
          << "cap=" << cap;
    }
  }
}

TEST(KernelsTest, IntersectEmptySides) {
  const std::vector<uint64_t> empty;
  const std::vector<uint64_t> some = {1, 2, 2, 3, ~uint64_t{0}};
  ExpectKernelAgreement(empty, empty);
  ExpectKernelAgreement(empty, some);
  ExpectKernelAgreement(some, empty);
}

TEST(KernelsTest, IntersectIdenticalSides) {
  Rng rng(11);
  for (size_t n : {1u, 4u, 5u, 8u, 33u, 257u}) {
    const std::vector<uint64_t> keys = RandomKeys(&rng, n, 7);
    ExpectKernelAgreement(keys, keys);
    const int64_t count =
        Scalar().intersect_count(keys.data(), n, keys.data(), n);
    EXPECT_EQ(static_cast<int64_t>(n), count);
  }
}

TEST(KernelsTest, IntersectRandomizedUnalignedLengths) {
  Rng rng(42);
  // Every length pair in 0..17 exactly (covers all lane-tail combinations),
  // then random lengths up to 257.
  for (size_t na = 0; na <= 17; ++na) {
    for (size_t nb = 0; nb <= 17; ++nb) {
      ExpectKernelAgreement(RandomKeys(&rng, na, 6), RandomKeys(&rng, nb, 6));
    }
  }
  for (int round = 0; round < 200; ++round) {
    const size_t na = static_cast<size_t>(rng.UniformInt(0, 257));
    const size_t nb = static_cast<size_t>(rng.UniformInt(0, 257));
    // Mix sparse (large universe) and collision-heavy (tiny universe) draws.
    const uint64_t universe = round % 3 == 0 ? 4 : (round % 3 == 1 ? 64 : 1u << 20);
    ExpectKernelAgreement(RandomKeys(&rng, na, universe),
                          RandomKeys(&rng, nb, universe));
  }
}

TEST(KernelsTest, IntersectCollisionHeavyRuns) {
  // Long duplicate runs with staggered multiplicities: intersection is the
  // per-key min of multiplicities, the case an all-pairs vector compare
  // would overcount.
  std::vector<uint64_t> a, b;
  for (uint64_t key = 0; key < 9; ++key) {
    a.insert(a.end(), static_cast<size_t>(key * 3 % 7 + 1), key * 1000);
    b.insert(b.end(), static_cast<size_t>(key * 5 % 6 + 1), key * 1000);
  }
  ExpectKernelAgreement(a, b);
}

TEST(KernelsTest, IntersectSignBitStraddle) {
  // Keys on both sides of 2^63: a signed compare without the bias trick
  // would order these wrong and skip past real matches.
  const std::vector<uint64_t> a = {1, 2, 0x7FFFFFFFFFFFFFFFull,
                                   0x8000000000000000ull,
                                   0x8000000000000001ull, ~uint64_t{0}};
  const std::vector<uint64_t> b = {0x7FFFFFFFFFFFFFFFull,
                                   0x8000000000000001ull, ~uint64_t{0}};
  ExpectKernelAgreement(a, b);
  EXPECT_EQ(3, Scalar().intersect_count(a.data(), a.size(), b.data(),
                                        b.size()));
}

TEST(KernelsTest, Tier1SizeBoundsMatchesScalarOnUnalignedLengths) {
  Rng rng(7);
  for (size_t n = 0; n <= 67; ++n) {
    std::vector<uint32_t> sizes(n);
    for (auto& s : sizes) {
      s = static_cast<uint32_t>(rng.UniformInt(0, 1 << 20));
    }
    for (uint32_t q : {0u, 1u, 37u, 1u << 19, ~0u}) {
      std::vector<uint32_t> scalar_lb(n, 0xDEADBEEF), avx2_lb(n, 0xDEADBEEF);
      Scalar().tier1_size_bounds(sizes.data(), n, q, scalar_lb.data());
      for (size_t i = 0; i < n; ++i) {
        const int64_t want = std::llabs(static_cast<int64_t>(sizes[i]) -
                                        static_cast<int64_t>(q));
        EXPECT_EQ(want, static_cast<int64_t>(scalar_lb[i]));
      }
      if (Avx2Available()) {
        Avx2().tier1_size_bounds(sizes.data(), n, q, avx2_lb.data());
        EXPECT_EQ(scalar_lb, avx2_lb);
      }
    }
  }
}

TEST(KernelsTest, DispatchResolution) {
  // No env override in the test environment (guard, then pin semantics).
  unsetenv("GBDA_FORCE_SCALAR_KERNELS");
  EXPECT_FALSE(ScalarKernelsForcedByEnv());
  EXPECT_EQ(KernelImpl::kScalar, ResolveKernels(KernelDispatch::kForceScalar));
  if (Avx2Available()) {
    EXPECT_EQ(KernelImpl::kAvx2, ResolveKernels(KernelDispatch::kAuto));
    EXPECT_EQ(KernelImpl::kAvx2, ResolveKernels(KernelDispatch::kForceAvx2));
  } else {
    // No AVX2: every request degrades to scalar rather than faulting.
    EXPECT_EQ(KernelImpl::kScalar, ResolveKernels(KernelDispatch::kAuto));
    EXPECT_EQ(KernelImpl::kScalar, ResolveKernels(KernelDispatch::kForceAvx2));
  }
  EXPECT_STREQ("scalar", GetScanKernels(KernelImpl::kScalar).name);
  EXPECT_STREQ("scalar", KernelImplName(KernelImpl::kScalar));
  EXPECT_STREQ("avx2", KernelImplName(KernelImpl::kAvx2));
}

TEST(KernelsTest, EnvOverrideForcesScalar) {
  setenv("GBDA_FORCE_SCALAR_KERNELS", "1", 1);
  EXPECT_TRUE(ScalarKernelsForcedByEnv());
  EXPECT_EQ(KernelImpl::kScalar, ResolveKernels(KernelDispatch::kAuto));
  // The env lever outranks a per-scan AVX2 request: CI's scalar-forced leg
  // must win even over explicit --kernels=avx2 sweeps.
  EXPECT_EQ(KernelImpl::kScalar, ResolveKernels(KernelDispatch::kForceAvx2));
  setenv("GBDA_FORCE_SCALAR_KERNELS", "0", 1);
  EXPECT_FALSE(ScalarKernelsForcedByEnv());
  unsetenv("GBDA_FORCE_SCALAR_KERNELS");
  EXPECT_FALSE(ScalarKernelsForcedByEnv());
}

}  // namespace
}  // namespace gbda
