// Tests of the HTTP scrape endpoint (src/obs/exporter.h) over real sockets:
// the three routes, 404 handling, and monotone counter readings across
// scrapes taken while a writer thread is live.

#include "obs/exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "obs/metrics_registry.h"

namespace gbda::obs {
namespace {

// Blocking one-shot HTTP/1.0 GET against 127.0.0.1:port; returns the whole
// response (status line + headers + body) or "" on connect failure.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// Parses the value of a `name N` exposition line out of a scrape body.
uint64_t ScrapeValue(const std::string& body, const std::string& name) {
  const size_t at = body.find("\n" + name + " ");
  if (at == std::string::npos) return UINT64_MAX;
  return std::strtoull(body.c_str() + at + 1 + name.size() + 1, nullptr, 10);
}

TEST(MetricsExporterTest, ServesAllRoutesOnEphemeralPort) {
  MetricsRegistry registry;
  registry.GetCounter("test_requests_total", "help")->Add(9);
  ConcurrentHistogram* hist = registry.GetHistogram("test_latency", "help");
  hist->Record(10);
  hist->Record(2000);

  auto exporter = MetricsExporter::Start(&registry, ExporterOptions{});
  ASSERT_TRUE(exporter.ok()) << exporter.status().message();
  const uint16_t port = (*exporter)->port();
  ASSERT_NE(port, 0);

  const std::string health = HttpGet(port, "/healthz");
  EXPECT_NE(health.find("200"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("test_requests_total 9"), std::string::npos);
  EXPECT_NE(metrics.find("test_latency_count 2"), std::string::npos);
  EXPECT_NE(metrics.find("le=\"+Inf\""), std::string::npos);

  const std::string json = HttpGet(port, "/metrics.json");
  EXPECT_NE(json.find("200"), std::string::npos);
  EXPECT_NE(json.find("\"test_requests_total\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);

  const std::string missing = HttpGet(port, "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
}

TEST(MetricsExporterTest, CounterReadingsAreMonotoneUnderConcurrentWrites) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("live_total", "help");

  auto exporter = MetricsExporter::Start(&registry, ExporterOptions{});
  ASSERT_TRUE(exporter.ok()) << exporter.status().message();
  const uint16_t port = (*exporter)->port();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) counter->Increment();
  });

  uint64_t previous = 0;
  for (int scrape = 0; scrape < 5; ++scrape) {
    const std::string body = HttpGet(port, "/metrics");
    const uint64_t value = ScrapeValue(body, "live_total");
    ASSERT_NE(value, UINT64_MAX) << body;
    EXPECT_GE(value, previous);
    previous = value;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(previous, 0u);

  // After the writer quiesces the scrape is exact.
  const uint64_t settled =
      ScrapeValue(HttpGet(port, "/metrics"), "live_total");
  EXPECT_EQ(settled, counter->Value());
}

TEST(MetricsExporterTest, StopIsIdempotentAndRefusesFurtherConnections) {
  MetricsRegistry registry;
  auto exporter = MetricsExporter::Start(&registry, ExporterOptions{});
  ASSERT_TRUE(exporter.ok()) << exporter.status().message();
  const uint16_t port = (*exporter)->port();
  EXPECT_NE(HttpGet(port, "/healthz").find("200"), std::string::npos);
  (*exporter)->Stop();
  (*exporter)->Stop();
  EXPECT_TRUE(HttpGet(port, "/healthz").empty());
}

}  // namespace
}  // namespace gbda::obs
