#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"

namespace gbda::testutil {

/// The worked examples of the paper, usable as oracles:
///  - Figure 1 / Examples 1-2: GED(g1, g2) = 3 and GBD(g1, g2) = 3;
///  - Example 4: GED(ex4_g1, ex4_g2) = 2.
struct PaperGraphs {
  GraphDatabase db;  // provides the shared label dictionaries
  LabelId A, B, C;   // vertex labels
  LabelId x, y, z;   // edge labels
  Graph g1, g2;
  Graph ex4_g1, ex4_g2;
};

inline PaperGraphs MakePaperGraphs() {
  PaperGraphs p;
  p.A = p.db.vertex_labels().Intern("A");
  p.B = p.db.vertex_labels().Intern("B");
  p.C = p.db.vertex_labels().Intern("C");
  p.x = p.db.edge_labels().Intern("x");
  p.y = p.db.edge_labels().Intern("y");
  p.z = p.db.edge_labels().Intern("z");

  // G1 (Figure 1): v1(A)-v2(C):y, v1-v3(B):y, v2-v3:z.
  p.g1.AddVertex(p.A);  // v1 = 0
  p.g1.AddVertex(p.C);  // v2 = 1
  p.g1.AddVertex(p.B);  // v3 = 2
  (void)p.g1.AddEdge(0, 1, p.y);
  (void)p.g1.AddEdge(0, 2, p.y);
  (void)p.g1.AddEdge(1, 2, p.z);

  // G2 (Figure 1): u1(B), u2(A), u3(A), u4(C);
  // edges u1-u3:x, u1-u4:z, u2-u4:y.
  p.g2.AddVertex(p.B);  // u1 = 0
  p.g2.AddVertex(p.A);  // u2 = 1
  p.g2.AddVertex(p.A);  // u3 = 2
  p.g2.AddVertex(p.C);  // u4 = 3
  (void)p.g2.AddEdge(0, 2, p.x);
  (void)p.g2.AddEdge(0, 3, p.z);
  (void)p.g2.AddEdge(1, 3, p.y);

  // Example 4 originals (before extension): triangle-less 3-vertex graphs.
  // g1: v1(A)-v2(B):x, v1-v3(C):y;  g2: u1(A)-u2(B):y, u1-u3(C):x.
  p.ex4_g1.AddVertex(p.A);
  p.ex4_g1.AddVertex(p.B);
  p.ex4_g1.AddVertex(p.C);
  (void)p.ex4_g1.AddEdge(0, 1, p.x);
  (void)p.ex4_g1.AddEdge(0, 2, p.y);

  p.ex4_g2.AddVertex(p.A);
  p.ex4_g2.AddVertex(p.B);
  p.ex4_g2.AddVertex(p.C);
  (void)p.ex4_g2.AddEdge(0, 1, p.y);
  (void)p.ex4_g2.AddEdge(0, 2, p.x);
  return p;
}

}  // namespace gbda::testutil
