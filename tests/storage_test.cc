// The storage engine (docs/ARCHITECTURE.md, "Storage engine"): MappedFile,
// the v3 arena writer/parser, GbdaIndexView open-time validation, corruption
// detection, and the v2 <-> v3 conversion paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>

#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "storage/index_arena.h"
#include "storage/index_view.h"
#include "storage/mapped_file.h"

namespace gbda {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class StorageTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = GrecProfile(0.04);
    profile.seed = 77;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));

    GbdaIndexOptions options;
    options.tau_max = 8;
    options.gbd_prior.num_sample_pairs = 500;
    Result<GbdaIndex> index = GbdaIndex::Build(dataset_->db, options);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = new GbdaIndex(std::move(*index));

    arena_path_ = new std::string(::testing::TempDir() + "/storage_test.v3");
    ASSERT_TRUE(WriteArenaFile(*index_, *arena_path_).ok());
  }
  static void TearDownTestSuite() {
    delete index_;
    delete dataset_;
    delete arena_path_;
    index_ = nullptr;
    dataset_ = nullptr;
    arena_path_ = nullptr;
  }

  static GeneratedDataset* dataset_;
  static GbdaIndex* index_;
  static std::string* arena_path_;
};

GeneratedDataset* StorageTest::dataset_ = nullptr;
GbdaIndex* StorageTest::index_ = nullptr;
std::string* StorageTest::arena_path_ = nullptr;

// ---------------------------------------------------------------------------
// MappedFile
// ---------------------------------------------------------------------------

TEST_F(StorageTest, MappedFileMapsExactBytes) {
  const std::string path = ::testing::TempDir() + "/mapped_file_test.bin";
  const std::string payload = "zero-copy storage engine";
  WriteFile(path, payload);
  Result<MappedFile> mapped = MappedFile::OpenReadOnly(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->size(), payload.size());
  EXPECT_EQ(std::string(mapped->data(), mapped->size()), payload);
  EXPECT_EQ(mapped->path(), path);

  // Moving transfers the mapping without invalidating it.
  MappedFile moved = std::move(*mapped);
  EXPECT_EQ(std::string(moved.data(), moved.size()), payload);
}

TEST_F(StorageTest, MappedFileRejectsMissingAndEmptyFiles) {
  EXPECT_EQ(MappedFile::OpenReadOnly("/nonexistent/artifact.v3").status().code(),
            StatusCode::kIOError);
  const std::string path = ::testing::TempDir() + "/mapped_empty.bin";
  WriteFile(path, "");
  EXPECT_FALSE(MappedFile::OpenReadOnly(path).ok());
}

// ---------------------------------------------------------------------------
// Arena write / open round trip
// ---------------------------------------------------------------------------

TEST_F(StorageTest, ArenaRoundTripPreservesEveryField) {
  Result<GbdaIndexView> view = GbdaIndexView::Open(*arena_path_);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  EXPECT_EQ(view->num_graphs(), index_->num_graphs());
  EXPECT_EQ(view->num_live(), index_->num_live());
  EXPECT_EQ(view->gbd_staleness(), 0u);
  EXPECT_EQ(view->tau_max(), index_->tau_max());
  EXPECT_EQ(view->num_vertex_labels(), index_->num_vertex_labels());
  EXPECT_EQ(view->num_edge_labels(), index_->num_edge_labels());
  EXPECT_EQ(view->avg_vertices(), index_->avg_vertices());
  EXPECT_EQ(view->options().seed, index_->options().seed);
  EXPECT_EQ(view->options().gbd_prior.num_sample_pairs,
            index_->options().gbd_prior.num_sample_pairs);
  EXPECT_EQ(view->options().gbd_prior.gmm.seed,
            index_->options().gbd_prior.gmm.seed);

  // Every branch multiset reads back identically through the flat view.
  for (size_t g = 0; g < index_->num_graphs(); ++g) {
    const BranchMultiset& owned = index_->branches(g);
    const BranchSetRef flat = view->branch_set(g);
    ASSERT_EQ(flat.size(), owned.size()) << "graph " << g;
    for (size_t b = 0; b < owned.size(); ++b) {
      EXPECT_EQ(flat.root(b), owned[b].root) << "graph " << g;
      const Span<const LabelId> labels = flat.edge_labels(b);
      ASSERT_EQ(labels.size(), owned[b].edge_labels.size()) << "graph " << g;
      for (size_t k = 0; k < labels.size(); ++k) {
        EXPECT_EQ(labels[k], owned[b].edge_labels[k]);
      }
    }
  }

  // Lambda2 tabulates identically.
  for (int64_t phi = 0; phi < 32; ++phi) {
    EXPECT_EQ(view->gbd_prior().Probability(phi),
              index_->gbd_prior().Probability(phi))
        << "phi " << phi;
  }
}

TEST_F(StorageTest, ArenaHeaderInspection) {
  const std::string data = ReadFile(*arena_path_);
  Result<ArenaInfo> info = ParseArenaHeader(data, *arena_path_);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kArenaVersion);
  EXPECT_EQ(info->file_bytes, data.size());
  EXPECT_EQ(info->num_graphs, index_->num_graphs());
  // The canonical sections lead in id order; the candidate-column group
  // (graph_sizes / fp_offsets / fp_keys) always follows from this writer,
  // with the exactness directory after it when the corpus certifies.
  ASSERT_GE(info->sections.size(), kArenaSectionCount + 3);
  uint64_t previous_end = 0;
  uint32_t previous_id = 0;
  for (size_t s = 0; s < info->sections.size(); ++s) {
    const ArenaSectionInfo& sec = info->sections[s];
    if (s < kArenaSectionCount) {
      EXPECT_EQ(sec.id, s + 1);
    } else {
      EXPECT_GT(sec.id, previous_id);  // trailing ids strictly increase
    }
    previous_id = sec.id;
    EXPECT_EQ(sec.offset % kArenaSectionAlign, 0u);
    EXPECT_GE(sec.offset, previous_end);
    previous_end = sec.offset + sec.length;
  }
  EXPECT_LE(previous_end, data.size());
  EXPECT_NE(info->FindSection(kSecGraphSizes), nullptr);
  EXPECT_NE(info->FindSection(kSecFpOffsets), nullptr);
  EXPECT_NE(info->FindSection(kSecFpKeys), nullptr);
}

TEST_F(StorageTest, MaterializeReproducesTheIndex) {
  Result<GbdaIndexView> view = GbdaIndexView::Open(*arena_path_);
  ASSERT_TRUE(view.ok());
  Result<GbdaIndex> materialized = view->Materialize();
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  ASSERT_EQ(materialized->num_graphs(), index_->num_graphs());
  for (size_t g = 0; g < index_->num_graphs(); ++g) {
    EXPECT_EQ(materialized->branches(g), index_->branches(g)) << "graph " << g;
  }
  // The materialized index is v2-persistable and reloads.
  const std::string v2_path = ::testing::TempDir() + "/storage_test.v2";
  ASSERT_TRUE(materialized->SaveToFile(v2_path).ok());
  Result<GbdaIndex> reloaded = GbdaIndex::LoadFromFile(v2_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->num_graphs(), index_->num_graphs());
}

TEST_F(StorageTest, ArenaFromViewIsStable) {
  // Writing an arena FROM a mapped view reproduces the branch sections
  // byte-for-byte (the prior blobs may reorder cached rows, so compare the
  // four flat sections through their CRCs).
  Result<GbdaIndexView> view = GbdaIndexView::Open(*arena_path_);
  ASSERT_TRUE(view.ok());
  const std::string second_path = ::testing::TempDir() + "/storage_rewrite.v3";
  ASSERT_TRUE(WriteArenaFile(*view, second_path).ok());
  const std::string a = ReadFile(*arena_path_);
  const std::string b = ReadFile(second_path);
  Result<ArenaInfo> info_a = ParseArenaHeader(a, "a");
  Result<ArenaInfo> info_b = ParseArenaHeader(b, "b");
  ASSERT_TRUE(info_a.ok());
  ASSERT_TRUE(info_b.ok());
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(info_a->sections[s].crc32, info_b->sections[s].crc32)
        << ArenaSectionName(info_a->sections[s].id);
    EXPECT_EQ(info_a->sections[s].length, info_b->sections[s].length);
  }
}

TEST_F(StorageTest, WriterRejectsTombstonedAndStaleIndexes) {
  GbdaIndex copy = *index_;
  copy.AddGraph(dataset_->db.graph(0));
  // Stale Lambda2 (one add since the fit).
  EXPECT_EQ(WriteArenaFile(copy, "/tmp/unused.v3").code(),
            StatusCode::kFailedPrecondition);
  // Tombstoned.
  ASSERT_TRUE(copy.RefitGbdPrior().ok());
  ASSERT_TRUE(copy.RemoveGraphs({0}).ok());
  EXPECT_EQ(WriteArenaFile(copy, "/tmp/unused.v3").code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Corruption and hostile artifacts
// ---------------------------------------------------------------------------

TEST_F(StorageTest, ChecksumVerificationCatchesBitFlipsInEverySection) {
  const std::string data = ReadFile(*arena_path_);
  Result<ArenaInfo> info = ParseArenaHeader(data, *arena_path_);
  ASSERT_TRUE(info.ok());
  const std::string path = ::testing::TempDir() + "/storage_flip.v3";
  GbdaIndexView::OpenOptions verify;
  verify.verify_checksums = true;
  for (const ArenaSectionInfo& sec : info->sections) {
    if (sec.length == 0) continue;
    std::string corrupt = data;
    const size_t target = static_cast<size_t>(sec.offset + sec.length / 2);
    corrupt[target] = static_cast<char>(corrupt[target] ^ 0x04);
    WriteFile(path, corrupt);
    Result<GbdaIndexView> opened = GbdaIndexView::Open(path, verify);
    ASSERT_FALSE(opened.ok()) << ArenaSectionName(sec.id);
    // Either the structural validation rejects it (offset tables) or the
    // checksum pass reports DataLoss naming the section.
    if (opened.status().code() == StatusCode::kDataLoss) {
      EXPECT_NE(opened.status().message().find(ArenaSectionName(sec.id)),
                std::string::npos)
          << opened.status().message();
    }
  }
}

TEST_F(StorageTest, HeaderTamperingIsCaughtWithoutChecksumOption) {
  const std::string data = ReadFile(*arena_path_);
  const std::string path = ::testing::TempDir() + "/storage_tamper.v3";

  // Flip one byte inside the meta block (num_graphs field): the always-on
  // header CRC catches it even with verify_checksums off.
  {
    std::string corrupt = data;
    corrupt[kArenaPreambleBytes + 12 * 8] ^= 0x01;
    WriteFile(path, corrupt);
    Result<GbdaIndexView> opened = GbdaIndexView::Open(path);
    ASSERT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
  }
  // Wrong magic.
  {
    std::string corrupt = data;
    corrupt[0] = 'X';
    WriteFile(path, corrupt);
    EXPECT_FALSE(GbdaIndexView::Open(path).ok());
  }
  // Foreign endianness: a big-endian writer would lay the tag down
  // byte-reversed (01 02 03 04 instead of this host's 04 03 02 01).
  {
    std::string corrupt = data;
    corrupt[8] = 0x01;
    corrupt[9] = 0x02;
    corrupt[10] = 0x03;
    corrupt[11] = 0x04;
    WriteFile(path, corrupt);
    Result<GbdaIndexView> opened = GbdaIndexView::Open(path);
    ASSERT_FALSE(opened.ok());
    EXPECT_NE(opened.status().message().find("endian"), std::string::npos)
        << opened.status().message();
  }
  // Truncation: every prefix must fail (the header states file_bytes).
  for (size_t len : {size_t{0}, size_t{16}, kArenaHeaderBytes,
                     data.size() / 2, data.size() - 1}) {
    WriteFile(path, data.substr(0, len));
    EXPECT_FALSE(GbdaIndexView::Open(path).ok()) << "prefix " << len;
  }
  // Trailing growth: size disagreement is rejected too.
  {
    WriteFile(path, data + "junk");
    EXPECT_FALSE(GbdaIndexView::Open(path).ok());
  }
}

TEST_F(StorageTest, NonMonotonicOffsetTablesAreRejectedAtOpen) {
  const std::string data = ReadFile(*arena_path_);
  Result<ArenaInfo> info = ParseArenaHeader(data, *arena_path_);
  ASSERT_TRUE(info.ok());
  ASSERT_GE(info->num_graphs, 2u);
  const std::string path = ::testing::TempDir() + "/storage_offsets.v3";

  // branch_start[1] := huge — would index out of the roots array if served.
  {
    std::string corrupt = data;
    const uint64_t hostile = ~uint64_t{0} / 2;
    std::memcpy(&corrupt[static_cast<size_t>(info->sections[0].offset) + 8],
                &hostile, sizeof(hostile));
    WriteFile(path, corrupt);
    Result<GbdaIndexView> opened = GbdaIndexView::Open(path);
    ASSERT_FALSE(opened.ok());
    EXPECT_NE(opened.status().message().find("branch_start"),
              std::string::npos)
        << opened.status().message();
  }
  // label_start last entry := 0 — no longer ends at total_labels.
  if (info->total_labels > 0) {
    std::string corrupt = data;
    const uint64_t zero = 0;
    std::memcpy(&corrupt[static_cast<size_t>(info->sections[2].offset +
                                             info->total_branches * 8)],
                &zero, sizeof(zero));
    WriteFile(path, corrupt);
    Result<GbdaIndexView> opened = GbdaIndexView::Open(path);
    ASSERT_FALSE(opened.ok());
    EXPECT_NE(opened.status().message().find("label_start"), std::string::npos)
        << opened.status().message();
  }
}

// ---------------------------------------------------------------------------
// Serving equivalence smoke (the exhaustive sweep lives in
// index_view_equivalence_test.cc)
// ---------------------------------------------------------------------------

TEST_F(StorageTest, ViewServesQueriesLikeTheOwnedIndex) {
  Result<GbdaIndexView> view = GbdaIndexView::Open(*arena_path_);
  ASSERT_TRUE(view.ok());
  Result<std::unique_ptr<GbdaSearch>> search =
      GbdaSearch::Create(&dataset_->db, &*view);
  ASSERT_TRUE(search.ok()) << search.status().ToString();
  GbdaSearch owned(&dataset_->db, index_);
  SearchOptions options;
  options.tau_hat = 5;
  options.gamma = 0.5;
  Result<SearchResult> a = owned.Query(dataset_->queries[0], options);
  Result<SearchResult> b = (*search)->Query(dataset_->queries[0], options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->matches.size(), b->matches.size());
  for (size_t i = 0; i < a->matches.size(); ++i) {
    EXPECT_EQ(a->matches[i].graph_id, b->matches[i].graph_id);
    EXPECT_EQ(a->matches[i].phi_score, b->matches[i].phi_score);
    EXPECT_EQ(a->matches[i].gbd, b->matches[i].gbd);
  }
}

}  // namespace
}  // namespace gbda
