#include "baselines/graph_seriation.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gbda {
namespace {

TEST(SeriationTest, EmptyGraphProfile) {
  Graph empty;
  const SeriationProfile p = BuildSeriationProfile(empty);
  EXPECT_TRUE(p.labels.empty());
  EXPECT_TRUE(p.degrees.empty());
}

TEST(SeriationTest, ProfileCoversAllVertices) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const SeriationProfile prof = BuildSeriationProfile(p.g2);
  EXPECT_EQ(prof.labels.size(), 4u);
  EXPECT_EQ(prof.degrees.size(), 4u);
}

TEST(SeriationTest, ProfileIsDeterministic) {
  Rng rng(3);
  GeneratorOptions opts;
  opts.num_vertices = 30;
  Result<Graph> g = GenerateConnectedGraph(opts, &rng);
  ASSERT_TRUE(g.ok());
  const SeriationProfile a = BuildSeriationProfile(*g);
  const SeriationProfile b = BuildSeriationProfile(*g);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.degrees, b.degrees);
}

TEST(SeriationTest, IdenticalGraphsHaveZeroDistance) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  EXPECT_DOUBLE_EQ(SeriationGed(p.g1, p.g1), 0.0);
  EXPECT_DOUBLE_EQ(SeriationGed(p.g2, p.g2), 0.0);
}

TEST(SeriationTest, DistanceIsSymmetric) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  EXPECT_NEAR(SeriationGed(p.g1, p.g2), SeriationGed(p.g2, p.g1), 1e-9);
}

TEST(SeriationTest, DistanceToEmptyGraph) {
  Graph empty;
  Graph chain = Graph::WithVertices(3, 1);
  ASSERT_TRUE(chain.AddEdge(0, 1, 1).ok());
  ASSERT_TRUE(chain.AddEdge(1, 2, 1).ok());
  // Deleting 3 vertices at unit gap cost.
  EXPECT_DOUBLE_EQ(SeriationGed(chain, empty), 3.0);
}

TEST(SeriationTest, SensitiveToLabelDifferences) {
  Graph a = Graph::WithVertices(4, 1);
  for (uint32_t i = 1; i < 4; ++i) ASSERT_TRUE(a.AddEdge(i - 1, i, 1).ok());
  Graph b = a;
  ASSERT_TRUE(b.RelabelVertex(2, 9).ok());
  EXPECT_GT(SeriationGed(a, b), 0.0);
  EXPECT_LE(SeriationGed(a, b), 2.0);  // one relabel-ish difference
}

TEST(SeriationTest, GrowsWithStructuralDivergence) {
  Rng rng(11);
  GeneratorOptions opts;
  opts.num_vertices = 20;
  opts.extra_edges = 10;
  Result<Graph> base = GenerateConnectedGraph(opts, &rng);
  ASSERT_TRUE(base.ok());
  opts.num_vertices = 40;
  opts.extra_edges = 40;
  Result<Graph> far = GenerateConnectedGraph(opts, &rng);
  ASSERT_TRUE(far.ok());
  const double near_dist = SeriationGed(*base, *base);
  const double far_dist = SeriationGed(*base, *far);
  EXPECT_LT(near_dist, far_dist);
  // A graph 20 vertices larger needs at least 20 unit insertions.
  EXPECT_GE(far_dist, 20.0);
}

}  // namespace
}  // namespace gbda
