#include "core/gbda_search.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/dataset_profiles.h"

namespace gbda {
namespace {

class GbdaSearchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = FingerprintProfile(0.03);
    profile.seed = 99;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));

    GbdaIndexOptions options;
    options.tau_max = 10;
    options.gbd_prior.num_sample_pairs = 2000;
    Result<GbdaIndex> index = GbdaIndex::Build(dataset_->db, options);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = new GbdaIndex(std::move(*index));
    search_ = new GbdaSearch(&dataset_->db, index_);
  }
  static void TearDownTestSuite() {
    delete search_;
    delete index_;
    delete dataset_;
    search_ = nullptr;
    index_ = nullptr;
    dataset_ = nullptr;
  }

  static GeneratedDataset* dataset_;
  static GbdaIndex* index_;
  static GbdaSearch* search_;
};

GeneratedDataset* GbdaSearchTest::dataset_ = nullptr;
GbdaIndex* GbdaSearchTest::index_ = nullptr;
GbdaSearch* GbdaSearchTest::search_ = nullptr;

TEST_F(GbdaSearchTest, IndexBuildProducedArtifacts) {
  EXPECT_EQ(index_->num_graphs(), dataset_->db.size());
  EXPECT_GT(index_->gbd_prior().pairs_sampled(), 0u);
  EXPECT_GT(index_->costs().gbd_prior_seconds, 0.0);
  EXPECT_GT(index_->avg_vertices(), 0.0);
}

TEST_F(GbdaSearchTest, QueryReturnsWellFormedResult) {
  SearchOptions opts;
  opts.tau_hat = 5;
  opts.gamma = 0.5;
  Result<SearchResult> r = search_->Query(dataset_->queries[0], opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->candidates_evaluated, dataset_->db.size());
  for (const SearchMatch& m : r->matches) {
    EXPECT_LT(m.graph_id, dataset_->db.size());
    EXPECT_GE(m.phi_score, opts.gamma);
    EXPECT_GE(m.gbd, 0);
  }
}

TEST_F(GbdaSearchTest, HigherGammaShrinksResultSet) {
  SearchOptions lo, hi;
  lo.tau_hat = hi.tau_hat = 6;
  lo.gamma = 0.3;
  hi.gamma = 0.9;
  Result<SearchResult> r_lo = search_->Query(dataset_->queries[0], lo);
  Result<SearchResult> r_hi = search_->Query(dataset_->queries[0], hi);
  ASSERT_TRUE(r_lo.ok());
  ASSERT_TRUE(r_hi.ok());
  std::set<size_t> lo_set, hi_set;
  for (const auto& m : r_lo->matches) lo_set.insert(m.graph_id);
  for (const auto& m : r_hi->matches) hi_set.insert(m.graph_id);
  for (size_t id : hi_set) EXPECT_TRUE(lo_set.count(id)) << id;
}

TEST_F(GbdaSearchTest, LargerTauGrowsResultSet) {
  SearchOptions small, big;
  small.tau_hat = 2;
  big.tau_hat = 9;
  small.gamma = big.gamma = 0.6;
  Result<SearchResult> r_small = search_->Query(dataset_->queries[1], small);
  Result<SearchResult> r_big = search_->Query(dataset_->queries[1], big);
  ASSERT_TRUE(r_small.ok());
  ASSERT_TRUE(r_big.ok());
  // Phi is monotone in tau_hat, so every small-tau match stays a match.
  std::set<size_t> big_set;
  for (const auto& m : r_big->matches) big_set.insert(m.graph_id);
  for (const auto& m : r_small->matches) {
    EXPECT_TRUE(big_set.count(m.graph_id)) << m.graph_id;
  }
}

TEST_F(GbdaSearchTest, RejectsTauBeyondIndex) {
  SearchOptions opts;
  opts.tau_hat = index_->tau_max() + 1;
  EXPECT_FALSE(search_->Query(dataset_->queries[0], opts).ok());
}

TEST_F(GbdaSearchTest, VariantsProduceResults) {
  for (GbdaVariant v : {GbdaVariant::kStandard, GbdaVariant::kAverageSize,
                        GbdaVariant::kWeightedGbd}) {
    SearchOptions opts;
    opts.tau_hat = 6;
    opts.gamma = 0.4;
    opts.variant = v;
    opts.vgbd_w = 0.5;
    Result<SearchResult> r = search_->Query(dataset_->queries[0], opts);
    EXPECT_TRUE(r.ok()) << static_cast<int>(v);
  }
}

TEST_F(GbdaSearchTest, DeterministicAcrossRepeats) {
  SearchOptions opts;
  opts.tau_hat = 5;
  opts.gamma = 0.7;
  Result<SearchResult> a = search_->Query(dataset_->queries[2], opts);
  Result<SearchResult> b = search_->Query(dataset_->queries[2], opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->matches.size(), b->matches.size());
  for (size_t i = 0; i < a->matches.size(); ++i) {
    EXPECT_EQ(a->matches[i].graph_id, b->matches[i].graph_id);
    EXPECT_DOUBLE_EQ(a->matches[i].phi_score, b->matches[i].phi_score);
  }
}

TEST_F(GbdaSearchTest, TopKReturnsRankedPrefix) {
  SearchOptions opts;
  opts.tau_hat = 6;
  opts.gamma = 0.0;  // ignored by QueryTopK anyway
  const Graph& query = dataset_->queries[0];
  Result<SearchResult> top3 = search_->QueryTopK(query, 3, opts);
  Result<SearchResult> top10 = search_->QueryTopK(query, 10, opts);
  ASSERT_TRUE(top3.ok());
  ASSERT_TRUE(top10.ok());
  EXPECT_LE(top3->matches.size(), 3u);
  EXPECT_LE(top10->matches.size(), 10u);
  // Scores descend and top3 is a prefix of top10.
  for (size_t i = 1; i < top10->matches.size(); ++i) {
    EXPECT_GE(top10->matches[i - 1].phi_score, top10->matches[i].phi_score);
  }
  for (size_t i = 0; i < top3->matches.size(); ++i) {
    EXPECT_EQ(top3->matches[i].graph_id, top10->matches[i].graph_id);
  }
}

TEST_F(GbdaSearchTest, TopKZeroIsEmpty) {
  // k = 0 is the defined-empty ranking (decided at the API boundary, no
  // scan; see kScanAllMatches in gbda_search.h) — not an error, and not
  // the kScanAllMatches sentinel.
  SearchOptions opts;
  opts.tau_hat = 5;
  Result<SearchResult> r = search_->QueryTopK(dataset_->queries[0], 0, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->matches.empty());
  EXPECT_EQ(r->candidates_evaluated, 0u);
  EXPECT_EQ(r->pruned_by_bound, 0u);
}

TEST_F(GbdaSearchTest, TauZeroQueryEndToEnd) {
  // The tau_hat = 0 boundary of the posterior: Lambda1(0, phi) is the
  // indicator [phi == 0], so only GBD-0 candidates carry posterior mass —
  // with and without the prefilter (Passes at tau 0), and identically
  // through the ranking path.
  const Graph query = dataset_->db.graph(0);
  std::vector<SearchResult> results;
  for (bool prefilter : {false, true}) {
    SearchOptions opts;
    opts.tau_hat = 0;
    opts.gamma = 0.5;
    opts.use_prefilter = prefilter;
    Result<SearchResult> r = search_->Query(query, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_FALSE(r->matches.empty()) << "prefilter=" << prefilter;
    bool found_self = false;
    for (const SearchMatch& m : r->matches) {
      EXPECT_EQ(m.gbd, 0);
      EXPECT_GT(m.phi_score, 0.0);
      found_self |= m.graph_id == 0;
    }
    EXPECT_TRUE(found_self);
    results.push_back(std::move(*r));
  }
  // The prefilter is sound at tau 0: same accepted set either way.
  ASSERT_EQ(results[0].matches.size(), results[1].matches.size());
  for (size_t i = 0; i < results[0].matches.size(); ++i) {
    EXPECT_EQ(results[0].matches[i].graph_id, results[1].matches[i].graph_id);
    EXPECT_EQ(results[0].matches[i].phi_score,
              results[1].matches[i].phi_score);
  }
  // Ranking at the boundary: pruned top-k equals the exhaustive ranking.
  SearchOptions pruned;
  pruned.tau_hat = 0;
  SearchOptions exhaustive = pruned;
  exhaustive.topk_early_termination = false;
  Result<SearchResult> a = search_->QueryTopK(query, 5, pruned);
  Result<SearchResult> b = search_->QueryTopK(query, 5, exhaustive);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->matches.size(), b->matches.size());
  for (size_t i = 0; i < a->matches.size(); ++i) {
    EXPECT_EQ(a->matches[i].graph_id, b->matches[i].graph_id);
    EXPECT_EQ(a->matches[i].phi_score, b->matches[i].phi_score);
    EXPECT_EQ(a->matches[i].gbd, b->matches[i].gbd);
  }
}

TEST_F(GbdaSearchTest, TopKWithOversizedKReturnsWholeDatabase) {
  SearchOptions opts;
  opts.tau_hat = 5;
  Result<SearchResult> r =
      search_->QueryTopK(dataset_->queries[0], 1u << 20, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->matches.size(), dataset_->db.size());
}

TEST_F(GbdaSearchTest, SelfQueryRanksExactCopyHighly) {
  // Query with an exact copy of a database graph: that graph has GBD 0 and
  // must be accepted at any reasonable gamma.
  SearchOptions opts;
  opts.tau_hat = 5;
  opts.gamma = 0.5;
  const Graph& target = dataset_->db.graph(0);
  Result<SearchResult> r = search_->Query(target, opts);
  ASSERT_TRUE(r.ok());
  bool found = false;
  for (const auto& m : r->matches) {
    if (m.graph_id == 0) {
      found = true;
      EXPECT_EQ(m.gbd, 0);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace gbda
