#include "common/serialize.h"

#include <gtest/gtest.h>

namespace gbda {
namespace {

TEST(SerializeTest, RoundTripAllTypes) {
  BinaryWriter w;
  w.PutU32(0xDEADBEEF);
  w.PutU64(123456789012345ULL);
  w.PutI64(-42);
  w.PutDouble(3.14159);
  w.PutString("hello world");
  w.PutPodVector<double>({1.0, 2.5, -3.0});
  w.PutPodVector<uint32_t>({});

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 123456789012345ULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.14159);
  EXPECT_EQ(*r.GetString(), "hello world");
  EXPECT_EQ(*r.GetPodVector<double>(), (std::vector<double>{1.0, 2.5, -3.0}));
  EXPECT_TRUE(r.GetPodVector<uint32_t>()->empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncatedValueFails) {
  BinaryWriter w;
  w.PutU64(7);
  BinaryReader r(std::string_view(w.buffer().data(), 4));
  EXPECT_FALSE(r.GetU64().ok());
}

TEST(SerializeTest, TruncatedStringFails) {
  BinaryWriter w;
  w.PutString("long enough payload");
  std::string data = w.buffer();
  data.resize(data.size() - 5);
  BinaryReader r(data);
  Result<std::string> s = r.GetString();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, TruncatedVectorFails) {
  BinaryWriter w;
  w.PutPodVector<double>({1.0, 2.0, 3.0});
  std::string data = w.buffer();
  data.resize(data.size() - 1);
  BinaryReader r(data);
  EXPECT_FALSE(r.GetPodVector<double>().ok());
}

TEST(SerializeTest, HostileStringLengthDoesNotWrap) {
  // A length prefix near UINT64_MAX used to wrap the pos_ + len bounds
  // check, letting the read run past the buffer and corrupting pos_.
  for (uint64_t hostile :
       {~uint64_t{0}, ~uint64_t{0} - 7, uint64_t{1} << 63}) {
    BinaryWriter w;
    w.PutU64(hostile);
    w.PutU32(0xABABABAB);  // a few real bytes after the lying prefix
    BinaryReader r(w.buffer());
    Result<std::string> s = r.GetString();
    ASSERT_FALSE(s.ok()) << "len=" << hostile;
    EXPECT_EQ(s.status().code(), StatusCode::kOutOfRange);
    // The reader must stay usable at a sane position after the failure.
    EXPECT_EQ(r.position(), 8u);
    EXPECT_EQ(*r.GetU32(), 0xABABABABu);
  }
}

TEST(SerializeTest, HostileVectorLengthDoesNotWrapByteCount) {
  // With sizeof(double) == 8, a count of 2^61 + 1 makes count * 8 wrap to 8
  // in uint64: the old byte-count check passed and the decoder tried to
  // allocate 2^61 elements. The count itself must be validated.
  BinaryWriter w;
  w.PutU64((uint64_t{1} << 61) + 1);
  w.PutDouble(1.0);  // the 8 bytes the wrapped count claimed to need
  BinaryReader r(w.buffer());
  Result<std::vector<double>> v = r.GetPodVector<double>();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, OversizedVectorCountFails) {
  // A plausible-looking but too-large count must fail before allocating.
  BinaryWriter w;
  w.PutU64(uint64_t{1} << 40);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.GetPodVector<uint32_t>().ok());
}

TEST(SerializeTest, EmptyBufferAtEnd) {
  BinaryReader r("");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(r.GetU32().ok());
}

TEST(SerializeTest, SequentialPosition) {
  BinaryWriter w;
  w.PutU32(1);
  w.PutU32(2);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.position(), 0u);
  ASSERT_TRUE(r.GetU32().ok());
  EXPECT_EQ(r.position(), 4u);
}

}  // namespace
}  // namespace gbda
