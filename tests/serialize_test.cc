#include "common/serialize.h"

#include <gtest/gtest.h>

namespace gbda {
namespace {

TEST(SerializeTest, RoundTripAllTypes) {
  BinaryWriter w;
  w.PutU32(0xDEADBEEF);
  w.PutU64(123456789012345ULL);
  w.PutI64(-42);
  w.PutDouble(3.14159);
  w.PutString("hello world");
  w.PutPodVector<double>({1.0, 2.5, -3.0});
  w.PutPodVector<uint32_t>({});

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 123456789012345ULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.14159);
  EXPECT_EQ(*r.GetString(), "hello world");
  EXPECT_EQ(*r.GetPodVector<double>(), (std::vector<double>{1.0, 2.5, -3.0}));
  EXPECT_TRUE(r.GetPodVector<uint32_t>()->empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncatedValueFails) {
  BinaryWriter w;
  w.PutU64(7);
  BinaryReader r(std::string_view(w.buffer().data(), 4));
  EXPECT_FALSE(r.GetU64().ok());
}

TEST(SerializeTest, TruncatedStringFails) {
  BinaryWriter w;
  w.PutString("long enough payload");
  std::string data = w.buffer();
  data.resize(data.size() - 5);
  BinaryReader r(data);
  Result<std::string> s = r.GetString();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, TruncatedVectorFails) {
  BinaryWriter w;
  w.PutPodVector<double>({1.0, 2.0, 3.0});
  std::string data = w.buffer();
  data.resize(data.size() - 1);
  BinaryReader r(data);
  EXPECT_FALSE(r.GetPodVector<double>().ok());
}

TEST(SerializeTest, EmptyBufferAtEnd) {
  BinaryReader r("");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(r.GetU32().ok());
}

TEST(SerializeTest, SequentialPosition) {
  BinaryWriter w;
  w.PutU32(1);
  w.PutU32(2);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.position(), 0u);
  ASSERT_TRUE(r.GetU32().ok());
  EXPECT_EQ(r.position(), 4u);
}

}  // namespace
}  // namespace gbda
