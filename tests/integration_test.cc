#include <gtest/gtest.h>

#include <sstream>

#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "eval/experiment.h"
#include "graph/graph_io.h"

namespace gbda {
namespace {

// End-to-end pipeline: generate a profile dataset, persist it in transaction
// format, reload it, rebuild the offline index, and verify the online stage
// behaves identically on the reloaded database.
TEST(IntegrationTest, FullPipelineSurvivesTextRoundTrip) {
  DatasetProfile profile = GrecProfile(0.025);
  profile.seed = 404;
  Result<GeneratedDataset> ds = GenerateDataset(profile);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();

  // Persist database AND queries through one stream so the reloaded side
  // lives in a single consistent (renumbered) label-id space, the way a real
  // client parsing everything from disk would. Both sides search the
  // combined collection, using the trailing graphs as queries.
  GraphDatabase combined = ds->db;  // copy; dictionaries travel along
  const size_t db_size = combined.size();
  for (const Graph& q : ds->queries) combined.Add(q);
  std::ostringstream out;
  ASSERT_TRUE(WriteTransactionStream(combined, out).ok());
  std::istringstream in(out.str());
  Result<GraphDatabase> reparsed = ReadTransactionStream(in);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->size(), combined.size());

  GbdaIndexOptions options;
  options.tau_max = 8;
  options.gbd_prior.num_sample_pairs = 1000;
  // The text format records only the labels that occur; pin the model's
  // label universe so both indexes use identical parameters.
  options.model_vertex_labels =
      static_cast<int64_t>(combined.vertex_labels().num_real_labels());
  options.model_edge_labels =
      static_cast<int64_t>(combined.edge_labels().num_real_labels());
  Result<GbdaIndex> index_orig = GbdaIndex::Build(combined, options);
  Result<GbdaIndex> index_reload = GbdaIndex::Build(*reparsed, options);
  ASSERT_TRUE(index_orig.ok());
  ASSERT_TRUE(index_reload.ok());

  GbdaSearch search_orig(&combined, &*index_orig);
  GbdaSearch search_reload(&*reparsed, &*index_reload);
  SearchOptions opts;
  opts.tau_hat = 6;
  opts.gamma = 0.6;
  for (size_t q = 0; q < std::min<size_t>(ds->queries.size(), 3); ++q) {
    Result<SearchResult> a =
        search_orig.Query(combined.graph(db_size + q), opts);
    Result<SearchResult> b =
        search_reload.Query(reparsed->graph(db_size + q), opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Label ids are renumbered by interning order, but GBD values and hence
    // the accepted id sets must coincide.
    ASSERT_EQ(a->matches.size(), b->matches.size());
    ASSERT_FALSE(a->matches.empty());  // the query itself is in the db
    for (size_t i = 0; i < a->matches.size(); ++i) {
      EXPECT_EQ(a->matches[i].graph_id, b->matches[i].graph_id);
      EXPECT_EQ(a->matches[i].gbd, b->matches[i].gbd);
    }
  }
}

// The search quality chain: GBDA with a sensible configuration retrieves a
// good share of the true matches on an easy synthetic dataset.
TEST(IntegrationTest, GbdaFindsMostTrueMatchesOnEasyData) {
  DatasetProfile profile = FingerprintProfile(0.03);
  profile.seed = 777;
  Result<GeneratedDataset> ds = GenerateDataset(profile);
  ASSERT_TRUE(ds.ok());

  Result<std::unique_ptr<ExperimentRunner>> runner =
      ExperimentRunner::Create(&*ds, /*index_tau_max=*/10);
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();

  ExperimentConfig config;
  config.method = Method::kGbda;
  config.tau_hat = 8;
  config.gamma = 0.5;
  Result<MethodMetrics> metrics = (*runner)->Run(config);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  // Against certified ground truth, GBDA at gamma=0.5 should do clearly
  // better than chance on both axes.
  EXPECT_GT(metrics->f1, 0.3);
}

// Cross-dataset sanity: the relative efficiency ordering of Figure 7 —
// GBDA's online stage is faster per query than the Hungarian-based LSAP.
TEST(IntegrationTest, GbdaQueriesFasterThanLsap) {
  DatasetProfile profile = AidsProfile(0.02);
  profile.seed = 31337;
  Result<GeneratedDataset> ds = GenerateDataset(profile);
  ASSERT_TRUE(ds.ok());
  Result<std::unique_ptr<ExperimentRunner>> runner =
      ExperimentRunner::Create(&*ds, /*index_tau_max=*/10);
  ASSERT_TRUE(runner.ok());

  ExperimentConfig gbda;
  gbda.method = Method::kGbda;
  gbda.tau_hat = 5;
  ExperimentConfig lsap = gbda;
  lsap.method = Method::kLsap;
  Result<MethodMetrics> m_gbda = (*runner)->Run(gbda);
  Result<MethodMetrics> m_lsap = (*runner)->Run(lsap);
  ASSERT_TRUE(m_gbda.ok());
  ASSERT_TRUE(m_lsap.ok());
  // AIDS-profile graphs have ~95 vertices: Hungarian O(n^3) per pair vs
  // GBDA O(nd + tau^3); the gap should be at least 2x even on small runs.
  EXPECT_LT(m_gbda->avg_query_seconds, m_lsap->avg_query_seconds / 2.0);
}

}  // namespace
}  // namespace gbda
