#include "graph/label_dict.h"

#include <gtest/gtest.h>

namespace gbda {
namespace {

TEST(LabelDictTest, ReservesVirtualLabelAtZero) {
  LabelDict dict;
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.num_real_labels(), 0u);
  Result<std::string> name = dict.Name(kVirtualLabel);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "\xCE\xB5");  // epsilon
}

TEST(LabelDictTest, InternIsIdempotent) {
  LabelDict dict;
  const LabelId a = dict.Intern("carbon");
  const LabelId b = dict.Intern("carbon");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_NE(a, kVirtualLabel);
}

TEST(LabelDictTest, DistinctNamesGetDistinctIds) {
  LabelDict dict;
  const LabelId c = dict.Intern("C");
  const LabelId n = dict.Intern("N");
  const LabelId o = dict.Intern("O");
  EXPECT_NE(c, n);
  EXPECT_NE(n, o);
  EXPECT_EQ(dict.num_real_labels(), 3u);
}

TEST(LabelDictTest, FindWithoutInterning) {
  LabelDict dict;
  dict.Intern("x");
  EXPECT_TRUE(dict.Find("x").ok());
  Result<LabelId> missing = dict.Find("y");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(dict.size(), 2u);  // Find must not intern
}

TEST(LabelDictTest, NameRoundTrip) {
  LabelDict dict;
  const LabelId id = dict.Intern("aromatic");
  Result<std::string> name = dict.Name(id);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "aromatic");
  EXPECT_FALSE(dict.Name(999).ok());
}

TEST(LabelDictTest, InternNumbered) {
  LabelDict dict;
  dict.InternNumbered(3, "L");
  EXPECT_EQ(dict.num_real_labels(), 3u);
  EXPECT_TRUE(dict.Find("L0").ok());
  EXPECT_TRUE(dict.Find("L2").ok());
  EXPECT_FALSE(dict.Find("L3").ok());
  // Ids are dense starting at 1.
  EXPECT_EQ(*dict.Find("L0"), 1u);
  EXPECT_EQ(*dict.Find("L2"), 3u);
}

TEST(LabelDictTest, InterningEpsilonNameReturnsVirtual) {
  LabelDict dict;
  EXPECT_EQ(dict.Intern("\xCE\xB5"), kVirtualLabel);
  EXPECT_EQ(dict.size(), 1u);
}

}  // namespace
}  // namespace gbda
