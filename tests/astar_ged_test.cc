#include "baselines/astar_ged.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph_edit.h"
#include "test_util.h"

namespace gbda {
namespace {

TEST(AStarTest, IdenticalGraphsHaveZeroDistance) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  EXPECT_EQ(*ExactGedValue(p.g1, p.g1), 0);
  EXPECT_EQ(*ExactGedValue(p.g2, p.g2), 0);
}

TEST(AStarTest, PaperExample1DistanceIsThree) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  Result<ExactGedResult> r = ExactGed(p.g1, p.g2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->distance, 3);
  EXPECT_TRUE(r->exact);
}

TEST(AStarTest, Example4DistanceIsTwo) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  EXPECT_EQ(*ExactGedValue(p.ex4_g1, p.ex4_g2), 2);
}

TEST(AStarTest, EmptyGraphCases) {
  Graph empty;
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  EXPECT_EQ(*ExactGedValue(empty, empty), 0);
  // Building g1 from nothing: 3 vertices + 3 edges.
  EXPECT_EQ(*ExactGedValue(empty, p.g1), 6);
  EXPECT_EQ(*ExactGedValue(p.g1, empty), 6);
}

TEST(AStarTest, SingleOperationDistances) {
  Graph a = Graph::WithVertices(2, 1);
  ASSERT_TRUE(a.AddEdge(0, 1, 1).ok());

  Graph relabeled = a;
  ASSERT_TRUE(relabeled.RelabelVertex(0, 2).ok());
  EXPECT_EQ(*ExactGedValue(a, relabeled), 1);

  Graph edge_relabeled = a;
  ASSERT_TRUE(edge_relabeled.RelabelEdge(0, 1, 2).ok());
  EXPECT_EQ(*ExactGedValue(a, edge_relabeled), 1);

  Graph with_vertex = a;
  with_vertex.AddVertex(1);
  EXPECT_EQ(*ExactGedValue(a, with_vertex), 1);

  Graph without_edge = a;
  ASSERT_TRUE(without_edge.RemoveEdge(0, 1).ok());
  EXPECT_EQ(*ExactGedValue(a, without_edge), 1);
}

TEST(AStarTest, SymmetricDistance) {
  Rng rng(77);
  GeneratorOptions opts;
  opts.num_vertices = 5;
  opts.num_vertex_labels = 2;
  opts.num_edge_labels = 2;
  for (int trial = 0; trial < 8; ++trial) {
    Result<Graph> a = GenerateConnectedGraph(opts, &rng);
    Result<Graph> b = GenerateConnectedGraph(opts, &rng);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*ExactGedValue(*a, *b), *ExactGedValue(*b, *a));
  }
}

TEST(AStarTest, TriangleInequality) {
  Rng rng(88);
  GeneratorOptions opts;
  opts.num_vertices = 5;
  opts.num_vertex_labels = 2;
  opts.num_edge_labels = 2;
  for (int trial = 0; trial < 5; ++trial) {
    Result<Graph> a = GenerateConnectedGraph(opts, &rng);
    Result<Graph> b = GenerateConnectedGraph(opts, &rng);
    Result<Graph> c = GenerateConnectedGraph(opts, &rng);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(c.ok());
    const int64_t ab = *ExactGedValue(*a, *b);
    const int64_t bc = *ExactGedValue(*b, *c);
    const int64_t ac = *ExactGedValue(*a, *c);
    EXPECT_LE(ac, ab + bc);
  }
}

class EditDistanceUpperBound : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EditDistanceUpperBound, GedNeverExceedsSequenceLength) {
  Rng rng(GetParam());
  GeneratorOptions opts;
  opts.num_vertices = 6;
  opts.extra_edges = 3;
  opts.num_vertex_labels = 3;
  opts.num_edge_labels = 2;
  Result<Graph> base = GenerateConnectedGraph(opts, &rng);
  ASSERT_TRUE(base.ok());
  for (size_t len = 0; len <= 4; ++len) {
    Result<RandomEditResult> edited = RandomEditSequence(
        *base, len, opts.num_vertex_labels, opts.num_edge_labels, &rng);
    ASSERT_TRUE(edited.ok());
    Result<int64_t> ged = ExactGedValue(*base, edited->edited);
    ASSERT_TRUE(ged.ok());
    EXPECT_LE(*ged, static_cast<int64_t>(len));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistanceUpperBound,
                         ::testing::Values(101, 102, 103, 104, 105));

TEST(AStarTest, LimitSaturates) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  AStarOptions opts;
  opts.limit = 1;  // true distance is 3
  Result<ExactGedResult> r = ExactGed(p.g1, p.g2, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->distance, 2);  // limit + 1
  EXPECT_FALSE(r->exact);

  opts.limit = 3;
  r = ExactGed(p.g1, p.g2, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->distance, 3);
  EXPECT_TRUE(r->exact);
}

TEST(AStarTest, BudgetExhaustionReported) {
  Rng rng(99);
  GeneratorOptions opts;
  opts.num_vertices = 12;
  opts.extra_edges = 14;
  Result<Graph> a = GenerateConnectedGraph(opts, &rng);
  Result<Graph> b = GenerateConnectedGraph(opts, &rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  AStarOptions astar;
  astar.max_expansions = 10;  // absurdly small
  Result<ExactGedResult> r = ExactGed(*a, *b, astar);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(AStarTest, DistanceToSupergraph) {
  // a path of 3; b = same path plus a pendant vertex: distance 2 (AV + AE).
  Graph a = Graph::WithVertices(3, 1);
  ASSERT_TRUE(a.AddEdge(0, 1, 1).ok());
  ASSERT_TRUE(a.AddEdge(1, 2, 1).ok());
  Graph b = a;
  b.AddVertex(1);
  ASSERT_TRUE(b.AddEdge(2, 3, 1).ok());
  EXPECT_EQ(*ExactGedValue(a, b), 2);
}

}  // namespace
}  // namespace gbda
