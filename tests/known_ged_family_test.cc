#include "datagen/known_ged_family.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/astar_ged.h"

namespace gbda {
namespace {

FamilyOptions SmallFamilyOptions() {
  FamilyOptions opts;
  opts.generator.num_vertices = 8;
  opts.generator.num_vertex_labels = 4;
  opts.generator.num_edge_labels = 3;
  opts.generator.extra_edges = 3;
  opts.num_members = 6;
  opts.max_modifications = 3;
  opts.center_min_degree = 4;
  return opts;
}

TEST(SymmetricDifferenceTest, Basics) {
  EXPECT_EQ(SymmetricDifferenceSize({}, {}), 0);
  EXPECT_EQ(SymmetricDifferenceSize({1, 2}, {1, 2}), 0);
  EXPECT_EQ(SymmetricDifferenceSize({1, 2}, {2, 3}), 2);
  EXPECT_EQ(SymmetricDifferenceSize({1}, {}), 1);
  EXPECT_EQ(SymmetricDifferenceSize({0, 3, 5}, {1, 3, 7}), 4);
}

TEST(FamilyTest, ValidatesOptions) {
  Rng rng(1);
  FamilyOptions opts = SmallFamilyOptions();
  opts.generator.num_edge_labels = 1;  // cannot relabel within a 1-alphabet
  EXPECT_FALSE(GenerateKnownGedFamily(opts, &rng).ok());

  opts = SmallFamilyOptions();
  opts.max_modifications = 0;
  EXPECT_FALSE(GenerateKnownGedFamily(opts, &rng).ok());

  opts = SmallFamilyOptions();
  opts.num_members = 100000;  // no 8-vertex template hosts that many subsets
  EXPECT_FALSE(GenerateKnownGedFamily(opts, &rng).ok());

  opts = SmallFamilyOptions();
  opts.num_marker_vertices = 2;  // markers need real labels
  EXPECT_FALSE(GenerateKnownGedFamily(opts, &rng).ok());
}

TEST(FamilyTest, ProducesRequestedMembers) {
  Rng rng(2);
  const FamilyOptions opts = SmallFamilyOptions();
  Result<KnownGedFamily> fam = GenerateKnownGedFamily(opts, &rng);
  ASSERT_TRUE(fam.ok()) << fam.status().ToString();
  EXPECT_EQ(fam->members.size(), opts.num_members);
  EXPECT_EQ(fam->member_states.size(), opts.num_members);
  // Member 0 is the unmodified template.
  for (PoolEdgeState s : fam->member_states[0]) {
    EXPECT_EQ(s, PoolEdgeState::kOriginal);
  }
  // State vectors are pairwise distinct and cover the whole pool.
  std::set<std::vector<PoolEdgeState>> distinct(fam->member_states.begin(),
                                                fam->member_states.end());
  EXPECT_EQ(distinct.size(), opts.num_members);
  for (const auto& state : fam->member_states) {
    EXPECT_EQ(state.size(), fam->edge_pool.size());
  }
  // All members share the vertex count (edges may be deleted, vertices not).
  for (const Graph& g : fam->members) {
    EXPECT_EQ(g.num_vertices(), fam->members[0].num_vertices());
    EXPECT_LE(g.num_edges(), fam->members[0].num_edges());
  }
}

TEST(FamilyTest, KnownGedIsAMetricOnIndexSets) {
  Rng rng(3);
  Result<KnownGedFamily> fam = GenerateKnownGedFamily(SmallFamilyOptions(), &rng);
  ASSERT_TRUE(fam.ok());
  const size_t n = fam->members.size();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(fam->KnownGed(i, i), 0);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(fam->KnownGed(i, j), fam->KnownGed(j, i));
      for (size_t k = 0; k < n; ++k) {
        EXPECT_LE(fam->KnownGed(i, k),
                  fam->KnownGed(i, j) + fam->KnownGed(j, k));
      }
    }
  }
}

class FamilyExactnessSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FamilyExactnessSweep, ClaimedGedMatchesAStar) {
  // The critical datagen property: the claimed pairwise GED of family
  // members equals the exact A* GED. Small templates keep A* tractable.
  Rng rng(GetParam());
  FamilyOptions opts = SmallFamilyOptions();
  opts.generator.num_vertices = 7;
  opts.num_members = 5;
  Result<KnownGedFamily> fam = GenerateKnownGedFamily(opts, &rng);
  ASSERT_TRUE(fam.ok()) << fam.status().ToString();
  for (size_t i = 0; i < fam->members.size(); ++i) {
    for (size_t j = i + 1; j < fam->members.size(); ++j) {
      Result<int64_t> exact =
          ExactGedValue(fam->members[i], fam->members[j]);
      ASSERT_TRUE(exact.ok()) << exact.status().ToString();
      EXPECT_EQ(*exact, fam->KnownGed(i, j))
          << "seed " << GetParam() << " pair (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FamilyExactnessSweep,
                         ::testing::Values(10, 20, 30, 40, 50, 60));

TEST(FamilyTest, MarkerChainAppendedAndImmutable) {
  Rng rng(17);
  FamilyOptions opts = SmallFamilyOptions();
  opts.num_marker_vertices = 3;
  opts.marker_vertex_label = 77;
  opts.marker_edge_label = 78;
  Result<KnownGedFamily> fam = GenerateKnownGedFamily(opts, &rng);
  ASSERT_TRUE(fam.ok()) << fam.status().ToString();
  for (const Graph& g : fam->members) {
    ASSERT_EQ(g.num_vertices(), opts.generator.num_vertices + 3);
    size_t marker_vertices = 0, marker_edges = 0;
    for (uint32_t v = 0; v < g.num_vertices(); ++v) {
      if (g.VertexLabel(v) == 77) ++marker_vertices;
    }
    for (const auto& e : g.SortedEdges()) {
      if (e.label == 78) ++marker_edges;
    }
    // The chain: 3 vertices, 3 edges (attachment + 2 links), never modified.
    EXPECT_EQ(marker_vertices, 3u);
    EXPECT_EQ(marker_edges, 3u);
  }
}

class MarkerFamilyExactness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MarkerFamilyExactness, ClaimedGedMatchesAStarWithMarkers) {
  Rng rng(GetParam());
  FamilyOptions opts;
  opts.generator.num_vertices = 5;
  opts.generator.num_vertex_labels = 3;
  opts.generator.num_edge_labels = 3;
  opts.num_members = 4;
  opts.max_modifications = 3;
  opts.center_min_degree = 3;
  opts.num_marker_vertices = 2;
  opts.marker_vertex_label = 50;
  opts.marker_edge_label = 51;
  Result<KnownGedFamily> fam = GenerateKnownGedFamily(opts, &rng);
  ASSERT_TRUE(fam.ok()) << fam.status().ToString();
  for (size_t i = 0; i < fam->members.size(); ++i) {
    for (size_t j = i + 1; j < fam->members.size(); ++j) {
      Result<int64_t> exact = ExactGedValue(fam->members[i], fam->members[j]);
      ASSERT_TRUE(exact.ok());
      EXPECT_EQ(*exact, fam->KnownGed(i, j)) << "pair " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarkerFamilyExactness,
                         ::testing::Values(70, 71, 72, 73));

TEST(FamilyTest, DeterministicForSameSeed) {
  const FamilyOptions opts = SmallFamilyOptions();
  Rng a(9), b(9);
  Result<KnownGedFamily> fa = GenerateKnownGedFamily(opts, &a);
  Result<KnownGedFamily> fb = GenerateKnownGedFamily(opts, &b);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  ASSERT_EQ(fa->members.size(), fb->members.size());
  for (size_t i = 0; i < fa->members.size(); ++i) {
    EXPECT_TRUE(fa->members[i].IdenticalTo(fb->members[i]));
  }
}

}  // namespace
}  // namespace gbda
