#include "math/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/rng.h"

namespace gbda {
namespace {

double BruteForceAssignment(const DenseMatrix& cost) {
  const size_t n = cost.rows();
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  double best = std::numeric_limits<double>::infinity();
  do {
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) total += cost.At(r, perm[r]);
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

DenseMatrix RandomCost(size_t n, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix cost(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) cost.At(r, c) = rng.Uniform(0.0, 10.0);
  }
  return cost;
}

TEST(HungarianTest, RejectsEmptyAndNonSquare) {
  EXPECT_FALSE(SolveAssignment(DenseMatrix()).ok());
  EXPECT_FALSE(SolveAssignment(DenseMatrix(2, 3)).ok());
  EXPECT_FALSE(SolveAssignmentGreedySort(DenseMatrix()).ok());
  EXPECT_FALSE(SolveAssignmentGreedySort(DenseMatrix(3, 2)).ok());
}

TEST(HungarianTest, TrivialOneByOne) {
  DenseMatrix cost(1, 1);
  cost.At(0, 0) = 3.5;
  Result<AssignmentResult> r = SolveAssignment(cost);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->cost, 3.5);
  EXPECT_EQ(r->row_to_col[0], 0u);
}

TEST(HungarianTest, KnownThreeByThree) {
  // Classic example with optimum 5 on the anti-diagonal-ish assignment.
  DenseMatrix cost(3, 3);
  const double values[3][3] = {{1, 2, 3}, {2, 4, 6}, {3, 6, 9}};
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) cost.At(r, c) = values[r][c];
  }
  Result<AssignmentResult> r = SolveAssignment(cost);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->cost, 10.0);  // 3 + 4 + 3
}

TEST(HungarianTest, AssignmentIsPermutation) {
  const DenseMatrix cost = RandomCost(8, 17);
  Result<AssignmentResult> r = SolveAssignment(cost);
  ASSERT_TRUE(r.ok());
  std::vector<size_t> cols = r->row_to_col;
  std::sort(cols.begin(), cols.end());
  for (size_t i = 0; i < cols.size(); ++i) EXPECT_EQ(cols[i], i);
}

class HungarianVsBruteForce
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(HungarianVsBruteForce, MatchesExhaustiveSearch) {
  const auto [n, seed] = GetParam();
  const DenseMatrix cost = RandomCost(n, seed);
  Result<AssignmentResult> r = SolveAssignment(cost);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->cost, BruteForceAssignment(cost), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HungarianVsBruteForce,
    ::testing::Combine(::testing::Values(size_t{2}, size_t{3}, size_t{4},
                                         size_t{5}, size_t{6}, size_t{7}),
                       ::testing::Values(uint64_t{1}, uint64_t{2}, uint64_t{3},
                                         uint64_t{4}, uint64_t{5})));

class GreedyVsOptimal
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(GreedyVsOptimal, GreedyNeverBeatsHungarian) {
  const auto [n, seed] = GetParam();
  const DenseMatrix cost = RandomCost(n, seed);
  Result<AssignmentResult> exact = SolveAssignment(cost);
  Result<AssignmentResult> greedy = SolveAssignmentGreedySort(cost);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_GE(greedy->cost, exact->cost - 1e-9);
  // Greedy also returns a permutation.
  std::vector<size_t> cols = greedy->row_to_col;
  std::sort(cols.begin(), cols.end());
  for (size_t i = 0; i < cols.size(); ++i) EXPECT_EQ(cols[i], i);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyVsOptimal,
    ::testing::Combine(::testing::Values(size_t{3}, size_t{6}, size_t{12},
                                         size_t{20}),
                       ::testing::Values(uint64_t{11}, uint64_t{22},
                                         uint64_t{33})));

TEST(GreedySortTest, PicksGlobalMinimumFirst) {
  DenseMatrix cost(2, 2);
  cost.At(0, 0) = 5.0;
  cost.At(0, 1) = 1.0;
  cost.At(1, 0) = 2.0;
  cost.At(1, 1) = 9.0;
  Result<AssignmentResult> r = SolveAssignmentGreedySort(cost);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_to_col[0], 1u);
  EXPECT_EQ(r->row_to_col[1], 0u);
  EXPECT_DOUBLE_EQ(r->cost, 3.0);
}

TEST(HungarianTest, HandlesLargeUniformCosts) {
  // All-equal costs: any permutation is optimal; cost = n * c.
  DenseMatrix cost(16, 16, 2.5);
  Result<AssignmentResult> r = SolveAssignment(cost);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->cost, 40.0, 1e-9);
}

}  // namespace
}  // namespace gbda
