#include "service/dynamic_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "service/gbda_service.h"

namespace gbda {
namespace {

// A frozen rebuild of the dynamic corpus: exactly the live graphs in stable
// id order, dictionaries copied, indexed from scratch. Heap-held because
// GbdaService keeps pointers into `db`.
struct Reference {
  GraphDatabase db;
  std::unique_ptr<GbdaIndex> index;
  std::unique_ptr<GbdaService> service;
  std::vector<size_t> live_ids;  // reference dense id -> dynamic stable id
};

std::unique_ptr<Reference> MakeReference(const DynamicGbdaService& dyn,
                                         const GbdaIndexOptions& index_options,
                                         const ServiceOptions& service_options) {
  auto ref = std::make_unique<Reference>();
  ref->live_ids = dyn.db().LiveIds();
  ref->db.vertex_labels() = dyn.db().vertex_labels();
  ref->db.edge_labels() = dyn.db().edge_labels();
  for (size_t id : ref->live_ids) ref->db.Add(dyn.db().graph(id));
  Result<GbdaIndex> index = GbdaIndex::Build(ref->db, index_options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  if (!index.ok()) return nullptr;
  ref->index = std::make_unique<GbdaIndex>(std::move(*index));
  Result<std::unique_ptr<GbdaService>> service =
      GbdaService::Create(&ref->db, ref->index.get(), service_options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  if (!service.ok()) return nullptr;
  ref->service = std::move(*service);
  return ref;
}

// The acceptance contract: match set, ordering, exact phi doubles, GBDs and
// both scan counters must be bit-identical, with reference dense ids mapped
// through live_ids back to the dynamic service's stable ids.
void ExpectBitIdentical(const SearchResult& ref, const SearchResult& dyn,
                        const std::vector<size_t>& live_ids,
                        const std::string& label) {
  ASSERT_EQ(ref.matches.size(), dyn.matches.size()) << label;
  for (size_t i = 0; i < ref.matches.size(); ++i) {
    ASSERT_LT(ref.matches[i].graph_id, live_ids.size()) << label;
    EXPECT_EQ(live_ids[ref.matches[i].graph_id], dyn.matches[i].graph_id)
        << label << " match " << i;
    EXPECT_EQ(ref.matches[i].phi_score, dyn.matches[i].phi_score)
        << label << " match " << i;
    EXPECT_EQ(ref.matches[i].gbd, dyn.matches[i].gbd) << label << " match " << i;
  }
  EXPECT_EQ(ref.candidates_evaluated, dyn.candidates_evaluated) << label;
  EXPECT_EQ(ref.prefiltered_out, dyn.prefiltered_out) << label;
}

class DynamicServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = FingerprintProfile(0.02);
    profile.seed = 42;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));
    ASSERT_GE(dataset_->db.size(), 10u);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static GbdaIndexOptions IndexOptions() {
    GbdaIndexOptions options;
    options.tau_max = 10;
    options.gbd_prior.num_sample_pairs = 500;
    return options;
  }

  /// Initial corpus: the first `initial` dataset graphs, full dictionaries.
  static GraphDatabase InitialDb(size_t initial) {
    GraphDatabase db;
    db.vertex_labels() = dataset_->db.vertex_labels();
    db.edge_labels() = dataset_->db.edge_labels();
    for (size_t i = 0; i < initial && i < dataset_->db.size(); ++i) {
      db.Add(dataset_->db.graph(i));
    }
    return db;
  }

  static GeneratedDataset* dataset_;
};

GeneratedDataset* DynamicServiceTest::dataset_ = nullptr;

TEST_F(DynamicServiceTest, RandomizedInterleavingMatchesFreshBuild) {
  const GbdaIndexOptions index_options = IndexOptions();
  const size_t initial = dataset_->db.size() * 3 / 5;
  for (size_t shards : {1u, 2u, 7u}) {
    DynamicServiceOptions options;
    options.service.num_threads = 3;
    options.service.num_shards = shards;
    options.gbd_refit_fraction = 0.0;  // strict: refit at every commit
    Result<std::unique_ptr<DynamicGbdaService>> created =
        DynamicGbdaService::Create(InitialDb(initial), index_options, options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    DynamicGbdaService& dyn = **created;

    Rng rng(1000 + shards);
    size_t next_pool_graph = initial;  // dataset graphs not yet added
    for (int step = 0; step < 8; ++step) {
      // One random mutation: add 1-3 held-back graphs or remove 1-2 live
      // ids (keeping enough corpus for the prior fit).
      const std::vector<size_t> live = dyn.db().LiveIds();
      const bool can_add = next_pool_graph < dataset_->db.size();
      const bool do_add = can_add && (live.size() <= 5 || rng.Bernoulli(0.6));
      if (!do_add && live.size() <= 5) continue;  // keep the prior fit-able
      if (do_add) {
        std::vector<Graph> batch;
        const size_t count = 1 + static_cast<size_t>(rng.UniformInt(0, 2));
        for (size_t i = 0; i < count && next_pool_graph < dataset_->db.size();
             ++i) {
          batch.push_back(dataset_->db.graph(next_pool_graph++));
        }
        Result<std::vector<size_t>> added = dyn.AddGraphs(std::move(batch));
        ASSERT_TRUE(added.ok()) << added.status().ToString();
      } else {
        const size_t count = 1 + static_cast<size_t>(rng.UniformInt(0, 1));
        std::vector<size_t> picks;
        for (size_t i : rng.SampleWithoutReplacement(
                 live.size(), std::min(count, live.size() - 4))) {
          picks.push_back(live[i]);
        }
        if (picks.empty()) continue;
        ASSERT_TRUE(dyn.RemoveGraphs(picks).ok());
      }

      // Checkpoint: a from-scratch rebuild over the final corpus must agree
      // bit-for-bit on every variant / prefilter combination.
      std::unique_ptr<Reference> ref =
          MakeReference(dyn, index_options, options.service);
      ASSERT_NE(ref, nullptr);
      EXPECT_EQ(ref->live_ids.size(), dyn.num_live());
      for (GbdaVariant variant :
           {GbdaVariant::kStandard, GbdaVariant::kAverageSize,
            GbdaVariant::kWeightedGbd}) {
        for (bool prefilter : {false, true}) {
          SearchOptions opts;
          opts.tau_hat = 6;
          opts.gamma = 0.4;
          opts.variant = variant;
          opts.use_prefilter = prefilter;
          for (size_t q = 0; q < 2 && q < dataset_->queries.size(); ++q) {
            const std::string label =
                "shards=" + std::to_string(shards) + " step=" +
                std::to_string(step) + " variant=" +
                std::to_string(static_cast<int>(variant)) + " prefilter=" +
                std::to_string(prefilter) + " query=" + std::to_string(q);
            Result<SearchResult> expect =
                ref->service->Query(dataset_->queries[q], opts);
            Result<SearchResult> got = dyn.Query(dataset_->queries[q], opts);
            ASSERT_TRUE(expect.ok()) << label;
            ASSERT_TRUE(got.ok()) << got.status().ToString() << " " << label;
            ExpectBitIdentical(*expect, *got, ref->live_ids, label);

            Result<SearchResult> expect_topk =
                ref->service->QueryTopK(dataset_->queries[q], 5, opts);
            Result<SearchResult> got_topk =
                dyn.QueryTopK(dataset_->queries[q], 5, opts);
            ASSERT_TRUE(expect_topk.ok()) << label;
            ASSERT_TRUE(got_topk.ok()) << label;
            ExpectBitIdentical(*expect_topk, *got_topk, ref->live_ids,
                               "topk " + label);
          }
        }
      }
    }
  }
}

TEST_F(DynamicServiceTest, StableIdsSurviveMutations) {
  const GbdaIndexOptions index_options = IndexOptions();
  DynamicServiceOptions options;
  options.service.num_threads = 2;
  Result<std::unique_ptr<DynamicGbdaService>> created =
      DynamicGbdaService::Create(InitialDb(6), index_options, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  DynamicGbdaService& dyn = **created;

  // A distinctive graph: fresh labels shared with nothing else, so it alone
  // has GBD 0 against itself.
  const LabelId v = dyn.InternVertexLabel("dyn-unique-v");
  const LabelId e = dyn.InternEdgeLabel("dyn-unique-e");
  Graph unique;
  unique.AddVertex(v);
  unique.AddVertex(v);
  unique.AddVertex(v);
  ASSERT_TRUE(unique.AddEdge(0, 1, e).ok());
  ASSERT_TRUE(unique.AddEdge(1, 2, e).ok());
  Result<size_t> id = dyn.AddGraph(unique);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*id, 6u);

  SearchOptions opts;
  opts.tau_hat = 5;
  Result<SearchResult> top = dyn.QueryTopK(unique, 1, opts);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_EQ(top->matches.size(), 1u);
  EXPECT_EQ(top->matches[0].graph_id, *id);
  EXPECT_EQ(top->matches[0].gbd, 0);

  // Mutations elsewhere leave the stable id addressing the same graph.
  ASSERT_TRUE(dyn.RemoveGraphs({0, 3}).ok());
  Result<size_t> other = dyn.AddGraph(dataset_->db.graph(0));
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(*other, 7u);
  top = dyn.QueryTopK(unique, 1, opts);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->matches.size(), 1u);
  EXPECT_EQ(top->matches[0].graph_id, *id);

  // Removing the graph retires the id for good.
  ASSERT_TRUE(dyn.RemoveGraphs({*id}).ok());
  top = dyn.QueryTopK(unique, 1, opts);
  ASSERT_TRUE(top.ok());
  if (!top->matches.empty()) {
    EXPECT_NE(top->matches[0].graph_id, *id);
  }
  EXPECT_EQ(dyn.RemoveGraphs({*id}).code(), StatusCode::kNotFound);
}

TEST_F(DynamicServiceTest, TauZeroAndTopKZeroOnSnapshotPath) {
  const GbdaIndexOptions index_options = IndexOptions();
  DynamicServiceOptions options;
  options.service.num_threads = 2;
  options.service.num_shards = 3;
  Result<std::unique_ptr<DynamicGbdaService>> created =
      DynamicGbdaService::Create(InitialDb(dataset_->db.size()),
                                 index_options, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  DynamicGbdaService& dyn = **created;

  // tau_hat = 0 against the snapshot: only GBD-0 candidates carry
  // posterior mass, with and without the prefilter layer.
  const Graph query = dataset_->db.graph(0);
  for (bool prefilter : {false, true}) {
    SearchOptions opts;
    opts.tau_hat = 0;
    opts.gamma = 0.5;
    opts.use_prefilter = prefilter;
    Result<SearchResult> r = dyn.Query(query, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_FALSE(r->matches.empty());
    bool found_self = false;
    for (const SearchMatch& m : r->matches) {
      EXPECT_EQ(m.gbd, 0);
      EXPECT_GT(m.phi_score, 0.0);
      found_self |= m.graph_id == 0;
    }
    EXPECT_TRUE(found_self);
    // Pruned and exhaustive rankings agree at the tau boundary (the
    // snapshot path always sharpens the bound through its profiles).
    SearchOptions exhaustive = opts;
    exhaustive.topk_early_termination = false;
    Result<SearchResult> pruned = dyn.QueryTopK(query, 3, opts);
    Result<SearchResult> reference = dyn.QueryTopK(query, 3, exhaustive);
    ASSERT_TRUE(pruned.ok());
    ASSERT_TRUE(reference.ok());
    ASSERT_EQ(pruned->matches.size(), reference->matches.size());
    for (size_t i = 0; i < pruned->matches.size(); ++i) {
      EXPECT_EQ(pruned->matches[i].graph_id, reference->matches[i].graph_id);
      EXPECT_EQ(pruned->matches[i].phi_score,
                reference->matches[i].phi_score);
    }
  }

  // k = 0: the defined-empty ranking, still counted as served.
  dyn.ResetStats();
  SearchOptions opts;
  opts.tau_hat = 5;
  Result<SearchResult> empty = dyn.QueryTopK(query, 0, opts);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->matches.empty());
  EXPECT_EQ(empty->candidates_evaluated, 0u);
  Result<std::vector<SearchResult>> batch =
      dyn.QueryTopKBatch(Span<Graph>(&query, 1), 0, opts);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_TRUE((*batch)[0].matches.empty());
  const ServiceStats stats = dyn.stats();
  EXPECT_EQ(stats.queries_served, 2u);
  EXPECT_EQ(stats.batches_served, 1u);
  EXPECT_EQ(stats.candidates_evaluated, 0u);
}

TEST_F(DynamicServiceTest, StalenessPolicyDefersRefits) {
  const GbdaIndexOptions index_options = IndexOptions();
  DynamicServiceOptions options;
  options.service.num_threads = 2;
  options.gbd_refit_fraction = 0.5;
  Result<std::unique_ptr<DynamicGbdaService>> created =
      DynamicGbdaService::Create(InitialDb(8), index_options, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  DynamicGbdaService& dyn = **created;
  EXPECT_EQ(dyn.dynamic_stats().gbd_refits, 0u);
  EXPECT_EQ(dyn.snapshot_info().gbd_staleness, 0u);

  // One add: 1/9 <= 0.5, the commit publishes with a stale prior.
  ASSERT_TRUE(dyn.AddGraph(dataset_->db.graph(8)).ok());
  EXPECT_EQ(dyn.dynamic_stats().gbd_refits, 0u);
  EXPECT_EQ(dyn.snapshot_info().gbd_staleness, 1u);
  // Queries still serve against the stale-prior snapshot.
  SearchOptions opts;
  opts.tau_hat = 5;
  ASSERT_TRUE(dyn.Query(dataset_->queries[0], opts).ok());

  // Keep mutating until drift crosses the fraction; the refit must fire and
  // reset the staleness counter.
  for (size_t i = 9; i < 14 && i < dataset_->db.size(); ++i) {
    ASSERT_TRUE(dyn.AddGraph(dataset_->db.graph(i)).ok());
  }
  ASSERT_TRUE(dyn.RemoveGraphs({0, 1, 2}).ok());
  EXPECT_GE(dyn.dynamic_stats().gbd_refits, 1u);
  EXPECT_EQ(dyn.snapshot_info().gbd_staleness, 0u);

  // Flush bypasses the threshold: a below-threshold drift is fit away on
  // demand. One add leaves staleness 1 (far below 0.5 of the corpus) ...
  if (14 < dataset_->db.size()) {
    const uint64_t refits = dyn.dynamic_stats().gbd_refits;
    ASSERT_TRUE(dyn.AddGraph(dataset_->db.graph(14)).ok());
    EXPECT_EQ(dyn.snapshot_info().gbd_staleness, 1u);
    // ... and Flush forces the refit the policy deferred.
    ASSERT_TRUE(dyn.Flush().ok());
    EXPECT_EQ(dyn.snapshot_info().gbd_staleness, 0u);
    EXPECT_EQ(dyn.dynamic_stats().gbd_refits, refits + 1);
  }
}

TEST_F(DynamicServiceTest, ValidatesMutations) {
  const GbdaIndexOptions index_options = IndexOptions();
  Result<std::unique_ptr<DynamicGbdaService>> created =
      DynamicGbdaService::Create(InitialDb(5), index_options);
  ASSERT_TRUE(created.ok());
  DynamicGbdaService& dyn = **created;
  const uint64_t generation = dyn.snapshot_info().generation;

  // Unknown label ids are rejected before anything mutates.
  Graph bad;
  bad.AddVertex(static_cast<LabelId>(dyn.db().vertex_labels().size() + 10));
  EXPECT_EQ(dyn.AddGraph(bad).status().code(), StatusCode::kInvalidArgument);

  // Invalid removals are rejected as a whole.
  EXPECT_FALSE(dyn.RemoveGraphs({99}).ok());
  EXPECT_FALSE(dyn.RemoveGraphs({0, 0}).ok());

  // No failed mutation published a snapshot.
  EXPECT_EQ(dyn.snapshot_info().generation, generation);
  EXPECT_EQ(dyn.num_live(), 5u);

  // Initial corpora must be tombstone-free and fit-able.
  GraphDatabase tombstoned = InitialDb(5);
  ASSERT_TRUE(tombstoned.RemoveGraphs({1}).ok());
  EXPECT_FALSE(
      DynamicGbdaService::Create(std::move(tombstoned), index_options).ok());

  // Flush succeeds only when the forced refit could actually run: on a
  // corpus mutated down to one live graph the snapshot still publishes,
  // but the stale prior is surfaced as an error.
  ASSERT_TRUE(dyn.RemoveGraphs({0, 1, 2, 3}).ok());
  EXPECT_EQ(dyn.num_live(), 1u);
  EXPECT_GT(dyn.snapshot_info().gbd_staleness, 0u);
  Status flushed = dyn.Flush();
  ASSERT_FALSE(flushed.ok());
  EXPECT_EQ(flushed.code(), StatusCode::kFailedPrecondition);
  EXPECT_GT(dyn.dynamic_stats().gbd_refit_failures, 0u);
  // Queries still serve against the (stale-prior) published snapshot.
  SearchOptions opts;
  opts.tau_hat = 5;
  EXPECT_TRUE(dyn.Query(dataset_->queries[0], opts).ok());
}

TEST_F(DynamicServiceTest, InternedLabelsExtendTheModelUniverse) {
  const GbdaIndexOptions index_options = IndexOptions();
  DynamicServiceOptions options;
  options.service.num_threads = 2;
  Result<std::unique_ptr<DynamicGbdaService>> created =
      DynamicGbdaService::Create(InitialDb(6), index_options, options);
  ASSERT_TRUE(created.ok());
  DynamicGbdaService& dyn = **created;

  const LabelId v = dyn.InternVertexLabel("rare-metal");
  Graph g;
  g.AddVertex(v);
  g.AddVertex(v);
  ASSERT_TRUE(g.AddEdge(0, 1, kVirtualLabel + 1).ok());
  ASSERT_TRUE(dyn.AddGraph(g).ok());

  // A fresh build over the final corpus (with the grown dictionaries) must
  // still agree bit-for-bit: the commit refreshed |L_V| for the model.
  std::unique_ptr<Reference> ref =
      MakeReference(dyn, index_options, options.service);
  ASSERT_NE(ref, nullptr);
  SearchOptions opts;
  opts.tau_hat = 6;
  opts.gamma = 0.3;
  Result<SearchResult> expect = ref->service->Query(dataset_->queries[0], opts);
  Result<SearchResult> got = dyn.Query(dataset_->queries[0], opts);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok());
  ExpectBitIdentical(*expect, *got, ref->live_ids, "interned label");
}

TEST_F(DynamicServiceTest, ConcurrentQueriesAndMutationsStayConsistent) {
  const GbdaIndexOptions index_options = IndexOptions();
  DynamicServiceOptions options;
  options.service.num_threads = 3;
  options.service.num_shards = 5;
  const size_t initial = dataset_->db.size() / 2;
  Result<std::unique_ptr<DynamicGbdaService>> created =
      DynamicGbdaService::Create(InitialDb(initial), index_options, options);
  ASSERT_TRUE(created.ok());
  DynamicGbdaService& dyn = **created;

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&dyn, &done, &failures, r]() {
      SearchOptions opts;
      opts.tau_hat = 5;
      opts.gamma = 0.3;
      opts.use_prefilter = (r % 2) == 0;
      size_t qi = static_cast<size_t>(r);
      while (!done.load(std::memory_order_relaxed)) {
        const Graph& query =
            dataset_->queries[qi++ % dataset_->queries.size()];
        Result<SearchResult> res = dyn.Query(query, opts);
        if (!res.ok()) {
          ++failures;
          continue;
        }
        // Every result must be internally consistent with SOME generation:
        // ids ascending (the serial order contract) and scores finite.
        for (size_t i = 0; i < res->matches.size(); ++i) {
          if (i > 0 &&
              res->matches[i].graph_id <= res->matches[i - 1].graph_id) {
            ++failures;
          }
          if (!std::isfinite(res->matches[i].phi_score)) ++failures;
        }
      }
    });
  }

  // Writer: interleave adds and removes through ~20 commits.
  size_t next = initial;
  Rng rng(77);
  for (int step = 0; step < 20; ++step) {
    if (next < dataset_->db.size() && rng.Bernoulli(0.6)) {
      ASSERT_TRUE(dyn.AddGraph(dataset_->db.graph(next++)).ok());
    } else {
      const std::vector<size_t> live = dyn.db().LiveIds();
      if (live.size() > 6) {
        const size_t pick =
            live[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(live.size()) - 1))];
        ASSERT_TRUE(dyn.RemoveGraphs({pick}).ok());
      }
    }
  }
  done.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(dyn.dynamic_stats().snapshots_published, 20u);
  EXPECT_GT(dyn.stats().queries_served, 0u);
}

}  // namespace
}  // namespace gbda
