#include "service/gbda_service.h"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"

namespace gbda {
namespace {

// Bit-identical comparison: ids, exact phi doubles, GBDs, ordering and the
// scan counters must all match the serial engine (the serving layer's
// determinism contract, docs/ARCHITECTURE.md "Serving layer").
void ExpectSameResult(const SearchResult& serial, const SearchResult& sharded,
                      const std::string& label) {
  ASSERT_EQ(serial.matches.size(), sharded.matches.size()) << label;
  for (size_t i = 0; i < serial.matches.size(); ++i) {
    EXPECT_EQ(serial.matches[i].graph_id, sharded.matches[i].graph_id)
        << label << " match " << i;
    EXPECT_EQ(serial.matches[i].phi_score, sharded.matches[i].phi_score)
        << label << " match " << i;
    EXPECT_EQ(serial.matches[i].gbd, sharded.matches[i].gbd)
        << label << " match " << i;
  }
  EXPECT_EQ(serial.candidates_evaluated, sharded.candidates_evaluated)
      << label;
  EXPECT_EQ(serial.prefiltered_out, sharded.prefiltered_out) << label;
}

class GbdaServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = FingerprintProfile(0.03);
    profile.seed = 99;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));

    GbdaIndexOptions options;
    options.tau_max = 10;
    options.gbd_prior.num_sample_pairs = 2000;
    Result<GbdaIndex> index = GbdaIndex::Build(dataset_->db, options);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = new GbdaIndex(std::move(*index));
    serial_ = new GbdaSearch(&dataset_->db, index_);
  }
  static void TearDownTestSuite() {
    delete serial_;
    delete index_;
    delete dataset_;
    serial_ = nullptr;
    index_ = nullptr;
    dataset_ = nullptr;
  }

  static GeneratedDataset* dataset_;
  static GbdaIndex* index_;
  static GbdaSearch* serial_;
};

GeneratedDataset* GbdaServiceTest::dataset_ = nullptr;
GbdaIndex* GbdaServiceTest::index_ = nullptr;
GbdaSearch* GbdaServiceTest::serial_ = nullptr;

TEST_F(GbdaServiceTest, ShardRangesTileTheDatabase) {
  for (size_t shards : {1u, 2u, 7u}) {
    IndexShards partition(index_, shards);
    ASSERT_EQ(partition.num_shards(), shards);
    size_t expected_begin = 0;
    for (size_t s = 0; s < partition.num_shards(); ++s) {
      const ShardView& view = partition.shard(s);
      EXPECT_EQ(view.begin(), expected_begin);
      EXPECT_GE(view.size(), dataset_->db.size() / shards);
      expected_begin = view.end();
    }
    EXPECT_EQ(expected_begin, dataset_->db.size());
  }
}

TEST_F(GbdaServiceTest, QueryMatchesSerialAcrossVariantsPrefilterAndShards) {
  for (GbdaVariant variant :
       {GbdaVariant::kStandard, GbdaVariant::kAverageSize,
        GbdaVariant::kWeightedGbd}) {
    for (bool prefilter : {false, true}) {
      SearchOptions opts;
      opts.tau_hat = 6;
      opts.gamma = 0.4;
      opts.variant = variant;
      opts.vgbd_w = 0.5;
      opts.use_prefilter = prefilter;
      for (size_t q = 0; q < 3 && q < dataset_->queries.size(); ++q) {
        Result<SearchResult> serial =
            serial_->Query(dataset_->queries[q], opts);
        ASSERT_TRUE(serial.ok()) << serial.status().ToString();
        for (size_t shards : {1u, 2u, 7u}) {
          ServiceOptions service_opts;
          service_opts.num_threads = 3;
          service_opts.num_shards = shards;
          GbdaService service(&dataset_->db, index_, service_opts);
          Result<SearchResult> sharded =
              service.Query(dataset_->queries[q], opts);
          ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
          ExpectSameResult(
              *serial, *sharded,
              "variant=" + std::to_string(static_cast<int>(variant)) +
                  " prefilter=" + std::to_string(prefilter) + " shards=" +
                  std::to_string(shards) + " query=" + std::to_string(q));
        }
      }
    }
  }
}

TEST_F(GbdaServiceTest, TopKMatchesSerialIncludingTieBreaks) {
  SearchOptions opts;
  opts.tau_hat = 6;
  const Graph& query = dataset_->queries[0];
  // SIZE_MAX guards the kNoTopK sentinel: an oversized k must still rank.
  for (size_t k : {size_t{1}, size_t{3}, size_t{10}, dataset_->db.size() + 5,
                   std::numeric_limits<size_t>::max()}) {
    Result<SearchResult> serial = serial_->QueryTopK(query, k, opts);
    ASSERT_TRUE(serial.ok());
    for (size_t shards : {1u, 2u, 7u}) {
      ServiceOptions service_opts;
      service_opts.num_threads = 2;
      service_opts.num_shards = shards;
      GbdaService service(&dataset_->db, index_, service_opts);
      Result<SearchResult> sharded = service.QueryTopK(query, k, opts);
      ASSERT_TRUE(sharded.ok());
      ExpectSameResult(*serial, *sharded,
                       "k=" + std::to_string(k) + " shards=" +
                           std::to_string(shards));
    }
  }
}

TEST_F(GbdaServiceTest, BatchMatchesPerQuerySerialResults) {
  SearchOptions opts;
  opts.tau_hat = 5;
  opts.gamma = 0.5;
  ServiceOptions service_opts;
  service_opts.num_threads = 3;
  service_opts.num_shards = 7;
  GbdaService service(&dataset_->db, index_, service_opts);
  Result<std::vector<SearchResult>> batch =
      service.QueryBatch(dataset_->queries, opts);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), dataset_->queries.size());
  for (size_t q = 0; q < dataset_->queries.size(); ++q) {
    Result<SearchResult> serial = serial_->Query(dataset_->queries[q], opts);
    ASSERT_TRUE(serial.ok());
    ExpectSameResult(*serial, (*batch)[q], "batch query " + std::to_string(q));
  }
}

TEST_F(GbdaServiceTest, StatsAggregateAcrossCalls) {
  SearchOptions opts;
  opts.tau_hat = 5;
  opts.gamma = 0.5;
  GbdaService service(&dataset_->db, index_, ServiceOptions{2, 4, {}});
  ASSERT_TRUE(service.Query(dataset_->queries[0], opts).ok());
  Result<std::vector<SearchResult>> batch =
      service.QueryBatch(dataset_->queries, opts);
  ASSERT_TRUE(batch.ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries_served, 1 + dataset_->queries.size());
  EXPECT_EQ(stats.batches_served, 1u);
  // One full-database scan per query (prefilter off).
  EXPECT_EQ(stats.candidates_evaluated,
            (1 + dataset_->queries.size()) * dataset_->db.size());
  EXPECT_EQ(stats.prefiltered_out, 0u);
  EXPECT_GT(stats.total_wall_seconds, 0.0);
  EXPECT_GT(stats.total_latency_seconds, 0.0);
  EXPECT_GT(stats.QueriesPerSecond(), 0.0);
  EXPECT_GT(stats.MeanLatencySeconds(), 0.0);
  service.ResetStats();
  EXPECT_EQ(service.stats().queries_served, 0u);
}

TEST_F(GbdaServiceTest, OversubscribedShardCountIsClamped) {
  // More shards than graphs: clamped so no shard is empty.
  ServiceOptions service_opts;
  service_opts.num_threads = 2;
  service_opts.num_shards = dataset_->db.size() * 10;
  GbdaService service(&dataset_->db, index_, service_opts);
  EXPECT_LE(service.num_shards(), dataset_->db.size());
  SearchOptions opts;
  opts.tau_hat = 5;
  opts.gamma = 0.5;
  Result<SearchResult> serial = serial_->Query(dataset_->queries[0], opts);
  Result<SearchResult> sharded = service.Query(dataset_->queries[0], opts);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(sharded.ok());
  ExpectSameResult(*serial, *sharded, "clamped shards");
}

TEST_F(GbdaServiceTest, RejectsDbIndexMismatchBothDirections) {
  // A database one graph short of the index — the "stale SaveToFile
  // artifact" scenario in both directions.
  GraphDatabase smaller;
  smaller.vertex_labels() = dataset_->db.vertex_labels();
  smaller.edge_labels() = dataset_->db.edge_labels();
  for (size_t i = 0; i + 1 < dataset_->db.size(); ++i) {
    smaller.Add(dataset_->db.graph(i));
  }
  GbdaIndexOptions options;
  options.tau_max = 10;
  options.gbd_prior.num_sample_pairs = 500;
  Result<GbdaIndex> smaller_index = GbdaIndex::Build(smaller, options);
  ASSERT_TRUE(smaller_index.ok());

  SearchOptions opts;
  opts.tau_hat = 5;

  // Index larger than the database.
  {
    auto service = GbdaService::Create(&smaller, index_);
    ASSERT_FALSE(service.ok());
    EXPECT_EQ(service.status().code(), StatusCode::kFailedPrecondition);
    auto search = GbdaSearch::Create(&smaller, index_);
    ASSERT_FALSE(search.ok());
    EXPECT_EQ(search.status().code(), StatusCode::kFailedPrecondition);
    // The unchecked constructor must still fail closed at query time,
    // before any out-of-bounds branch access.
    GbdaSearch raw(&smaller, index_);
    Result<SearchResult> r = raw.Query(dataset_->queries[0], opts);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
  // Index smaller than the database.
  {
    auto service = GbdaService::Create(&dataset_->db, &*smaller_index);
    ASSERT_FALSE(service.ok());
    EXPECT_EQ(service.status().code(), StatusCode::kFailedPrecondition);
    auto search = GbdaSearch::Create(&dataset_->db, &*smaller_index);
    ASSERT_FALSE(search.ok());
    GbdaService raw(&dataset_->db, &*smaller_index, ServiceOptions{2, 2, {}});
    Result<SearchResult> r = raw.Query(dataset_->queries[0], opts);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
  // Matching pairs pass the checked factories.
  {
    auto service = GbdaService::Create(&dataset_->db, index_);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    Result<SearchResult> r = (*service)->Query(dataset_->queries[0], opts);
    EXPECT_TRUE(r.ok());
    auto search = GbdaSearch::Create(&smaller, &*smaller_index);
    EXPECT_TRUE(search.ok()) << search.status().ToString();
  }
  // A consistently tombstoned pair is rejected too: the frozen scan would
  // evaluate retired slots as empty multisets and could return removed
  // graphs as matches — mutable corpora belong to DynamicGbdaService.
  {
    ASSERT_TRUE(smaller.RemoveGraphs({0}).ok());
    ASSERT_TRUE(smaller_index->RemoveGraphs({0}).ok());
    auto search = GbdaSearch::Create(&smaller, &*smaller_index);
    ASSERT_FALSE(search.ok());
    EXPECT_EQ(search.status().code(), StatusCode::kFailedPrecondition);
    auto service = GbdaService::Create(&smaller, &*smaller_index);
    ASSERT_FALSE(service.ok());
    EXPECT_EQ(service.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST_F(GbdaServiceTest, StatsExactUnderConcurrentClients) {
  // Regression for the ServiceStats synchronization contract: concurrent
  // client threads mixing Query and QueryBatch must leave exact aggregate
  // counters (a lost update would show up as a short count; under TSan the
  // unsynchronized writes themselves would be flagged).
  GbdaService service(&dataset_->db, index_, ServiceOptions{3, 4, {}});
  SearchOptions opts;
  opts.tau_hat = 5;
  opts.gamma = 0.5;
  constexpr size_t kClients = 6;
  constexpr size_t kQueriesPerClient = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([this, &service, &opts, c] {
      for (size_t i = 0; i < kQueriesPerClient; ++i) {
        const Graph& q =
            dataset_->queries[(c + i) % dataset_->queries.size()];
        ASSERT_TRUE(service.Query(q, opts).ok());
      }
      ASSERT_TRUE(
          service
              .QueryBatch(Span<Graph>(dataset_->queries.data(), 2), opts)
              .ok());
    });
  }
  for (std::thread& t : clients) t.join();
  const ServiceStats stats = service.stats();
  const size_t expected_queries = kClients * (kQueriesPerClient + 2);
  EXPECT_EQ(stats.queries_served, expected_queries);
  EXPECT_EQ(stats.batches_served, kClients);
  EXPECT_EQ(stats.candidates_evaluated, expected_queries * dataset_->db.size());
  EXPECT_GT(stats.total_latency_seconds, 0.0);
  EXPECT_GT(stats.total_wall_seconds, 0.0);
}

TEST(ServiceStatsTest, QueriesPerSecondClampsSubTickWalls) {
  // A nonzero-query batch whose wall time rounds to a sub-tick 0.0 must
  // still report a nonzero QPS (the denominator is clamped, not the
  // result zeroed).
  ServiceStats stats;
  stats.queries_served = 5;
  stats.total_wall_seconds = 0.0;
  EXPECT_GT(stats.QueriesPerSecond(), 0.0);
  // No queries served stays 0 regardless of wall time.
  ServiceStats idle;
  idle.total_wall_seconds = 1.0;
  EXPECT_EQ(idle.QueriesPerSecond(), 0.0);
  // Normal walls are unaffected by the clamp.
  ServiceStats normal;
  normal.queries_served = 10;
  normal.total_wall_seconds = 2.0;
  EXPECT_DOUBLE_EQ(normal.QueriesPerSecond(), 5.0);
}

TEST_F(GbdaServiceTest, TopKZeroIsDefinedEmptyAndCounted) {
  GbdaService service(&dataset_->db, index_, ServiceOptions{2, 2, {}});
  SearchOptions opts;
  opts.tau_hat = 5;
  Result<SearchResult> r = service.QueryTopK(dataset_->queries[0], 0, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->matches.empty());
  EXPECT_EQ(r->candidates_evaluated, 0u);
  EXPECT_EQ(r->pruned_by_bound, 0u);
  // The API-boundary decision short-circuits before option validation, so
  // even an out-of-range tau_hat yields the defined empty ranking.
  SearchOptions bad_tau;
  bad_tau.tau_hat = index_->tau_max() + 1;
  EXPECT_TRUE(service.QueryTopK(dataset_->queries[0], 0, bad_tau).ok());
  Result<std::vector<SearchResult>> batch =
      service.QueryTopKBatch(dataset_->queries, 0, opts);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), dataset_->queries.size());
  for (const SearchResult& b : *batch) EXPECT_TRUE(b.matches.empty());
  // The served queries are still accounted for.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries_served, 2 + dataset_->queries.size());
  EXPECT_EQ(stats.batches_served, 1u);
  EXPECT_EQ(stats.candidates_evaluated, 0u);
}

TEST_F(GbdaServiceTest, TauZeroServesExactBranchDuplicatesOnly) {
  // tau_hat = 0 end-to-end: Lambda1(0, phi) = [phi == 0], so only
  // candidates with GBD 0 carry posterior mass and survive the gamma cut —
  // with and without the prefilter (Passes at tau 0 keeps exactly the
  // profiles with lower bound 0), serially and sharded.
  const Graph query = dataset_->db.graph(0);
  for (bool prefilter : {false, true}) {
    SearchOptions opts;
    opts.tau_hat = 0;
    opts.gamma = 0.5;
    opts.use_prefilter = prefilter;
    Result<SearchResult> serial = serial_->Query(query, opts);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    ASSERT_FALSE(serial->matches.empty());
    bool found_self = false;
    for (const SearchMatch& m : serial->matches) {
      EXPECT_EQ(m.gbd, 0) << "prefilter=" << prefilter;
      EXPECT_GT(m.phi_score, 0.0);
      found_self |= m.graph_id == 0;
    }
    EXPECT_TRUE(found_self);
    for (size_t shards : {1u, 2u, 7u}) {
      GbdaService service(&dataset_->db, index_, ServiceOptions{2, shards, {}});
      Result<SearchResult> sharded = service.Query(query, opts);
      ASSERT_TRUE(sharded.ok());
      ExpectSameResult(*serial, *sharded,
                       "tau0 prefilter=" + std::to_string(prefilter) +
                           " shards=" + std::to_string(shards));
      // The ranking path at the tau boundary: pruned top-k must equal the
      // exhaustive ranking here too.
      SearchOptions exhaustive = opts;
      exhaustive.topk_early_termination = false;
      Result<SearchResult> top_pruned = service.QueryTopK(query, 5, opts);
      Result<SearchResult> top_exhaustive =
          service.QueryTopK(query, 5, exhaustive);
      ASSERT_TRUE(top_pruned.ok());
      ASSERT_TRUE(top_exhaustive.ok());
      ExpectSameResult(*top_exhaustive, *top_pruned,
                       "tau0 topk prefilter=" + std::to_string(prefilter) +
                           " shards=" + std::to_string(shards));
    }
  }
}

TEST_F(GbdaServiceTest, RejectsTauBeyondIndex) {
  GbdaService service(&dataset_->db, index_, ServiceOptions{2, 2, {}});
  SearchOptions opts;
  opts.tau_hat = index_->tau_max() + 1;
  EXPECT_FALSE(service.Query(dataset_->queries[0], opts).ok());
  EXPECT_FALSE(service.QueryBatch(dataset_->queries, opts).ok());
  // A failed batch serves no queries.
  EXPECT_EQ(service.stats().queries_served, 0u);
}

}  // namespace
}  // namespace gbda
