// The approximate-mode contract over both serving layers (GbdaService and
// DynamicGbdaService): a ranking query with options.approximate returns a
// SUBSET of the exhaustive ranking carrying bit-exact scores — never a
// fabricated match — and with a window covering the corpus it is
// bit-identical to the exhaustive top-k (the builder's reachability repair
// makes that provable, not just empirical). Swept across the three paper
// variants, shard counts and k values, plus the counter and routing rules
// (threshold queries and k == 0 ignore the flag; candidates_visited /
// verified_count are cost observability, populated in approximate mode and
// zero / excluded elsewhere).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "ann/proximity_graph.h"
#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "service/dynamic_service.h"
#include "service/gbda_service.h"

namespace gbda {
namespace {

void ExpectSameMatches(const SearchResult& expected, const SearchResult& got,
                       const std::string& label) {
  ASSERT_EQ(expected.matches.size(), got.matches.size()) << label;
  for (size_t i = 0; i < expected.matches.size(); ++i) {
    EXPECT_EQ(expected.matches[i].graph_id, got.matches[i].graph_id)
        << label << " match " << i;
    EXPECT_EQ(expected.matches[i].phi_score, got.matches[i].phi_score)
        << label << " match " << i;
    EXPECT_EQ(expected.matches[i].gbd, got.matches[i].gbd)
        << label << " match " << i;
  }
}

class AnnEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = AidsProfile(0.03);
    profile.seed = 19;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));
    ASSERT_GE(dataset_->db.size(), 16u);
    ASSERT_GE(dataset_->queries.size(), 3u);

    GbdaIndexOptions options;
    options.tau_max = 8;
    options.gbd_prior.num_sample_pairs = 500;
    Result<GbdaIndex> index = GbdaIndex::Build(dataset_->db, options);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = new GbdaIndex(std::move(*index));
  }
  static void TearDownTestSuite() {
    delete index_;
    delete dataset_;
    index_ = nullptr;
    dataset_ = nullptr;
  }

  static size_t CorpusSize() { return dataset_->db.size(); }

  static Span<Graph> Queries() {
    return Span<Graph>(dataset_->queries.data(),
                       std::min<size_t>(dataset_->queries.size(), 4));
  }

  static GeneratedDataset* dataset_;
  static GbdaIndex* index_;
};

GeneratedDataset* AnnEquivalenceTest::dataset_ = nullptr;
GbdaIndex* AnnEquivalenceTest::index_ = nullptr;

// ---------------------------------------------------------------------------
// Full-window bit-identity: variants x shards x k
// ---------------------------------------------------------------------------

TEST_F(AnnEquivalenceTest, FullWindowMatchesExhaustiveAcrossTheBattery) {
  for (size_t shards : {size_t{1}, size_t{3}}) {
    ServiceOptions service_options;
    service_options.num_threads = 3;
    service_options.num_shards = shards;
    GbdaService service(&dataset_->db, index_, service_options);
    ASSERT_TRUE(service.WarmAnnGraph().ok());
    for (GbdaVariant variant : {GbdaVariant::kStandard,
                                GbdaVariant::kAverageSize,
                                GbdaVariant::kWeightedGbd}) {
      for (size_t k : {size_t{1}, size_t{5}, size_t{17}}) {
        SearchOptions options;
        options.tau_hat = 5;
        options.variant = variant;
        const std::string label = "shards=" + std::to_string(shards) +
                                  " variant=" +
                                  std::to_string(static_cast<int>(variant)) +
                                  " k=" + std::to_string(k);
        Result<std::vector<SearchResult>> exhaustive =
            service.QueryTopKBatch(Queries(), k, options);
        ASSERT_TRUE(exhaustive.ok()) << label << ": "
                                     << exhaustive.status().ToString();

        options.approximate = true;
        options.search_window_size = CorpusSize();
        Result<std::vector<SearchResult>> approx =
            service.QueryTopKBatch(Queries(), k, options);
        ASSERT_TRUE(approx.ok()) << label << ": "
                                 << approx.status().ToString();
        ASSERT_EQ(approx->size(), exhaustive->size());
        for (size_t q = 0; q < approx->size(); ++q) {
          ExpectSameMatches((*exhaustive)[q], (*approx)[q],
                            label + " query " + std::to_string(q));
          // A full window navigates the whole corpus, so the deterministic
          // admission counter matches the exhaustive scan's too.
          EXPECT_EQ((*approx)[q].candidates_evaluated,
                    (*exhaustive)[q].candidates_evaluated)
              << label;
          EXPECT_EQ((*approx)[q].candidates_visited, CorpusSize()) << label;
          EXPECT_EQ((*exhaustive)[q].candidates_visited, 0u) << label;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Small windows: subset with bit-exact scores, never fabrication
// ---------------------------------------------------------------------------

TEST_F(AnnEquivalenceTest, SmallWindowsReturnAnExactScoredSubset) {
  GbdaService service(&dataset_->db, index_, ServiceOptions());
  ASSERT_TRUE(service.WarmAnnGraph().ok());
  SearchOptions options;
  options.tau_hat = 5;

  // One exhaustive FULL ranking per query (k = corpus) is the oracle every
  // approximate match must appear in, score-for-score.
  Result<std::vector<SearchResult>> full =
      service.QueryTopKBatch(Queries(), CorpusSize(), options);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  const size_t k = 10;
  for (size_t window : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    options.approximate = true;
    options.search_window_size = window;
    Result<std::vector<SearchResult>> approx =
        service.QueryTopKBatch(Queries(), k, options);
    ASSERT_TRUE(approx.ok()) << approx.status().ToString();
    for (size_t q = 0; q < approx->size(); ++q) {
      const SearchResult& result = (*approx)[q];
      const std::string label =
          "window=" + std::to_string(window) + " query=" + std::to_string(q);
      EXPECT_LE(result.matches.size(), k) << label;
      // Ordered under the one total ranking order every path uses.
      EXPECT_TRUE(std::is_sorted(result.matches.begin(), result.matches.end(),
                                 SearchMatchRankBefore))
          << label;
      std::unordered_map<size_t, const SearchMatch*> oracle;
      for (const SearchMatch& m : (*full)[q].matches) {
        oracle.emplace(m.graph_id, &m);
      }
      for (const SearchMatch& m : result.matches) {
        auto it = oracle.find(m.graph_id);
        ASSERT_NE(it, oracle.end())
            << label << ": fabricated match id " << m.graph_id;
        EXPECT_EQ(m.phi_score, it->second->phi_score) << label;
        EXPECT_EQ(m.gbd, it->second->gbd) << label;
      }
      // Approximate runs are themselves deterministic.
      Result<std::vector<SearchResult>> again =
          service.QueryTopKBatch(Queries(), k, options);
      ASSERT_TRUE(again.ok());
      ExpectSameMatches(result, (*again)[q], label + " rerun");
    }
  }
}

// ---------------------------------------------------------------------------
// Counters: populated in approximate mode, zero and excluded elsewhere
// ---------------------------------------------------------------------------

TEST_F(AnnEquivalenceTest, CostCountersArePopulatedAndAggregated) {
  GbdaService service(&dataset_->db, index_, ServiceOptions());
  ASSERT_TRUE(service.WarmAnnGraph().ok());
  SearchOptions options;
  options.tau_hat = 5;

  service.ResetStats();
  Result<SearchResult> exhaustive =
      service.QueryTopK(dataset_->queries[0], 5, options);
  ASSERT_TRUE(exhaustive.ok());
  EXPECT_EQ(exhaustive->candidates_visited, 0u);
  EXPECT_EQ(exhaustive->verified_count,
            exhaustive->candidates_evaluated - exhaustive->pruned_by_bound);
  EXPECT_EQ(service.stats().candidates_visited, 0u);

  options.approximate = true;
  options.search_window_size = 8;
  Result<SearchResult> approx =
      service.QueryTopK(dataset_->queries[0], 5, options);
  ASSERT_TRUE(approx.ok());
  EXPECT_GT(approx->candidates_visited, 0u);
  EXPECT_GT(approx->verified_count, 0u);
  EXPECT_LE(approx->verified_count, approx->candidates_visited);
  EXPECT_GE(approx->candidates_visited, approx->matches.size());
  EXPECT_EQ(approx->verified_count,
            approx->candidates_evaluated - approx->pruned_by_bound);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.candidates_visited, approx->candidates_visited);
  EXPECT_EQ(stats.verified_count,
            exhaustive->verified_count + approx->verified_count);
}

// ---------------------------------------------------------------------------
// Routing: which queries the flag applies to
// ---------------------------------------------------------------------------

TEST_F(AnnEquivalenceTest, ThresholdQueriesIgnoreTheFlag) {
  GbdaService service(&dataset_->db, index_, ServiceOptions());
  SearchOptions options;
  options.tau_hat = 5;
  options.gamma = 0.5;
  Result<SearchResult> plain = service.Query(dataset_->queries[1], options);
  ASSERT_TRUE(plain.ok());
  options.approximate = true;
  options.search_window_size = 2;
  Result<SearchResult> flagged = service.Query(dataset_->queries[1], options);
  ASSERT_TRUE(flagged.ok());
  // Threshold semantics are defined over the whole corpus: identical match
  // set, no navigation.
  ExpectSameMatches(*plain, *flagged, "threshold");
  EXPECT_EQ(flagged->candidates_visited, 0u);
}

TEST_F(AnnEquivalenceTest, DegenerateKValues) {
  GbdaService service(&dataset_->db, index_, ServiceOptions());
  SearchOptions options;
  options.tau_hat = 5;
  options.approximate = true;
  // k == 0 is a defined-empty result; no navigation context is built.
  Result<SearchResult> zero = service.QueryTopK(dataset_->queries[0], 0, options);
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->matches.empty());
  // Oversized k clamps to the corpus; with a full window that is the whole
  // exhaustive ranking.
  options.search_window_size = CorpusSize();
  Result<SearchResult> big =
      service.QueryTopK(dataset_->queries[0], CorpusSize() + 7, options);
  ASSERT_TRUE(big.ok());
  SearchOptions exhaustive = options;
  exhaustive.approximate = false;
  Result<SearchResult> reference =
      service.QueryTopK(dataset_->queries[0], CorpusSize() + 7, exhaustive);
  ASSERT_TRUE(reference.ok());
  ExpectSameMatches(*reference, *big, "oversized k");
}

TEST_F(AnnEquivalenceTest, WindowSmallerThanKIsClampedUp) {
  GbdaService service(&dataset_->db, index_, ServiceOptions());
  SearchOptions options;
  options.tau_hat = 5;
  options.approximate = true;
  options.search_window_size = 1;  // < k: the navigator clamps to k
  Result<SearchResult> result =
      service.QueryTopK(dataset_->queries[2], 5, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->candidates_visited, result->matches.size());
}

// ---------------------------------------------------------------------------
// Context lifecycle: lazy build, eager warm, adopt-before-first-use
// ---------------------------------------------------------------------------

TEST_F(AnnEquivalenceTest, LazyBuildAndAdoptAgree) {
  SearchOptions options;
  options.tau_hat = 5;
  options.approximate = true;
  options.search_window_size = 8;

  // Lazy: the first approximate query builds the context in-line.
  GbdaService lazy(&dataset_->db, index_, ServiceOptions());
  Result<SearchResult> lazy_result =
      lazy.QueryTopK(dataset_->queries[0], 5, options);
  ASSERT_TRUE(lazy_result.ok()) << lazy_result.status().ToString();

  // Adopt: a graph built with the same params navigates identically.
  Result<ProximityGraph> graph = BuildProximityGraph(
      FingerprintStore::FromIndex(*index_), ServiceOptions().ann_build);
  ASSERT_TRUE(graph.ok());
  GbdaService adopter(&dataset_->db, index_, ServiceOptions());
  ASSERT_TRUE(adopter.AdoptAnnGraph(graph->ref()).ok());
  Result<SearchResult> adopted_result =
      adopter.QueryTopK(dataset_->queries[0], 5, options);
  ASSERT_TRUE(adopted_result.ok());
  ExpectSameMatches(*lazy_result, *adopted_result, "adopt vs lazy build");

  // Once the context exists — built or adopted — adoption is rejected.
  EXPECT_EQ(lazy.AdoptAnnGraph(graph->ref()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(adopter.AdoptAnnGraph(graph->ref()).code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// The dynamic serving layer
// ---------------------------------------------------------------------------

TEST_F(AnnEquivalenceTest, DynamicServiceHonorsApproximateMode) {
  GraphDatabase db;
  db.vertex_labels() = dataset_->db.vertex_labels();
  db.edge_labels() = dataset_->db.edge_labels();
  const size_t initial = CorpusSize() - 2;
  for (size_t i = 0; i < initial; ++i) db.Add(dataset_->db.graph(i));

  GbdaIndexOptions index_options;
  index_options.tau_max = 8;
  index_options.gbd_prior.num_sample_pairs = 500;
  Result<std::unique_ptr<DynamicGbdaService>> created =
      DynamicGbdaService::Create(std::move(db), index_options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  DynamicGbdaService& dyn = **created;
  ASSERT_TRUE(dyn.WarmAnnGraph().ok());

  SearchOptions options;
  options.tau_hat = 5;
  Result<std::vector<SearchResult>> exhaustive =
      dyn.QueryTopKBatch(Queries(), 10, options);
  ASSERT_TRUE(exhaustive.ok()) << exhaustive.status().ToString();

  options.approximate = true;
  options.search_window_size = initial;  // full window over the snapshot
  Result<std::vector<SearchResult>> approx =
      dyn.QueryTopKBatch(Queries(), 10, options);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  for (size_t q = 0; q < approx->size(); ++q) {
    ExpectSameMatches((*exhaustive)[q], (*approx)[q],
                      "dynamic query " + std::to_string(q));
    EXPECT_GT((*approx)[q].candidates_visited, 0u);
  }

  // A mutation publishes a new generation whose context is rebuilt (cold):
  // approximate queries against it still navigate the NEW corpus.
  Result<size_t> added = dyn.AddGraph(dataset_->db.graph(initial));
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  ASSERT_TRUE(dyn.WarmAnnGraph().ok());
  options.search_window_size = initial + 1;
  Result<std::vector<SearchResult>> after =
      dyn.QueryTopKBatch(Queries(), 10, options);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  SearchOptions exhaustive_after;
  exhaustive_after.tau_hat = 5;
  Result<std::vector<SearchResult>> reference =
      dyn.QueryTopKBatch(Queries(), 10, exhaustive_after);
  ASSERT_TRUE(reference.ok());
  for (size_t q = 0; q < after->size(); ++q) {
    ExpectSameMatches((*reference)[q], (*after)[q],
                      "post-mutation query " + std::to_string(q));
  }
}

}  // namespace
}  // namespace gbda
