// The v3 arena's candidate-column sections (storage/index_arena.h ids
// 8..12): writer emission, open-time cross-section validation
// (ValidateArenaColumns), per-section corruption detection, the
// convert round trip, and agreement between mapped columns and the
// on-the-fly BuildCandidateColumns of the same branch data.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "core/candidate_columns.h"
#include "core/gbda_index.h"
#include "datagen/dataset_profiles.h"
#include "storage/index_arena.h"
#include "storage/index_view.h"

namespace gbda {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void PatchU32(std::string* data, size_t offset, uint32_t value) {
  std::memcpy(&(*data)[offset], &value, sizeof(value));
}

void PatchU64(std::string* data, size_t offset, uint64_t value) {
  std::memcpy(&(*data)[offset], &value, sizeof(value));
}

uint64_t ReadU64(const std::string& data, size_t offset) {
  uint64_t value = 0;
  std::memcpy(&value, data.data() + offset, sizeof(value));
  return value;
}

class ArenaColumnsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = GrecProfile(0.04);
    profile.seed = 77;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));

    GbdaIndexOptions options;
    options.tau_max = 8;
    options.gbd_prior.num_sample_pairs = 500;
    Result<GbdaIndex> index = GbdaIndex::Build(dataset_->db, options);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = new GbdaIndex(std::move(*index));

    arena_path_ = new std::string(::testing::TempDir() + "/arena_columns.v3");
    ASSERT_TRUE(WriteArenaFile(*index_, *arena_path_).ok());
  }
  static void TearDownTestSuite() {
    delete index_;
    delete dataset_;
    delete arena_path_;
    index_ = nullptr;
    dataset_ = nullptr;
    arena_path_ = nullptr;
  }

  static GeneratedDataset* dataset_;
  static GbdaIndex* index_;
  static std::string* arena_path_;
};

GeneratedDataset* ArenaColumnsTest::dataset_ = nullptr;
GbdaIndex* ArenaColumnsTest::index_ = nullptr;
std::string* ArenaColumnsTest::arena_path_ = nullptr;

// ---------------------------------------------------------------------------
// Emission and agreement with the on-the-fly build
// ---------------------------------------------------------------------------

TEST_F(ArenaColumnsTest, WriterEmitsTheColumnGroup) {
  const std::string data = ReadFile(*arena_path_);
  Result<ArenaInfo> info = ParseArenaHeader(data, *arena_path_);
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  const ArenaSectionInfo* sizes = info->FindSection(kSecGraphSizes);
  const ArenaSectionInfo* offsets = info->FindSection(kSecFpOffsets);
  const ArenaSectionInfo* keys = info->FindSection(kSecFpKeys);
  ASSERT_NE(sizes, nullptr);
  ASSERT_NE(offsets, nullptr);
  ASSERT_NE(keys, nullptr);
  EXPECT_EQ(sizes->length, info->num_graphs * sizeof(uint32_t));
  EXPECT_EQ(offsets->length, (info->num_graphs + 1) * sizeof(uint64_t));
  EXPECT_EQ(keys->length, info->total_branches * sizeof(uint64_t));
  for (const uint32_t id : {kSecGraphSizes, kSecFpOffsets, kSecFpKeys,
                            kSecFpUnique, kSecFpRep}) {
    if (const ArenaSectionInfo* sec = info->FindSection(id)) {
      EXPECT_EQ(sec->offset % kArenaSectionAlign, 0u) << ArenaSectionName(id);
    }
  }
  // The directory pair is all-or-nothing.
  EXPECT_EQ(info->FindSection(kSecFpUnique) == nullptr,
            info->FindSection(kSecFpRep) == nullptr);
}

TEST_F(ArenaColumnsTest, MappedColumnsMatchTheOnTheFlyBuild) {
  Result<GbdaIndexView> view = GbdaIndexView::Open(*arena_path_);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const CandidateColumns mapped = view->columns();
  ASSERT_TRUE(mapped.present());

  const OwnedCandidateColumns built = BuildCandidateColumns(*index_);
  const size_t n = index_->num_graphs();
  ASSERT_EQ(built.sizes.size(), n);
  for (size_t g = 0; g < n; ++g) {
    EXPECT_EQ(mapped.sizes[g], built.sizes[g]) << "graph " << g;
    EXPECT_EQ(mapped.fp_offsets[g], built.fp_offsets[g]) << "graph " << g;
  }
  ASSERT_EQ(mapped.fp_offsets[n], built.fp_offsets[n]);
  for (uint64_t i = 0; i < built.fp_offsets[n]; ++i) {
    ASSERT_EQ(mapped.fp_keys[i], built.fp_keys[i]) << "key " << i;
  }
  EXPECT_EQ(mapped.exactness_certified(), built.certified);
  if (built.certified) {
    ASSERT_EQ(mapped.num_distinct, built.fp_unique.size());
    for (size_t i = 0; i < built.fp_unique.size(); ++i) {
      ASSERT_EQ(mapped.fp_unique[i], built.fp_unique[i]) << "entry " << i;
      ASSERT_EQ(mapped.fp_rep[i], built.fp_rep[i]) << "entry " << i;
    }
  }
  // The owned index materialises the same columns lazily.
  const CandidateColumns lazy = index_->columns();
  ASSERT_TRUE(lazy.present());
  EXPECT_EQ(lazy.exactness_certified(), built.certified);
  for (size_t g = 0; g <= n; ++g) {
    EXPECT_EQ(lazy.fp_offsets[g], built.fp_offsets[g]);
  }
}

TEST_F(ArenaColumnsTest, ColumnsSurviveTheConvertRoundTrip) {
  // v3 -> v2 -> v3: the v2 stream carries no columns, so the second v3
  // write recomputes them — and they must come back byte-identical, the
  // determinism the convert round-trip in CI relies on.
  Result<GbdaIndexView> view = GbdaIndexView::Open(*arena_path_);
  ASSERT_TRUE(view.ok());
  Result<GbdaIndex> materialized = view->Materialize();
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  const std::string second = ::testing::TempDir() + "/arena_columns_rt.v3";
  ASSERT_TRUE(WriteArenaFile(*materialized, second).ok());

  const std::string a = ReadFile(*arena_path_);
  const std::string b = ReadFile(second);
  Result<ArenaInfo> info_a = ParseArenaHeader(a, "a");
  Result<ArenaInfo> info_b = ParseArenaHeader(b, "b");
  ASSERT_TRUE(info_a.ok());
  ASSERT_TRUE(info_b.ok());
  for (const uint32_t id : {kSecGraphSizes, kSecFpOffsets, kSecFpKeys,
                            kSecFpUnique, kSecFpRep}) {
    const ArenaSectionInfo* sec_a = info_a->FindSection(id);
    const ArenaSectionInfo* sec_b = info_b->FindSection(id);
    ASSERT_EQ(sec_a == nullptr, sec_b == nullptr) << ArenaSectionName(id);
    if (sec_a == nullptr) continue;
    EXPECT_EQ(sec_a->length, sec_b->length) << ArenaSectionName(id);
    EXPECT_EQ(sec_a->crc32, sec_b->crc32) << ArenaSectionName(id);
  }
}

// ---------------------------------------------------------------------------
// Corruption: per-section bit flips and cross-section lies
// ---------------------------------------------------------------------------

TEST_F(ArenaColumnsTest, BitFlipInEachColumnSectionIsCaught) {
  // One regression clause per new section id: a single flipped payload bit
  // must fail a checksum-verified open, naming the section when the
  // checksum pass (rather than structural validation) is what trips.
  const std::string data = ReadFile(*arena_path_);
  Result<ArenaInfo> info = ParseArenaHeader(data, *arena_path_);
  ASSERT_TRUE(info.ok());
  const std::string path = ::testing::TempDir() + "/arena_columns_flip.v3";
  GbdaIndexView::OpenOptions verify;
  verify.verify_checksums = true;
  for (const uint32_t id : {kSecGraphSizes, kSecFpOffsets, kSecFpKeys,
                            kSecFpUnique, kSecFpRep}) {
    const ArenaSectionInfo* sec = info->FindSection(id);
    if (sec == nullptr || sec->length == 0) continue;
    std::string corrupt = data;
    const size_t target = static_cast<size_t>(sec->offset + sec->length / 2);
    corrupt[target] = static_cast<char>(corrupt[target] ^ 0x10);
    WriteFile(path, corrupt);
    Result<GbdaIndexView> opened = GbdaIndexView::Open(path, verify);
    ASSERT_FALSE(opened.ok()) << ArenaSectionName(id);
    if (opened.status().code() == StatusCode::kDataLoss) {
      EXPECT_NE(opened.status().message().find(ArenaSectionName(id)),
                std::string::npos)
          << opened.status().message();
    }
  }
}

TEST_F(ArenaColumnsTest, CrossSectionLiesAreRejectedAtEveryOpen) {
  // These payloads keep plausible structure, so only the cross-section
  // validation (ValidateArenaColumns) can catch them — and it must do so
  // on a DEFAULT open, not just under verify_checksums: the fp_rep
  // entries are dereferenced on the serving path.
  const std::string data = ReadFile(*arena_path_);
  Result<ArenaInfo> info = ParseArenaHeader(data, *arena_path_);
  ASSERT_TRUE(info.ok());
  const std::string path = ::testing::TempDir() + "/arena_columns_lie.v3";

  const ArenaSectionInfo* sizes = info->FindSection(kSecGraphSizes);
  ASSERT_NE(sizes, nullptr);
  {
    // graph_sizes[0] += 1: no longer the branch_start delta.
    std::string corrupt = data;
    uint32_t size;
    std::memcpy(&size, corrupt.data() + sizes->offset, sizeof(size));
    PatchU32(&corrupt, static_cast<size_t>(sizes->offset), size + 1);
    WriteFile(path, corrupt);
    Result<GbdaIndexView> opened = GbdaIndexView::Open(path);
    ASSERT_FALSE(opened.ok());
    EXPECT_NE(opened.status().message().find("graph_sizes"),
              std::string::npos)
        << opened.status().message();
  }
  {
    // fp_offsets[1] += 8: drifts off branch_start.
    const ArenaSectionInfo* offsets = info->FindSection(kSecFpOffsets);
    ASSERT_NE(offsets, nullptr);
    std::string corrupt = data;
    const size_t at = static_cast<size_t>(offsets->offset + sizeof(uint64_t));
    PatchU64(&corrupt, at, ReadU64(corrupt, at) + 8);
    WriteFile(path, corrupt);
    Result<GbdaIndexView> opened = GbdaIndexView::Open(path);
    ASSERT_FALSE(opened.ok());
    EXPECT_NE(opened.status().message().find("fp_offsets"), std::string::npos)
        << opened.status().message();
  }
  const ArenaSectionInfo* uniq = info->FindSection(kSecFpUnique);
  if (uniq != nullptr && uniq->length >= 2 * sizeof(uint64_t)) {
    // fp_unique[1] := fp_unique[0]: breaks strict ascent.
    std::string corrupt = data;
    PatchU64(&corrupt, static_cast<size_t>(uniq->offset + sizeof(uint64_t)),
             ReadU64(corrupt, static_cast<size_t>(uniq->offset)));
    WriteFile(path, corrupt);
    Result<GbdaIndexView> opened = GbdaIndexView::Open(path);
    ASSERT_FALSE(opened.ok());
    EXPECT_NE(opened.status().message().find("fp_unique"), std::string::npos)
        << opened.status().message();
  }
  if (const ArenaSectionInfo* rep = info->FindSection(kSecFpRep)) {
    // fp_rep[0] := far-out-of-range graph id.
    std::string corrupt = data;
    PatchU64(&corrupt, static_cast<size_t>(rep->offset),
             (info->num_graphs + 7) << 32);
    WriteFile(path, corrupt);
    Result<GbdaIndexView> opened = GbdaIndexView::Open(path);
    ASSERT_FALSE(opened.ok());
    EXPECT_NE(opened.status().message().find("fp_rep"), std::string::npos)
        << opened.status().message();
  }
}

TEST_F(ArenaColumnsTest, PartialColumnGroupIsRejected) {
  // Relabeling only fp_keys to an unknown id leaves graph_sizes/fp_offsets
  // orphaned: the group is all-or-none, a structural error.
  std::string corrupt = ReadFile(*arena_path_);
  Result<ArenaInfo> info = ParseArenaHeader(corrupt, *arena_path_);
  ASSERT_TRUE(info.ok());
  // Relabel fp_keys and everything after it (keeping ids ascending so the
  // ordering check stays quiet and the group check is what fires).
  uint32_t next_id = 42;
  bool relabeling = false;
  for (size_t s = 0; s < info->sections.size(); ++s) {
    if (info->sections[s].id == kSecFpKeys) relabeling = true;
    if (!relabeling) continue;
    const size_t id_at = kArenaPreambleBytes + kArenaMetaScalarBytes +
                         s * kArenaSectionEntryBytes;
    PatchU32(&corrupt, id_at, next_id++);
  }
  ASSERT_TRUE(relabeling);
  // Re-CRC the edited header so the group check (not the meta checksum) is
  // what rejects the artifact.
  uint32_t section_count = 0;
  std::memcpy(&section_count, corrupt.data() + 12, sizeof(section_count));
  PatchU32(&corrupt, 24,
           Crc32(corrupt.data() + kArenaPreambleBytes,
                 ArenaHeaderBytes(section_count) - kArenaPreambleBytes));
  Result<ArenaInfo> parsed = ParseArenaHeader(corrupt, "partial");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gbda
