// Persistence of the proximity graph as the v3 arena's optional trailing
// ann_graph section, and the format's forward-compatibility contract: a
// reader must validate (and CRC-cover) trailing sections it does not
// understand but SKIP them, so an artifact written by a newer build still
// opens here minus that section's feature. The regression test patches a
// real artifact's trailing section id to a future one and re-opens it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "ann/navigator.h"
#include "ann/proximity_graph.h"
#include "common/crc32.h"
#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "storage/index_arena.h"
#include "storage/index_view.h"

namespace gbda {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void PatchU32(std::string* data, size_t offset, uint32_t value) {
  std::memcpy(&(*data)[offset], &value, sizeof(value));
}

// Recomputes the header CRC after a deliberate header edit, so the tests
// below exercise the section-table validation rather than tripping the
// always-on meta checksum. Mirrors the writer: the CRC at preamble offset
// 24 covers [kArenaPreambleBytes, ArenaHeaderBytes(section_count)).
void FixMetaCrc(std::string* data) {
  uint32_t section_count = 0;
  std::memcpy(&section_count, data->data() + 12, sizeof(section_count));
  const size_t header_bytes = ArenaHeaderBytes(section_count);
  const uint32_t crc = Crc32(data->data() + kArenaPreambleBytes,
                             header_bytes - kArenaPreambleBytes);
  PatchU32(data, 24, crc);
}

// Byte offset of trailing table entry `s` (0-based) field `field_offset`.
size_t SectionEntryOffset(size_t s, size_t field_offset) {
  return kArenaPreambleBytes + kArenaMetaScalarBytes +
         s * kArenaSectionEntryBytes + field_offset;
}

class AnnArenaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = GrecProfile(0.04);
    profile.seed = 77;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));

    GbdaIndexOptions options;
    options.tau_max = 8;
    options.gbd_prior.num_sample_pairs = 500;
    Result<GbdaIndex> index = GbdaIndex::Build(dataset_->db, options);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = new GbdaIndex(std::move(*index));

    AnnBuildParams params;
    params.graph_degree = 8;
    params.build_window = 16;
    Result<ProximityGraph> graph =
        BuildProximityGraph(FingerprintStore::FromIndex(*index_), params);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = new ProximityGraph(std::move(*graph));

    arena_path_ = new std::string(::testing::TempDir() + "/ann_arena.v3");
    ASSERT_TRUE(WriteArenaFile(*index_, *arena_path_, graph_).ok());
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete index_;
    delete dataset_;
    delete arena_path_;
    graph_ = nullptr;
    index_ = nullptr;
    dataset_ = nullptr;
    arena_path_ = nullptr;
  }

  // Index of the ann_graph entry in the section table (0-based).
  static constexpr size_t kAnnEntry = kArenaSectionCount;

  static GeneratedDataset* dataset_;
  static GbdaIndex* index_;
  static ProximityGraph* graph_;
  static std::string* arena_path_;
};

GeneratedDataset* AnnArenaTest::dataset_ = nullptr;
GbdaIndex* AnnArenaTest::index_ = nullptr;
ProximityGraph* AnnArenaTest::graph_ = nullptr;
std::string* AnnArenaTest::arena_path_ = nullptr;

// ---------------------------------------------------------------------------
// Writing and reading the seventh section
// ---------------------------------------------------------------------------

TEST_F(AnnArenaTest, ArenaCarriesTheAnnSection) {
  const std::string data = ReadFile(*arena_path_);
  Result<ArenaInfo> info = ParseArenaHeader(data, *arena_path_);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  // Canonical six + ann_graph + the candidate-column group (and, when the
  // corpus certifies, the exactness directory pair).
  ASSERT_GE(info->sections.size(), kArenaSectionCount + 4);
  const ArenaSectionInfo* sec = info->FindSection(kSecAnnGraph);
  ASSERT_NE(sec, nullptr);
  EXPECT_EQ(sec->offset % kArenaSectionAlign, 0u);
  EXPECT_GT(sec->length, 0u);
  // Every section's CRC — the trailing one included — verifies.
  EXPECT_TRUE(VerifyArenaChecksums(data, *info, *arena_path_).ok());
}

TEST_F(AnnArenaTest, WithoutAGraphTheArenaStaysMinimal) {
  // A null ann_graph yields no ann section; the candidate-column group is
  // unconditional, but readers that predate either feature skip both (the
  // unknown-trailing-id contract), so old readers keep working on new
  // writers' files.
  const std::string path = ::testing::TempDir() + "/ann_arena_plain.v3";
  ASSERT_TRUE(WriteArenaFile(*index_, path).ok());
  const std::string data = ReadFile(path);
  Result<ArenaInfo> info = ParseArenaHeader(data, path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->FindSection(kSecAnnGraph), nullptr);
  EXPECT_NE(info->FindSection(kSecFpKeys), nullptr);
  Result<GbdaIndexView> view = GbdaIndexView::Open(path);
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(view->has_ann_graph());
}

TEST_F(AnnArenaTest, ViewExposesTheMappedGraph) {
  Result<GbdaIndexView> view = GbdaIndexView::Open(*arena_path_);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_TRUE(view->has_ann_graph());
  const ProximityGraphRef& mapped = view->ann_graph();
  ASSERT_EQ(mapped.num_nodes, graph_->num_nodes());
  EXPECT_EQ(mapped.num_edges, graph_->neighbors.size());
  EXPECT_EQ(mapped.entry_point, graph_->entry_point);
  EXPECT_EQ(mapped.degree_bound, graph_->degree_bound);
  for (size_t i = 0; i <= graph_->num_nodes(); ++i) {
    ASSERT_EQ(mapped.offsets[i], graph_->offsets[i]) << "offset " << i;
  }
  for (size_t e = 0; e < graph_->neighbors.size(); ++e) {
    ASSERT_EQ(mapped.neighbors[e], graph_->neighbors[e]) << "edge " << e;
  }
  // The mapped graph adopts into a navigation context (the serving path for
  // persisted graphs).
  Result<AnnContext> ctx =
      AnnContext::Adopt(FingerprintStore::FromIndex(*view), mapped);
  EXPECT_TRUE(ctx.ok()) << ctx.status().ToString();
}

TEST_F(AnnArenaTest, MaterializeDropsTheGraph) {
  Result<GbdaIndexView> view = GbdaIndexView::Open(*arena_path_);
  ASSERT_TRUE(view.ok());
  Result<GbdaIndex> materialized = view->Materialize();
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  Result<std::string> rebuilt = BuildArena(*materialized);
  ASSERT_TRUE(rebuilt.ok());
  Result<ArenaInfo> info = ParseArenaHeader(*rebuilt, "rebuilt");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->FindSection(kSecAnnGraph), nullptr);
}

// ---------------------------------------------------------------------------
// Forward compatibility: unknown trailing sections are skipped
// ---------------------------------------------------------------------------

TEST_F(AnnArenaTest, UnknownTrailingSectionIsValidatedButSkipped) {
  // Simulate an artifact from a future build: relabel every
  // candidate-column entry with ids this reader does not know (43...).
  // Trailing ids must stay strictly increasing, so the group after the
  // ann_graph entry is the one that can take fresh ids. This doubles as
  // the column-fallback regression: a view without columns serves through
  // branch walks, bit-identically.
  std::string future = ReadFile(*arena_path_);
  Result<ArenaInfo> original = ParseArenaHeader(future, *arena_path_);
  ASSERT_TRUE(original.ok());
  uint32_t next_id = 43;
  for (size_t s = kArenaSectionCount; s < original->sections.size(); ++s) {
    if (original->sections[s].id >= kSecGraphSizes) {
      PatchU32(&future, SectionEntryOffset(s, 0), next_id++);
    }
  }
  FixMetaCrc(&future);
  const std::string path = ::testing::TempDir() + "/ann_arena_future.v3";
  WriteFile(path, future);

  Result<ArenaInfo> info = ParseArenaHeader(future, path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_NE(info->FindSection(43), nullptr);
  EXPECT_EQ(info->FindSection(kSecGraphSizes), nullptr);
  EXPECT_EQ(info->FindSection(kSecFpKeys), nullptr);
  // Checksum verification still covers the unknown payloads.
  EXPECT_TRUE(VerifyArenaChecksums(future, *info, path).ok());

  GbdaIndexView::OpenOptions verify;
  verify.verify_checksums = true;
  Result<GbdaIndexView> view = GbdaIndexView::Open(path, verify);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(view->has_ann_graph());
  EXPECT_FALSE(view->columns().present());

  // Minus the skipped feature, the artifact serves bit-identically.
  Result<GbdaIndexView> reference = GbdaIndexView::Open(*arena_path_);
  ASSERT_TRUE(reference.ok());
  GbdaSearch future_search(&dataset_->db, &*view);
  GbdaSearch reference_search(&dataset_->db, &*reference);
  SearchOptions options;
  options.tau_hat = 5;
  Result<SearchResult> a =
      future_search.QueryTopK(dataset_->queries[0], 5, options);
  Result<SearchResult> b =
      reference_search.QueryTopK(dataset_->queries[0], 5, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->matches.size(), b->matches.size());
  for (size_t i = 0; i < a->matches.size(); ++i) {
    EXPECT_EQ(a->matches[i].graph_id, b->matches[i].graph_id);
    EXPECT_EQ(a->matches[i].phi_score, b->matches[i].phi_score);
    EXPECT_EQ(a->matches[i].gbd, b->matches[i].gbd);
  }
}

TEST_F(AnnArenaTest, TrailingSectionIdsMustStrictlyIncrease) {
  // A trailing id at or below the canonical six (or duplicated) is a
  // structural error, not a skippable unknown.
  for (uint32_t hostile : {uint32_t{0}, uint32_t{3}, uint32_t{6}}) {
    std::string corrupt = ReadFile(*arena_path_);
    PatchU32(&corrupt, SectionEntryOffset(kAnnEntry, 0), hostile);
    FixMetaCrc(&corrupt);
    Result<ArenaInfo> info = ParseArenaHeader(corrupt, "corrupt");
    ASSERT_FALSE(info.ok()) << "id " << hostile;
    EXPECT_EQ(info.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(AnnArenaTest, MetaCrcCoversTheTrailingTableEntry) {
  // The same id patch without the CRC fix must trip the always-on header
  // checksum — a flipped byte in a trailing entry is never silent.
  std::string corrupt = ReadFile(*arena_path_);
  PatchU32(&corrupt, SectionEntryOffset(kAnnEntry, 0), 42);
  Result<ArenaInfo> info = ParseArenaHeader(corrupt, "corrupt");
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Known id, unreadable payload: degrade on the serving path
// ---------------------------------------------------------------------------

TEST_F(AnnArenaTest, FutureAnnFormatVersionDegradesToNoGraph) {
  // An ann_graph section whose payload declares a future format revision
  // opens WITHOUT the graph (kNotSupported degrade) instead of failing —
  // the artifact's exhaustive serving stays available.
  std::string future = ReadFile(*arena_path_);
  Result<ArenaInfo> info = ParseArenaHeader(future, *arena_path_);
  ASSERT_TRUE(info.ok());
  const ArenaSectionInfo* sec = info->FindSection(kSecAnnGraph);
  ASSERT_NE(sec, nullptr);
  const size_t payload = static_cast<size_t>(sec->offset);
  PatchU32(&future, payload, kAnnGraphFormatVersion + 1);
  // Keep the artifact internally consistent: re-CRC the edited section.
  PatchU32(&future, SectionEntryOffset(kAnnEntry, 24),
           Crc32(future.data() + payload, static_cast<size_t>(sec->length)));
  FixMetaCrc(&future);
  const std::string path = ::testing::TempDir() + "/ann_arena_futurefmt.v3";
  WriteFile(path, future);

  GbdaIndexView::OpenOptions verify;
  verify.verify_checksums = true;
  Result<GbdaIndexView> view = GbdaIndexView::Open(path, verify);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE(view->has_ann_graph());
}

TEST_F(AnnArenaTest, CorruptAnnPayloadFailsTheOpen) {
  // Same known id, same format version, but structurally hostile content
  // (entry point beyond the corpus): that is corruption, not a future
  // format — the open must fail rather than navigate out of bounds.
  std::string corrupt = ReadFile(*arena_path_);
  Result<ArenaInfo> info = ParseArenaHeader(corrupt, *arena_path_);
  ASSERT_TRUE(info.ok());
  const ArenaSectionInfo* sec = info->FindSection(kSecAnnGraph);
  ASSERT_NE(sec, nullptr);
  const size_t payload = static_cast<size_t>(sec->offset);
  PatchU32(&corrupt, payload + 8, 1u << 30);  // entry_point
  PatchU32(&corrupt, SectionEntryOffset(kAnnEntry, 24),
           Crc32(corrupt.data() + payload, static_cast<size_t>(sec->length)));
  FixMetaCrc(&corrupt);
  const std::string path = ::testing::TempDir() + "/ann_arena_corrupt.v3";
  WriteFile(path, corrupt);
  EXPECT_FALSE(GbdaIndexView::Open(path).ok());
}

}  // namespace
}  // namespace gbda
