#include <gtest/gtest.h>

#include <fstream>

#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"

namespace gbda {
namespace {

class IndexIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = GrecProfile(0.03);
    profile.seed = 31;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static GeneratedDataset* dataset_;
};

GeneratedDataset* IndexIoTest::dataset_ = nullptr;

TEST_F(IndexIoTest, SaveLoadRoundTripPreservesQueries) {
  GbdaIndexOptions options;
  options.tau_max = 8;
  options.gbd_prior.num_sample_pairs = 1000;
  Result<GbdaIndex> built = GbdaIndex::Build(dataset_->db, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const std::string path = ::testing::TempDir() + "/gbda_index_test.bin";
  ASSERT_TRUE(built->SaveToFile(path).ok());
  Result<GbdaIndex> loaded = GbdaIndex::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_graphs(), built->num_graphs());
  EXPECT_EQ(loaded->tau_max(), built->tau_max());
  EXPECT_EQ(loaded->num_vertex_labels(), built->num_vertex_labels());
  EXPECT_DOUBLE_EQ(loaded->avg_vertices(), built->avg_vertices());
  for (size_t i = 0; i < built->num_graphs(); ++i) {
    EXPECT_EQ(loaded->branches(i), built->branches(i)) << "graph " << i;
  }

  // The loaded index answers queries identically.
  GbdaSearch search_built(&dataset_->db, &*built);
  GbdaSearch search_loaded(&dataset_->db, &*loaded);
  SearchOptions opts;
  opts.tau_hat = 6;
  opts.gamma = 0.5;
  for (size_t q = 0; q < std::min<size_t>(dataset_->queries.size(), 3); ++q) {
    Result<SearchResult> a = search_built.Query(dataset_->queries[q], opts);
    Result<SearchResult> b = search_loaded.Query(dataset_->queries[q], opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->matches.size(), b->matches.size());
    for (size_t i = 0; i < a->matches.size(); ++i) {
      EXPECT_EQ(a->matches[i].graph_id, b->matches[i].graph_id);
      EXPECT_NEAR(a->matches[i].phi_score, b->matches[i].phi_score, 1e-12);
    }
  }
}

TEST_F(IndexIoTest, LoadRejectsMissingFile) {
  Result<GbdaIndex> r = GbdaIndex::LoadFromFile("/nonexistent/index.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(IndexIoTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/gbda_garbage.bin";
  std::ofstream(path) << "this is not an index";
  Result<GbdaIndex> r = GbdaIndex::LoadFromFile(path);
  EXPECT_FALSE(r.ok());
}

TEST_F(IndexIoTest, LoadRejectsTruncatedIndex) {
  GbdaIndexOptions options;
  options.tau_max = 5;
  options.gbd_prior.num_sample_pairs = 500;
  Result<GbdaIndex> built = GbdaIndex::Build(dataset_->db, options);
  ASSERT_TRUE(built.ok());
  const std::string path = ::testing::TempDir() + "/gbda_trunc.bin";
  ASSERT_TRUE(built->SaveToFile(path).ok());

  // Truncate the file to half.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  out.close();

  EXPECT_FALSE(GbdaIndex::LoadFromFile(path).ok());
}

TEST_F(IndexIoTest, BuildRejectsEmptyDatabase) {
  GraphDatabase empty;
  GbdaIndexOptions options;
  EXPECT_FALSE(GbdaIndex::Build(empty, options).ok());
}

TEST_F(IndexIoTest, BuildRejectsNegativeTau) {
  GbdaIndexOptions options;
  options.tau_max = -1;
  EXPECT_FALSE(GbdaIndex::Build(dataset_->db, options).ok());
}

}  // namespace
}  // namespace gbda
