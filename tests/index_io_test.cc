#include <gtest/gtest.h>

#include <fstream>

#include "common/serialize.h"
#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "graph/generators.h"

namespace gbda {
namespace {

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A syntactically valid index header (magic..avg_vertices), ready for a
// hostile body. Field order mirrors GbdaIndex::SaveToFile.
BinaryWriter ValidHeader(int64_t tau_max = 5) {
  BinaryWriter w;
  w.PutU32(0x47424441);  // magic
  w.PutU32(2);           // version
  w.PutI64(tau_max);
  w.PutU64(500);       // sample pairs
  w.PutU64(1234);      // seed
  w.PutDouble(1e-12);  // probability floor
  w.PutI64(3);         // GMM components
  w.PutI64(200);       // GMM iterations
  w.PutDouble(1e-7);   // GMM tolerance
  w.PutDouble(0.25);   // GMM stddev floor
  w.PutU64(42);        // GMM seed
  w.PutI64(3);         // |L_V|
  w.PutI64(2);         // |L_E|
  w.PutDouble(4.0);
  return w;
}

class IndexIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = GrecProfile(0.03);
    profile.seed = 31;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static GeneratedDataset* dataset_;
};

GeneratedDataset* IndexIoTest::dataset_ = nullptr;

TEST_F(IndexIoTest, SaveLoadRoundTripPreservesQueries) {
  GbdaIndexOptions options;
  options.tau_max = 8;
  options.gbd_prior.num_sample_pairs = 1000;
  // Non-default prior knobs so the options round-trip check is meaningful.
  options.gbd_prior.probability_floor = 1e-10;
  options.gbd_prior.gmm.num_components = 2;
  options.gbd_prior.gmm.stddev_floor = 0.5;
  options.gbd_prior.gmm.seed = 7;
  Result<GbdaIndex> built = GbdaIndex::Build(dataset_->db, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const std::string path = ::testing::TempDir() + "/gbda_index_test.bin";
  ASSERT_TRUE(built->SaveToFile(path).ok());
  Result<GbdaIndex> loaded = GbdaIndex::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_graphs(), built->num_graphs());
  EXPECT_EQ(loaded->tau_max(), built->tau_max());
  EXPECT_EQ(loaded->num_vertex_labels(), built->num_vertex_labels());
  EXPECT_DOUBLE_EQ(loaded->avg_vertices(), built->avg_vertices());
  // v2 format: the full prior options round-trip, so an incremental
  // RefitGbdPrior on the loaded artifact runs Build's exact arithmetic.
  EXPECT_EQ(loaded->options().gbd_prior.num_sample_pairs,
            built->options().gbd_prior.num_sample_pairs);
  EXPECT_EQ(loaded->options().gbd_prior.probability_floor,
            built->options().gbd_prior.probability_floor);
  EXPECT_EQ(loaded->options().gbd_prior.gmm.num_components,
            built->options().gbd_prior.gmm.num_components);
  EXPECT_EQ(loaded->options().gbd_prior.gmm.max_iterations,
            built->options().gbd_prior.gmm.max_iterations);
  EXPECT_EQ(loaded->options().gbd_prior.gmm.tolerance,
            built->options().gbd_prior.gmm.tolerance);
  EXPECT_EQ(loaded->options().gbd_prior.gmm.stddev_floor,
            built->options().gbd_prior.gmm.stddev_floor);
  EXPECT_EQ(loaded->options().gbd_prior.gmm.seed,
            built->options().gbd_prior.gmm.seed);
  for (size_t i = 0; i < built->num_graphs(); ++i) {
    EXPECT_EQ(loaded->branches(i), built->branches(i)) << "graph " << i;
  }

  // The loaded index answers queries identically.
  GbdaSearch search_built(&dataset_->db, &*built);
  GbdaSearch search_loaded(&dataset_->db, &*loaded);
  SearchOptions opts;
  opts.tau_hat = 6;
  opts.gamma = 0.5;
  for (size_t q = 0; q < std::min<size_t>(dataset_->queries.size(), 3); ++q) {
    Result<SearchResult> a = search_built.Query(dataset_->queries[q], opts);
    Result<SearchResult> b = search_loaded.Query(dataset_->queries[q], opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->matches.size(), b->matches.size());
    for (size_t i = 0; i < a->matches.size(); ++i) {
      EXPECT_EQ(a->matches[i].graph_id, b->matches[i].graph_id);
      EXPECT_NEAR(a->matches[i].phi_score, b->matches[i].phi_score, 1e-12);
    }
  }
}

TEST_F(IndexIoTest, LoadRejectsMissingFile) {
  Result<GbdaIndex> r = GbdaIndex::LoadFromFile("/nonexistent/index.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(IndexIoTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/gbda_garbage.bin";
  std::ofstream(path) << "this is not an index";
  Result<GbdaIndex> r = GbdaIndex::LoadFromFile(path);
  EXPECT_FALSE(r.ok());
}

TEST_F(IndexIoTest, LoadRejectsTruncatedIndex) {
  GbdaIndexOptions options;
  options.tau_max = 5;
  options.gbd_prior.num_sample_pairs = 500;
  Result<GbdaIndex> built = GbdaIndex::Build(dataset_->db, options);
  ASSERT_TRUE(built.ok());
  const std::string path = ::testing::TempDir() + "/gbda_trunc.bin";
  ASSERT_TRUE(built->SaveToFile(path).ok());

  // Truncate the file to half.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  out.close();

  EXPECT_FALSE(GbdaIndex::LoadFromFile(path).ok());
}

TEST_F(IndexIoTest, LoadRejectsUnsupportedVersion) {
  BinaryWriter w;
  w.PutU32(0x47424441);
  w.PutU32(999);
  const std::string path = ::testing::TempDir() + "/gbda_bad_version.bin";
  WriteFile(path, w.buffer());
  Result<GbdaIndex> r = GbdaIndex::LoadFromFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST_F(IndexIoTest, LoadRejectsImplausibleTau) {
  // Negative, and too large to ever evaluate: lazy GED-prior rows cost
  // O(tau^2) memory / O(tau^3+) time, so an unbounded hostile tau_max would
  // turn the first query into an OOM or a hang.
  for (int64_t hostile : {int64_t{-3}, int64_t{5000}, int64_t{1} << 40}) {
    BinaryWriter w = ValidHeader(/*tau_max=*/hostile);
    w.PutU64(0);  // num_graphs
    const std::string path = ::testing::TempDir() + "/gbda_bad_tau.bin";
    WriteFile(path, w.buffer());
    EXPECT_FALSE(GbdaIndex::LoadFromFile(path).ok()) << "tau=" << hostile;
  }
}

TEST_F(IndexIoTest, LoadRejectsAbsurdGraphCount) {
  // A 70-odd-byte file claiming ~2^63 graphs used to reach
  // branches_.resize(num_graphs) and demand gigabytes before the first
  // per-graph read could fail. The count must be validated against the
  // bytes actually remaining.
  for (uint64_t hostile : {~uint64_t{0}, uint64_t{1} << 62,
                           uint64_t{1} << 32, uint64_t{100000}}) {
    BinaryWriter w = ValidHeader();
    w.PutU64(hostile);
    const std::string path = ::testing::TempDir() + "/gbda_absurd_count.bin";
    WriteFile(path, w.buffer());
    Result<GbdaIndex> r = GbdaIndex::LoadFromFile(path);
    ASSERT_FALSE(r.ok()) << "num_graphs=" << hostile;
    EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  }
}

TEST_F(IndexIoTest, LoadRejectsAbsurdBranchCount) {
  // One graph whose branch count claims more records than the file holds.
  for (uint64_t hostile : {~uint64_t{0}, uint64_t{1} << 61, uint64_t{4096}}) {
    BinaryWriter w = ValidHeader();
    w.PutU64(1);        // num_graphs
    w.PutU64(hostile);  // branch count of graph 0
    const std::string path = ::testing::TempDir() + "/gbda_absurd_branch.bin";
    WriteFile(path, w.buffer());
    Result<GbdaIndex> r = GbdaIndex::LoadFromFile(path);
    ASSERT_FALSE(r.ok()) << "count=" << hostile;
    EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  }
}

TEST_F(IndexIoTest, LoadRejectsInconsistentEmbeddedPriorHeader) {
  // Both headers pass their independent plausibility checks, but the GED
  // prior claims tau_max = 3 while the index admits tau_hat up to 5 — the
  // table would silently return zero mass for tau in (3, 5].
  BinaryWriter w = ValidHeader(/*tau_max=*/5);
  w.PutU64(0);  // num_graphs
  // Minimal GbdPrior blob: pairs, floor, one GMM component, empty tables.
  w.PutU64(10);
  w.PutDouble(1e-12);
  w.PutU64(1);
  w.PutDouble(1.0);  // weight
  w.PutDouble(0.0);  // mean
  w.PutDouble(1.0);  // stddev
  w.PutPodVector<double>({});
  w.PutPodVector<size_t>({});
  // GedPriorTable blob with a disagreeing tau_max.
  w.PutI64(3);  // |L_V| (matches)
  w.PutI64(2);  // |L_E| (matches)
  w.PutI64(3);  // tau_max (index header says 5)
  w.PutU64(0);  // no cached rows
  const std::string path = ::testing::TempDir() + "/gbda_prior_mismatch.bin";
  WriteFile(path, w.buffer());
  Result<GbdaIndex> r = GbdaIndex::LoadFromFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IndexIoTest, LoadRejectsTrailingBytes) {
  GbdaIndexOptions options;
  options.tau_max = 5;
  options.gbd_prior.num_sample_pairs = 500;
  Result<GbdaIndex> built = GbdaIndex::Build(dataset_->db, options);
  ASSERT_TRUE(built.ok());
  const std::string path = ::testing::TempDir() + "/gbda_trailing.bin";
  ASSERT_TRUE(built->SaveToFile(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data.append("junk");
  WriteFile(path, data);
  EXPECT_FALSE(GbdaIndex::LoadFromFile(path).ok());
}

// The v2 integrity footer: magic + section count + 4 section CRCs.
// (footer size exported by gbda_index.h as kIndexV2FooterBytes)

TEST_F(IndexIoTest, EveryTruncationPrefixFailsCleanly) {
  // Exhaustive truncation sweep over a small real index: no prefix of a
  // valid file may load, crash, or over-allocate — except the one prefix
  // that strips exactly the integrity footer, which loads by design (the
  // backward-compatibility window for footer-less pre-CRC artifacts). Uses
  // a hand-built tiny database so the sweep stays a few thousand parses.
  GraphDatabase tiny;
  tiny.vertex_labels().InternNumbered(3);
  tiny.edge_labels().InternNumbered(2);
  Rng rng(7);
  for (size_t i = 0; i < 4; ++i) {
    GeneratorOptions gen;
    gen.num_vertices = 5 + i;
    gen.extra_edges = 3;
    gen.num_vertex_labels = 3;
    gen.num_edge_labels = 2;
    Result<Graph> g = GenerateConnectedGraph(gen, &rng);
    ASSERT_TRUE(g.ok());
    tiny.Add(std::move(*g));
  }
  GbdaIndexOptions options;
  options.tau_max = 3;
  options.gbd_prior.num_sample_pairs = 10;
  Result<GbdaIndex> built = GbdaIndex::Build(tiny, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::string path = ::testing::TempDir() + "/gbda_prefix.bin";
  ASSERT_TRUE(built->SaveToFile(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  ASSERT_TRUE(GbdaIndex::LoadFromFile(path).ok());
  ASSERT_GT(data.size(), kIndexV2FooterBytes);
  const size_t payload = data.size() - kIndexV2FooterBytes;
  for (size_t len = 0; len < data.size(); ++len) {
    WriteFile(path, data.substr(0, len));
    if (len == payload) {
      EXPECT_TRUE(GbdaIndex::LoadFromFile(path).ok())
          << "footer-less payload must stay loadable (compat window)";
    } else {
      EXPECT_FALSE(GbdaIndex::LoadFromFile(path).ok()) << "prefix " << len;
    }
  }
}

TEST_F(IndexIoTest, FooterCatchesSingleBitFlips) {
  // Regression for the CRC32 footer: a single flipped bit anywhere in the
  // payload must be rejected as DataLoss, with the message naming the
  // artifact. Sampled offsets cover all four sections.
  GbdaIndexOptions options;
  options.tau_max = 4;
  options.gbd_prior.num_sample_pairs = 200;
  Result<GbdaIndex> built = GbdaIndex::Build(dataset_->db, options);
  ASSERT_TRUE(built.ok());
  const std::string path = ::testing::TempDir() + "/gbda_bitflip.bin";
  ASSERT_TRUE(built->SaveToFile(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(data.size(), kIndexV2FooterBytes);
  const size_t payload = data.size() - kIndexV2FooterBytes;
  // ~17 offsets spread over the payload, plus the first/last payload byte.
  std::vector<size_t> offsets = {0, payload - 1};
  for (size_t k = 1; k < 16; ++k) offsets.push_back(k * payload / 16);
  for (size_t off : offsets) {
    std::string corrupt = data;
    corrupt[off] = static_cast<char>(corrupt[off] ^ 0x10);
    WriteFile(path, corrupt);
    Result<GbdaIndex> r = GbdaIndex::LoadFromFile(path);
    ASSERT_FALSE(r.ok()) << "flip at byte " << off << " not caught";
    // Structural validation may reject the flip first (e.g. a corrupted
    // length word); when it reaches the footer the code is DataLoss and the
    // message names artifact and section.
    if (r.status().code() == StatusCode::kDataLoss) {
      EXPECT_NE(r.status().message().find(path), std::string::npos);
      EXPECT_NE(r.status().message().find("section"), std::string::npos);
    }
  }
}

TEST_F(IndexIoTest, DecodeErrorsNameFileAndOffset) {
  // Corrupt-artifact triage is actionable only when the failure names the
  // file and the byte offset of the bad record.
  GbdaIndexOptions options;
  options.tau_max = 4;
  options.gbd_prior.num_sample_pairs = 200;
  Result<GbdaIndex> built = GbdaIndex::Build(dataset_->db, options);
  ASSERT_TRUE(built.ok());
  const std::string path = ::testing::TempDir() + "/gbda_err_context.bin";
  ASSERT_TRUE(built->SaveToFile(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  // Truncation mid-record: the reader's own message carries the context.
  WriteFile(path, data.substr(0, 40));
  Result<GbdaIndex> truncated = GbdaIndex::LoadFromFile(path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().message().find(path), std::string::npos)
      << truncated.status().message();
  EXPECT_NE(truncated.status().message().find("at byte"), std::string::npos)
      << truncated.status().message();

  // A hostile branch count: the loader's structural message carries it too.
  BinaryWriter w = ValidHeader();
  w.PutU64(1);              // num_graphs
  w.PutU64(~uint64_t{0});   // branch count of graph 0
  WriteFile(path, w.buffer());
  Result<GbdaIndex> hostile = GbdaIndex::LoadFromFile(path);
  ASSERT_FALSE(hostile.ok());
  EXPECT_NE(hostile.status().message().find(path), std::string::npos)
      << hostile.status().message();
  EXPECT_NE(hostile.status().message().find("at byte"), std::string::npos)
      << hostile.status().message();
}

TEST_F(IndexIoTest, IndexRemoveGraphsIsAtomicOnInvalidBatch) {
  GbdaIndexOptions options;
  options.tau_max = 4;
  options.gbd_prior.num_sample_pairs = 200;
  Result<GbdaIndex> built = GbdaIndex::Build(dataset_->db, options);
  ASSERT_TRUE(built.ok());
  const size_t live_before = built->num_live();
  const double avg_before = built->avg_vertices();

  // Duplicate id in one batch: the whole call must be a no-op.
  EXPECT_EQ(built->RemoveGraphs({1, 1}).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(built->is_live(1));
  EXPECT_EQ(built->num_live(), live_before);
  EXPECT_EQ(built->avg_vertices(), avg_before);
  EXPECT_EQ(built->gbd_staleness(), 0u);
  // Mixed valid/invalid: graph 0 must survive the failed call.
  EXPECT_FALSE(built->RemoveGraphs({0, live_before + 10}).ok());
  EXPECT_TRUE(built->is_live(0));
  EXPECT_EQ(built->num_live(), live_before);
}

TEST_F(IndexIoTest, SaveRejectsTombstonedIndex) {
  GbdaIndexOptions options;
  options.tau_max = 4;
  options.gbd_prior.num_sample_pairs = 200;
  Result<GbdaIndex> built = GbdaIndex::Build(dataset_->db, options);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->RemoveGraphs({0}).ok());
  const std::string path = ::testing::TempDir() + "/gbda_tombstoned.bin";
  Status saved = built->SaveToFile(path);
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), StatusCode::kFailedPrecondition);
}

TEST_F(IndexIoTest, SaveRejectsStalePrior) {
  // The format has no staleness field; persisting a drifted Lambda2 would
  // come back as gbd_staleness() == 0 and defeat every refit policy.
  GbdaIndexOptions options;
  options.tau_max = 4;
  options.gbd_prior.num_sample_pairs = 200;
  Result<GbdaIndex> built = GbdaIndex::Build(dataset_->db, options);
  ASSERT_TRUE(built.ok());
  built->AddGraph(dataset_->db.graph(0));
  ASSERT_EQ(built->gbd_staleness(), 1u);
  const std::string path = ::testing::TempDir() + "/gbda_stale.bin";
  Status saved = built->SaveToFile(path);
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), StatusCode::kFailedPrecondition);
  // A refit clears the drift and the artifact becomes persistable again.
  ASSERT_TRUE(built->RefitGbdPrior().ok());
  EXPECT_TRUE(built->SaveToFile(path).ok());
}

TEST_F(IndexIoTest, BuildRejectsEmptyDatabase) {
  GraphDatabase empty;
  GbdaIndexOptions options;
  EXPECT_FALSE(GbdaIndex::Build(empty, options).ok());
}

TEST_F(IndexIoTest, BuildRejectsNegativeTau) {
  GbdaIndexOptions options;
  options.tau_max = -1;
  EXPECT_FALSE(GbdaIndex::Build(dataset_->db, options).ok());
}

}  // namespace
}  // namespace gbda
