#include "common/string_util.h"

#include <gtest/gtest.h>

namespace gbda {
namespace {

TEST(SplitTest, BasicAndEmptyTokens) {
  EXPECT_EQ(Split("a b c", ' '), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a  b", ' '), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(Split("a  b", ' ', /*keep_empty=*/true),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_TRUE(Split("", ' ').empty());
  EXPECT_EQ(Split(",", ',', true), (std::vector<std::string>{"", ""}));
}

TEST(JoinTest, Joins) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, RemovesEdgesOnly) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\nabc\r "), "abc");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(ParseIntTest, ValidAndInvalid) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_EQ(*ParseInt("  13  "), 13);
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("4.5").ok());
  EXPECT_FALSE(ParseInt("999999999999999999999999").ok());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2e3"), -2000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.5garbage").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(HumanBytesTest, PicksUnits) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3u * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(HumanBytes(uint64_t{5} * 1024 * 1024 * 1024), "5.00 GB");
}

TEST(HumanSecondsTest, PicksUnits) {
  EXPECT_EQ(HumanSeconds(5e-5), "50.0 us");
  EXPECT_EQ(HumanSeconds(0.25), "250.0 ms");
  EXPECT_EQ(HumanSeconds(12.0), "12.00 s");
  EXPECT_EQ(HumanSeconds(600.0), "10.0 min");
  EXPECT_EQ(HumanSeconds(7200.0), "2.00 h");
}

}  // namespace
}  // namespace gbda
