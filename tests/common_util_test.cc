#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/table_writer.h"
#include "common/timer.h"

namespace gbda {
namespace {

TEST(TableWriterTest, AlignsColumns) {
  TableWriter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "22"});
  const std::string ascii = table.ToAscii();
  // Header and both rows present.
  EXPECT_NE(ascii.find("| name        | value |"), std::string::npos);
  EXPECT_NE(ascii.find("| longer-name | 22    |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableWriterTest, PadsAndTruncatesRows) {
  TableWriter table({"a", "b", "c"});
  table.AddRow({"1"});                    // padded
  table.AddRow({"1", "2", "3", "extra"});  // truncated
  const std::string ascii = table.ToAscii();
  EXPECT_EQ(ascii.find("extra"), std::string::npos);
}

TEST(TableWriterTest, CsvQuotesSpecialCells) {
  TableWriter table({"k", "v"});
  table.AddRow({"plain", "a,b"});
  table.AddRow({"quote", "say \"hi\""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_EQ(csv.substr(0, 4), "k,v\n");
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = timer.Seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(timer.Millis(), timer.Seconds() * 1e3, 1.0);
  timer.Restart();
  EXPECT_LT(timer.Seconds(), 0.015);
}

TEST(LoggingTest, ThresholdFiltersLevels) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must not crash; output routing is to stderr.
  LogDebug("quiet");
  LogInfo("quiet");
  LogWarning("quiet");
  LogError("loud");
  SetLogLevel(prev);
}

}  // namespace
}  // namespace gbda
