#include "core/omega.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "math/log_combinatorics.h"

namespace gbda {
namespace {

TEST(ModelParamsTest, BasicQuantities) {
  const ModelParams p = MakeModelParams(4, 3, 3);
  EXPECT_EQ(p.v, 4);
  EXPECT_DOUBLE_EQ(p.edges, 6.0);   // C(4,2)
  EXPECT_DOUBLE_EQ(p.slots, 10.0);  // 4 + 6
  // D = |LV| * C(v + |LE| - 1, |LE|) = 3 * C(6,3) = 60 (Eq. 33).
  EXPECT_NEAR(std::exp(p.log_d), 60.0, 1e-9);
}

TEST(Omega1Test, IsHypergeometricAndNormalized) {
  const ModelParams p = MakeModelParams(5, 3, 3);
  for (int64_t tau = 0; tau <= 6; ++tau) {
    double total = 0.0;
    for (int64_t x = 0; x <= tau; ++x) total += Omega1(x, tau, p);
    EXPECT_NEAR(total, 1.0, 1e-10) << "tau=" << tau;
  }
  // tau = 0 forces x = 0.
  EXPECT_DOUBLE_EQ(Omega1(0, 0, p), 1.0);
}

TEST(Omega1Test, DerivativeMatchesFiniteDifference) {
  const ModelParams p = MakeModelParams(8, 4, 3);
  const double h = 1e-5;
  for (int64_t tau = 1; tau <= 6; ++tau) {
    for (int64_t x = 0; x < tau; ++x) {
      // Continuous extension of log Omega1 in tau.
      auto log_omega1 = [&](double t) {
        return LogBinomialReal(static_cast<double>(p.v), static_cast<double>(x)) +
               LogBinomialReal(p.edges, t - static_cast<double>(x)) -
               LogBinomialReal(p.slots, t);
      };
      const double numeric = (log_omega1(static_cast<double>(tau) + h) -
                              log_omega1(static_cast<double>(tau) - h)) /
                             (2 * h);
      EXPECT_NEAR(DLogOmega1DTau(x, tau, p), numeric, 1e-4)
          << "tau=" << tau << " x=" << x;
    }
  }
}

class Omega2Normalization
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(Omega2Normalization, RowsSumToOne) {
  const auto [v, y_max] = GetParam();
  const Omega2Table table(v, y_max);
  const double max_edges = static_cast<double>(v) * (v - 1) / 2.0;
  for (int64_t y = 0; y <= y_max; ++y) {
    if (static_cast<double>(y) > max_edges) continue;  // impossible row
    double total = 0.0;
    for (int64_t m = 0; m <= std::min<int64_t>(2 * y, v); ++m) {
      const double p = table.At(m, y);
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "v=" << v << " y=" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Omega2Normalization,
    ::testing::Values(std::make_tuple(int64_t{3}, int64_t{3}),
                      std::make_tuple(int64_t{5}, int64_t{8}),
                      std::make_tuple(int64_t{10}, int64_t{10}),
                      std::make_tuple(int64_t{40}, int64_t{15}),
                      std::make_tuple(int64_t{1000}, int64_t{12}),
                      std::make_tuple(int64_t{100000}, int64_t{10})));

TEST(Omega2Test, MatchesInclusionExclusionAtSmallV) {
  // The paper's closed form (Eq. 29) and the coverage Markov chain must
  // agree where the former is numerically trustworthy.
  for (int64_t v : {4, 6, 9, 14}) {
    const Omega2Table table(v, 6);
    for (int64_t y = 0; y <= 6; ++y) {
      for (int64_t m = 0; m <= std::min<int64_t>(2 * y, v); ++m) {
        const double recurrence = table.At(m, y);
        const double closed_form = Omega2InclusionExclusion(m, y, v);
        EXPECT_NEAR(recurrence, closed_form, 1e-7)
            << "v=" << v << " y=" << y << " m=" << m;
      }
    }
  }
}

TEST(Omega2Test, KnownTinyCase) {
  // v=3, y=1: one edge always covers exactly 2 vertices.
  const Omega2Table table(3, 3);
  EXPECT_DOUBLE_EQ(table.At(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(table.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(table.At(1, 1), 0.0);
  // v=3, y=2: two distinct edges of a triangle always cover all 3 vertices.
  EXPECT_DOUBLE_EQ(table.At(3, 2), 1.0);
  // v=3, y=3: the whole triangle covers 3 vertices.
  EXPECT_DOUBLE_EQ(table.At(3, 3), 1.0);
}

TEST(Omega2Test, DisjointEdgesDominateForLargeV) {
  // With v = 100000 and y = 5 edges, the probability that all edges are
  // vertex-disjoint (m = 10) is overwhelmingly close to 1.
  const Omega2Table table(100000, 5);
  EXPECT_GT(table.At(10, 5), 0.999);
}

TEST(Omega2Test, ImpossibleEdgeCountGivesZeroRow) {
  // v=2 has a single edge; rows y >= 2 are impossible.
  const Omega2Table table(2, 4);
  for (int64_t m = 0; m <= 2; ++m) {
    EXPECT_EQ(table.At(m, 2), 0.0);
    EXPECT_EQ(table.At(m, 3), 0.0);
  }
  EXPECT_DOUBLE_EQ(table.At(2, 1), 1.0);
}

TEST(Omega3Test, NormalizedOverPhi) {
  const ModelParams p = MakeModelParams(6, 3, 3);
  for (int64_t r = 0; r <= 12; ++r) {
    double total = 0.0;
    for (int64_t phi = 0; phi <= r; ++phi) total += Omega3(r, phi, p);
    EXPECT_NEAR(total, 1.0, 1e-10) << "r=" << r;
  }
}

TEST(Omega3Test, ChangeProbabilityNearOneForHugeD) {
  // For large graphs D is astronomically large, so touched branches almost
  // surely change: Omega3(r, r) ~ 1.
  const ModelParams p = MakeModelParams(100000, 10, 5);
  EXPECT_GT(Omega3(5, 5, p), 0.9999);
  EXPECT_LT(Omega3(5, 0, p), 1e-10);
}

TEST(Omega3Test, DegenerateSingleTypeUniverse) {
  // v=1 with one label each: D = 1, nothing can ever change.
  ModelParams p = MakeModelParams(1, 1, 1);
  EXPECT_NEAR(std::exp(p.log_d), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Omega3(3, 0, p), 1.0);
  EXPECT_DOUBLE_EQ(Omega3(3, 2, p), 0.0);
}

TEST(Omega3Test, OutOfSupportIsZero) {
  const ModelParams p = MakeModelParams(6, 3, 3);
  EXPECT_EQ(Omega3(3, 4, p), 0.0);
  EXPECT_EQ(Omega3(3, -1, p), 0.0);
}

TEST(Omega4Test, NormalizedOverR) {
  const ModelParams p = MakeModelParams(8, 3, 3);
  for (int64_t x = 0; x <= 5; ++x) {
    for (int64_t m = 0; m <= 8; ++m) {
      double total = 0.0;
      for (int64_t r = std::max(x, m); r <= std::min<int64_t>(x + m, p.v); ++r) {
        total += Omega4(x, r, m, p);
      }
      EXPECT_NEAR(total, 1.0, 1e-10) << "x=" << x << " m=" << m;
    }
  }
}

TEST(Omega4Test, DisjointAndNestedExtremes) {
  const ModelParams p = MakeModelParams(4, 3, 3);
  // x=2 relabelled vertices, m=2 covered: r=2 means full overlap,
  // r=4 means disjoint. Over C(4,2)=6 placements: overlap prob 1/6.
  EXPECT_NEAR(Omega4(2, 2, 2, p), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(Omega4(2, 4, 2, p), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(Omega4(2, 3, 2, p), 4.0 / 6.0, 1e-12);
}

}  // namespace
}  // namespace gbda
