#include "core/branch.h"

#include <gtest/gtest.h>

#include "baselines/astar_ged.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph_edit.h"
#include "test_util.h"

namespace gbda {
namespace {

TEST(BranchTest, PaperExample2BranchMultisets) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();

  // Expected branches (Example 2):
  //   G1: B(v1)={A; y,y}, B(v2)={C; y,z}, B(v3)={B; y,z}
  //   G2: B(u1)={B; x,z}, B(u2)={A; y}, B(u3)={A; x}, B(u4)={C; y,z}
  const BranchMultiset b1 = ExtractBranches(p.g1);
  const BranchMultiset b2 = ExtractBranches(p.g2);
  ASSERT_EQ(b1.size(), 3u);
  ASSERT_EQ(b2.size(), 4u);

  const Branch v1{p.A, {p.y, p.y}};
  const Branch v2{p.C, {p.y, p.z}};
  const Branch v3{p.B, {p.y, p.z}};
  EXPECT_NE(std::find(b1.begin(), b1.end(), v1), b1.end());
  EXPECT_NE(std::find(b1.begin(), b1.end(), v2), b1.end());
  EXPECT_NE(std::find(b1.begin(), b1.end(), v3), b1.end());

  const Branch u2{p.A, {p.y}};
  const Branch u3{p.A, {p.x}};
  const Branch u1{p.B, {p.x, p.z}};
  const Branch u4{p.C, {p.y, p.z}};
  EXPECT_NE(std::find(b2.begin(), b2.end(), u1), b2.end());
  EXPECT_NE(std::find(b2.begin(), b2.end(), u2), b2.end());
  EXPECT_NE(std::find(b2.begin(), b2.end(), u3), b2.end());
  EXPECT_NE(std::find(b2.begin(), b2.end(), u4), b2.end());

  // The only isomorphic pair is B(v2) ~ B(u4), so |intersection| = 1.
  EXPECT_EQ(BranchIntersectionSize(b1, b2), 1u);
  // GBD = max(3, 4) - 1 = 3 (Example 2).
  EXPECT_EQ(Gbd(p.g1, p.g2), 3u);
}

TEST(BranchTest, MultisetIsSorted) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const BranchMultiset b = ExtractBranches(p.g2);
  for (size_t i = 1; i < b.size(); ++i) {
    EXPECT_TRUE(b[i - 1] <= b[i]);
  }
}

TEST(BranchTest, VirtualEdgesExcludedFromBranches) {
  Graph g = Graph::WithVertices(3, 1);
  ASSERT_TRUE(g.AddEdge(0, 1, 5).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, kVirtualLabel).ok());  // virtual edge
  const BranchMultiset b = ExtractBranches(g);
  // Vertex 0's branch sees only the real edge.
  bool found = false;
  for (const Branch& br : b) {
    if (br.edge_labels == std::vector<LabelId>{5}) found = true;
    for (LabelId l : br.edge_labels) EXPECT_NE(l, kVirtualLabel);
  }
  EXPECT_TRUE(found);
}

TEST(BranchTest, GbdIdenticalGraphsIsZero) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  EXPECT_EQ(Gbd(p.g1, p.g1), 0u);
  EXPECT_EQ(Gbd(p.g2, p.g2), 0u);
}

TEST(BranchTest, GbdIsSymmetric) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  EXPECT_EQ(Gbd(p.g1, p.g2), Gbd(p.g2, p.g1));
}

TEST(BranchTest, GbdBoundedByMaxSize) {
  Rng rng(9);
  GeneratorOptions opts;
  opts.num_vertices = 20;
  for (int trial = 0; trial < 20; ++trial) {
    Result<Graph> a = GenerateConnectedGraph(opts, &rng);
    Result<Graph> b = GenerateConnectedGraph(opts, &rng);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_LE(Gbd(*a, *b), std::max(a->num_vertices(), b->num_vertices()));
  }
}

TEST(BranchTest, OneEditChangesAtMostTwoBranches) {
  // GBD <= 2 * (number of edit operations): each edit touches at most two
  // branches — the bound motivating the phi <= 2 tau range of Section V-C.
  Rng rng(11);
  GeneratorOptions opts;
  opts.num_vertices = 12;
  opts.extra_edges = 8;
  for (int trial = 0; trial < 30; ++trial) {
    Result<Graph> base = GenerateConnectedGraph(opts, &rng);
    ASSERT_TRUE(base.ok());
    const size_t len = static_cast<size_t>(rng.UniformInt(1, 6));
    Result<RandomEditResult> edited =
        RandomEditSequence(*base, len, opts.num_vertex_labels,
                           opts.num_edge_labels, &rng);
    ASSERT_TRUE(edited.ok());
    EXPECT_LE(Gbd(*base, edited->edited), 2 * len) << "trial " << trial;
  }
}

TEST(BranchTest, VgbdMatchesGbdAtWeightOne) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const BranchMultiset b1 = ExtractBranches(p.g1);
  const BranchMultiset b2 = ExtractBranches(p.g2);
  EXPECT_DOUBLE_EQ(Vgbd(b1, b2, 1.0),
                   static_cast<double>(GbdFromBranches(b1, b2)));
  // Smaller weights keep more of the max term: VGBD(w) >= GBD for w <= 1.
  EXPECT_GE(Vgbd(b1, b2, 0.5), Vgbd(b1, b2, 1.0));
  EXPECT_DOUBLE_EQ(Vgbd(b1, b2, 0.0), 4.0);  // max(|V1|, |V2|)
}

TEST(BranchTest, EmptyGraphs) {
  Graph empty;
  EXPECT_EQ(Gbd(empty, empty), 0u);
  Graph one = Graph::WithVertices(1, 1);
  EXPECT_EQ(Gbd(empty, one), 1u);
}

class BranchLowerBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BranchLowerBoundSweep, NeverExceedsExactGed) {
  Rng rng(GetParam());
  GeneratorOptions opts;
  opts.num_vertices = 6;
  opts.extra_edges = 3;
  opts.num_vertex_labels = 3;
  opts.num_edge_labels = 2;
  for (int trial = 0; trial < 8; ++trial) {
    Result<Graph> a = GenerateConnectedGraph(opts, &rng);
    Result<Graph> b = GenerateConnectedGraph(opts, &rng);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    Result<int64_t> exact = ExactGedValue(*a, *b);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    const double lb = BranchGedLowerBound(*a, *b);
    EXPECT_LE(lb, static_cast<double>(*exact) + 1e-9)
        << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BranchLowerBoundSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace gbda
