#include "graph/graph_edit.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gbda {
namespace {

TEST(EditOpTest, FactoriesAndNames) {
  EXPECT_EQ(EditOp::AddVertex(3).type, EditType::kAddVertex);
  EXPECT_EQ(EditOp::DeleteVertex(1).u, 1u);
  EXPECT_EQ(EditOp::RelabelVertex(2, 5).label, 5u);
  EXPECT_EQ(EditOp::AddEdge(0, 1, 2).v, 1u);
  EXPECT_EQ(EditOp::DeleteEdge(0, 1).type, EditType::kDeleteEdge);
  EXPECT_EQ(EditOp::RelabelEdge(0, 1, 2).type, EditType::kRelabelEdge);
  EXPECT_STREQ(EditTypeName(EditType::kAddVertex), "AV");
  EXPECT_STREQ(EditTypeName(EditType::kRelabelEdge), "RE");
  EXPECT_FALSE(EditOp::AddEdge(0, 1, 2).ToString().empty());
}

TEST(ApplyEditTest, AllSixOperations) {
  Graph g = Graph::WithVertices(2, 1);
  ASSERT_TRUE(g.AddEdge(0, 1, 1).ok());

  ASSERT_TRUE(ApplyEdit(&g, EditOp::AddVertex(2)).ok());       // AV
  EXPECT_EQ(g.num_vertices(), 3u);
  ASSERT_TRUE(ApplyEdit(&g, EditOp::RelabelVertex(2, 3)).ok());  // RV
  EXPECT_EQ(g.VertexLabel(2), 3u);
  ASSERT_TRUE(ApplyEdit(&g, EditOp::AddEdge(1, 2, 4)).ok());   // AE
  EXPECT_TRUE(g.HasEdge(1, 2));
  ASSERT_TRUE(ApplyEdit(&g, EditOp::RelabelEdge(1, 2, 5)).ok());  // RE
  EXPECT_EQ(*g.EdgeLabel(1, 2), 5u);
  ASSERT_TRUE(ApplyEdit(&g, EditOp::DeleteEdge(1, 2)).ok());   // DE
  EXPECT_FALSE(g.HasEdge(1, 2));
  ASSERT_TRUE(ApplyEdit(&g, EditOp::DeleteVertex(2)).ok());    // DV
  EXPECT_EQ(g.num_vertices(), 2u);
}

TEST(ApplyEditTest, RejectsVirtualLabels) {
  Graph g = Graph::WithVertices(2, 1);
  EXPECT_FALSE(ApplyEdit(&g, EditOp::AddVertex(kVirtualLabel)).ok());
  EXPECT_FALSE(ApplyEdit(&g, EditOp::RelabelVertex(0, kVirtualLabel)).ok());
  EXPECT_FALSE(ApplyEdit(&g, EditOp::AddEdge(0, 1, kVirtualLabel)).ok());
}

TEST(ApplyEditTest, RejectsDeletingConnectedVertex) {
  Graph g = Graph::WithVertices(2, 1);
  ASSERT_TRUE(g.AddEdge(0, 1, 1).ok());
  EXPECT_EQ(ApplyEdit(&g, EditOp::DeleteVertex(0)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ApplySequenceTest, ReportsFailingIndex) {
  Graph g = Graph::WithVertices(2, 1);
  std::vector<EditOp> seq = {
      EditOp::AddEdge(0, 1, 2),
      EditOp::AddEdge(0, 1, 2),  // duplicate -> fails at index 1
  };
  Status st = ApplyEditSequence(&g, seq);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("op 1"), std::string::npos);
}

TEST(RandomEditTest, ProducesRequestedLength) {
  Rng rng(3);
  Graph base = Graph::WithVertices(6, 1);
  for (uint32_t i = 1; i < 6; ++i) ASSERT_TRUE(base.AddEdge(i - 1, i, 1).ok());
  for (size_t len : {0u, 1u, 5u, 12u}) {
    Result<RandomEditResult> r = RandomEditSequence(base, len, 4, 3, &rng);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->sequence.size(), len);
  }
}

TEST(RandomEditTest, SequenceReplaysOntoBase) {
  Rng rng(5);
  Graph base = Graph::WithVertices(5, 2);
  for (uint32_t i = 1; i < 5; ++i) ASSERT_TRUE(base.AddEdge(i - 1, i, 1).ok());
  Result<RandomEditResult> r = RandomEditSequence(base, 8, 4, 3, &rng);
  ASSERT_TRUE(r.ok());
  Graph replay = base;
  ASSERT_TRUE(ApplyEditSequence(&replay, r->sequence).ok());
  EXPECT_TRUE(replay.IdenticalTo(r->edited));
}

TEST(RandomEditTest, RejectsEmptyAlphabets) {
  Rng rng(7);
  Graph base = Graph::WithVertices(3, 1);
  EXPECT_FALSE(RandomEditSequence(base, 2, 0, 3, &rng).ok());
  EXPECT_FALSE(RandomEditSequence(base, 2, 3, 0, &rng).ok());
}

}  // namespace
}  // namespace gbda
