#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace gbda {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryMethodsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCategoryAndMessage) {
  EXPECT_EQ(Status::NotFound("missing thing").ToString(),
            "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailsThrough() {
  GBDA_RETURN_IF_ERROR(Status::IOError("disk on fire"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status st = FailsThrough();
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(st.message(), "disk on fire");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusWithoutValueBecomesInternalError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  int h = 0;
  GBDA_ASSIGN_OR_RETURN(h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace gbda
