// Tests of the log-bucketed latency histogram (src/obs/histogram.h): bucket
// boundary invariants, merge associativity as exact state equality, the
// one-bucket quantile error bound against an exact sorted-sample oracle, and
// exact count/sum under concurrent recording.

#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace gbda::obs {
namespace {

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(HistogramTest, SmallValuesGetExactUnitBuckets) {
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(v), v);
    EXPECT_EQ(Histogram::BucketUpperBound(v), v);
  }
}

TEST(HistogramTest, EveryBucketContainsItsValue) {
  // lower <= v <= upper must hold for every tracked value; sweep exact
  // values, powers of two, off-by-ones and pseudo-random probes.
  std::mt19937_64 rng(42);
  std::vector<uint64_t> probes;
  for (uint64_t v = 0; v < 4096; ++v) probes.push_back(v);
  for (int p = 4; p <= Histogram::kMaxOctave; ++p) {
    probes.push_back((1ull << p) - 1);
    probes.push_back(1ull << p);
    probes.push_back((1ull << p) + 1);
  }
  for (int i = 0; i < 10000; ++i) {
    probes.push_back(rng() % Histogram::kMaxTrackable);
  }
  probes.push_back(Histogram::kMaxTrackable);
  for (uint64_t v : probes) {
    const size_t idx = Histogram::BucketIndex(v);
    ASSERT_LT(idx, Histogram::kNumBuckets) << "value " << v;
    EXPECT_LE(Histogram::BucketLowerBound(idx), v) << "value " << v;
    EXPECT_GE(Histogram::BucketUpperBound(idx), v) << "value " << v;
  }
}

TEST(HistogramTest, BucketBoundsTile) {
  // Bucket i+1 starts exactly one past bucket i's upper bound: no gaps, no
  // overlaps across the whole range.
  for (size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketUpperBound(i) + 1,
              Histogram::BucketLowerBound(i + 1))
        << "bucket " << i;
  }
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            Histogram::kMaxTrackable);
}

TEST(HistogramTest, ValuesAboveTrackableClampIntoLastBucketButStayExact) {
  Histogram h;
  const uint64_t huge = Histogram::kMaxTrackable + 12345;
  h.Record(huge);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), huge);
  EXPECT_EQ(h.min(), huge);
  EXPECT_EQ(h.max(), huge);
  EXPECT_EQ(h.buckets()[Histogram::kNumBuckets - 1], 1u);
}

TEST(HistogramTest, CountSumMinMaxAreExact) {
  Histogram h;
  std::mt19937_64 rng(7);
  uint64_t sum = 0, mn = UINT64_MAX, mx = 0;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng() % 1000000;
    h.Record(v);
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_EQ(h.count(), 5000u);
  EXPECT_EQ(h.sum(), sum);
  EXPECT_EQ(h.min(), mn);
  EXPECT_EQ(h.max(), mx);
}

TEST(HistogramTest, MergeIsAssociativeAsStateEquality) {
  std::mt19937_64 rng(11);
  Histogram a, b, c;
  for (int i = 0; i < 1000; ++i) a.Record(rng() % 100);
  for (int i = 0; i < 1000; ++i) b.Record(rng() % 100000);
  for (int i = 0; i < 1000; ++i) c.Record(rng() % (1ull << 30));

  Histogram left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  Histogram bc = b;     // a + (b + c)
  bc.Merge(c);
  Histogram right = a;
  right.Merge(bc);
  EXPECT_TRUE(left == right);

  // Commutes too.
  Histogram swapped = c;
  swapped.Merge(b);
  swapped.Merge(a);
  EXPECT_TRUE(left == swapped);
}

TEST(HistogramTest, QuantileWithinOneBucketOfExactOracle) {
  // Heavy-tailed sample: mostly small values with a long tail, the shape
  // latency distributions take.
  std::mt19937_64 rng(23);
  std::exponential_distribution<double> exp_dist(1.0 / 500.0);
  Histogram h;
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = static_cast<uint64_t>(exp_dist(rng));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    // Exact nearest-rank oracle, mirroring Histogram::Quantile's rank rule.
    const size_t rank = std::min<size_t>(
        values.size() - 1,
        q <= 0.0 ? 0
                 : static_cast<size_t>(
                       std::ceil(q * static_cast<double>(values.size()))) - 1);
    const uint64_t exact = values[rank];
    const uint64_t est = h.Quantile(q);
    // The estimate must land in (or adjacent to rounding of) the exact
    // value's bucket: within one bucket width.
    const size_t bucket = Histogram::BucketIndex(exact);
    const uint64_t width = Histogram::BucketUpperBound(bucket) -
                           Histogram::BucketLowerBound(bucket) + 1;
    EXPECT_LE(est >= exact ? est - exact : exact - est, width)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(HistogramTest, QuantileClampedToMinMax) {
  Histogram h;
  h.Record(100);
  h.Record(101);
  h.Record(102);
  EXPECT_GE(h.Quantile(0.0), 100u);
  EXPECT_LE(h.Quantile(1.0), 102u);
}

TEST(ConcurrentHistogramTest, ConcurrentRecordingKeepsExactCountAndSum) {
  ConcurrentHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const Histogram merged = h.Snapshot();
  const uint64_t n = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(merged.count(), n);
  EXPECT_EQ(merged.sum(), n * (n - 1) / 2);  // sum of 0..n-1
  EXPECT_EQ(merged.min(), 0u);
  EXPECT_EQ(merged.max(), n - 1);
}

TEST(ConcurrentHistogramTest, SnapshotMatchesSerialHistogram) {
  ConcurrentHistogram concurrent;
  Histogram serial;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng() % (1ull << 22);
    concurrent.Record(v);
    serial.Record(v);
  }
  EXPECT_TRUE(concurrent.Snapshot() == serial);
}

TEST(ConcurrentHistogramTest, ResetZeroesState) {
  ConcurrentHistogram h;
  h.Record(5);
  h.Record(500);
  h.Reset();
  const Histogram empty = h.Snapshot();
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.sum(), 0u);
  EXPECT_EQ(empty.min(), 0u);
  EXPECT_EQ(empty.max(), 0u);
}

}  // namespace
}  // namespace gbda::obs
