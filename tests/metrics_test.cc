#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace gbda {
namespace {

TEST(MetricsTest, PerfectRetrieval) {
  const Confusion c = CompareSets({1, 2, 3}, {1, 2, 3});
  EXPECT_EQ(c.true_positives, 3u);
  EXPECT_EQ(c.false_positives, 0u);
  EXPECT_EQ(c.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(Precision(c), 1.0);
  EXPECT_DOUBLE_EQ(Recall(c), 1.0);
  EXPECT_DOUBLE_EQ(F1Score(c), 1.0);
}

TEST(MetricsTest, PartialOverlap) {
  const Confusion c = CompareSets({1, 2, 4}, {1, 2, 3});
  EXPECT_EQ(c.true_positives, 2u);
  EXPECT_EQ(c.false_positives, 1u);
  EXPECT_EQ(c.false_negatives, 1u);
  EXPECT_NEAR(Precision(c), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(Recall(c), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(F1Score(c), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, EmptyRetrievedIsVacuouslyPrecise) {
  const Confusion c = CompareSets({}, {1, 2});
  EXPECT_DOUBLE_EQ(Precision(c), 1.0);
  EXPECT_DOUBLE_EQ(Recall(c), 0.0);
  EXPECT_DOUBLE_EQ(F1Score(c), 0.0);
}

TEST(MetricsTest, EmptyRelevantIsVacuouslyRecalled) {
  const Confusion c = CompareSets({1}, {});
  EXPECT_DOUBLE_EQ(Precision(c), 0.0);
  EXPECT_DOUBLE_EQ(Recall(c), 1.0);
}

TEST(MetricsTest, BothEmpty) {
  const Confusion c = CompareSets({}, {});
  EXPECT_DOUBLE_EQ(Precision(c), 1.0);
  EXPECT_DOUBLE_EQ(Recall(c), 1.0);
  EXPECT_DOUBLE_EQ(F1Score(c), 1.0);
}

TEST(MetricsTest, UnsortedAndDuplicatedInputs) {
  const Confusion c = CompareSets({3, 1, 3, 2}, {2, 1, 1});
  EXPECT_EQ(c.true_positives, 2u);
  EXPECT_EQ(c.false_positives, 1u);  // {3}
  EXPECT_EQ(c.false_negatives, 0u);
}

TEST(MetricsTest, AccumulationAcrossQueries) {
  Confusion total;
  total += CompareSets({1, 2}, {1, 2, 3});  // tp=2, fn=1
  total += CompareSets({5}, {6});           // fp=1, fn=1
  EXPECT_EQ(total.true_positives, 2u);
  EXPECT_EQ(total.false_positives, 1u);
  EXPECT_EQ(total.false_negatives, 2u);
  EXPECT_NEAR(Precision(total), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(Recall(total), 0.5, 1e-12);
}

}  // namespace
}  // namespace gbda
