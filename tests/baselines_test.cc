#include <gtest/gtest.h>

#include "baselines/astar_ged.h"
#include "baselines/baseline_search.h"
#include "baselines/greedy_sort_ged.h"
#include "baselines/lsap_ged.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gbda {
namespace {

TEST(LsapTest, ZeroForIdenticalGraphs) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  EXPECT_DOUBLE_EQ(LsapGedLowerBound(p.g1, p.g1), 0.0);
  EXPECT_DOUBLE_EQ(LsapGedEstimate(p.g2, p.g2), 0.0);
  EXPECT_DOUBLE_EQ(GreedySortGed(p.g1, p.g1), 0.0);
}

TEST(LsapTest, EmptyGraphs) {
  Graph empty;
  EXPECT_DOUBLE_EQ(LsapGedLowerBound(empty, empty), 0.0);
  Graph two = Graph::WithVertices(2, 1);
  // Inserting two isolated vertices costs exactly 2.
  EXPECT_DOUBLE_EQ(LsapGedLowerBound(empty, two), 2.0);
}

class LsapLowerBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LsapLowerBoundSweep, LowerBoundNeverExceedsExactGed) {
  Rng rng(GetParam());
  GeneratorOptions opts;
  opts.num_vertices = 6;
  opts.extra_edges = 4;
  opts.num_vertex_labels = 3;
  opts.num_edge_labels = 2;
  for (int trial = 0; trial < 8; ++trial) {
    opts.num_vertices = 4 + static_cast<size_t>(rng.UniformInt(0, 3));
    Result<Graph> a = GenerateConnectedGraph(opts, &rng);
    opts.num_vertices = 4 + static_cast<size_t>(rng.UniformInt(0, 3));
    Result<Graph> b = GenerateConnectedGraph(opts, &rng);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    Result<int64_t> exact = ExactGedValue(*a, *b);
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(LsapGedLowerBound(*a, *b), static_cast<double>(*exact) + 1e-9)
        << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsapLowerBoundSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(GreedySortTest, UpperBoundsHungarianOnSameMatrix) {
  Rng rng(5);
  GeneratorOptions opts;
  opts.num_vertices = 8;
  opts.extra_edges = 6;
  for (int trial = 0; trial < 10; ++trial) {
    Result<Graph> a = GenerateConnectedGraph(opts, &rng);
    Result<Graph> b = GenerateConnectedGraph(opts, &rng);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_GE(GreedySortGed(*a, *b), LsapGedEstimate(*a, *b) - 1e-9);
  }
}

TEST(BaselineEstimatesTest, SymmetricUpToNumericNoise) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  EXPECT_NEAR(LsapGedLowerBound(p.g1, p.g2), LsapGedLowerBound(p.g2, p.g1),
              1e-9);
  EXPECT_NEAR(LsapGedEstimate(p.g1, p.g2), LsapGedEstimate(p.g2, p.g1), 1e-9);
}

TEST(BaselineEstimatesTest, PaperPairBounds) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const double lb = LsapGedLowerBound(p.g1, p.g2);
  EXPECT_GT(lb, 0.0);
  EXPECT_LE(lb, 3.0 + 1e-9);  // exact GED is 3 (Example 1)
}

TEST(BaselineSearchTest, PrecomputesAndQueries) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  GraphDatabase db = std::move(p.db);
  db.Add(p.g1);
  db.Add(p.g2);
  BaselineSearch search(&db);
  EXPECT_GT(search.MemoryBytes(), 0u);

  // Query with g1 itself: g1 must be found at tau >= 0 by every method.
  for (BaselineMethod m : {BaselineMethod::kLsap, BaselineMethod::kGreedySort,
                           BaselineMethod::kSeriation}) {
    Result<BaselineResult> r = search.Query(p.g1, m, 0);
    ASSERT_TRUE(r.ok());
    bool found_self = false;
    for (const BaselineMatch& match : r->matches) {
      if (match.graph_id == 0) found_self = true;
    }
    EXPECT_TRUE(found_self) << BaselineMethodName(m);
  }
}

TEST(BaselineSearchTest, LsapRecallIsTotalOnKnownPairs) {
  // The halved-cost LSAP bound never rejects a true match: search with the
  // exact GED as threshold must return every graph within that distance.
  Rng rng(123);
  GeneratorOptions opts;
  opts.num_vertices = 6;
  opts.extra_edges = 3;
  opts.num_vertex_labels = 3;
  opts.num_edge_labels = 2;
  GraphDatabase db;
  db.vertex_labels().InternNumbered(3);
  db.edge_labels().InternNumbered(2);
  std::vector<Graph> graphs;
  for (int i = 0; i < 8; ++i) {
    Result<Graph> g = GenerateConnectedGraph(opts, &rng);
    ASSERT_TRUE(g.ok());
    graphs.push_back(*g);
    db.Add(std::move(*g));
  }
  BaselineSearch search(&db);
  const Graph& query = graphs[0];
  const int64_t tau = 5;
  Result<BaselineResult> r = search.Query(query, BaselineMethod::kLsap, tau);
  ASSERT_TRUE(r.ok());
  std::vector<bool> retrieved(db.size(), false);
  for (const BaselineMatch& m : r->matches) retrieved[m.graph_id] = true;
  for (size_t g = 0; g < db.size(); ++g) {
    Result<int64_t> exact = ExactGedValue(query, db.graph(g));
    ASSERT_TRUE(exact.ok());
    if (*exact <= tau) {
      EXPECT_TRUE(retrieved[g]) << "missed true match " << g;
    }
  }
}

TEST(BaselineSearchTest, RejectsNegativeTau) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  GraphDatabase db = std::move(p.db);
  db.Add(p.g1);
  BaselineSearch search(&db);
  EXPECT_FALSE(search.Query(p.g1, BaselineMethod::kLsap, -1).ok());
}

TEST(BaselineSearchTest, EstimateEndpointMatchesQueryPath) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  GraphDatabase db = std::move(p.db);
  db.Add(p.g1);
  db.Add(p.g2);
  BaselineSearch search(&db);
  EXPECT_DOUBLE_EQ(search.Estimate(p.g1, 0, BaselineMethod::kLsap), 0.0);
  EXPECT_GT(search.Estimate(p.g1, 1, BaselineMethod::kGreedySort), 0.0);
}

}  // namespace
}  // namespace gbda
