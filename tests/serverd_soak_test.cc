// Dynamic-corpus soak over the network front-end: concurrent query clients
// race a wire-driven mutator (AddGraphs / RemoveGraphs / intern / Flush)
// against one GbdaServer over a DynamicGbdaService. The invariants under
// churn:
//   - nothing is dropped — every query response is a typed kOk (the queue
//     bound is sized above the offered load, so backpressure never fires);
//   - every response is attributable to ONE published snapshot: its
//     generation is a generation some mutation commit (or the initial
//     publish) reported, and every matched id was live in exactly that
//     generation's corpus.
// The mutator reconstructs the generation -> live-id-set history purely
// from MutateResponse generations and assigned_ids, i.e. from what a real
// remote client could observe.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datagen/dataset_profiles.h"
#include "net/client.h"
#include "net/server.h"
#include "service/dynamic_service.h"

namespace gbda::net {
namespace {

TEST(ServerdSoakTest, ChurningCorpusServesOnlyPublishedSnapshots) {
  DatasetProfile profile = AidsProfile(0.05);
  Result<GeneratedDataset> dataset = GenerateDataset(profile);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  const size_t initial_corpus = dataset->db.size();
  std::vector<Graph> queries = dataset->queries;
  ASSERT_GE(queries.size(), 2u);

  GbdaIndexOptions index_options;
  index_options.tau_max = 10;
  index_options.gbd_prior.num_sample_pairs = 500;
  index_options.model_vertex_labels =
      static_cast<int64_t>(profile.num_vertex_labels);
  index_options.model_edge_labels =
      static_cast<int64_t>(profile.num_edge_labels);

  DynamicServiceOptions dyn_options;
  dyn_options.service.num_threads = 2;
  Result<std::unique_ptr<DynamicGbdaService>> service =
      DynamicGbdaService::Create(std::move(dataset->db), index_options,
                                 dyn_options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  ServerConfig config;
  config.max_queue = 1024;  // soak must never trip backpressure
  config.max_batch = 8;
  config.default_deadline_ms = 60000;
  config.num_workers = 2;
  Result<std::unique_ptr<GbdaServer>> server =
      GbdaServer::Serve(service->get(), config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  // Generation history, reconstructed from the wire by the mutator.
  // Generation 1 is the initial publish: stable ids 0..N-1.
  std::map<uint64_t, std::set<uint64_t>> live_at;
  {
    std::set<uint64_t> initial;
    for (size_t i = 0; i < initial_corpus; ++i) initial.insert(i);
    live_at[1] = std::move(initial);
  }

  std::atomic<bool> mutations_done{false};
  std::string mutator_failure;

  std::thread mutator([&] {
    Result<GbdaClient> client = GbdaClient::Connect("127.0.0.1", port);
    if (!client.ok()) {
      mutator_failure = client.status().ToString();
      mutations_done.store(true);
      return;
    }
    std::set<uint64_t> live = live_at.at(1);
    // Ids whose removal is deferred two commits, so queries overlap both
    // the add and the remove of the same graphs.
    std::vector<std::vector<uint64_t>> removal_backlog;
    uint64_t next_request_id = 1000;
    for (int iter = 0; iter < 12; ++iter) {
      MutateRequest add;
      add.request_id = next_request_id++;
      add.op = MutationOp::kAddGraphs;
      add.graphs.push_back(queries[iter % queries.size()]);
      add.graphs.push_back(queries[(iter + 1) % queries.size()]);
      Result<MutateResponse> added = client->Mutate(add);
      if (!added.ok() || added->status != WireStatus::kOk ||
          added->assigned_ids.size() != add.graphs.size()) {
        mutator_failure = "AddGraphs iter " + std::to_string(iter) + ": " +
                          (added.ok() ? added->message
                                      : added.status().ToString());
        break;
      }
      for (uint64_t id : added->assigned_ids) live.insert(id);
      live_at[added->generation] = live;
      removal_backlog.push_back(added->assigned_ids);

      if (removal_backlog.size() > 2) {
        MutateRequest remove;
        remove.request_id = next_request_id++;
        remove.op = MutationOp::kRemoveGraphs;
        remove.ids = removal_backlog.front();
        removal_backlog.erase(removal_backlog.begin());
        Result<MutateResponse> removed = client->Mutate(remove);
        if (!removed.ok() || removed->status != WireStatus::kOk) {
          mutator_failure = "RemoveGraphs iter " + std::to_string(iter) +
                            ": " +
                            (removed.ok() ? removed->message
                                          : removed.status().ToString());
          break;
        }
        for (uint64_t id : remove.ids) live.erase(id);
        live_at[removed->generation] = live;
      }

      if (iter == 5) {
        // Intern a label (no commit: generation must not change the live
        // set) and force a Flush publish.
        MutateRequest intern;
        intern.request_id = next_request_id++;
        intern.op = MutationOp::kInternVertexLabel;
        intern.label = "soak-label";
        Result<MutateResponse> interned = client->Mutate(intern);
        if (!interned.ok() || interned->status != WireStatus::kOk) {
          mutator_failure = "InternVertexLabel failed";
          break;
        }
        MutateRequest flush;
        flush.request_id = next_request_id++;
        flush.op = MutationOp::kFlush;
        Result<MutateResponse> flushed = client->Mutate(flush);
        if (!flushed.ok()) {
          mutator_failure = "Flush transport failed";
          break;
        }
        // Flush publishes without mutating: same live set, maybe new gen.
        live_at[flushed->generation] = live;
      }
    }
    mutations_done.store(true);
  });

  // Query clients race the mutator and record what they observed; the
  // attribution check runs after every thread joined (live_at is complete
  // and immutable by then).
  struct Observation {
    uint64_t generation = 0;
    std::vector<uint64_t> ids;
  };
  constexpr size_t kQueryThreads = 3;
  std::vector<std::vector<Observation>> observed(kQueryThreads);
  std::vector<std::string> query_failures(kQueryThreads);
  std::vector<std::thread> query_threads;
  for (size_t t = 0; t < kQueryThreads; ++t) {
    query_threads.emplace_back([&, t] {
      Result<GbdaClient> client = GbdaClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        query_failures[t] = client.status().ToString();
        return;
      }
      uint64_t request_id = 1;
      size_t qi = t;
      // Keep querying until the mutator finishes, then a few more rounds so
      // the final generations are observed too.
      int rounds_after_done = 4;
      while (rounds_after_done > 0) {
        if (mutations_done.load()) --rounds_after_done;
        TopKRequest req;
        req.request_id = request_id++;
        req.k = 50;
        req.options.tau_hat = 5;
        req.options.gamma = 0.5;
        req.query = queries[qi++ % queries.size()];
        Result<TopKResponse> resp = client->QueryTopK(req);
        if (!resp.ok()) {
          query_failures[t] = resp.status().ToString();
          return;
        }
        if (resp->status != WireStatus::kOk) {
          query_failures[t] =
              "query dropped: status " +
              std::to_string(static_cast<uint32_t>(resp->status)) + " " +
              resp->message;
          return;
        }
        Observation obs;
        obs.generation = resp->generation;
        for (const SearchMatch& m : resp->matches) {
          obs.ids.push_back(static_cast<uint64_t>(m.graph_id));
        }
        observed[t].push_back(std::move(obs));
      }
    });
  }

  mutator.join();
  for (std::thread& qt : query_threads) qt.join();
  (*server)->Shutdown();

  ASSERT_TRUE(mutator_failure.empty()) << mutator_failure;
  for (size_t t = 0; t < kQueryThreads; ++t) {
    ASSERT_TRUE(query_failures[t].empty()) << query_failures[t];
    ASSERT_FALSE(observed[t].empty());
  }

  // Attribution: every observed generation was published, and every match
  // was live in that exact generation.
  size_t total = 0;
  std::set<uint64_t> generations_seen;
  for (size_t t = 0; t < kQueryThreads; ++t) {
    for (const Observation& obs : observed[t]) {
      ++total;
      auto it = live_at.find(obs.generation);
      ASSERT_TRUE(it != live_at.end())
          << "response served against unpublished generation "
          << obs.generation;
      generations_seen.insert(obs.generation);
      for (uint64_t id : obs.ids) {
        EXPECT_TRUE(it->second.count(id))
            << "generation " << obs.generation << " served id " << id
            << " which was not live in that snapshot";
      }
    }
  }
  // The soak actually exercised churn: multiple distinct generations were
  // served and the corpus both grew and shrank along the way.
  EXPECT_GT(generations_seen.size(), 1u);
  EXPECT_GT(live_at.size(), 10u);
  EXPECT_GT(total, 20u);

  const WireServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.rejected_overloaded, 0u);
  EXPECT_EQ(stats.rejected_deadline, 0u);
  EXPECT_EQ(stats.decode_errors, 0u);
}

}  // namespace
}  // namespace gbda::net
