// The top-k early-termination contract (docs/ARCHITECTURE.md, "Serving
// layer"): a pruned ranking scan — serial GbdaSearch, sharded GbdaService,
// and the dynamic snapshot path — is bit-identical to the exhaustive scan:
// ids, exact phi doubles, GBDs, ordering including every tie at the bound,
// and the deterministic counters (candidates_evaluated, prefiltered_out).
// Only SearchResult::pruned_by_bound may differ (it is timing-dependent
// under sharding), so it is deliberately excluded. Mirrors the structure of
// index_view_equivalence_test.cc: variants x prefilter x shards {1, 2, 7}
// x k in {1, 10, corpus, > corpus}.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "core/posterior.h"
#include "core/prefilter.h"
#include "datagen/dataset_profiles.h"
#include "service/dynamic_service.h"
#include "service/gbda_service.h"

namespace gbda {
namespace {

void ExpectSameResult(const SearchResult& exhaustive,
                      const SearchResult& pruned, const std::string& label) {
  ASSERT_EQ(exhaustive.matches.size(), pruned.matches.size()) << label;
  for (size_t i = 0; i < exhaustive.matches.size(); ++i) {
    EXPECT_EQ(exhaustive.matches[i].graph_id, pruned.matches[i].graph_id)
        << label << " match " << i;
    EXPECT_EQ(exhaustive.matches[i].phi_score, pruned.matches[i].phi_score)
        << label << " match " << i;
    EXPECT_EQ(exhaustive.matches[i].gbd, pruned.matches[i].gbd)
        << label << " match " << i;
  }
  EXPECT_EQ(exhaustive.candidates_evaluated, pruned.candidates_evaluated)
      << label;
  EXPECT_EQ(exhaustive.prefiltered_out, pruned.prefiltered_out) << label;
  // pruned_by_bound is intentionally NOT compared (see the file comment);
  // the exhaustive reference must report none.
  EXPECT_EQ(exhaustive.pruned_by_bound, 0u) << label;
}

class TopKPruneEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // The size-laddered AIDS profile exercises both pruning tiers: the
    // O(1) size tier across rungs and the fingerprint tier within a rung.
    DatasetProfile profile = AidsProfile(0.04);
    profile.seed = 77;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));

    GbdaIndexOptions options;
    options.tau_max = 10;
    options.gbd_prior.num_sample_pairs = 1500;
    Result<GbdaIndex> index = GbdaIndex::Build(dataset_->db, options);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = new GbdaIndex(std::move(*index));
  }
  static void TearDownTestSuite() {
    delete index_;
    delete dataset_;
    index_ = nullptr;
    dataset_ = nullptr;
  }

  static std::vector<size_t> TestKs(size_t corpus) {
    return {1, 10, corpus, corpus + 7};
  }

  static GeneratedDataset* dataset_;
  static GbdaIndex* index_;
};

GeneratedDataset* TopKPruneEquivalenceTest::dataset_ = nullptr;
GbdaIndex* TopKPruneEquivalenceTest::index_ = nullptr;

TEST_F(TopKPruneEquivalenceTest, SerialPrunedMatchesSerialExhaustive) {
  GbdaSearch search(&dataset_->db, index_);
  const size_t num_queries = std::min<size_t>(dataset_->queries.size(), 4);
  for (GbdaVariant variant :
       {GbdaVariant::kStandard, GbdaVariant::kAverageSize,
        GbdaVariant::kWeightedGbd}) {
    for (bool prefilter : {false, true}) {
      SearchOptions exhaustive;
      exhaustive.tau_hat = 6;
      exhaustive.variant = variant;
      exhaustive.use_prefilter = prefilter;
      exhaustive.topk_early_termination = false;
      SearchOptions pruned = exhaustive;
      pruned.topk_early_termination = true;
      for (size_t k : TestKs(dataset_->db.size())) {
        for (size_t q = 0; q < num_queries; ++q) {
          const std::string label =
              "variant=" + std::to_string(static_cast<int>(variant)) +
              " prefilter=" + std::to_string(prefilter) +
              " k=" + std::to_string(k) + " query=" + std::to_string(q);
          Result<SearchResult> a =
              search.QueryTopK(dataset_->queries[q], k, exhaustive);
          Result<SearchResult> b =
              search.QueryTopK(dataset_->queries[q], k, pruned);
          ASSERT_TRUE(a.ok()) << label << ": " << a.status().ToString();
          ASSERT_TRUE(b.ok()) << label << ": " << b.status().ToString();
          ExpectSameResult(*a, *b, label);
        }
      }
    }
  }
}

TEST_F(TopKPruneEquivalenceTest, ShardedPrunedMatchesSerialExhaustive) {
  GbdaSearch exhaustive_serial(&dataset_->db, index_);
  const size_t num_queries = std::min<size_t>(dataset_->queries.size(), 3);
  for (size_t shards : {size_t{1}, size_t{2}, size_t{7}}) {
    ServiceOptions service_options;
    service_options.num_threads = 3;
    service_options.num_shards = shards;
    GbdaService service(&dataset_->db, index_, service_options);
    for (GbdaVariant variant :
         {GbdaVariant::kStandard, GbdaVariant::kAverageSize,
          GbdaVariant::kWeightedGbd}) {
      for (bool prefilter : {false, true}) {
        SearchOptions exhaustive;
        exhaustive.tau_hat = 6;
        exhaustive.variant = variant;
        exhaustive.use_prefilter = prefilter;
        exhaustive.topk_early_termination = false;
        SearchOptions pruned = exhaustive;
        pruned.topk_early_termination = true;
        for (size_t k : TestKs(dataset_->db.size())) {
          for (size_t q = 0; q < num_queries; ++q) {
            const std::string label =
                "shards=" + std::to_string(shards) + " variant=" +
                std::to_string(static_cast<int>(variant)) + " prefilter=" +
                std::to_string(prefilter) + " k=" + std::to_string(k) +
                " query=" + std::to_string(q);
            Result<SearchResult> reference = exhaustive_serial.QueryTopK(
                dataset_->queries[q], k, exhaustive);
            Result<SearchResult> got =
                service.QueryTopK(dataset_->queries[q], k, pruned);
            ASSERT_TRUE(reference.ok()) << label;
            ASSERT_TRUE(got.ok()) << label;
            ExpectSameResult(*reference, *got, label);
          }
        }
      }
    }
  }
}

TEST_F(TopKPruneEquivalenceTest, BatchedTopKMatchesPerQueryResults) {
  ServiceOptions service_options;
  service_options.num_threads = 3;
  service_options.num_shards = 7;
  GbdaService service(&dataset_->db, index_, service_options);
  SearchOptions exhaustive;
  exhaustive.tau_hat = 6;
  exhaustive.topk_early_termination = false;
  SearchOptions pruned = exhaustive;
  pruned.topk_early_termination = true;
  for (size_t k : TestKs(dataset_->db.size())) {
    Result<std::vector<SearchResult>> batch =
        service.QueryTopKBatch(dataset_->queries, k, pruned);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->size(), dataset_->queries.size());
    for (size_t q = 0; q < dataset_->queries.size(); ++q) {
      Result<SearchResult> reference =
          service.QueryTopK(dataset_->queries[q], k, exhaustive);
      ASSERT_TRUE(reference.ok());
      ExpectSameResult(*reference, (*batch)[q],
                       "k=" + std::to_string(k) + " batch query " +
                           std::to_string(q));
    }
  }
}

TEST_F(TopKPruneEquivalenceTest, DynamicSnapshotPrunedMatchesExhaustive) {
  // The dynamic path always has snapshot profiles at hand, so its pruned
  // scans take the fingerprint tier even with use_prefilter off.
  GbdaIndexOptions index_options;
  index_options.tau_max = 10;
  index_options.gbd_prior.num_sample_pairs = 1500;
  DynamicServiceOptions dyn_options;
  dyn_options.service.num_threads = 2;
  dyn_options.service.num_shards = 7;
  GraphDatabase db_copy = dataset_->db;
  Result<std::unique_ptr<DynamicGbdaService>> dyn = DynamicGbdaService::Create(
      std::move(db_copy), index_options, dyn_options);
  ASSERT_TRUE(dyn.ok()) << dyn.status().ToString();
  SearchOptions exhaustive;
  exhaustive.tau_hat = 6;
  exhaustive.topk_early_termination = false;
  SearchOptions pruned = exhaustive;
  pruned.topk_early_termination = true;
  const size_t num_queries = std::min<size_t>(dataset_->queries.size(), 4);
  for (size_t k : TestKs(dataset_->db.size())) {
    for (size_t q = 0; q < num_queries; ++q) {
      const std::string label =
          "dynamic k=" + std::to_string(k) + " query=" + std::to_string(q);
      Result<SearchResult> a =
          (*dyn)->QueryTopK(dataset_->queries[q], k, exhaustive);
      Result<SearchResult> b =
          (*dyn)->QueryTopK(dataset_->queries[q], k, pruned);
      ASSERT_TRUE(a.ok()) << label;
      ASSERT_TRUE(b.ok()) << label;
      ExpectSameResult(*a, *b, label);
    }
    Result<std::vector<SearchResult>> batch =
        (*dyn)->QueryTopKBatch(dataset_->queries, k, pruned);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), dataset_->queries.size());
    for (size_t q = 0; q < num_queries; ++q) {
      Result<SearchResult> reference =
          (*dyn)->QueryTopK(dataset_->queries[q], k, exhaustive);
      ASSERT_TRUE(reference.ok());
      ExpectSameResult(*reference, (*batch)[q],
                       "dynamic batch k=" + std::to_string(k) + " query " +
                           std::to_string(q));
    }
  }
}

TEST_F(TopKPruneEquivalenceTest, PrunedScansActuallyPrune) {
  // Guard against the suite silently passing because nothing was ever
  // pruned: at k = 1 the bound must fire on this size-laddered corpus.
  GbdaSearch search(&dataset_->db, index_);
  SearchOptions pruned;
  pruned.tau_hat = 6;
  Result<SearchResult> r = search.QueryTopK(dataset_->queries[0], 1, pruned);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->pruned_by_bound, 0u);
  EXPECT_LE(r->pruned_by_bound, r->candidates_evaluated);
}

TEST_F(TopKPruneEquivalenceTest, PhiSuffixMaxBoundsPhiAndEndsSupport) {
  // The pruning bound's two analytic facts, checked against the engine:
  // T[p] majorizes Phi(v, phi) for every phi >= p, and Phi is exactly zero
  // past min(v, 2 * tau_hat).
  PosteriorEngine engine(index_->num_vertex_labels(),
                         index_->num_edge_labels(), index_->tau_max(),
                         index_->mutable_ged_prior(), &index_->gbd_prior());
  for (int64_t v : {int64_t{5}, int64_t{20}, int64_t{33}}) {
    for (int64_t tau_hat : {int64_t{0}, int64_t{2}, int64_t{6}}) {
      Result<std::vector<double>> table = engine.PhiSuffixMax(v, tau_hat);
      ASSERT_TRUE(table.ok());
      const int64_t cap = std::min(v, 2 * tau_hat);
      ASSERT_EQ(table->size(), static_cast<size_t>(cap + 1));
      for (int64_t phi = 0; phi <= cap + 5; ++phi) {
        Result<double> exact = engine.Phi(v, phi, tau_hat);
        ASSERT_TRUE(exact.ok());
        if (phi > cap) {
          EXPECT_EQ(*exact, 0.0) << "v=" << v << " phi=" << phi;
        }
        for (int64_t p = 0; p <= std::min(phi, cap); ++p) {
          EXPECT_GE((*table)[static_cast<size_t>(p)], *exact)
              << "v=" << v << " tau=" << tau_hat << " phi=" << phi
              << " p=" << p;
        }
        Result<double> ub = engine.PhiUpperBound(v, phi, tau_hat);
        ASSERT_TRUE(ub.ok());
        EXPECT_GE(*ub, *exact);
      }
      // Non-increasing: the monotonicity the tier-2 cut derivation uses.
      for (size_t p = 1; p < table->size(); ++p) {
        EXPECT_LE((*table)[p], (*table)[p - 1]);
      }
    }
  }
}

TEST_F(TopKPruneEquivalenceTest, CommonBranchUpperBoundIsAdmissible) {
  // The fingerprint intersection must never undercount the true branch
  // intersection (undercounting would overstate the GBD lower bound and
  // break soundness), and the capped decision form must agree with the
  // counting form at every cap.
  const size_t n = std::min<size_t>(dataset_->db.size(), 12);
  std::vector<FilterProfile> profiles;
  std::vector<BranchMultiset> branches;
  for (size_t i = 0; i < n; ++i) {
    profiles.push_back(BuildFilterProfile(dataset_->db.graph(i)));
    branches.push_back(ExtractBranches(dataset_->db.graph(i)));
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const int64_t bound = CommonBranchUpperBound(profiles[i], profiles[j]);
      const int64_t truth = static_cast<int64_t>(
          BranchIntersectionSize(branches[i], branches[j]));
      EXPECT_GE(bound, truth) << "pair " << i << "," << j;
      EXPECT_LE(bound, static_cast<int64_t>(std::min(
                           branches[i].size(), branches[j].size())));
      for (int64_t cap : {int64_t{-1}, int64_t{0}, truth - 1, truth,
                          truth + 1, bound, bound + 3}) {
        EXPECT_EQ(CommonBranchUpperBoundAtMost(profiles[i], profiles[j], cap),
                  bound <= cap)
            << "pair " << i << "," << j << " cap=" << cap;
      }
    }
  }
}

}  // namespace
}  // namespace gbda
