#include <gtest/gtest.h>

#include "core/gbd_prior.h"
#include "core/ged_prior.h"
#include "core/posterior.h"
#include "graph/generators.h"

namespace gbda {
namespace {

std::vector<BranchMultiset> MakeBranchSamples(size_t count, uint64_t seed) {
  Rng rng(seed);
  GeneratorOptions opts;
  opts.num_vertices = 12;
  opts.extra_edges = 6;
  opts.num_vertex_labels = 4;
  opts.num_edge_labels = 3;
  std::vector<BranchMultiset> branches;
  for (size_t i = 0; i < count; ++i) {
    opts.num_vertices = 8 + static_cast<size_t>(rng.UniformInt(0, 8));
    Result<Graph> g = GenerateConnectedGraph(opts, &rng);
    branches.push_back(ExtractBranches(*g));
  }
  return branches;
}

TEST(GedPriorTest, RowsAreNormalizedDistributions) {
  GedPriorTable table(4, 3, 10);
  for (int64_t v : {3, 10, 50, 200}) {
    const std::vector<double>& row = table.Row(v);
    ASSERT_EQ(row.size(), 11u);
    double total = 0.0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "v=" << v;
  }
}

TEST(GedPriorTest, ProbabilityOutsideRangeIsZero) {
  GedPriorTable table(4, 3, 5);
  EXPECT_EQ(table.Probability(-1, 10), 0.0);
  EXPECT_EQ(table.Probability(6, 10), 0.0);
  EXPECT_GT(table.Probability(3, 10), 0.0);
}

TEST(GedPriorTest, RowsAreCachedAndDeterministic) {
  GedPriorTable table(4, 3, 8);
  const std::vector<double> first = table.Row(20);
  EXPECT_EQ(table.num_cached_rows(), 1u);
  const std::vector<double> second = table.Row(20);
  EXPECT_EQ(table.num_cached_rows(), 1u);
  EXPECT_EQ(first, second);

  GedPriorTable other(4, 3, 8);
  EXPECT_EQ(other.Row(20), first);
}

TEST(GedPriorTest, EagerBuildWarmsRows) {
  GedPriorTable table(4, 3, 6);
  table.EagerBuild({5, 10, 15, 10, 5});
  EXPECT_EQ(table.num_cached_rows(), 3u);
  EXPECT_GT(table.MemoryBytes(), 0u);
}

TEST(GedPriorTest, SerializationRoundTrip) {
  GedPriorTable table(7, 2, 6);
  table.EagerBuild({4, 9});
  BinaryWriter writer;
  table.Serialize(&writer);
  BinaryReader reader(writer.buffer());
  Result<GedPriorTable> loaded = GedPriorTable::Deserialize(&reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->tau_max(), 6);
  EXPECT_EQ(loaded->num_cached_rows(), 2u);
  EXPECT_EQ(loaded->Row(4), table.Row(4));
  EXPECT_EQ(loaded->Row(9), table.Row(9));
}

TEST(GbdPriorTest, RequiresAtLeastTwoGraphs) {
  Rng rng(1);
  GbdPriorOptions opts;
  std::vector<BranchMultiset> one = MakeBranchSamples(1, 2);
  EXPECT_FALSE(GbdPrior::Fit(one, opts, &rng).ok());
}

TEST(GbdPriorTest, FitsAndTabulates) {
  Rng rng(3);
  const std::vector<BranchMultiset> branches = MakeBranchSamples(60, 4);
  GbdPriorOptions opts;
  opts.num_sample_pairs = 500;
  Result<GbdPrior> prior = GbdPrior::Fit(branches, opts, &rng);
  ASSERT_TRUE(prior.ok()) << prior.status().ToString();
  EXPECT_EQ(prior->pairs_sampled(), 500u);
  // Probabilities positive everywhere thanks to the floor.
  for (int64_t phi = 0; phi <= 20; ++phi) {
    EXPECT_GT(prior->Probability(phi), 0.0);
  }
  // Mass concentrates on the observed GBD range (roughly <= 16 here).
  EXPECT_GT(prior->Probability(10), prior->Probability(1000));
}

TEST(GbdPriorTest, UsesAllPairsWhenFew) {
  Rng rng(5);
  const std::vector<BranchMultiset> branches = MakeBranchSamples(10, 6);
  GbdPriorOptions opts;
  opts.num_sample_pairs = 100000;
  Result<GbdPrior> prior = GbdPrior::Fit(branches, opts, &rng);
  ASSERT_TRUE(prior.ok());
  EXPECT_EQ(prior->pairs_sampled(), 45u);  // C(10,2)
}

TEST(GbdPriorTest, HistogramCountsMatchSamples) {
  Rng rng(7);
  const std::vector<BranchMultiset> branches = MakeBranchSamples(12, 8);
  GbdPriorOptions opts;
  Result<GbdPrior> prior = GbdPrior::Fit(branches, opts, &rng);
  ASSERT_TRUE(prior.ok());
  size_t total = 0;
  for (size_t c : prior->sample_histogram()) total += c;
  EXPECT_EQ(total, prior->pairs_sampled());
}

TEST(GbdPriorTest, SerializationRoundTrip) {
  Rng rng(9);
  const std::vector<BranchMultiset> branches = MakeBranchSamples(20, 10);
  GbdPriorOptions opts;
  Result<GbdPrior> prior = GbdPrior::Fit(branches, opts, &rng);
  ASSERT_TRUE(prior.ok());
  BinaryWriter writer;
  prior->Serialize(&writer);
  BinaryReader reader(writer.buffer());
  Result<GbdPrior> loaded = GbdPrior::Deserialize(&reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (int64_t phi = 0; phi <= 30; ++phi) {
    EXPECT_DOUBLE_EQ(loaded->Probability(phi), prior->Probability(phi));
  }
  EXPECT_EQ(loaded->sample_histogram(), prior->sample_histogram());
}

TEST(PosteriorTest, RejectsTauBeyondTableRange) {
  Rng rng(11);
  const std::vector<BranchMultiset> branches = MakeBranchSamples(20, 12);
  GbdPriorOptions opts;
  Result<GbdPrior> gbd_prior = GbdPrior::Fit(branches, opts, &rng);
  ASSERT_TRUE(gbd_prior.ok());
  GedPriorTable ged_prior(4, 3, 5);
  PosteriorEngine engine(4, 3, 5, &ged_prior, &*gbd_prior);
  EXPECT_FALSE(engine.Phi(10, 3, 6).ok());
  EXPECT_FALSE(engine.Phi(0, 3, 2).ok());
  EXPECT_TRUE(engine.Phi(10, 3, 5).ok());
}

TEST(PosteriorTest, PhiIsNonNegativeAndMonotoneInTau) {
  Rng rng(13);
  const std::vector<BranchMultiset> branches = MakeBranchSamples(30, 14);
  GbdPriorOptions opts;
  Result<GbdPrior> gbd_prior = GbdPrior::Fit(branches, opts, &rng);
  ASSERT_TRUE(gbd_prior.ok());
  GedPriorTable ged_prior(4, 3, 8);
  PosteriorEngine engine(4, 3, 8, &ged_prior, &*gbd_prior);
  for (int64_t phi = 0; phi <= 6; ++phi) {
    double prev = -1.0;
    for (int64_t tau_hat = 0; tau_hat <= 8; ++tau_hat) {
      Result<double> p = engine.Phi(12, phi, tau_hat);
      ASSERT_TRUE(p.ok());
      EXPECT_GE(*p, 0.0);
      EXPECT_GE(*p, prev - 1e-12);  // sum over tau grows with tau_hat
      prev = *p;
    }
  }
}

TEST(PosteriorTest, MemoizationKicksIn) {
  Rng rng(15);
  const std::vector<BranchMultiset> branches = MakeBranchSamples(20, 16);
  GbdPriorOptions opts;
  Result<GbdPrior> gbd_prior = GbdPrior::Fit(branches, opts, &rng);
  ASSERT_TRUE(gbd_prior.ok());
  GedPriorTable ged_prior(4, 3, 5);
  PosteriorEngine engine(4, 3, 5, &ged_prior, &*gbd_prior);
  ASSERT_TRUE(engine.Phi(10, 2, 5).ok());
  EXPECT_EQ(engine.memo_hits(), 0u);
  ASSERT_TRUE(engine.Phi(10, 2, 5).ok());
  EXPECT_EQ(engine.memo_hits(), 1u);
}

}  // namespace
}  // namespace gbda
