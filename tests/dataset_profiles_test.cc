#include "datagen/dataset_profiles.h"

#include <gtest/gtest.h>

#include "eval/ground_truth.h"

namespace gbda {
namespace {

TEST(ProfileTest, TableIIIProfilesAreConsistent) {
  for (const DatasetProfile& p :
       {AidsProfile(), FingerprintProfile(), GrecProfile(), AasdProfile()}) {
    EXPECT_FALSE(p.rung_sizes.empty()) << p.name;
    EXPECT_EQ(p.rung_sizes.size(), p.graphs_per_rung.size()) << p.name;
    EXPECT_EQ(p.rung_sizes.size(), p.queries_per_rung.size()) << p.name;
    // Certified gap covers the paper's real-data thresholds (tau <= 10).
    EXPECT_GE(p.certified_gap(), 10) << p.name;
    // Sizes descend.
    for (size_t i = 1; i < p.rung_sizes.size(); ++i) {
      EXPECT_LT(p.rung_sizes[i], p.rung_sizes[i - 1]) << p.name;
    }
  }
}

TEST(ProfileTest, PaperScaleCountsMatchTableIII) {
  const DatasetProfile aids = AidsProfile(1.0);
  size_t total = 0, queries = 0;
  for (size_t c : aids.graphs_per_rung) total += c;
  for (size_t c : aids.queries_per_rung) queries += c;
  EXPECT_EQ(total, 1896u);
  EXPECT_EQ(queries, 100u);
  EXPECT_EQ(aids.rung_sizes.front(), 95u);  // V_m of Table III
}

TEST(ProfileTest, SynProfileCoversLargeThresholds) {
  const DatasetProfile syn = SynProfile(true, {1000, 2000, 5000}, 50, 5);
  EXPECT_GE(syn.certified_gap(), 30);  // thresholds up to 30 in Figures 8/31-42
  EXPECT_EQ(syn.name, "Syn-1");
  EXPECT_FALSE(SynProfile(false, {100, 200}, 10, 2).scale_free);
}

class GeneratedDatasetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = FingerprintProfile(0.03);  // ~65 graphs
    profile.seed = 77;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static GeneratedDataset* dataset_;
};

GeneratedDataset* GeneratedDatasetTest::dataset_ = nullptr;

TEST_F(GeneratedDatasetTest, CountsMatchProfile) {
  const DatasetProfile& p = dataset_->profile;
  size_t expected_graphs = 0, expected_queries = 0;
  for (size_t c : p.graphs_per_rung) expected_graphs += c;
  for (size_t c : p.queries_per_rung) expected_queries += c;
  EXPECT_EQ(dataset_->db.size(), expected_graphs);
  EXPECT_EQ(dataset_->queries.size(), expected_queries);
  EXPECT_EQ(dataset_->graph_rung.size(), expected_graphs);
  EXPECT_EQ(dataset_->query_states.size(), expected_queries);
}

TEST_F(GeneratedDatasetTest, StatsTrackTableIII) {
  const DatabaseStats stats = dataset_->db.Stats();
  EXPECT_EQ(stats.max_vertices, dataset_->profile.rung_sizes.front());
  // Average degree lands near the profile target (center boosting and the
  // marker chains add a little).
  EXPECT_NEAR(stats.avg_degree, dataset_->profile.target_avg_degree, 1.0);
  // The dictionaries hold the core alphabet plus per-family marker labels.
  EXPECT_GE(stats.num_vertex_labels, dataset_->profile.num_vertex_labels);
  EXPECT_EQ(stats.num_vertex_labels,
            dataset_->profile.num_vertex_labels + dataset_->num_families);
  EXPECT_EQ(stats.num_edge_labels,
            dataset_->profile.num_edge_labels + dataset_->num_families);
}

TEST_F(GeneratedDatasetTest, SameFamilyPairsHaveKnownGed) {
  bool found_same_family = false;
  for (size_t q = 0; q < dataset_->queries.size(); ++q) {
    for (size_t g = 0; g < dataset_->db.size(); ++g) {
      const int64_t ged = dataset_->KnownGedOrFar(q, g);
      if (dataset_->query_family[q] == dataset_->graph_family[g]) {
        found_same_family = true;
        EXPECT_GE(ged, 0);
        EXPECT_LE(ged, 2 * static_cast<int64_t>(
                            dataset_->profile.max_modifications));
        // Same family implies same rung and equal sizes.
        EXPECT_EQ(dataset_->query_rung[q], dataset_->graph_rung[g]);
        EXPECT_EQ(dataset_->queries[q].num_vertices(),
                  dataset_->db.graph(g).num_vertices());
      } else {
        EXPECT_EQ(ged, -1);
      }
    }
  }
  EXPECT_TRUE(found_same_family);
}

namespace {

/// Admissible GED lower bound: vertex-label plus edge-label multiset edit
/// distances (each operation fixes at most one mismatch of one kind).
int64_t LabelMultisetLowerBound(const Graph& a, const Graph& b) {
  std::vector<LabelId> va, vb, ea, eb;
  for (uint32_t v = 0; v < a.num_vertices(); ++v) va.push_back(a.VertexLabel(v));
  for (uint32_t v = 0; v < b.num_vertices(); ++v) vb.push_back(b.VertexLabel(v));
  for (const auto& e : a.SortedEdges()) ea.push_back(e.label);
  for (const auto& e : b.SortedEdges()) eb.push_back(e.label);
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  std::sort(ea.begin(), ea.end());
  std::sort(eb.begin(), eb.end());
  auto diff = [](const std::vector<LabelId>& x, const std::vector<LabelId>& y) {
    size_t i = 0, j = 0, common = 0;
    while (i < x.size() && j < y.size()) {
      if (x[i] < y[j]) {
        ++i;
      } else if (x[i] > y[j]) {
        ++j;
      } else {
        ++common;
        ++i;
        ++j;
      }
    }
    return static_cast<int64_t>(std::max(x.size(), y.size()) - common);
  };
  return diff(va, vb) + diff(ea, eb);
}

}  // namespace

TEST_F(GeneratedDatasetTest, MarkersCertifyCrossFamilyPairs) {
  // Every certified-far pair must have a provable GED above certified_tau.
  size_t checked = 0;
  for (size_t q = 0; q < std::min<size_t>(dataset_->queries.size(), 3); ++q) {
    for (size_t g = 0; g < dataset_->db.size(); ++g) {
      if (dataset_->KnownGedOrFar(q, g) >= 0) continue;
      const int64_t lb =
          LabelMultisetLowerBound(dataset_->queries[q], dataset_->db.graph(g));
      EXPECT_GT(lb, dataset_->profile.certified_tau)
          << "query " << q << " graph " << g;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(GeneratedDatasetTest, TrueMatchesConsistentWithKnownGed) {
  for (size_t q = 0; q < std::min<size_t>(dataset_->queries.size(), 4); ++q) {
    for (int64_t tau : {0, 3, 8}) {
      const std::vector<size_t> matches = dataset_->TrueMatches(q, tau);
      std::set<size_t> match_set(matches.begin(), matches.end());
      for (size_t g = 0; g < dataset_->db.size(); ++g) {
        const int64_t ged = dataset_->KnownGedOrFar(q, g);
        EXPECT_EQ(match_set.count(g) == 1, ged >= 0 && ged <= tau);
      }
    }
  }
}

TEST_F(GeneratedDatasetTest, OracleValidatesArguments) {
  GroundTruthOracle oracle(dataset_);
  EXPECT_FALSE(oracle.TrueMatches(1u << 20, 3).ok());
  EXPECT_FALSE(
      oracle.TrueMatches(0, oracle.max_certified_tau() + 1).ok());
  Result<std::vector<size_t>> ok = oracle.TrueMatches(0, 3);
  EXPECT_TRUE(ok.ok());
  EXPECT_FALSE(oracle.Distance(0, 1u << 20).ok());
}

TEST(GenerateDatasetTest, DeterministicForSeed) {
  DatasetProfile profile = GrecProfile(0.02);
  profile.seed = 5;
  Result<GeneratedDataset> a = GenerateDataset(profile);
  Result<GeneratedDataset> b = GenerateDataset(profile);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->db.size(), b->db.size());
  for (size_t i = 0; i < a->db.size(); ++i) {
    EXPECT_TRUE(a->db.graph(i).IdenticalTo(b->db.graph(i)));
  }
}

TEST(GenerateDatasetTest, RejectsMalformedProfile) {
  DatasetProfile p;
  p.name = "broken";
  EXPECT_FALSE(GenerateDataset(p).ok());
  p.rung_sizes = {10, 5};
  p.graphs_per_rung = {3};  // length mismatch
  p.queries_per_rung = {1, 1};
  EXPECT_FALSE(GenerateDataset(p).ok());
}

}  // namespace
}  // namespace gbda
