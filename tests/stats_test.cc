#include "math/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gbda {
namespace {

TEST(StatsTest, MeanVarianceMedian) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(SampleVariance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(SampleVariance({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(StdDev({2.0, 4.0, 6.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(StatsTest, IntegerHistogram) {
  const auto hist = IntegerHistogram({1, 2, 2, 3, 3, 3});
  EXPECT_EQ(hist.at(1), 1u);
  EXPECT_EQ(hist.at(2), 2u);
  EXPECT_EQ(hist.at(3), 3u);
  EXPECT_EQ(hist.size(), 3u);
}

TEST(RegressionTest, ExactLine) {
  Result<RegressionFit> fit =
      LinearRegression({1.0, 2.0, 3.0, 4.0}, {3.0, 5.0, 7.0, 9.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r2, 1.0, 1e-12);
}

TEST(RegressionTest, RejectsDegenerateInput) {
  EXPECT_FALSE(LinearRegression({1.0}, {2.0}).ok());
  EXPECT_FALSE(LinearRegression({1.0, 2.0}, {2.0}).ok());
  EXPECT_FALSE(LinearRegression({3.0, 3.0}, {1.0, 2.0}).ok());
}

TEST(RegressionTest, NoisyFitHasR2BelowOne) {
  Result<RegressionFit> fit =
      LinearRegression({0.0, 1.0, 2.0, 3.0}, {0.0, 1.5, 1.5, 3.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->r2, 0.8);
  EXPECT_LT(fit->r2, 1.0);
}

std::map<int64_t, size_t> PowerLawCounts(double exponent, int64_t max_degree,
                                         double scale) {
  std::map<int64_t, size_t> counts;
  for (int64_t k = 1; k <= max_degree; ++k) {
    counts[k] = static_cast<size_t>(
        std::llround(scale * std::pow(static_cast<double>(k), -exponent)));
  }
  return counts;
}

TEST(PowerLawTest, RecoversExponent) {
  const auto counts = PowerLawCounts(2.5, 40, 1e6);
  Result<PowerLawFit> fit = FitPowerLaw(counts);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->exponent, 2.5, 0.1);
  EXPECT_GT(fit->r2, 0.98);
}

TEST(PowerLawTest, RejectsTooFewPoints) {
  EXPECT_FALSE(FitPowerLaw({{1, 10}}).ok());
  EXPECT_FALSE(FitPowerLaw({}).ok());
}

TEST(ScaleFreeTest, AcceptsPowerLawRejectsUniform) {
  EXPECT_TRUE(LooksScaleFree(PowerLawCounts(2.5, 40, 1e6)));
  // A flat degree distribution is not scale-free.
  std::map<int64_t, size_t> flat;
  for (int64_t k = 1; k <= 20; ++k) flat[k] = 100;
  EXPECT_FALSE(LooksScaleFree(flat));
  // An increasing distribution certainly is not.
  std::map<int64_t, size_t> rising;
  for (int64_t k = 1; k <= 20; ++k) rising[k] = static_cast<size_t>(10 * k);
  EXPECT_FALSE(LooksScaleFree(rising));
}

}  // namespace
}  // namespace gbda
