/// Tests for the annotated gbda::Mutex / MutexLock / CondVar wrappers
/// (common/mutex.h). The thread-safety annotations themselves are checked
/// by Clang at compile time (-Wthread-safety, see common/
/// thread_annotations.h); these tests cover the runtime semantics the
/// wrappers must preserve over std::mutex / std::condition_variable.

#include "common/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace gbda {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockReportsHeldState) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  std::atomic<bool> acquired{false};
  // try_lock from ANOTHER thread must fail while held (same-thread try_lock
  // on a held std::mutex is undefined behavior).
  std::thread other([&] { acquired.store(mu.TryLock()); });
  other.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, CondVarWaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  MutexLock lock(&mu);
  EXPECT_TRUE(ready);
}

TEST(MutexTest, CondVarNotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(mu);
      woke.fetch_add(1);
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(MutexTest, CondVarWaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  // Nobody notifies: the wait must come back with a timeout verdict and the
  // lock held (we can immediately release it through MutexLock's dtor).
  EXPECT_EQ(cv.WaitUntil(mu, deadline), std::cv_status::timeout);
}

TEST(MutexTest, CondVarWaitReacquiresLockBeforeReturning) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int shared = 0;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
    // If Wait failed to reacquire, this write would race the main thread's
    // post-notify write below (TSan would flag it).
    shared += 1;
  });
  {
    MutexLock lock(&mu);
    ready = true;
    shared += 10;
  }
  cv.NotifyOne();
  waiter.join();
  MutexLock lock(&mu);
  EXPECT_EQ(shared, 11);
}

}  // namespace
}  // namespace gbda
