#include "core/lambda1.h"

#include <gtest/gtest.h>

#include <tuple>

namespace gbda {
namespace {

class Lambda1Normalization
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(Lambda1Normalization, RowsSumToOneOverPhi) {
  const auto [v, lv, tau_max] = GetParam();
  const Lambda1Calculator calc(MakeModelParams(v, lv, 3), tau_max);
  const auto matrix = calc.Matrix();
  const double max_edits =
      static_cast<double>(v) + static_cast<double>(v) * (v - 1) / 2.0;
  for (int64_t tau = 0; tau <= tau_max; ++tau) {
    if (static_cast<double>(tau) > max_edits) continue;  // impossible GED
    double total = 0.0;
    for (int64_t phi = 0; phi <= 2 * tau_max; ++phi) {
      const double p = matrix[static_cast<size_t>(tau)][static_cast<size_t>(phi)];
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-8) << "v=" << v << " tau=" << tau;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lambda1Normalization,
    ::testing::Values(std::make_tuple(int64_t{3}, int64_t{3}, int64_t{4}),
                      std::make_tuple(int64_t{4}, int64_t{3}, int64_t{6}),
                      std::make_tuple(int64_t{10}, int64_t{5}, int64_t{8}),
                      std::make_tuple(int64_t{50}, int64_t{42}, int64_t{10}),
                      std::make_tuple(int64_t{1000}, int64_t{10}, int64_t{10})));

TEST(Lambda1Test, ReproducesPaperExample7) {
  // Example 7 evaluates Lambda1(Q', G'2; tau, phi=3) for the Figure 1 pair:
  // |V'1| = 4, |L_V| = 3, |L_E| = 3. The paper reports
  //   Lambda1(2, 3) = 0.5113 and Lambda1(3, 3) = 0.5631.
  const Lambda1Calculator calc(MakeModelParams(4, 3, 3), 4);
  const std::vector<double> col = calc.Column(3);
  EXPECT_EQ(col[0], 0.0);
  EXPECT_EQ(col[1], 0.0);  // one edit cannot change three branches
  EXPECT_NEAR(col[2], 0.5113, 5e-4);
  EXPECT_NEAR(col[3], 0.5631, 5e-4);
}

TEST(Lambda1Test, ZeroEditsMeansZeroGbd) {
  const Lambda1Calculator calc(MakeModelParams(5, 3, 3), 4);
  const std::vector<double> col0 = calc.Column(0);
  EXPECT_NEAR(col0[0], 1.0, 1e-12);  // Lambda1(0, 0) = 1
  const std::vector<double> col1 = calc.Column(1);
  EXPECT_EQ(col1[0], 0.0);  // Lambda1(0, phi>0) = 0
}

TEST(Lambda1Test, SupportBoundedByTwiceTau) {
  // One edit changes at most two branches: Lambda1(tau, phi) = 0 for
  // phi > 2 tau (the range analysis of Section V-C).
  const Lambda1Calculator calc(MakeModelParams(8, 4, 3), 5);
  const auto matrix = calc.Matrix();
  for (int64_t tau = 0; tau <= 5; ++tau) {
    for (int64_t phi = 2 * tau + 1; phi <= 10; ++phi) {
      EXPECT_EQ(matrix[static_cast<size_t>(tau)][static_cast<size_t>(phi)], 0.0)
          << "tau=" << tau << " phi=" << phi;
    }
  }
}

TEST(Lambda1Test, ColumnAgreesWithMatrix) {
  const Lambda1Calculator calc(MakeModelParams(7, 4, 2), 6);
  const auto matrix = calc.Matrix();
  for (int64_t phi = 0; phi <= 12; ++phi) {
    const std::vector<double> col = calc.Column(phi);
    for (int64_t tau = 0; tau <= 6; ++tau) {
      EXPECT_DOUBLE_EQ(col[static_cast<size_t>(tau)],
                       matrix[static_cast<size_t>(tau)][static_cast<size_t>(phi)]);
    }
  }
}

TEST(Lambda1Test, NegativePhiIsZero) {
  const Lambda1Calculator calc(MakeModelParams(5, 3, 3), 3);
  for (double p : calc.Column(-2)) EXPECT_EQ(p, 0.0);
}

TEST(Lambda1Test, LargeGedConcentratesOnLargeGbd) {
  // For big graphs, tau random edits almost surely touch 2*tau distinct
  // branches and all change: Lambda1(tau, 2 tau) should dominate.
  const Lambda1Calculator calc(MakeModelParams(100000, 10, 5), 5);
  const auto matrix = calc.Matrix();
  for (int64_t tau = 1; tau <= 5; ++tau) {
    EXPECT_GT(matrix[static_cast<size_t>(tau)][static_cast<size_t>(2 * tau)], 0.95)
        << "tau=" << tau;
  }
}

TEST(Lambda1Test, HandlesTinyGraphs) {
  // v = 1: only vertex relabels exist; tau=1 must put all mass on phi=1
  // (the single branch changes — D > 1 for |LV| >= 2).
  const Lambda1Calculator calc(MakeModelParams(1, 5, 3), 2);
  const std::vector<double> col1 = calc.Column(1);
  EXPECT_GT(col1[1], 0.5);
  // tau = 2 exceeds the single relabel slot... the extended K1 has one
  // vertex and zero edges, so 2 distinct targets never exist: row is zero.
  const auto matrix = calc.Matrix();
  double total_tau2 = 0.0;
  for (double p : matrix[2]) total_tau2 += p;
  EXPECT_NEAR(total_tau2, 0.0, 1e-12);
}

}  // namespace
}  // namespace gbda
