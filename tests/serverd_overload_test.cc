// Backpressure, deadline and failure-mode battery for the serving
// front-end. The admin drain gate (PauseDraining/ResumeDraining) opens
// deterministic windows: with workers parked, admission behavior past the
// queue bound, deadline accounting and shutdown draining are all exactly
// observable instead of racy.

#include "net/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/gbda_index.h"
#include "datagen/dataset_profiles.h"
#include "net/client.h"
#include "service/gbda_service.h"

namespace gbda::net {
namespace {

/// Shared frozen backend (built once); each test starts its own server so
/// the counters it asserts on start from zero.
class ServerdOverloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = AidsProfile(0.02);
    Result<GeneratedDataset> dataset = GenerateDataset(profile);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*dataset));

    GbdaIndexOptions index_options;
    index_options.tau_max = 10;
    index_options.gbd_prior.num_sample_pairs = 500;
    index_options.model_vertex_labels =
        static_cast<int64_t>(profile.num_vertex_labels);
    index_options.model_edge_labels =
        static_cast<int64_t>(profile.num_edge_labels);
    Result<GbdaIndex> index = GbdaIndex::Build(dataset_->db, index_options);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = new GbdaIndex(std::move(*index));

    ServiceOptions service_options;
    service_options.num_threads = 2;
    Result<std::unique_ptr<GbdaService>> service =
        GbdaService::Create(&dataset_->db, index_, service_options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = service->release();
  }

  static void TearDownTestSuite() {
    delete service_;
    delete index_;
    delete dataset_;
    service_ = nullptr;
    index_ = nullptr;
    dataset_ = nullptr;
  }

  static std::unique_ptr<GbdaServer> MustServe(const ServerConfig& config) {
    Result<std::unique_ptr<GbdaServer>> server =
        GbdaServer::Serve(service_, config);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return server.ok() ? std::move(*server) : nullptr;
  }

  static std::string EncodedQuery(uint64_t request_id,
                                  uint64_t deadline_ms = 0) {
    TopKRequest req;
    req.request_id = request_id;
    req.k = 5;
    req.deadline_ms = deadline_ms;
    req.options.tau_hat = 5;
    req.options.gamma = 0.5;
    req.query = dataset_->queries[0];
    return EncodeTopKRequest(req);
  }

  static GeneratedDataset* dataset_;
  static GbdaIndex* index_;
  static GbdaService* service_;
};

GeneratedDataset* ServerdOverloadTest::dataset_ = nullptr;
GbdaIndex* ServerdOverloadTest::index_ = nullptr;
GbdaService* ServerdOverloadTest::service_ = nullptr;

TEST_F(ServerdOverloadTest, PastTheQueueBoundRequestsAnswerTypedOverloaded) {
  ServerConfig config;
  config.max_queue = 2;
  config.max_batch = 4;
  std::unique_ptr<GbdaServer> server = MustServe(config);
  ASSERT_NE(server, nullptr);
  server->PauseDraining();

  Result<GbdaClient> client = GbdaClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Pipeline 10 identical requests with workers parked: the first two fill
  // the queue, the other eight must bounce with kOverloaded immediately.
  std::string pipelined;
  for (uint64_t id = 1; id <= 10; ++id) pipelined += EncodedQuery(id);
  ASSERT_TRUE(client->SendBytes(pipelined).ok());

  std::vector<uint64_t> overloaded_ids;
  for (int i = 0; i < 8; ++i) {
    Result<Frame> frame = client->ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, MessageType::kTopKResponse);
    Result<TopKResponse> resp = DecodeTopKResponse(frame->payload);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->status, WireStatus::kOverloaded) << resp->message;
    overloaded_ids.push_back(resp->request_id);
  }
  // Rejections preserve request ids (FIFO per connection): exactly 3..10.
  for (size_t i = 0; i < overloaded_ids.size(); ++i) {
    EXPECT_EQ(overloaded_ids[i], i + 3);
  }

  // Releasing the gate executes the two admitted requests as ONE coalesced
  // batch (same batch key, both already queued).
  server->ResumeDraining();
  for (uint64_t expected_id = 1; expected_id <= 2; ++expected_id) {
    Result<Frame> frame = client->ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    Result<TopKResponse> resp = DecodeTopKResponse(frame->payload);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, WireStatus::kOk) << resp->message;
    EXPECT_EQ(resp->request_id, expected_id);
    EXPECT_EQ(resp->batch_size, 2u);
    EXPECT_FALSE(resp->matches.empty());
  }

  const WireServerStats stats = server->stats();
  EXPECT_EQ(stats.rejected_overloaded, 8u);
  EXPECT_EQ(stats.requests_accepted, 2u);
  EXPECT_EQ(stats.queue_depth_peak, 2u);
  ASSERT_GE(stats.batch_size_histogram.size(), 2u);
  EXPECT_EQ(stats.batch_size_histogram[1], 1u);  // one batch of size 2
}

TEST_F(ServerdOverloadTest, ExpiredRequestsAnswerDeadlineExceededUnexecuted) {
  ServerConfig config;
  config.max_queue = 16;
  std::unique_ptr<GbdaServer> server = MustServe(config);
  ASSERT_NE(server, nullptr);
  server->PauseDraining();

  Result<GbdaClient> client = GbdaClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::string pipelined;
  for (uint64_t id = 1; id <= 3; ++id) pipelined += EncodedQuery(id, 1);
  ASSERT_TRUE(client->SendBytes(pipelined).ok());
  // Admitted with a 1 ms deadline; parked well past it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server->ResumeDraining();

  for (int i = 0; i < 3; ++i) {
    Result<Frame> frame = client->ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    Result<TopKResponse> resp = DecodeTopKResponse(frame->payload);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, WireStatus::kDeadlineExceeded) << resp->message;
    // The response accounts for the time the request actually queued.
    EXPECT_GE(resp->queue_micros, 10000u);
    EXPECT_TRUE(resp->matches.empty());
  }
  const WireServerStats stats = server->stats();
  EXPECT_EQ(stats.rejected_deadline, 3u);
  EXPECT_EQ(stats.batches_executed, 0u);  // nothing was executed
}

TEST_F(ServerdOverloadTest, MidResponseDisconnectsDoNotKillTheServer) {
  ServerConfig config;
  std::unique_ptr<GbdaServer> server = MustServe(config);
  ASSERT_NE(server, nullptr);

  // Clients that fire requests and vanish without reading the responses:
  // the server's writes hit dead sockets (EPIPE territory — fatal unless
  // sends suppress SIGPIPE).
  for (int round = 0; round < 10; ++round) {
    Result<GbdaClient> client =
        GbdaClient::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    std::string pipelined;
    for (uint64_t id = 1; id <= 4; ++id) pipelined += EncodedQuery(id);
    ASSERT_TRUE(client->SendBytes(pipelined).ok());
    client->Close();  // gone before any response is written
  }

  // The process survived and the server still serves.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Result<GbdaClient> alive = GbdaClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(alive.ok()) << alive.status().ToString();
  EXPECT_TRUE(alive->Ping(7).ok());
  Result<StatsResponse> stats = alive->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->stats.connections_closed, 10u);
}

TEST_F(ServerdOverloadTest, ShutdownAnswersEveryAdmittedRequest) {
  ServerConfig config;
  config.max_queue = 16;
  std::unique_ptr<GbdaServer> server = MustServe(config);
  ASSERT_NE(server, nullptr);
  server->PauseDraining();

  Result<GbdaClient> client = GbdaClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::string pipelined;
  for (uint64_t id = 1; id <= 4; ++id) pipelined += EncodedQuery(id);
  ASSERT_TRUE(client->SendBytes(pipelined).ok());
  // Give the I/O thread time to admit all four before the shutdown.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Graceful shutdown overrides the admin pause: the admitted requests are
  // drained, executed and their responses flushed before sockets close.
  server->Shutdown();

  int ok_responses = 0;
  for (int i = 0; i < 4; ++i) {
    Result<Frame> frame = client->ReadFrame();
    ASSERT_TRUE(frame.ok())
        << "response " << i << " dropped at shutdown: "
        << frame.status().ToString();
    Result<TopKResponse> resp = DecodeTopKResponse(frame->payload);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, WireStatus::kOk) << resp->message;
    ++ok_responses;
  }
  EXPECT_EQ(ok_responses, 4);
  // And the connection then closes cleanly.
  Result<Frame> eof = client->ReadFrame();
  EXPECT_FALSE(eof.ok());
}

TEST_F(ServerdOverloadTest, RequestsAfterShutdownBeginsAnswerShuttingDown) {
  ServerConfig config;
  std::unique_ptr<GbdaServer> server = MustServe(config);
  ASSERT_NE(server, nullptr);
  Result<GbdaClient> client = GbdaClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping(1).ok());
  server->Shutdown();
  // The socket is closed once the flush ends; a request now either fails
  // at the transport or (if it raced the close) answers kShuttingDown.
  Status sent = client->SendBytes(EncodedQuery(2));
  if (sent.ok()) {
    Result<Frame> frame = client->ReadFrame();
    if (frame.ok()) {
      Result<TopKResponse> resp = DecodeTopKResponse(frame->payload);
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(resp->status, WireStatus::kShuttingDown);
    }
  }
}

}  // namespace
}  // namespace gbda::net
