// Serving-front-end battery (src/net/server.h) over a frozen backend: the
// server runs in-process on a loopback ephemeral port and the acceptance
// contract is BIT-IDENTITY — every response served over the wire (including
// from N concurrent client connections) must reproduce the in-process
// GbdaService::QueryTopK answer exactly: match set, ordering, phi/gbd bit
// patterns and the deterministic scan counters. Protocol robustness rides
// along: malformed payloads answer kInvalidRequest and keep the connection,
// framing violations close it, mutations on a frozen backend answer
// kUnsupported.

#include "net/server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/gbda_index.h"
#include "datagen/dataset_profiles.h"
#include "net/client.h"
#include "service/gbda_service.h"

namespace gbda::net {
namespace {

SearchOptions BaseOptions() {
  SearchOptions options;
  options.tau_hat = 5;
  options.gamma = 0.5;
  return options;
}

/// One frozen serving stack shared by every test in this suite (the offline
/// build is the expensive part; the server itself starts in microseconds).
class ServerdTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = AidsProfile(0.02);
    Result<GeneratedDataset> dataset = GenerateDataset(profile);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*dataset));

    GbdaIndexOptions index_options;
    index_options.tau_max = 10;
    index_options.gbd_prior.num_sample_pairs = 500;
    index_options.model_vertex_labels =
        static_cast<int64_t>(profile.num_vertex_labels);
    index_options.model_edge_labels =
        static_cast<int64_t>(profile.num_edge_labels);
    Result<GbdaIndex> index = GbdaIndex::Build(dataset_->db, index_options);
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = new GbdaIndex(std::move(*index));

    ServiceOptions service_options;
    service_options.num_threads = 2;
    Result<std::unique_ptr<GbdaService>> service =
        GbdaService::Create(&dataset_->db, index_, service_options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = service->release();

    ServerConfig config;
    config.max_batch = 4;
    config.num_workers = 1;
    Result<std::unique_ptr<GbdaServer>> server =
        GbdaServer::Serve(service_, config);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = server->release();
  }

  static void TearDownTestSuite() {
    delete server_;
    delete service_;
    delete index_;
    delete dataset_;
    server_ = nullptr;
    service_ = nullptr;
    index_ = nullptr;
    dataset_ = nullptr;
  }

  static GbdaClient MustConnect() {
    Result<GbdaClient> client =
        GbdaClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : GbdaClient();
  }

  static TopKRequest MakeRequest(size_t query_idx, uint64_t k,
                                 const SearchOptions& options) {
    TopKRequest req;
    req.request_id = query_idx;
    req.k = k;
    req.options = options;
    req.query = dataset_->queries[query_idx % dataset_->queries.size()];
    return req;
  }

  /// The acceptance predicate: a wire response equals the in-process answer
  /// bit for bit.
  static void ExpectBitIdentical(const TopKResponse& wire,
                                 const SearchResult& local,
                                 const std::string& label) {
    ASSERT_EQ(wire.status, WireStatus::kOk) << label << ": " << wire.message;
    EXPECT_EQ(wire.candidates_evaluated, local.candidates_evaluated) << label;
    EXPECT_EQ(wire.prefiltered_out, local.prefiltered_out) << label;
    EXPECT_EQ(wire.pruned_by_bound, local.pruned_by_bound) << label;
    ASSERT_EQ(wire.matches.size(), local.matches.size()) << label;
    for (size_t i = 0; i < local.matches.size(); ++i) {
      EXPECT_EQ(wire.matches[i].graph_id, local.matches[i].graph_id)
          << label << " match " << i;
      EXPECT_EQ(wire.matches[i].phi_score, local.matches[i].phi_score)
          << label << " match " << i;
      EXPECT_EQ(wire.matches[i].gbd, local.matches[i].gbd)
          << label << " match " << i;
    }
  }

  static GeneratedDataset* dataset_;
  static GbdaIndex* index_;
  static GbdaService* service_;
  static GbdaServer* server_;
};

GeneratedDataset* ServerdTest::dataset_ = nullptr;
GbdaIndex* ServerdTest::index_ = nullptr;
GbdaService* ServerdTest::service_ = nullptr;
GbdaServer* ServerdTest::server_ = nullptr;

TEST_F(ServerdTest, PingAndStatsRoundTrip) {
  GbdaClient client = MustConnect();
  ASSERT_TRUE(client.connected());
  EXPECT_TRUE(client.Ping(123).ok());
  Result<StatsResponse> stats = client.Stats(124);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->request_id, 124u);
  EXPECT_GE(stats->stats.connections_opened, 1u);
  EXPECT_GE(stats->stats.frames_received, 1u);
  EXPECT_EQ(stats->stats.batch_size_histogram.size(), 4u);  // max_batch
}

TEST_F(ServerdTest, SingleClientServesBitIdenticalResults) {
  GbdaClient client = MustConnect();
  ASSERT_TRUE(client.connected());
  const SearchOptions options = BaseOptions();
  for (size_t qi = 0; qi < dataset_->queries.size(); ++qi) {
    Result<SearchResult> local =
        service_->QueryTopK(dataset_->queries[qi], 5, options);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    Result<TopKResponse> wire = client.QueryTopK(MakeRequest(qi, 5, options));
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    EXPECT_EQ(wire->request_id, qi);
    EXPECT_GE(wire->batch_size, 1u);
    ExpectBitIdentical(*wire, *local, "query " + std::to_string(qi));
  }
}

TEST_F(ServerdTest, ConcurrentClientsAllServeBitIdenticalResults) {
  const SearchOptions options = BaseOptions();
  constexpr size_t kClients = 4;
  constexpr size_t kQueriesPerClient = 12;

  // In-process expectations, computed up front (deterministic).
  std::vector<SearchResult> expected;
  for (size_t qi = 0; qi < kQueriesPerClient; ++qi) {
    Result<SearchResult> local = service_->QueryTopK(
        dataset_->queries[qi % dataset_->queries.size()], 5, options);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    expected.push_back(std::move(*local));
  }

  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Result<GbdaClient> client =
          GbdaClient::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      for (size_t qi = 0; qi < kQueriesPerClient; ++qi) {
        Result<TopKResponse> wire =
            client->QueryTopK(MakeRequest(qi, 5, options));
        if (!wire.ok()) {
          failures[c] = wire.status().ToString();
          return;
        }
        const SearchResult& local = expected[qi];
        bool same = wire->status == WireStatus::kOk &&
                    wire->matches.size() == local.matches.size() &&
                    wire->candidates_evaluated == local.candidates_evaluated &&
                    wire->prefiltered_out == local.prefiltered_out &&
                    wire->pruned_by_bound == local.pruned_by_bound;
        for (size_t i = 0; same && i < local.matches.size(); ++i) {
          same = wire->matches[i].graph_id == local.matches[i].graph_id &&
                 wire->matches[i].phi_score == local.matches[i].phi_score &&
                 wire->matches[i].gbd == local.matches[i].gbd;
        }
        if (!same) {
          failures[c] = "client " + std::to_string(c) + " query " +
                        std::to_string(qi) + " diverges";
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << failures[c];
  }
}

TEST_F(ServerdTest, ShardedStatsReconcileExactlyUnderConcurrentClients) {
  // Regression for the stats path moving from a mutex-guarded struct to
  // sharded lock-free counters: once the burst quiesces, every delta must
  // reconcile exactly with what the clients actually sent — a sharded
  // counter that dropped or double-counted an increment shows up here.
  const WireServerStats before = server_->stats();
  const SearchOptions options = BaseOptions();
  constexpr size_t kClients = 8;
  constexpr size_t kQueriesPerClient = 16;

  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Result<GbdaClient> client =
          GbdaClient::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      for (size_t qi = 0; qi < kQueriesPerClient; ++qi) {
        Result<TopKResponse> wire =
            client->QueryTopK(MakeRequest(qi, 5, options));
        if (!wire.ok()) {
          failures[c] = wire.status().ToString();
          return;
        }
        if (wire->status != WireStatus::kOk) {
          failures[c] = "client " + std::to_string(c) + " query " +
                        std::to_string(qi) + ": " + wire->message;
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    ASSERT_TRUE(failures[c].empty()) << failures[c];
  }

  const WireServerStats after = server_->stats();
  const uint64_t sent = kClients * kQueriesPerClient;
  EXPECT_EQ(after.connections_opened - before.connections_opened, kClients);
  EXPECT_EQ(after.frames_received - before.frames_received, sent);
  EXPECT_EQ(after.requests_accepted - before.requests_accepted, sent);
  EXPECT_EQ(after.responses_sent - before.responses_sent, sent);
  EXPECT_EQ(after.rejected_overloaded, before.rejected_overloaded);
  EXPECT_EQ(after.rejected_deadline, before.rejected_deadline);
  EXPECT_EQ(after.rejected_invalid, before.rejected_invalid);
  EXPECT_EQ(after.decode_errors, before.decode_errors);

  // Per-stage latency histograms: admission, queue and scan record once per
  // executed request; the batch (coalesce) stage records once per batch.
  ASSERT_EQ(after.stage_latency.size(), 4u);
  ASSERT_EQ(before.stage_latency.size(), 4u);
  EXPECT_EQ(after.stage_latency[0].count - before.stage_latency[0].count,
            sent);  // admission
  EXPECT_EQ(after.stage_latency[1].count - before.stage_latency[1].count,
            sent);  // queue
  EXPECT_EQ(after.stage_latency[3].count - before.stage_latency[3].count,
            sent);  // scan
  const uint64_t batches = after.batches_executed - before.batches_executed;
  EXPECT_GE(batches, 1u);
  EXPECT_LE(batches, sent);
  EXPECT_EQ(after.stage_latency[2].count - before.stage_latency[2].count,
            batches);  // one coalesce record per batch

  // The batch-size histogram tiles the executed batches exactly.
  ASSERT_EQ(after.batch_size_histogram.size(),
            before.batch_size_histogram.size());
  uint64_t batches_from_histogram = 0;
  uint64_t requests_from_histogram = 0;
  for (size_t i = 0; i < after.batch_size_histogram.size(); ++i) {
    const uint64_t d =
        after.batch_size_histogram[i] - before.batch_size_histogram[i];
    batches_from_histogram += d;
    requests_from_histogram += d * (i + 1);
  }
  EXPECT_EQ(batches_from_histogram, batches);
  EXPECT_EQ(requests_from_histogram, sent);
}

TEST_F(ServerdTest, EdgeCaseKZeroIsDefinedEmpty) {
  GbdaClient client = MustConnect();
  Result<TopKResponse> wire = client.QueryTopK(MakeRequest(0, 0, BaseOptions()));
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->status, WireStatus::kOk);
  EXPECT_TRUE(wire->matches.empty());
  Result<SearchResult> local =
      service_->QueryTopK(dataset_->queries[0], 0, BaseOptions());
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(wire->candidates_evaluated, local->candidates_evaluated);
}

TEST_F(ServerdTest, EdgeCaseKPastCorpusMatchesInProcess) {
  GbdaClient client = MustConnect();
  const uint64_t k = dataset_->db.size() + 100;
  Result<SearchResult> local =
      service_->QueryTopK(dataset_->queries[0], k, BaseOptions());
  ASSERT_TRUE(local.ok());
  Result<TopKResponse> wire = client.QueryTopK(MakeRequest(0, k, BaseOptions()));
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  ExpectBitIdentical(*wire, *local, "k past corpus");
  EXPECT_LE(wire->matches.size(), dataset_->db.size());
}

TEST_F(ServerdTest, EdgeCaseTauHatZeroMatchesInProcess) {
  SearchOptions options = BaseOptions();
  options.tau_hat = 0;
  GbdaClient client = MustConnect();
  Result<SearchResult> local =
      service_->QueryTopK(dataset_->queries[0], 5, options);
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  Result<TopKResponse> wire = client.QueryTopK(MakeRequest(0, 5, options));
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  ExpectBitIdentical(*wire, *local, "tau_hat 0");
}

TEST_F(ServerdTest, MalformedPayloadAnswersInvalidAndKeepsTheConnection) {
  GbdaClient client = MustConnect();
  // Well-framed (valid header + CRC) but undecodable body.
  const std::string garbage = "\x01\x02\x03not a topk request";
  ASSERT_TRUE(
      client.SendBytes(EncodeFrame(MessageType::kTopKRequest, garbage)).ok());
  Result<Frame> frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->type, MessageType::kTopKResponse);
  Result<TopKResponse> resp = DecodeTopKResponse(frame->payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, WireStatus::kInvalidRequest);
  // The connection survives: a normal request still succeeds on it.
  EXPECT_TRUE(client.Ping(9).ok());
  Result<TopKResponse> after = client.QueryTopK(MakeRequest(1, 3, BaseOptions()));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->status, WireStatus::kOk);
}

TEST_F(ServerdTest, ResponseTypedFrameIsRejectedAsInvalid) {
  GbdaClient client = MustConnect();
  ASSERT_TRUE(client.SendBytes(EncodePingResponse({77})).ok());
  Result<Frame> frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  Result<TopKResponse> resp = DecodeTopKResponse(frame->payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, WireStatus::kInvalidRequest);
}

TEST_F(ServerdTest, FramingViolationClosesTheConnection) {
  const WireServerStats before = server_->stats();
  GbdaClient client = MustConnect();
  std::string bad = EncodePingRequest({1});
  bad[0] ^= 0x01;  // corrupt the magic
  ASSERT_TRUE(client.SendBytes(bad).ok());
  // The server must close this connection (no resync point); the read side
  // observes EOF or a reset.
  Result<Frame> frame = client.ReadFrame();
  EXPECT_FALSE(frame.ok());
  // The server itself is unaffected: fresh connections keep working.
  GbdaClient again = MustConnect();
  EXPECT_TRUE(again.Ping(1).ok());
  Result<StatsResponse> stats = again.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->stats.decode_errors, before.decode_errors);
}

TEST_F(ServerdTest, MutationOnFrozenBackendAnswersUnsupported) {
  GbdaClient client = MustConnect();
  MutateRequest req;
  req.request_id = 31;
  req.op = MutationOp::kFlush;
  Result<MutateResponse> resp = client.Mutate(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->request_id, 31u);
  EXPECT_EQ(resp->status, WireStatus::kUnsupported);
}

TEST_F(ServerdTest, FrozenBackendReportsGenerationZero) {
  GbdaClient client = MustConnect();
  Result<TopKResponse> wire = client.QueryTopK(MakeRequest(0, 3, BaseOptions()));
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(wire->generation, 0u);
}

}  // namespace
}  // namespace gbda::net
