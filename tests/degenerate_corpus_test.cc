// Degenerate corpora across the serving stack (ISSUE 4 satellite): the
// empty index produced by an all-tombstoned CompactView, a GbdaIndexView
// over a zero-graph v3 artifact, and a DynamicGbdaService whose corpus was
// fully retired — all across variants x prefilter x shard counts. Every
// path must answer with clean empty results, never fault or reject.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "service/dynamic_service.h"
#include "service/gbda_service.h"
#include "storage/index_arena.h"
#include "storage/index_view.h"

namespace gbda {
namespace {

const GbdaVariant kAllVariants[] = {GbdaVariant::kStandard,
                                    GbdaVariant::kAverageSize,
                                    GbdaVariant::kWeightedGbd};

SearchOptions MakeOptions(GbdaVariant variant, bool prefilter) {
  SearchOptions options;
  options.tau_hat = 4;
  options.gamma = 0.2;
  options.variant = variant;
  options.use_prefilter = prefilter;
  return options;
}

void ExpectEmptyResult(const Result<SearchResult>& result,
                       const std::string& label) {
  ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
  EXPECT_TRUE(result->matches.empty()) << label;
  EXPECT_EQ(result->candidates_evaluated, 0u) << label;
  EXPECT_EQ(result->prefiltered_out, 0u) << label;
}

class DegenerateCorpusTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetProfile profile = FingerprintProfile(0.02);
    profile.seed = 13;
    Result<GeneratedDataset> ds = GenerateDataset(profile);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new GeneratedDataset(std::move(*ds));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  /// An index whose every slot was tombstoned, compacted to zero graphs.
  static GbdaIndex EmptyCompactView() {
    GbdaIndexOptions options;
    options.tau_max = 6;
    options.gbd_prior.num_sample_pairs = 200;
    Result<GbdaIndex> master = GbdaIndex::Build(dataset_->db, options);
    EXPECT_TRUE(master.ok());
    std::vector<size_t> all_ids(master->num_graphs());
    for (size_t i = 0; i < all_ids.size(); ++i) all_ids[i] = i;
    EXPECT_TRUE(master->RemoveGraphs(all_ids).ok());
    EXPECT_EQ(master->num_live(), 0u);
    std::vector<size_t> live_ids;
    GbdaIndex dense = master->CompactView(&live_ids);
    EXPECT_EQ(dense.num_graphs(), 0u);
    EXPECT_TRUE(live_ids.empty());
    return dense;
  }

  static GeneratedDataset* dataset_;
};

GeneratedDataset* DegenerateCorpusTest::dataset_ = nullptr;

TEST_F(DegenerateCorpusTest, AllTombstonedCompactViewServesEmptyResults) {
  const GbdaIndex empty_index = EmptyCompactView();
  GraphDatabase empty_db;

  // Serial scans, every variant x prefilter.
  GbdaSearch search(&empty_db, &empty_index);
  for (GbdaVariant variant : kAllVariants) {
    for (bool prefilter : {false, true}) {
      const std::string label =
          "serial variant=" + std::to_string(static_cast<int>(variant)) +
          " prefilter=" + std::to_string(prefilter);
      ExpectEmptyResult(search.Query(dataset_->queries[0],
                                     MakeOptions(variant, prefilter)),
                        label);
      ExpectEmptyResult(search.QueryTopK(dataset_->queries[0], 5,
                                         MakeOptions(variant, prefilter)),
                        label + " topk");
    }
  }

  // Sharded service, every shard count (clamped to one empty shard).
  for (size_t shards : {size_t{1}, size_t{2}, size_t{7}}) {
    ServiceOptions service_options;
    service_options.num_threads = 2;
    service_options.num_shards = shards;
    Result<std::unique_ptr<GbdaService>> service =
        GbdaService::Create(&empty_db, &empty_index, service_options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    for (GbdaVariant variant : kAllVariants) {
      for (bool prefilter : {false, true}) {
        const std::string label =
            "service shards=" + std::to_string(shards) +
            " variant=" + std::to_string(static_cast<int>(variant)) +
            " prefilter=" + std::to_string(prefilter);
        ExpectEmptyResult((*service)->Query(dataset_->queries[0],
                                            MakeOptions(variant, prefilter)),
                          label);
        ExpectEmptyResult(
            (*service)->QueryTopK(dataset_->queries[0], 3,
                                  MakeOptions(variant, prefilter)),
            label + " topk");
      }
    }
  }
}

TEST_F(DegenerateCorpusTest, ZeroGraphArenaRoundTripsAndServes) {
  const GbdaIndex empty_index = EmptyCompactView();
  const std::string path = ::testing::TempDir() + "/degenerate_empty.v3";
  // The empty index is the one stale-prior exception the writer admits: its
  // Lambda2 cannot be refit over zero graphs.
  ASSERT_TRUE(WriteArenaFile(empty_index, path).ok());

  GbdaIndexView::OpenOptions verify;
  verify.verify_checksums = true;
  Result<GbdaIndexView> view = GbdaIndexView::Open(path, verify);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->num_graphs(), 0u);
  EXPECT_EQ(view->total_branches(), 0u);
  EXPECT_EQ(view->total_labels(), 0u);

  GraphDatabase empty_db;
  GbdaSearch search(&empty_db, &*view);
  for (GbdaVariant variant : kAllVariants) {
    for (bool prefilter : {false, true}) {
      const std::string label =
          "view variant=" + std::to_string(static_cast<int>(variant)) +
          " prefilter=" + std::to_string(prefilter);
      ExpectEmptyResult(search.Query(dataset_->queries[0],
                                     MakeOptions(variant, prefilter)),
                        label);
    }
  }
  for (size_t shards : {size_t{1}, size_t{2}, size_t{7}}) {
    ServiceOptions service_options;
    service_options.num_threads = 2;
    service_options.num_shards = shards;
    Result<std::unique_ptr<GbdaService>> service =
        GbdaService::Create(&empty_db, &*view, service_options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    for (GbdaVariant variant : kAllVariants) {
      ExpectEmptyResult(
          (*service)->Query(dataset_->queries[0],
                            MakeOptions(variant, /*prefilter=*/true)),
          "view service shards=" + std::to_string(shards));
    }
  }

  // The empty arena materializes back into an owning empty index.
  Result<GbdaIndex> materialized = view->Materialize();
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  EXPECT_EQ(materialized->num_graphs(), 0u);
}

TEST_F(DegenerateCorpusTest, DynamicServiceSurvivesFullRetirement) {
  GraphDatabase db;
  // Rebuild a private corpus so the service can own it.
  Result<GeneratedDataset> ds = [] {
    DatasetProfile profile = FingerprintProfile(0.02);
    profile.seed = 13;
    return GenerateDataset(profile);
  }();
  ASSERT_TRUE(ds.ok());
  GbdaIndexOptions index_options;
  index_options.tau_max = 6;
  index_options.gbd_prior.num_sample_pairs = 200;
  DynamicServiceOptions options;
  options.service.num_threads = 2;
  options.service.num_shards = 3;
  Result<std::unique_ptr<DynamicGbdaService>> service =
      DynamicGbdaService::Create(std::move(ds->db), index_options, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  std::vector<size_t> all_ids((*service)->num_live());
  for (size_t i = 0; i < all_ids.size(); ++i) all_ids[i] = i;
  ASSERT_TRUE((*service)->RemoveGraphs(all_ids).ok());
  EXPECT_EQ((*service)->num_live(), 0u);

  for (GbdaVariant variant : kAllVariants) {
    for (bool prefilter : {false, true}) {
      const std::string label =
          "dynamic variant=" + std::to_string(static_cast<int>(variant)) +
          " prefilter=" + std::to_string(prefilter);
      ExpectEmptyResult((*service)->Query(ds->queries[0],
                                          MakeOptions(variant, prefilter)),
                        label);
      ExpectEmptyResult((*service)->QueryTopK(
                            ds->queries[0], 4, MakeOptions(variant, prefilter)),
                        label + " topk");
    }
  }

  // The corpus comes back to life: adds after full retirement serve again.
  Graph g;
  g.AddVertex(0);
  Result<size_t> added = (*service)->AddGraph(std::move(g));
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ((*service)->num_live(), 1u);
  Result<SearchResult> after =
      (*service)->Query(ds->queries[0], MakeOptions(GbdaVariant::kStandard,
                                                    /*prefilter=*/false));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->candidates_evaluated, 1u);
}

}  // namespace
}  // namespace gbda
