#include "math/eigen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace gbda {
namespace {

DenseMatrix RandomSymmetric(size_t n, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = rng.Uniform(-1.0, 1.0);
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  return a;
}

TEST(JacobiTest, RejectsNonSquare) {
  DenseMatrix a(2, 3);
  std::vector<double> evals;
  std::vector<std::vector<double>> evecs;
  EXPECT_FALSE(JacobiEigenSymmetric(a, &evals, &evecs).ok());
}

TEST(JacobiTest, DiagonalMatrix) {
  DenseMatrix a(3, 3);
  a.At(0, 0) = 3.0;
  a.At(1, 1) = 1.0;
  a.At(2, 2) = 2.0;
  std::vector<double> evals;
  std::vector<std::vector<double>> evecs;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &evals, &evecs).ok());
  EXPECT_NEAR(evals[0], 3.0, 1e-12);
  EXPECT_NEAR(evals[1], 2.0, 1e-12);
  EXPECT_NEAR(evals[2], 1.0, 1e-12);
}

TEST(JacobiTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  DenseMatrix a(2, 2);
  a.At(0, 0) = 2.0;
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0;
  a.At(1, 1) = 2.0;
  std::vector<double> evals;
  std::vector<std::vector<double>> evecs;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &evals, &evecs).ok());
  EXPECT_NEAR(evals[0], 3.0, 1e-10);
  EXPECT_NEAR(evals[1], 1.0, 1e-10);
}

TEST(JacobiTest, ResidualAndOrthogonality) {
  const size_t n = 12;
  DenseMatrix a = RandomSymmetric(n, 99);
  std::vector<double> evals;
  std::vector<std::vector<double>> evecs;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &evals, &evecs).ok());
  // A v = lambda v for every pair.
  for (size_t e = 0; e < n; ++e) {
    const std::vector<double> av = a.MatVec(evecs[e]);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], evals[e] * evecs[e][i], 1e-8);
    }
  }
  // Eigenvectors pairwise orthonormal.
  for (size_t e1 = 0; e1 < n; ++e1) {
    for (size_t e2 = e1; e2 < n; ++e2) {
      double dot = 0.0;
      for (size_t i = 0; i < n; ++i) dot += evecs[e1][i] * evecs[e2][i];
      EXPECT_NEAR(dot, e1 == e2 ? 1.0 : 0.0, 1e-9);
    }
  }
  // Eigenvalues descending.
  for (size_t e = 1; e < n; ++e) EXPECT_GE(evals[e - 1], evals[e] - 1e-12);
}

TEST(JacobiTest, TraceEqualsEigenvalueSum) {
  const size_t n = 8;
  DenseMatrix a = RandomSymmetric(n, 123);
  double trace = 0.0;
  for (size_t i = 0; i < n; ++i) trace += a.At(i, i);
  std::vector<double> evals;
  std::vector<std::vector<double>> evecs;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &evals, &evecs).ok());
  double sum = 0.0;
  for (double ev : evals) sum += ev;
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(PowerIterationTest, MatchesJacobiLeadingEigenvalue) {
  const size_t n = 10;
  // A positive matrix: the Perron eigenvector is unique and positive.
  Rng rng(7);
  DenseMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = rng.Uniform(0.1, 1.0);
      a.At(i, j) = v;
      a.At(j, i) = v;
    }
  }
  std::vector<double> evals;
  std::vector<std::vector<double>> evecs;
  ASSERT_TRUE(JacobiEigenSymmetric(a, &evals, &evecs).ok());

  std::vector<double> lead;
  Result<double> lambda = PowerIterationLeading(
      [&a](const std::vector<double>& x) { return a.MatVec(x); }, n, &lead,
      2000, 1e-12);
  ASSERT_TRUE(lambda.ok());
  EXPECT_NEAR(*lambda, evals[0], 1e-6);
  // Same direction up to sign.
  double dot = 0.0;
  for (size_t i = 0; i < n; ++i) dot += lead[i] * evecs[0][i];
  EXPECT_NEAR(std::fabs(dot), 1.0, 1e-5);
}

TEST(PowerIterationTest, BipartiteAdjacencyDoesNotOscillate) {
  // Path a-b: eigenvalues +1/-1; the +1 shift breaks the tie.
  DenseMatrix a(2, 2);
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0;
  std::vector<double> v;
  Result<double> lambda = PowerIterationLeading(
      [&a](const std::vector<double>& x) { return a.MatVec(x); }, 2, &v);
  ASSERT_TRUE(lambda.ok());
  EXPECT_NEAR(*lambda, 1.0, 1e-6);
  EXPECT_NEAR(v[0], v[1], 1e-6);
}

TEST(PowerIterationTest, ZeroOperator) {
  std::vector<double> v;
  Result<double> lambda = PowerIterationLeading(
      [](const std::vector<double>& x) {
        return std::vector<double>(x.size(), 0.0);
      },
      3, &v);
  ASSERT_TRUE(lambda.ok());
  EXPECT_NEAR(*lambda, 0.0, 1e-9);
}

TEST(PowerIterationTest, EmptyOperatorFails) {
  std::vector<double> v;
  EXPECT_FALSE(PowerIterationLeading(
                   [](const std::vector<double>& x) { return x; }, 0, &v)
                   .ok());
}

}  // namespace
}  // namespace gbda
