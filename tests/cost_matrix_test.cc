#include "baselines/cost_matrix.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace gbda {
namespace {

TEST(VertexProfileTest, ExtractsSortedIncidentLabels) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const auto profiles = BuildVertexProfiles(p.g1);
  ASSERT_EQ(profiles.size(), 3u);
  // v1 = A with incident {y, y}.
  EXPECT_EQ(profiles[0].label, p.A);
  EXPECT_EQ(profiles[0].incident, (std::vector<LabelId>{p.y, p.y}));
  // v2 = C with incident {y, z}.
  EXPECT_EQ(profiles[1].label, p.C);
  EXPECT_EQ(profiles[1].incident, (std::vector<LabelId>{p.y, p.z}));
}

TEST(VertexProfileTest, SkipsVirtualEdges) {
  Graph g = Graph::WithVertices(2, 1);
  ASSERT_TRUE(g.AddEdge(0, 1, kVirtualLabel).ok());
  const auto profiles = BuildVertexProfiles(g);
  EXPECT_TRUE(profiles[0].incident.empty());
}

TEST(MultisetEditDistanceTest, Basics) {
  EXPECT_EQ(MultisetEditDistance({}, {}), 0u);
  EXPECT_EQ(MultisetEditDistance({1, 2}, {1, 2}), 0u);
  EXPECT_EQ(MultisetEditDistance({1, 2}, {1, 3}), 1u);
  EXPECT_EQ(MultisetEditDistance({1, 1, 2}, {1}), 2u);
  EXPECT_EQ(MultisetEditDistance({}, {4, 5, 6}), 3u);
  // Multiset semantics: duplicates matter.
  EXPECT_EQ(MultisetEditDistance({7, 7}, {7}), 1u);
}

TEST(CostMatrixTest, ShapeAndBlocks) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const auto p1 = BuildVertexProfiles(p.g1);  // 3 vertices
  const auto p2 = BuildVertexProfiles(p.g2);  // 4 vertices
  const DenseMatrix cost = BuildAssignmentCostMatrix(p1, p2, 1.0);
  ASSERT_EQ(cost.rows(), 7u);
  ASSERT_EQ(cost.cols(), 7u);

  // Substitution v2(C;{y,z}) -> u4(C;{y,z}) is free.
  EXPECT_DOUBLE_EQ(cost.At(1, 3), 0.0);
  // Deletion diagonal: 1 + degree.
  EXPECT_DOUBLE_EQ(cost.At(0, 4 + 0), 1.0 + 2.0);
  // Deletion off-diagonal forbidden (large).
  EXPECT_GT(cost.At(0, 4 + 1), 1e8);
  // Insertion diagonal: 1 + degree of u1 (2 edges).
  EXPECT_DOUBLE_EQ(cost.At(3 + 0, 0), 1.0 + 2.0);
  // Dummy-dummy block zero.
  EXPECT_DOUBLE_EQ(cost.At(3 + 2, 4 + 1), 0.0);
}

TEST(CostMatrixTest, EdgeFactorScalesEdgeTerms) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const auto p1 = BuildVertexProfiles(p.g1);
  const auto p2 = BuildVertexProfiles(p.g2);
  const DenseMatrix full = BuildAssignmentCostMatrix(p1, p2, 1.0);
  const DenseMatrix half = BuildAssignmentCostMatrix(p1, p2, 0.5);
  // v1(A;{y,y}) -> u3(A;{x}): labels equal, multiset distance = 2.
  EXPECT_DOUBLE_EQ(full.At(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(half.At(0, 2), 1.0);
  // Deletion diagonals scale as well: 1 + factor * deg.
  EXPECT_DOUBLE_EQ(half.At(0, 4 + 0), 2.0);
}

}  // namespace
}  // namespace gbda
