#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"

namespace gbda {
namespace {

TEST(GraphIoTest, RoundTripPaperGraphs) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  GraphDatabase db = std::move(p.db);
  db.Add(p.g1);
  db.Add(p.g2);

  std::ostringstream out;
  ASSERT_TRUE(WriteTransactionStream(db, out).ok());
  std::istringstream in(out.str());
  Result<GraphDatabase> loaded = ReadTransactionStream(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  // Same structure modulo label-id renumbering; compare re-serialisations.
  std::ostringstream out2;
  ASSERT_TRUE(WriteTransactionStream(*loaded, out2).ok());
  EXPECT_EQ(out.str(), out2.str());
}

TEST(GraphIoTest, ParsesHandWrittenInput) {
  std::istringstream in(
      "# comment line\n"
      "t # 0\n"
      "v 0 C\n"
      "v 1 N\n"
      "\n"
      "e 0 1 single\n"
      "t # 1\n"
      "v 0 O\n");
  Result<GraphDatabase> db = ReadTransactionStream(in);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(db->size(), 2u);
  EXPECT_EQ(db->graph(0).num_vertices(), 2u);
  EXPECT_EQ(db->graph(0).num_edges(), 1u);
  EXPECT_EQ(db->graph(1).num_vertices(), 1u);
  EXPECT_EQ(db->graph(1).num_edges(), 0u);
  EXPECT_EQ(*db->vertex_labels().Name(db->graph(0).VertexLabel(0)), "C");
}

TEST(GraphIoTest, RejectsVertexBeforeHeader) {
  std::istringstream in("v 0 C\n");
  Result<GraphDatabase> db = ReadTransactionStream(in);
  EXPECT_FALSE(db.ok());
}

TEST(GraphIoTest, RejectsNonDenseVertexIndices) {
  std::istringstream in("t # 0\nv 0 C\nv 2 N\n");
  EXPECT_FALSE(ReadTransactionStream(in).ok());
}

TEST(GraphIoTest, RejectsMalformedEdge) {
  std::istringstream in("t # 0\nv 0 C\nv 1 N\ne 0 single\n");
  EXPECT_FALSE(ReadTransactionStream(in).ok());
}

TEST(GraphIoTest, RejectsDuplicateEdge) {
  std::istringstream in("t # 0\nv 0 C\nv 1 N\ne 0 1 a\ne 1 0 b\n");
  Result<GraphDatabase> db = ReadTransactionStream(in);
  EXPECT_FALSE(db.ok());
  // The error message points at the offending line.
  EXPECT_NE(db.status().message().find("line 5"), std::string::npos);
}

TEST(GraphIoTest, RejectsUnknownRecord) {
  std::istringstream in("t # 0\nq nonsense\n");
  EXPECT_FALSE(ReadTransactionStream(in).ok());
}

TEST(GraphIoTest, FileRoundTrip) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  GraphDatabase db = std::move(p.db);
  db.Add(p.g1);
  const std::string path = ::testing::TempDir() + "/gbda_io_test.txt";
  ASSERT_TRUE(WriteTransactionFile(db, path).ok());
  Result<GraphDatabase> loaded = ReadTransactionFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->graph(0).num_edges(), 3u);
}

TEST(GraphIoTest, MissingFileFails) {
  Result<GraphDatabase> db = ReadTransactionFile("/nonexistent/path/x.txt");
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace gbda
