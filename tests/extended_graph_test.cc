#include "core/extended_graph.h"

#include <gtest/gtest.h>

#include "baselines/astar_ged.h"
#include "common/rng.h"
#include "core/branch.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gbda {
namespace {

TEST(ExtendedGraphTest, ExtensionMakesCompleteGraph) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const Graph ext = ExtendGraph(p.g1, 1);  // |V| = 4, like G1^{1} in Figure 2
  EXPECT_EQ(ext.num_vertices(), 4u);
  EXPECT_EQ(ext.num_edges(), 6u);  // complete K4
  // The added vertex carries the virtual label.
  EXPECT_EQ(ext.VertexLabel(3), kVirtualLabel);
  // Original edges keep their labels; the new ones are virtual.
  EXPECT_EQ(*ext.EdgeLabel(0, 1), p.y);
  EXPECT_EQ(*ext.EdgeLabel(0, 3), kVirtualLabel);
}

TEST(ExtendedGraphTest, ExtensionWithZeroAddsNoVertices) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const Graph ext = ExtendGraph(p.g2, 0);
  EXPECT_EQ(ext.num_vertices(), p.g2.num_vertices());
  EXPECT_EQ(ext.num_edges(), 6u);  // complete K4
}

TEST(ExtendedGraphTest, Theorem2GbdInvariantUnderExtension) {
  // GBD(G1, G2) = GBD(G'1, G'2) — Theorem 2 on the Figure 1 pair.
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const Graph ext1 = ExtendGraph(p.g1, 1);
  const Graph ext2 = ExtendGraph(p.g2, 0);
  EXPECT_EQ(Gbd(p.g1, p.g2), Gbd(ext1, ext2));
  EXPECT_EQ(Gbd(ext1, ext2), 3u);
}

TEST(ExtendedGraphTest, Theorem2OnRandomPairs) {
  Rng rng(21);
  GeneratorOptions opts;
  opts.num_vertices = 7;
  for (int trial = 0; trial < 10; ++trial) {
    opts.num_vertices = 4 + static_cast<size_t>(rng.UniformInt(0, 3));
    Result<Graph> a = GenerateConnectedGraph(opts, &rng);
    opts.num_vertices = 4 + static_cast<size_t>(rng.UniformInt(0, 3));
    Result<Graph> b = GenerateConnectedGraph(opts, &rng);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    const Graph* small = a->num_vertices() <= b->num_vertices() ? &*a : &*b;
    const Graph* big = a->num_vertices() <= b->num_vertices() ? &*b : &*a;
    const Graph ext_small =
        ExtendGraph(*small, big->num_vertices() - small->num_vertices());
    const Graph ext_big = ExtendGraph(*big, 0);
    EXPECT_EQ(Gbd(*small, *big), Gbd(ext_small, ext_big)) << "trial " << trial;
  }
}

TEST(ExtendedGraphTest, Theorem1RelabelOnlyGedEqualsOriginalGed) {
  // Section IV: on extended graphs every minimal sequence is relabel-only,
  // and GED(G'1, G'2) = GED(G1, G2). Verified exhaustively on the paper pair.
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const Graph ext1 = ExtendGraph(p.g1, 1);
  const Graph ext2 = ExtendGraph(p.g2, 0);
  Result<size_t> relabel_ged = RelabelOnlyGedExtended(ext1, ext2);
  ASSERT_TRUE(relabel_ged.ok()) << relabel_ged.status().ToString();
  Result<int64_t> exact = ExactGedValue(p.g1, p.g2);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(static_cast<int64_t>(*relabel_ged), *exact);
  EXPECT_EQ(*exact, 3);  // Example 1
}

TEST(ExtendedGraphTest, Theorem1OnExample4Pair) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  const Graph ext1 = ExtendGraph(p.ex4_g1, 0);
  const Graph ext2 = ExtendGraph(p.ex4_g2, 0);
  Result<size_t> relabel_ged = RelabelOnlyGedExtended(ext1, ext2);
  ASSERT_TRUE(relabel_ged.ok());
  EXPECT_EQ(*relabel_ged, 2u);  // Example 4: GED = 2
  Result<int64_t> exact = ExactGedValue(p.ex4_g1, p.ex4_g2);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, 2);
}

TEST(ExtendedGraphTest, Theorem1OnRandomSmallPairs) {
  Rng rng(31);
  GeneratorOptions opts;
  opts.num_vertex_labels = 2;
  opts.num_edge_labels = 2;
  for (int trial = 0; trial < 6; ++trial) {
    opts.num_vertices = 3 + static_cast<size_t>(rng.UniformInt(0, 2));
    Result<Graph> a = GenerateConnectedGraph(opts, &rng);
    opts.num_vertices = 3 + static_cast<size_t>(rng.UniformInt(0, 2));
    Result<Graph> b = GenerateConnectedGraph(opts, &rng);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    const Graph* small = a->num_vertices() <= b->num_vertices() ? &*a : &*b;
    const Graph* big = a->num_vertices() <= b->num_vertices() ? &*b : &*a;
    const Graph ext_small =
        ExtendGraph(*small, big->num_vertices() - small->num_vertices());
    const Graph ext_big = ExtendGraph(*big, 0);
    Result<size_t> relabel_ged = RelabelOnlyGedExtended(ext_small, ext_big);
    Result<int64_t> exact = ExactGedValue(*small, *big);
    ASSERT_TRUE(relabel_ged.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_EQ(static_cast<int64_t>(*relabel_ged), *exact) << "trial " << trial;
  }
}

TEST(ExtendedGraphTest, RelabelOnlyGedRejectsSizeMismatch) {
  testutil::PaperGraphs p = testutil::MakePaperGraphs();
  EXPECT_FALSE(RelabelOnlyGedExtended(ExtendGraph(p.g1, 0), ExtendGraph(p.g2, 0))
                   .ok());
}

TEST(ExtendedGraphTest, RelabelOnlyGedRejectsLargeGraphs) {
  Graph big1 = Graph::WithVertices(11, 1);
  Graph big2 = Graph::WithVertices(11, 1);
  Result<size_t> r = RelabelOnlyGedExtended(ExtendGraph(big1, 0),
                                            ExtendGraph(big2, 0));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace gbda
