#include "math/log_combinatorics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gbda {
namespace {

TEST(LogFactorialTest, SmallValues) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-10);
  EXPECT_TRUE(std::isinf(LogFactorial(-1)));
}

TEST(LogFactorialTest, LargeValuesMatchLgamma) {
  EXPECT_NEAR(LogFactorial(100000), std::lgamma(100001.0), 1e-8);
}

TEST(LogBinomialTest, KnownValues) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogBinomial(10, 5), std::log(252.0), 1e-11);
  EXPECT_DOUBLE_EQ(LogBinomial(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogBinomial(7, 7), 0.0);
  EXPECT_TRUE(std::isinf(LogBinomial(5, 6)));
  EXPECT_TRUE(std::isinf(LogBinomial(5, -1)));
}

TEST(LogBinomialTest, Symmetry) {
  for (int64_t n = 1; n <= 60; ++n) {
    for (int64_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(LogBinomial(n, k), LogBinomial(n, n - k), 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(LogBinomialTest, PascalIdentity) {
  // C(n,k) = C(n-1,k-1) + C(n-1,k), checked in linear space for moderate n.
  for (int64_t n = 2; n <= 40; ++n) {
    for (int64_t k = 1; k < n; ++k) {
      const double lhs = std::exp(LogBinomial(n, k));
      const double rhs =
          std::exp(LogBinomial(n - 1, k - 1)) + std::exp(LogBinomial(n - 1, k));
      EXPECT_NEAR(lhs / rhs, 1.0, 1e-9);
    }
  }
}

TEST(LogBinomialRealTest, AgreesWithIntegerVersion) {
  EXPECT_NEAR(LogBinomialReal(10.0, 4.0), LogBinomial(10, 4), 1e-10);
  EXPECT_NEAR(LogBinomialReal(5e9, 30.0), LogBinomial(5000000000LL, 30), 1e-6);
  EXPECT_TRUE(std::isinf(LogBinomialReal(5.0, 6.0)));
  EXPECT_TRUE(std::isinf(LogBinomialReal(5.0, -0.5)));
}

TEST(DLogBinomialDxTest, MatchesFiniteDifference) {
  for (double a : {20.0, 500.0, 1e6}) {
    // lgamma(a+1) ~ a ln a, so the finite difference loses roughly
    // eps * a ln a / h absolute accuracy; scale h with a to compensate.
    const double h = a <= 1000.0 ? 1e-6 : 1e-3;
    const double tol = a <= 1000.0 ? 1e-5 : 1e-4;
    for (double x : {1.0, 3.5, 10.0}) {
      const double analytic = DLogBinomialDx(a, x);
      const double numeric =
          (LogBinomialReal(a, x + h) - LogBinomialReal(a, x - h)) / (2 * h);
      EXPECT_NEAR(analytic, numeric, tol) << "a=" << a << " x=" << x;
    }
  }
}

TEST(HarmonicTest, SmallValues) {
  EXPECT_DOUBLE_EQ(HarmonicNumber(0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(1), 1.0);
  EXPECT_NEAR(HarmonicNumber(2), 1.5, 1e-15);
  EXPECT_NEAR(HarmonicNumber(4), 25.0 / 12.0, 1e-14);
}

TEST(HarmonicTest, LargeValuesMatchAsymptotic) {
  // H(n) ~ ln n + gamma + 1/(2n)
  const int64_t n = 10'000'000;
  const double expected = std::log(static_cast<double>(n)) + kEulerGamma +
                          0.5 / static_cast<double>(n);
  EXPECT_NEAR(HarmonicNumber(n), expected, 1e-9);
}

TEST(HarmonicTest, CacheBoundaryIsSeamless) {
  // Values straddling the internal cache boundary must be consistent.
  const int64_t n = (1 << 16) - 1;
  EXPECT_NEAR(HarmonicNumber(n + 1),
              HarmonicNumber(n) + 1.0 / static_cast<double>(n + 1), 1e-10);
}

TEST(DigammaTest, KnownValues) {
  // psi(1) = -gamma, psi(2) = 1 - gamma, psi(1/2) = -gamma - 2 ln 2.
  EXPECT_NEAR(Digamma(1.0), -kEulerGamma, 1e-10);
  EXPECT_NEAR(Digamma(2.0), 1.0 - kEulerGamma, 1e-10);
  EXPECT_NEAR(Digamma(0.5), -kEulerGamma - 2.0 * std::log(2.0), 1e-10);
}

TEST(DigammaTest, RecurrenceHolds) {
  for (double x : {0.3, 1.7, 4.2, 25.0, 1000.0}) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-10) << "x=" << x;
  }
}

TEST(DigammaTest, RelatesToHarmonic) {
  // psi(n+1) = H(n) - gamma.
  for (int64_t n : {1, 5, 100, 10000}) {
    EXPECT_NEAR(Digamma(static_cast<double>(n) + 1.0),
                HarmonicNumber(n) - kEulerGamma, 1e-10);
  }
}

TEST(ExpSafeTest, MapsNegInfToZero) {
  EXPECT_EQ(ExpSafe(NegInf()), 0.0);
  EXPECT_DOUBLE_EQ(ExpSafe(0.0), 1.0);
  EXPECT_NEAR(ExpSafe(1.0), std::exp(1.0), 1e-14);
}

TEST(LogAddTest, Basics) {
  EXPECT_NEAR(LogAdd(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_DOUBLE_EQ(LogAdd(NegInf(), 1.5), 1.5);
  EXPECT_DOUBLE_EQ(LogAdd(1.5, NegInf()), 1.5);
  // Extreme magnitude difference: result equals the larger argument.
  EXPECT_DOUBLE_EQ(LogAdd(0.0, -800.0), 0.0);
}

}  // namespace
}  // namespace gbda
