#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <vector>

namespace gbda {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ReturnsTaskValues) {
  ThreadPool pool(2);
  std::future<int> f = pool.Submit([]() { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ZeroThreadsFallsBackToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::future<int> f = pool.Submit([]() { return 1; });
  EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.Submit([]() { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker that ran the throwing task keeps serving.
  std::future<int> g = pool.Submit([]() { return 7; });
  EXPECT_EQ(g.get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsPendingQueue) {
  std::atomic<int> counter{0};
  constexpr int kTasks = 64;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&counter]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++counter;
      });
    }
    // Destruction must wait for all kTasks, not just the in-flight ones.
  }
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, WorkerIndexIsStableAndInRange) {
  static constexpr size_t kWorkers = 3;
  ThreadPool pool(kWorkers);
  EXPECT_EQ(pool.CurrentWorkerIndex(), ThreadPool::kNotAWorker);
  std::mutex mutex;
  std::set<size_t> seen;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&mutex, &seen, &pool]() {
      const size_t index = pool.CurrentWorkerIndex();
      ASSERT_LT(index, kWorkers);
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(index);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(seen.size(), 1u);
  for (size_t index : seen) EXPECT_LT(index, kWorkers);
}

TEST(ThreadPoolTest, WorkerIndexIsPoolLocal) {
  // Two pools alive at once: a worker of pool B must never report a worker
  // index for pool A — per-worker state keyed by that index (e.g. the
  // PosteriorEngine replicas of a service) would otherwise be shared across
  // B's threads. Regression test for the pool-agnostic TLS slot.
  ThreadPool pool_a(2);
  ThreadPool pool_b(3);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool_b.Submit([&pool_a, &pool_b]() {
      EXPECT_EQ(pool_a.CurrentWorkerIndex(), ThreadPool::kNotAWorker);
      EXPECT_LT(pool_b.CurrentWorkerIndex(), pool_b.size());
    }));
    futures.push_back(pool_a.Submit([&pool_a, &pool_b]() {
      EXPECT_EQ(pool_b.CurrentWorkerIndex(), ThreadPool::kNotAWorker);
      EXPECT_LT(pool_a.CurrentWorkerIndex(), pool_a.size());
    }));
    // Nested: a task running on B that submits to A and waits must still see
    // pool-correct indices on both sides.
    futures.push_back(pool_b.Submit([&pool_a, &pool_b]() {
      EXPECT_LT(pool_b.CurrentWorkerIndex(), pool_b.size());
      pool_a
          .Submit([&pool_a, &pool_b]() {
            EXPECT_LT(pool_a.CurrentWorkerIndex(), pool_a.size());
            EXPECT_EQ(pool_b.CurrentWorkerIndex(), ThreadPool::kNotAWorker);
          })
          .get();
    }));
  }
  for (auto& f : futures) f.get();
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([&order, i]() { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

}  // namespace
}  // namespace gbda
