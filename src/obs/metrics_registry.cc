#include "obs/metrics_registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace gbda::obs {

namespace {

uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
}

// Counters and bucket counts are integral; gauges may not be. Emit integral
// doubles without a fractional part so exposition stays exact and stable.
void AppendNumber(std::string* out, double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value))) {
    AppendF(out, "%" PRId64, static_cast<int64_t>(value));
  } else {
    AppendF(out, "%.17g", value);
  }
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      AppendF(out, "\\u%04x", c);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

// `name{existing,le="..."}` — merges the point's own labels with the le label.
void AppendBucketSeries(std::string* out, const std::string& name,
                        const std::string& labels, const char* le,
                        uint64_t cumulative) {
  out->append(name);
  out->append("_bucket{");
  if (!labels.empty()) {
    out->append(labels);
    out->push_back(',');
  }
  AppendF(out, "le=\"%s\"} %" PRIu64 "\n", le, cumulative);
}

void RenderHistogramText(std::string* out, const std::string& name,
                         const MetricPoint& point) {
  const Histogram& h = point.histogram;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.buckets()[i] == 0) continue;
    cumulative += h.buckets()[i];
    char le[32];
    std::snprintf(le, sizeof(le), "%" PRIu64, Histogram::BucketUpperBound(i));
    AppendBucketSeries(out, name, point.labels, le, cumulative);
  }
  AppendBucketSeries(out, name, point.labels, "+Inf", h.count());
  const std::string suffix_labels = point.labels.empty() ? "" : "{" + point.labels + "}";
  AppendF(out, "%s_sum%s %" PRIu64 "\n", name.c_str(), suffix_labels.c_str(), h.sum());
  AppendF(out, "%s_count%s %" PRIu64 "\n", name.c_str(), suffix_labels.c_str(), h.count());
}

}  // namespace

void Gauge::Set(double value) { bits_.store(DoubleBits(value), std::memory_order_relaxed); }

void Gauge::Add(double delta) {
  uint64_t seen = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(seen, DoubleBits(BitsDouble(seen) + delta),
                                      std::memory_order_relaxed)) {
  }
}

double Gauge::Value() const { return BitsDouble(bits_.load(std::memory_order_relaxed)); }

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(const std::string& name,
                                                      const std::string& help,
                                                      const std::string& labels,
                                                      MetricType type) {
  const std::string key = name + "\x1f" + labels;
  MutexLock lock(&mutex_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    return it->second->type == type ? it->second : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->labels = labels;
  entry->type = type;
  switch (type) {
    case MetricType::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry->histogram = std::make_unique<ConcurrentHistogram>();
      break;
  }
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  by_key_[key] = raw;
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const std::string& help,
                                     const std::string& labels) {
  Entry* entry = FindOrCreate(name, help, labels, MetricType::kCounter);
  return entry == nullptr ? nullptr : entry->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const std::string& help,
                                 const std::string& labels) {
  Entry* entry = FindOrCreate(name, help, labels, MetricType::kGauge);
  return entry == nullptr ? nullptr : entry->gauge.get();
}

ConcurrentHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                   const std::string& help,
                                                   const std::string& labels) {
  Entry* entry = FindOrCreate(name, help, labels, MetricType::kHistogram);
  return entry == nullptr ? nullptr : entry->histogram.get();
}

uint64_t MetricsRegistry::AddCollector(Collector collector) {
  MutexLock lock(&mutex_);
  const uint64_t id = next_collector_id_++;
  collectors_[id] = std::move(collector);
  return id;
}

void MetricsRegistry::RemoveCollector(uint64_t id) {
  MutexLock lock(&mutex_);
  collectors_.erase(id);
}

std::vector<MetricFamily> MetricsRegistry::Snapshot() const {
  std::vector<MetricFamily> families;
  std::vector<Collector> collectors;
  {
    MutexLock lock(&mutex_);
    for (const auto& [id, collector] : collectors_) {
      (void)id;
      collectors.push_back(collector);
    }
    for (const auto& entry : entries_) {
      MetricPoint point;
      point.labels = entry->labels;
      switch (entry->type) {
        case MetricType::kCounter:
          point.value = static_cast<double>(entry->counter->Value());
          break;
        case MetricType::kGauge:
          point.value = entry->gauge->Value();
          break;
        case MetricType::kHistogram:
          point.histogram = entry->histogram->Snapshot();
          break;
      }
      auto it = std::find_if(families.begin(), families.end(),
                             [&](const MetricFamily& f) { return f.name == entry->name; });
      if (it == families.end()) {
        families.push_back(MetricFamily{entry->name, entry->help, entry->type, {}});
        it = std::prev(families.end());
      }
      it->points.push_back(std::move(point));
    }
  }
  // Collectors run outside the registry lock: they snapshot component-owned
  // counters and may take their own locks.
  for (const Collector& collector : collectors) collector(&families);
  std::stable_sort(families.begin(), families.end(),
                   [](const MetricFamily& a, const MetricFamily& b) { return a.name < b.name; });
  // Coalesce same-name families (e.g. two collectors emitting different label
  // sets of one family) so exposition has a single TYPE header per name.
  std::vector<MetricFamily> merged;
  for (MetricFamily& family : families) {
    if (!merged.empty() && merged.back().name == family.name) {
      for (MetricPoint& point : family.points) {
        merged.back().points.push_back(std::move(point));
      }
    } else {
      merged.push_back(std::move(family));
    }
  }
  return merged;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::string out;
  for (const MetricFamily& family : Snapshot()) {
    if (!family.help.empty()) {
      AppendF(&out, "# HELP %s %s\n", family.name.c_str(), family.help.c_str());
    }
    AppendF(&out, "# TYPE %s %s\n", family.name.c_str(), TypeName(family.type));
    for (const MetricPoint& point : family.points) {
      if (family.type == MetricType::kHistogram) {
        RenderHistogramText(&out, family.name, point);
        continue;
      }
      out.append(family.name);
      if (!point.labels.empty()) {
        out.push_back('{');
        out.append(point.labels);
        out.push_back('}');
      }
      out.push_back(' ');
      AppendNumber(&out, point.value);
      out.push_back('\n');
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::string out = "{";
  bool first_family = true;
  for (const MetricFamily& family : Snapshot()) {
    if (!first_family) out.push_back(',');
    first_family = false;
    AppendJsonString(&out, family.name);
    out.append(":{\"type\":\"");
    out.append(TypeName(family.type));
    out.append("\",\"points\":[");
    bool first_point = true;
    for (const MetricPoint& point : family.points) {
      if (!first_point) out.push_back(',');
      first_point = false;
      out.append("{\"labels\":");
      AppendJsonString(&out, point.labels);
      if (family.type == MetricType::kHistogram) {
        const Histogram& h = point.histogram;
        AppendF(&out,
                ",\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
                ",\"max\":%" PRIu64 ",\"mean\":%.6f,\"p50\":%" PRIu64 ",\"p99\":%" PRIu64
                ",\"p999\":%" PRIu64 "}",
                h.count(), h.sum(), h.min(), h.max(), h.Mean(), h.Quantile(0.50),
                h.Quantile(0.99), h.Quantile(0.999));
      } else {
        out.append(",\"value\":");
        AppendNumber(&out, point.value);
        out.push_back('}');
      }
    }
    out.append("]}");
  }
  out.push_back('}');
  return out;
}

}  // namespace gbda::obs
