#include "obs/exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace gbda::obs {

namespace {

// Reads one request's header block (terminated by a blank line) with a short
// poll-based deadline so a stalled client cannot wedge the accept loop.
bool ReadRequest(int fd, std::string* request) {
  char buf[1024];
  for (int rounds = 0; rounds < 50; ++rounds) {
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) return false;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    request->append(buf, static_cast<size_t>(n));
    if (request->find("\r\n\r\n") != std::string::npos ||
        request->find("\n\n") != std::string::npos) {
      return true;
    }
    if (request->size() > 8192) return false;
  }
  return false;
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

std::string HttpResponse(int code, const char* reason, const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

Result<std::unique_ptr<MetricsExporter>> MetricsExporter::Start(
    const MetricsRegistry* registry, const ExporterOptions& options) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd);
    return Status::InvalidArgument("bad metrics host: " + options.host);
  }
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Status::IOError(std::string("bind metrics port: ") + std::strerror(errno));
    ::close(listen_fd);
    return status;
  }
  if (::listen(listen_fd, 16) < 0) {
    const Status status = Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr), &addr_len) < 0) {
    const Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(listen_fd);
    return status;
  }
  int wake[2];
  if (::pipe(wake) < 0) {
    const Status status = Status::IOError(std::string("pipe: ") + std::strerror(errno));
    ::close(listen_fd);
    return status;
  }
  return std::unique_ptr<MetricsExporter>(new MetricsExporter(
      registry, listen_fd, wake[0], wake[1], ntohs(addr.sin_port)));
}

MetricsExporter::MetricsExporter(const MetricsRegistry* registry, int listen_fd,
                                 int wake_read_fd, int wake_write_fd, uint16_t port)
    : registry_(registry),
      listen_fd_(listen_fd),
      wake_read_fd_(wake_read_fd),
      wake_write_fd_(wake_write_fd),
      port_(port) {
  thread_ = std::thread([this] { Loop(); });
}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::Stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
}

void MetricsExporter::Loop() {
  for (;;) {
    struct pollfd fds[2] = {{wake_read_fd_, POLLIN, 0}, {listen_fd_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      LogError(std::string("metrics exporter poll: ") + std::strerror(errno));
      return;
    }
    if (fds[0].revents != 0) return;  // Stop() woke us
    if ((fds[1].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    ServeConnection(conn);
    ::close(conn);
  }
}

void MetricsExporter::ServeConnection(int fd) {
  std::string request;
  if (!ReadRequest(fd, &request)) return;
  const size_t line_end = request.find('\n');
  const std::string line = request.substr(0, line_end);
  std::string response;
  if (line.rfind("GET /metrics.json", 0) == 0) {
    response = HttpResponse(200, "OK", "application/json", registry_->RenderJson());
  } else if (line.rfind("GET /metrics", 0) == 0) {
    response = HttpResponse(200, "OK", "text/plain; version=0.0.4",
                            registry_->RenderPrometheus());
  } else if (line.rfind("GET /healthz", 0) == 0) {
    response = HttpResponse(200, "OK", "text/plain", "ok\n");
  } else {
    response = HttpResponse(404, "Not Found", "text/plain", "not found\n");
  }
  WriteAll(fd, response);
}

}  // namespace gbda::obs
