#include "obs/trace.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"

namespace gbda::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<uint32_t> g_sample_every{1};
std::atomic<uint64_t> g_slow_query_micros{0};
std::atomic<uint64_t> g_sample_clock{0};
std::once_flag g_env_once;

void LoadFromEnv() {
  if (const char* v = std::getenv("GBDA_TRACE"); v != nullptr && v[0] != '\0') {
    g_enabled.store(v[0] != '0', std::memory_order_relaxed);
  }
  if (const char* v = std::getenv("GBDA_TRACE_SAMPLE"); v != nullptr) {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) g_sample_every.store(static_cast<uint32_t>(n), std::memory_order_relaxed);
  }
  if (const char* v = std::getenv("GBDA_SLOW_QUERY_MS"); v != nullptr) {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) {
      g_slow_query_micros.store(static_cast<uint64_t>(n) * 1000, std::memory_order_relaxed);
    }
  }
}

void EnsureEnvLoaded() { std::call_once(g_env_once, LoadFromEnv); }

}  // namespace

const char* QueryStageName(QueryStage stage) {
  switch (stage) {
    case QueryStage::kAdmission:
      return "admission";
    case QueryStage::kQueue:
      return "queue";
    case QueryStage::kBatch:
      return "batch";
    case QueryStage::kScan:
      return "scan";
  }
  return "?";
}

void SetTraceConfig(const TraceConfig& config) {
  EnsureEnvLoaded();  // settle env defaults first so this call wins the race
  g_enabled.store(config.enabled, std::memory_order_relaxed);
  g_sample_every.store(config.sample_every == 0 ? 1 : config.sample_every,
                       std::memory_order_relaxed);
  g_slow_query_micros.store(config.slow_query_micros, std::memory_order_relaxed);
}

TraceConfig GetTraceConfig() {
  EnsureEnvLoaded();
  TraceConfig config;
  config.enabled = g_enabled.load(std::memory_order_relaxed);
  config.sample_every = g_sample_every.load(std::memory_order_relaxed);
  config.slow_query_micros = g_slow_query_micros.load(std::memory_order_relaxed);
  return config;
}

bool TraceSampled() {
  EnsureEnvLoaded();
  if (!g_enabled.load(std::memory_order_relaxed)) return false;
  const uint32_t every = g_sample_every.load(std::memory_order_relaxed);
  if (every <= 1) return true;
  return g_sample_clock.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

bool SlowQueryLogEnabled() {
  EnsureEnvLoaded();
  return g_slow_query_micros.load(std::memory_order_relaxed) > 0;
}

std::string FormatSlowQuery(uint64_t total_micros, const TraceSpans& spans,
                            uint64_t pruned_by_bound, uint64_t candidates_visited,
                            uint64_t batch_size) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "slow query: total=%" PRIu64 "us admission=%" PRIu64 "us queue=%" PRIu64
                "us batch=%" PRIu64 "us scan=%" PRIu64 "us pruned_by_bound=%" PRIu64
                " candidates_visited=%" PRIu64 " batch_size=%" PRIu64,
                total_micros, spans.Get(QueryStage::kAdmission),
                spans.Get(QueryStage::kQueue), spans.Get(QueryStage::kBatch),
                spans.Get(QueryStage::kScan), pruned_by_bound, candidates_visited,
                batch_size);
  return std::string(buf);
}

bool MaybeLogSlowQuery(uint64_t total_micros, const TraceSpans& spans,
                       uint64_t pruned_by_bound, uint64_t candidates_visited,
                       uint64_t batch_size) {
  EnsureEnvLoaded();
  const uint64_t threshold = g_slow_query_micros.load(std::memory_order_relaxed);
  if (threshold == 0 || total_micros < threshold) return false;
  LogWarning(FormatSlowQuery(total_micros, spans, pruned_by_bound, candidates_visited,
                             batch_size));
  return true;
}

}  // namespace gbda::obs
