#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/result.h"
#include "obs/metrics_registry.h"

namespace gbda::obs {

struct ExporterOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read back via port()
};

/// Minimal HTTP/1.0 scrape endpoint over a MetricsRegistry:
///   GET /metrics       -> Prometheus text exposition
///   GET /metrics.json  -> JSON snapshot
///   GET /healthz       -> "ok"
/// One background thread accepts, serves and closes each connection inline —
/// scrapes are rare and small, so there is no connection state to manage.
/// The registry must outlive the exporter.
class MetricsExporter {
 public:
  static Result<std::unique_ptr<MetricsExporter>> Start(const MetricsRegistry* registry,
                                                        const ExporterOptions& options);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  uint16_t port() const { return port_; }

  /// Stops the accept loop and joins the thread. Idempotent; the destructor
  /// calls it.
  void Stop();

 private:
  MetricsExporter(const MetricsRegistry* registry, int listen_fd, int wake_read_fd,
                  int wake_write_fd, uint16_t port);

  void Loop();
  void ServeConnection(int fd);

  const MetricsRegistry* registry_;
  int listen_fd_;
  int wake_read_fd_;
  int wake_write_fd_;
  uint16_t port_;
  /// Atomic so concurrent Stop() calls (destructor racing an explicit Stop
  /// from another thread) agree on who joins and closes the fds; the serve
  /// loop itself never reads it — it watches the wake pipe instead.
  std::atomic<bool> stopped_{false};
  std::thread thread_;
};

}  // namespace gbda::obs
