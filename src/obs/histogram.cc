#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace gbda::obs {

namespace internal {

size_t ThreadSlot(size_t mod) {
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot & (mod - 1);
}

}  // namespace internal

namespace {

// Position of the highest set bit (value must be nonzero).
int HighestBit(uint64_t value) { return 63 - __builtin_clzll(value); }

}  // namespace

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  value = std::min(value, kMaxTrackable);
  const int octave = HighestBit(value);  // in [kSubBucketBits, kMaxOctave]
  const uint64_t sub = (value >> (octave - kSubBucketBits)) & (kSubBuckets - 1);
  return kSubBuckets + static_cast<size_t>(octave - kSubBucketBits) * kSubBuckets +
         static_cast<size_t>(sub);
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) return index;
  const size_t rel = index - kSubBuckets;
  const int octave = kSubBucketBits + static_cast<int>(rel / kSubBuckets);
  const uint64_t sub = rel % kSubBuckets;
  return (kSubBuckets + sub) << (octave - kSubBucketBits);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < kSubBuckets) return index;
  const size_t rel = index - kSubBuckets;
  const int octave = kSubBucketBits + static_cast<int>(rel / kSubBuckets);
  const uint64_t width = 1ull << (octave - kSubBucketBits);
  return BucketLowerBound(index) + width - 1;
}

void Histogram::RecordMultiple(uint64_t value, uint64_t n) {
  if (n == 0) return;
  buckets_[BucketIndex(value)] += n;
  count_ += n;
  sum_ += value * n;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() { *this = Histogram(); }

uint64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      const uint64_t mid = BucketLowerBound(i) + (BucketUpperBound(i) - BucketLowerBound(i)) / 2;
      return std::clamp(mid, min(), max());
    }
  }
  return max();
}

void ConcurrentHistogram::Record(uint64_t value) {
  Slot& slot = slots_[internal::ThreadSlot(kSlots)];
  slot.buckets[Histogram::BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

Histogram ConcurrentHistogram::Snapshot() const {
  Histogram out;
  for (const Slot& slot : slots_) {
    const uint64_t count = slot.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    out.count_ += count;
    out.sum_ += slot.sum.load(std::memory_order_relaxed);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      out.buckets_[i] += slot.buckets[i].load(std::memory_order_relaxed);
    }
  }
  if (out.count_ > 0) {
    out.min_ = min_.load(std::memory_order_relaxed);
    out.max_ = max_.load(std::memory_order_relaxed);
  }
  return out;
}

void ConcurrentHistogram::Reset() {
  for (Slot& slot : slots_) {
    for (auto& bucket : slot.buckets) bucket.store(0, std::memory_order_relaxed);
    slot.count.store(0, std::memory_order_relaxed);
    slot.sum.store(0, std::memory_order_relaxed);
  }
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace gbda::obs
