#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace gbda::obs {

namespace internal {
/// Stable per-thread shard index in [0, mod). Assigned round-robin on first
/// use per thread, so writer threads spread across shards instead of hashing
/// onto the same slot. `mod` must be a power of two.
size_t ThreadSlot(size_t mod);
}  // namespace internal

/// Log-bucketed latency histogram (HdrHistogram-style layout). Values in
/// [0, 16) get exact unit-width buckets; above that every power-of-two
/// octave splits into 16 linear sub-buckets, so each value lands in a bucket
/// whose width is at most 1/16 (6.25%) of its lower bound. Quantile()
/// therefore answers within one bucket of the exact nearest-rank quantile.
/// Exact count/sum/min/max ride alongside the buckets, keeping means and
/// extremes exact regardless of bucketing.
///
/// This is the plain value type: single-writer, mergeable (bucket-wise adds,
/// associative and commutative), cheap to copy. Use ConcurrentHistogram for
/// multi-threaded recording.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr uint64_t kSubBuckets = 1ull << kSubBucketBits;  // 16
  /// Largest octave tracked with full resolution: values up to 2^40 - 1
  /// (about 12.7 days in microseconds). Larger values clamp into the last
  /// bucket; count/sum/min/max still record them exactly.
  static constexpr int kMaxOctave = 39;
  static constexpr size_t kNumBuckets =
      kSubBuckets + static_cast<size_t>(kMaxOctave - kSubBucketBits + 1) * kSubBuckets;
  static constexpr uint64_t kMaxTrackable = (1ull << (kMaxOctave + 1)) - 1;

  /// Bucket containing `value` (values above kMaxTrackable land in the last
  /// bucket). BucketLowerBound(i) <= value <= BucketUpperBound(i) holds for
  /// every tracked value.
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketUpperBound(size_t index);

  void Record(uint64_t value) { RecordMultiple(value, 1); }
  void RecordMultiple(uint64_t value, uint64_t n);

  /// Bucket-wise addition of `other`'s state. (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c)
  /// produce identical state.
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  /// Smallest/largest recorded value; 0 when empty.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_); }

  /// Nearest-rank quantile estimate for q in [0, 1]: finds the bucket holding
  /// rank ceil(q * count) and returns its midpoint clamped to [min, max].
  /// The exact nearest-rank value lies in the same bucket, so the estimate is
  /// off by at most one bucket width (<= 6.25% relative above 16, <= 1 below).
  /// Returns 0 when empty.
  uint64_t Quantile(double q) const;

  const std::array<uint64_t, kNumBuckets>& buckets() const { return buckets_; }

  bool operator==(const Histogram& other) const {
    return count_ == other.count_ && sum_ == other.sum_ && min_ == other.min_ &&
           max_ == other.max_ && buckets_ == other.buckets_;
  }

 private:
  friend class ConcurrentHistogram;  // Snapshot() assembles merged state directly.

  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// Thread-safe histogram recorder: per-thread-slot shards of relaxed-atomic
/// buckets, merged into a plain Histogram on Snapshot(). Record() is two
/// relaxed fetch_adds on the caller's shard plus a CAS only when the global
/// min/max actually move — no locks anywhere on the write path.
class ConcurrentHistogram {
 public:
  ConcurrentHistogram() = default;
  ConcurrentHistogram(const ConcurrentHistogram&) = delete;
  ConcurrentHistogram& operator=(const ConcurrentHistogram&) = delete;

  void Record(uint64_t value);

  /// Merged view of all shards. Exact when writers are quiescent; during
  /// concurrent recording each shard is read atomically but shards are read
  /// in sequence, so the snapshot is a consistent lower bound per shard.
  Histogram Snapshot() const;

  /// Zeroes all shards. Callers must quiesce writers first; increments racing
  /// a Reset may survive it.
  void Reset();

 private:
  static constexpr size_t kSlots = 8;
  struct alignas(64) Slot {
    std::array<std::atomic<uint64_t>, Histogram::kNumBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Slot, kSlots> slots_{};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

}  // namespace gbda::obs
