#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace gbda::obs {

/// Stages a query passes through on the serving path, in pipeline order.
/// Used both as trace-span slots and as `stage="..."` histogram labels.
enum class QueryStage : int {
  kAdmission = 0,  // frame decode + admission control on the I/O thread
  kQueue = 1,      // waiting in the bounded request queue
  kBatch = 2,      // micro-batch coalesce (linger window)
  kScan = 3,       // index scan: prefilter + posterior + rank
};
inline constexpr int kNumQueryStages = 4;
const char* QueryStageName(QueryStage stage);

/// Per-query trace record: one duration slot per stage. Plain POD — filling
/// it never allocates, so it can ride through the hot path and the wire
/// response unconditionally. Stage durations are observational (clocks,
/// scheduling) and are therefore excluded from determinism comparisons,
/// exactly like `SearchResult::pruned_by_bound`.
struct TraceSpans {
  std::array<uint64_t, kNumQueryStages> micros{};

  void Set(QueryStage stage, uint64_t value) { micros[static_cast<int>(stage)] = value; }
  uint64_t Get(QueryStage stage) const { return micros[static_cast<int>(stage)]; }
  uint64_t TotalMicros() const {
    uint64_t total = 0;
    for (uint64_t m : micros) total += m;
    return total;
  }
};

/// Process-wide tracing knobs, stored in relaxed atomics so the hot path
/// reads them with plain loads. Defaults come from the environment on first
/// access (`GBDA_TRACE=1`, `GBDA_TRACE_SAMPLE=<n>`, `GBDA_SLOW_QUERY_MS=<n>`);
/// SetTraceConfig overrides the environment.
struct TraceConfig {
  bool enabled = false;           // sample per-query scan latencies into histograms
  uint32_t sample_every = 1;      // when enabled, record every Nth query
  uint64_t slow_query_micros = 0; // >0: log queries whose total exceeds this
};

void SetTraceConfig(const TraceConfig& config);
TraceConfig GetTraceConfig();

/// True when tracing is enabled and this call lands on the sampling stride.
/// One relaxed load plus (when enabled) one relaxed fetch_add; never
/// allocates, so disabled-mode cost is a single branch.
bool TraceSampled();

bool SlowQueryLogEnabled();

/// "slow query: total=1234us admission=... queue=... batch=... scan=...
///  pruned_by_bound=... candidates_visited=... batch_size=..."
std::string FormatSlowQuery(uint64_t total_micros, const TraceSpans& spans,
                            uint64_t pruned_by_bound, uint64_t candidates_visited,
                            uint64_t batch_size);

/// Emits FormatSlowQuery via LogWarning when slow-query logging is enabled
/// and `total_micros` exceeds the threshold. Returns whether it logged.
bool MaybeLogSlowQuery(uint64_t total_micros, const TraceSpans& spans,
                       uint64_t pruned_by_bound, uint64_t candidates_visited,
                       uint64_t batch_size);

}  // namespace gbda::obs
