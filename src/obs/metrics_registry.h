#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/histogram.h"

namespace gbda::obs {

/// Monotone counter sharded across cacheline-padded per-thread slots.
/// Add() is a single relaxed fetch_add on the caller's slot — no shared
/// cacheline between writer threads, no lock ever. Value() sums the slots
/// and is exact once writers quiesce (and a consistent lower bound while
/// they run, since each slot is itself monotone).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    slots_[internal::ThreadSlot(kSlots)].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& slot : slots_) total += slot.v.load(std::memory_order_relaxed);
    return total;
  }

  /// Zeroes all slots. Callers must quiesce writers first; an Add racing a
  /// Reset may land before or after the zeroing.
  void Reset() {
    for (Slot& slot : slots_) slot.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kSlots = 16;
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  std::array<Slot, kSlots> slots_{};
};

/// Last-write-wins double-valued gauge (single atomic; Set is a store,
/// Add is a CAS loop — gauges are updated rarely, off the hot path).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value);
  void Add(double delta);
  double Value() const;

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of the double
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One labeled sample within a family: scalar value for counters/gauges,
/// a full histogram snapshot for histograms.
struct MetricPoint {
  std::string labels;  // Prometheus label body, e.g. `stage="queue"`; may be empty
  double value = 0.0;
  Histogram histogram;
};

/// All points sharing a metric name (Prometheus exposition groups by family).
struct MetricFamily {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<MetricPoint> points;
};

/// Process-wide metrics registry. Get*() registers (or finds) an instrument
/// keyed by (name, labels) and returns a pointer that stays valid for the
/// registry's lifetime, so hot paths capture the pointer once and never touch
/// the registry mutex again. Components that own their counters (services,
/// servers) publish through collectors instead: a collector is invited to
/// append families at every Snapshot()/render, and unregisters on shutdown.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide instance used by gbda_serverd's exposition endpoint.
  static MetricsRegistry& Global();

  /// Find-or-create. Returns nullptr if (name, labels) already exists with a
  /// different metric type.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const std::string& labels = "");
  ConcurrentHistogram* GetHistogram(const std::string& name, const std::string& help,
                                    const std::string& labels = "");

  using Collector = std::function<void(std::vector<MetricFamily>*)>;
  uint64_t AddCollector(Collector collector);
  void RemoveCollector(uint64_t id);

  /// Owned instruments plus collector output, grouped into families sorted by
  /// name (points in registration/emission order within a family).
  std::vector<MetricFamily> Snapshot() const;

  /// Prometheus text exposition format (HELP/TYPE headers, cumulative
  /// `_bucket{le=...}` series over non-empty buckets plus +Inf, `_sum` and
  /// `_count` for histograms).
  std::string RenderPrometheus() const;

  /// The same snapshot as a JSON object keyed by family name; histograms
  /// carry count/sum/min/max/mean and p50/p99/p999.
  std::string RenderJson() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    std::string labels;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<ConcurrentHistogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, const std::string& help,
                      const std::string& labels, MetricType type)
      GBDA_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  /// Entries are append-only; the instrument pointers handed out by Get*()
  /// stay valid (and are internally synchronized) outside the lock — the
  /// guard covers only the container structure.
  std::vector<std::unique_ptr<Entry>> entries_ GBDA_GUARDED_BY(mutex_);
  // key = name + "\x1f" + labels
  std::map<std::string, Entry*> by_key_ GBDA_GUARDED_BY(mutex_);
  std::map<uint64_t, Collector> collectors_ GBDA_GUARDED_BY(mutex_);
  uint64_t next_collector_id_ GBDA_GUARDED_BY(mutex_) = 1;
};

/// RAII registration of a collector into a registry (commonly Global()).
/// Default-constructed handles are inert; the collector is removed on
/// destruction, so a component can safely expose metrics for exactly its
/// own lifetime.
class CollectorHandle {
 public:
  CollectorHandle() = default;
  CollectorHandle(MetricsRegistry* registry, MetricsRegistry::Collector collector)
      : registry_(registry), id_(registry->AddCollector(std::move(collector))) {}
  ~CollectorHandle() { Release(); }

  CollectorHandle(CollectorHandle&& other) noexcept
      : registry_(other.registry_), id_(other.id_) {
    other.registry_ = nullptr;
  }
  CollectorHandle& operator=(CollectorHandle&& other) noexcept {
    if (this != &other) {
      Release();
      registry_ = other.registry_;
      id_ = other.id_;
      other.registry_ = nullptr;
    }
    return *this;
  }
  CollectorHandle(const CollectorHandle&) = delete;
  CollectorHandle& operator=(const CollectorHandle&) = delete;

  void Release() {
    if (registry_ != nullptr) registry_->RemoveCollector(id_);
    registry_ = nullptr;
  }

 private:
  MetricsRegistry* registry_ = nullptr;
  uint64_t id_ = 0;
};

}  // namespace gbda::obs
