#include "ann/proximity_graph.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <limits>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/rng.h"

namespace gbda {

ProximityGraphRef ProximityGraph::ref() const {
  ProximityGraphRef r;
  r.offsets = offsets.data();
  r.neighbors = neighbors.data();
  r.num_nodes = num_nodes();
  r.num_edges = neighbors.size();
  r.entry_point = entry_point;
  r.degree_bound = degree_bound;
  return r;
}

FingerprintStore FingerprintStore::FromPrefilter(const Prefilter& prefilter) {
  FingerprintStore store;
  const size_t n = prefilter.size();
  store.offsets_.assign(n + 1, 0);
  size_t total = 0;
  for (size_t id = 0; id < n; ++id) {
    total += prefilter.profile(id).branch_keys.size();
  }
  store.pool_.reserve(total);
  for (size_t id = 0; id < n; ++id) {
    const std::vector<uint64_t>& keys = prefilter.profile(id).branch_keys;
    store.pool_.insert(store.pool_.end(), keys.begin(), keys.end());
    store.offsets_[id + 1] = store.pool_.size();
  }
  return store;
}

FingerprintStore FingerprintStore::FromIndex(const IndexReader& index) {
  FingerprintStore store;
  const size_t n = index.num_graphs();
  store.offsets_.assign(n + 1, 0);
  // When the backing carries candidate columns (mapped v3 artifact or a
  // materialised cache), the per-graph sorted fingerprints already exist in
  // exactly the layout this store needs — copy the blob instead of
  // recomputing every hash. Bit-identical by construction: the column is
  // the same deterministic function of the branch data as the loop below.
  const CandidateColumns columns = index.columns();
  if (columns.present()) {
    const uint64_t total = columns.fp_offsets[n];
    store.pool_.assign(columns.fp_keys, columns.fp_keys + total);
    store.offsets_.assign(columns.fp_offsets, columns.fp_offsets + n + 1);
    return store;
  }
  for (size_t id = 0; id < n; ++id) {
    const BranchSetRef branches = index.branch_set(id);
    const size_t begin = store.pool_.size();
    for (size_t b = 0; b < branches.size(); ++b) {
      const Span<const LabelId> labels = branches.edge_labels(b);
      store.pool_.push_back(
          BranchFingerprint(branches.root(b), labels.data(), labels.size()));
    }
    // Branch multisets are stored in lexicographic (root, labels) order, not
    // fingerprint order; sort per graph so the two-pointer distance merge
    // sees ascending keys — the same order BuildFilterProfile produces.
    std::sort(store.pool_.begin() + static_cast<ptrdiff_t>(begin),
              store.pool_.end());
    store.offsets_[id + 1] = store.pool_.size();
  }
  return store;
}

int64_t FingerprintDistance(Span<const uint64_t> a, Span<const uint64_t> b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return static_cast<int64_t>(std::max(a.size(), b.size()) - common);
}

namespace {

/// One (distance, id) candidate; the pair order IS the navigation order —
/// ties in distance break by smaller id, keeping every search deterministic
/// on collision-heavy corpora.
using Candidate = std::pair<int64_t, uint32_t>;

/// Beam search shared by the builder (adjacency still in per-node vectors)
/// and the query-time navigator (CSR ref): expand the closest unexpanded
/// candidate, keep the best `window` nodes seen, stop when a full window
/// beats the whole frontier. Appends expanded nodes, in expansion order,
/// with their distances (the builder's RobustPrune pool); `window_set`
/// returns the final window.
template <typename NeighborsFn, typename DistFn>
void BeamSearch(uint32_t entry, size_t window, const NeighborsFn& neighbors_of,
                const DistFn& dist_to, std::vector<Candidate>* expanded,
                std::set<Candidate>* window_set) {
  std::set<Candidate> frontier;
  std::unordered_set<uint32_t> seen;
  const int64_t entry_dist = dist_to(entry);
  frontier.emplace(entry_dist, entry);
  window_set->emplace(entry_dist, entry);
  seen.insert(entry);
  while (!frontier.empty()) {
    const Candidate closest = *frontier.begin();
    // A full window whose worst retained distance beats every unexpanded
    // candidate cannot improve; equal distances keep expanding so ties are
    // explored deterministically rather than by insertion luck.
    if (window_set->size() >= window &&
        closest.first > std::prev(window_set->end())->first) {
      break;
    }
    frontier.erase(frontier.begin());
    expanded->push_back(closest);
    const auto [nbrs, count] = neighbors_of(closest.second);
    for (size_t e = 0; e < count; ++e) {
      const uint32_t nb = nbrs[e];
      if (!seen.insert(nb).second) continue;
      const int64_t d = dist_to(nb);
      if (window_set->size() >= window) {
        const auto worst = std::prev(window_set->end());
        if (Candidate(d, nb) >= *worst) continue;  // can't enter the window
        window_set->erase(worst);
      }
      window_set->emplace(d, nb);
      frontier.emplace(d, nb);
    }
  }
}

/// Vamana's RobustPrune over a (distance-to-p, id) pool: greedily keep the
/// closest candidate, then drop every pool member an alpha factor closer to
/// a kept neighbor than to p — the kept set stays diverse in direction, so
/// a bounded degree still navigates well. Pool may contain p and
/// duplicates; both are ignored.
std::vector<uint32_t> RobustPrune(uint32_t p, std::vector<Candidate> pool,
                                  double alpha, uint32_t degree,
                                  const FingerprintStore& store) {
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  std::vector<uint32_t> kept;
  kept.reserve(degree);
  std::vector<char> dropped(pool.size(), 0);
  for (size_t i = 0; i < pool.size() && kept.size() < degree; ++i) {
    if (dropped[i]) continue;
    const auto [dist_pc, c] = pool[i];
    if (c == p) continue;
    kept.push_back(c);
    for (size_t j = i + 1; j < pool.size(); ++j) {
      if (dropped[j]) continue;
      const auto [dist_pj, cj] = pool[j];
      if (cj == c) {
        dropped[j] = 1;
        continue;
      }
      const int64_t dist_ccj = FingerprintDistance(store.keys(c),
                                                   store.keys(cj));
      if (static_cast<double>(dist_ccj) * alpha <=
          static_cast<double>(dist_pj)) {
        dropped[j] = 1;
      }
    }
  }
  return kept;
}

}  // namespace

Result<ProximityGraph> BuildProximityGraph(const FingerprintStore& store,
                                           const AnnBuildParams& params) {
  if (params.graph_degree == 0) {
    return Status::InvalidArgument("ann graph_degree must be >= 1");
  }
  if (params.build_window == 0) {
    return Status::InvalidArgument("ann build_window must be >= 1");
  }
  if (!(params.alpha >= 1.0)) {  // also rejects NaN
    return Status::InvalidArgument("ann alpha must be >= 1.0");
  }
  const size_t n = store.size();
  ProximityGraph out;
  out.degree_bound = params.graph_degree;
  out.entry_point = 0;
  if (n == 0) {
    out.offsets.assign(1, 0);
    return out;
  }
  if (n > static_cast<size_t>(std::numeric_limits<uint32_t>::max())) {
    return Status::InvalidArgument(
        "ann graph supports at most 2^32 - 1 nodes");
  }
  const uint32_t degree = params.graph_degree;
  Rng rng(params.seed);

  // Random bounded-degree initialization: navigable from the first
  // insertion, and the prune passes below only ever improve edges.
  std::vector<std::vector<uint32_t>> adj(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t want = std::min<size_t>(degree, n - 1);
    const std::vector<size_t> picks =
        rng.SampleWithoutReplacement(n - 1, want);
    adj[i].reserve(want);
    for (size_t p : picks) {
      // Sampled from [0, n-2] with the self slot spliced out.
      adj[i].push_back(static_cast<uint32_t>(p >= i ? p + 1 : p));
    }
  }

  // Entry point: approximate medoid — the sampled node with the smallest
  // total distance to the sample (ties to the smaller id), so greedy
  // searches start near the corpus center.
  {
    const size_t sample_count = std::min<size_t>(n, 64);
    std::vector<size_t> sample = rng.SampleWithoutReplacement(n, sample_count);
    std::sort(sample.begin(), sample.end());
    int64_t best_total = std::numeric_limits<int64_t>::max();
    for (size_t c : sample) {
      int64_t total = 0;
      for (size_t s : sample) {
        total += FingerprintDistance(store.keys(c), store.keys(s));
      }
      if (total < best_total) {
        best_total = total;
        out.entry_point = static_cast<uint32_t>(c);
      }
    }
  }

  const auto neighbors_of = [&adj](uint32_t id) {
    return std::make_pair(adj[id].data(), adj[id].size());
  };

  // Randomized insertion pass (Vamana): greedy-search each node from the
  // entry point, RobustPrune the visited pool into its out-edges, then add
  // backward edges, re-pruning any list the bound overflows.
  std::vector<uint32_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
  rng.Shuffle(&perm);
  for (uint32_t p : perm) {
    const Span<const uint64_t> p_keys = store.keys(p);
    const auto dist_to = [&store, &p_keys](uint32_t id) {
      return FingerprintDistance(p_keys, store.keys(id));
    };
    std::vector<Candidate> pool;
    std::set<Candidate> window_set;
    BeamSearch(out.entry_point, params.build_window, neighbors_of, dist_to,
               &pool, &window_set);
    for (uint32_t nb : adj[p]) pool.emplace_back(dist_to(nb), nb);
    adj[p] = RobustPrune(p, std::move(pool), params.alpha, degree, store);
    for (uint32_t j : adj[p]) {
      if (std::find(adj[j].begin(), adj[j].end(), p) != adj[j].end()) continue;
      adj[j].push_back(p);
      if (adj[j].size() > degree) {
        const Span<const uint64_t> j_keys = store.keys(j);
        std::vector<Candidate> jpool;
        jpool.reserve(adj[j].size());
        for (uint32_t nb : adj[j]) {
          jpool.emplace_back(FingerprintDistance(j_keys, store.keys(nb)), nb);
        }
        adj[j] = RobustPrune(j, std::move(jpool), params.alpha, degree, store);
      }
    }
  }

  // Reachability repair: RobustPrune can orphan nodes (every in-edge
  // pruned away). Attach each BFS-unreachable node, in id order, to the
  // entry point — only the entry point's degree may exceed the bound — so
  // beam search with window >= n provably reaches the whole corpus (the
  // guarantee the full-window equivalence tests rely on).
  {
    std::vector<char> reached(n, 0);
    std::vector<uint32_t> stack;
    const auto drain = [&] {
      while (!stack.empty()) {
        const uint32_t u = stack.back();
        stack.pop_back();
        for (uint32_t nb : adj[u]) {
          if (!reached[nb]) {
            reached[nb] = 1;
            stack.push_back(nb);
          }
        }
      }
    };
    reached[out.entry_point] = 1;
    stack.push_back(out.entry_point);
    drain();
    for (uint32_t u = 0; u < n; ++u) {
      if (reached[u]) continue;
      adj[out.entry_point].push_back(u);
      reached[u] = 1;
      stack.push_back(u);
      drain();
    }
  }

  // Flatten to CSR.
  out.offsets.assign(n + 1, 0);
  size_t total_edges = 0;
  for (size_t i = 0; i < n; ++i) total_edges += adj[i].size();
  out.neighbors.reserve(total_edges);
  for (size_t i = 0; i < n; ++i) {
    out.neighbors.insert(out.neighbors.end(), adj[i].begin(), adj[i].end());
    out.offsets[i + 1] = out.neighbors.size();
  }
  return out;
}

std::vector<uint32_t> NavigateProximityGraph(const ProximityGraphRef& graph,
                                             const FingerprintStore& store,
                                             Span<const uint64_t> query_keys,
                                             size_t window) {
  if (graph.num_nodes == 0) return {};
  window = std::max<size_t>(1, window);
  const auto neighbors_of = [&graph](uint32_t id) {
    return std::make_pair(graph.neighbors + graph.offsets[id],
                          static_cast<size_t>(graph.offsets[id + 1] -
                                              graph.offsets[id]));
  };
  const auto dist_to = [&store, &query_keys](uint32_t id) {
    return FingerprintDistance(query_keys, store.keys(id));
  };
  std::vector<Candidate> expanded;
  std::set<Candidate> window_set;
  BeamSearch(graph.entry_point, window, neighbors_of, dist_to, &expanded,
             &window_set);
  // Verification set: every expanded node (in expansion order) plus any
  // window survivor the loop never got to expand — all distance-computed
  // nodes the search considered worth keeping.
  std::vector<uint32_t> out;
  out.reserve(expanded.size() + window_set.size());
  std::unordered_set<uint32_t> emitted;
  emitted.reserve(expanded.size() + window_set.size());
  for (const Candidate& c : expanded) {
    if (emitted.insert(c.second).second) out.push_back(c.second);
  }
  for (const Candidate& c : window_set) {
    if (emitted.insert(c.second).second) out.push_back(c.second);
  }
  return out;
}

namespace {

template <typename T>
void AppendScalar(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

}  // namespace

std::string SerializeProximityGraph(const ProximityGraph& graph) {
  std::string out;
  const uint64_t num_nodes = graph.num_nodes();
  const uint64_t num_edges = graph.neighbors.size();
  out.reserve(32 + (num_nodes + 1) * sizeof(uint64_t) +
              num_edges * sizeof(uint32_t));
  AppendScalar<uint32_t>(&out, kAnnGraphFormatVersion);
  AppendScalar<uint32_t>(&out, graph.degree_bound);
  AppendScalar<uint32_t>(&out, graph.entry_point);
  AppendScalar<uint32_t>(&out, 0);  // reserved
  AppendScalar<uint64_t>(&out, num_nodes);
  AppendScalar<uint64_t>(&out, num_edges);
  out.append(reinterpret_cast<const char*>(graph.offsets.data()),
             graph.offsets.size() * sizeof(uint64_t));
  out.append(reinterpret_cast<const char*>(graph.neighbors.data()),
             graph.neighbors.size() * sizeof(uint32_t));
  return out;
}

Result<ProximityGraphRef> ParseProximityGraphSection(
    const void* data, size_t length, uint64_t expected_nodes,
    const std::string& source) {
  const auto fail = [&source](const std::string& what) {
    return Status::InvalidArgument(source + ": ann_graph section " + what);
  };
  if (reinterpret_cast<uintptr_t>(data) % alignof(uint64_t) != 0) {
    return fail("payload is not 8-byte aligned");
  }
  constexpr size_t kHeaderBytes = 32;
  if (length < kHeaderBytes) return fail("truncated header");
  const char* bytes = static_cast<const char*>(data);
  uint32_t format = 0, degree = 0, entry = 0, reserved = 0;
  uint64_t num_nodes = 0, num_edges = 0;
  std::memcpy(&format, bytes, sizeof(format));
  std::memcpy(&degree, bytes + 4, sizeof(degree));
  std::memcpy(&entry, bytes + 8, sizeof(entry));
  std::memcpy(&reserved, bytes + 12, sizeof(reserved));
  std::memcpy(&num_nodes, bytes + 16, sizeof(num_nodes));
  std::memcpy(&num_edges, bytes + 24, sizeof(num_edges));
  if (format != kAnnGraphFormatVersion) {
    return Status::NotSupported(source + ": ann_graph format version " +
                                std::to_string(format) +
                                " (this build reads version " +
                                std::to_string(kAnnGraphFormatVersion) + ")");
  }
  if (num_nodes != expected_nodes) {
    return fail("covers " + std::to_string(num_nodes) +
                " nodes but the artifact holds " +
                std::to_string(expected_nodes) + " graphs");
  }
  // Overflow-safe exact-length check: both counts are bounded before the
  // multiplications can wrap.
  constexpr uint64_t kMaxCount = uint64_t{1} << 48;
  if (num_nodes >= kMaxCount || num_edges >= kMaxCount) {
    return fail("has an implausible node/edge count");
  }
  const uint64_t want = kHeaderBytes + (num_nodes + 1) * sizeof(uint64_t) +
                        num_edges * sizeof(uint32_t);
  if (want != length) {
    return fail("length " + std::to_string(length) + " does not match its " +
                std::to_string(num_nodes) + " nodes / " +
                std::to_string(num_edges) + " edges");
  }
  ProximityGraphRef ref;
  ref.offsets = reinterpret_cast<const uint64_t*>(bytes + kHeaderBytes);
  ref.neighbors = reinterpret_cast<const uint32_t*>(
      bytes + kHeaderBytes + (num_nodes + 1) * sizeof(uint64_t));
  ref.num_nodes = num_nodes;
  ref.num_edges = num_edges;
  ref.entry_point = entry;
  ref.degree_bound = degree;
  if (num_nodes == 0) {
    if (ref.offsets[0] != 0 || num_edges != 0 || entry != 0) {
      return fail("is empty but carries edges or an entry point");
    }
    return ref;
  }
  if (entry >= num_nodes) return fail("entry point out of range");
  if (ref.offsets[0] != 0) return fail("offsets do not start at 0");
  for (uint64_t i = 0; i < num_nodes; ++i) {
    if (ref.offsets[i + 1] < ref.offsets[i]) {
      return fail("offsets are not nondecreasing");
    }
  }
  if (ref.offsets[num_nodes] != num_edges) {
    return fail("offsets do not end at the edge count");
  }
  for (uint64_t e = 0; e < num_edges; ++e) {
    if (ref.neighbors[e] >= num_nodes) {
      return fail("neighbor id out of range");
    }
  }
  return ref;
}

}  // namespace gbda
