/// \file proximity_graph.h
/// Sub-linear candidate generation for approximate top-k
/// (docs/ARCHITECTURE.md, "Approximate candidate navigation"): a
/// Vamana-style proximity graph over the corpus, with graphs embedded by
/// their FilterProfile branch-fingerprint multisets and compared under
///   FingerprintDistance(a, b) = max(|Ka|, |Kb|) - |Ka ∩ Kb|,
/// the fingerprint-space mirror of GBD (Definition 4). The offline builder
/// (randomized insertion + greedy search + RobustPrune, degree-bounded)
/// produces a CSR adjacency the beam-search navigator walks at query time;
/// the navigator only PICKS candidates — every score the user sees comes
/// from the exact verification path (core ScanCandidateList), so
/// approximate mode can miss matches but never fabricates one.
///
/// The CSR form serializes into the v3 arena's ann_graph section
/// (storage/index_arena.h) and is consumed in place from a mapped artifact
/// through ProximityGraphRef — the same owned/borrowed split the branch
/// store uses.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/span.h"
#include "core/index_reader.h"
#include "core/prefilter.h"

namespace gbda {

/// Offline construction knobs (Vamana's R / L / alpha).
struct AnnBuildParams {
  /// Out-degree bound R. Every node keeps at most this many neighbors,
  /// except the entry point, which the reachability repair pass (see
  /// BuildProximityGraph) may push past the bound.
  uint32_t graph_degree = 32;
  /// Beam width L of the builder's greedy searches (>= graph_degree is
  /// typical; larger = better graphs, slower builds).
  uint32_t build_window = 64;
  /// RobustPrune's diversity slack (>= 1.0): a candidate is dropped when an
  /// already-kept neighbor is alpha-times closer to it than the node is.
  /// 1.0 prunes hardest; ~1.2 keeps longer "highway" edges that help
  /// navigation escape local clusters.
  double alpha = 1.2;
  /// Seed of the insertion order and the random initial edges; builds are
  /// deterministic given (corpus, params).
  uint64_t seed = 17;
};

/// Non-owning CSR view of a proximity graph — either over a ProximityGraph's
/// own vectors or over a mapped arena section. The backing storage must
/// outlive the ref. Node i's out-neighbors are
/// neighbors[offsets[i] .. offsets[i+1]).
struct ProximityGraphRef {
  const uint64_t* offsets = nullptr;  // num_nodes + 1 entries
  const uint32_t* neighbors = nullptr;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint32_t entry_point = 0;
  uint32_t degree_bound = 0;

  bool empty() const { return num_nodes == 0; }
};

/// Owned CSR proximity graph (the builder's output).
struct ProximityGraph {
  uint32_t degree_bound = 0;
  uint32_t entry_point = 0;
  std::vector<uint64_t> offsets;  // num_nodes + 1 entries (offsets[0] == 0)
  std::vector<uint32_t> neighbors;

  size_t num_nodes() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  ProximityGraphRef ref() const;
};

/// Flat per-node sorted-fingerprint store the builder and the navigator
/// compute distances over: node i's keys are the ascending branch
/// fingerprints of corpus graph i (FilterProfile::branch_keys). One
/// contiguous pool, so distance evaluations stay cache-friendly.
class FingerprintStore {
 public:
  FingerprintStore() = default;

  /// Copies every profile's branch_keys out of a built Prefilter — the
  /// cheap path when profiles already exist (both services hold them).
  static FingerprintStore FromPrefilter(const Prefilter& prefilter);

  /// Fingerprints each graph's branch multiset straight from the index —
  /// the path for mapped artifacts, where no Graph objects or profiles
  /// exist. When the backing exposes candidate columns (index.columns())
  /// the per-graph sorted fingerprint blob is copied wholesale; otherwise
  /// each branch is hashed (BranchFingerprint) and sorted per graph.
  /// Either way produces exactly the keys FromPrefilter would: the
  /// fingerprints hash the same (root, edge-label multiset) content.
  static FingerprintStore FromIndex(const IndexReader& index);

  size_t size() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  Span<const uint64_t> keys(size_t id) const {
    return Span<const uint64_t>(pool_.data() + offsets_[id],
                                static_cast<size_t>(offsets_[id + 1] -
                                                    offsets_[id]));
  }

 private:
  std::vector<uint64_t> pool_;
  std::vector<uint64_t> offsets_;  // size() + 1 entries
};

/// The navigation metric: max(|a|, |b|) - |a ∩ b| over two ascending
/// fingerprint multisets — GBD's shape in fingerprint space, so graph
/// pairs that rank well under the posterior tend to be near each other.
/// Symmetric, non-negative, 0 for identical multisets (including two empty
/// ones).
int64_t FingerprintDistance(Span<const uint64_t> a, Span<const uint64_t> b);

/// Offline Vamana-style build: random bounded-degree initialization, then
/// one randomized insertion pass (greedy search from the entry point +
/// RobustPrune of the visited set, backward edges re-pruned on overflow),
/// then a reachability repair pass — nodes BFS-unreachable from the entry
/// point are appended to the entry point's list (its degree alone may
/// exceed graph_degree), so every node is reachable and a beam search with
/// window >= corpus size provably visits the whole corpus (the property
/// the full-window bit-identity tests pin). Deterministic in
/// (store, params). Fails on invalid params (degree or window of 0,
/// alpha < 1.0).
Result<ProximityGraph> BuildProximityGraph(const FingerprintStore& store,
                                           const AnnBuildParams& params);

/// Beam search ("GreedySearch" with a `window`-bounded priority queue):
/// from the entry point, repeatedly expand the closest unexpanded candidate
/// to `query_keys`, keeping the best `window` nodes seen; stops when the
/// closest unexpanded candidate is farther than the worst of a full
/// window. Returns the ids to hand to exact verification — every expanded
/// node plus the final window, deduplicated, in deterministic order.
/// Distance ties break by smaller id, so navigation is deterministic even
/// on collision-heavy corpora (e.g. all-identical fingerprints).
/// `graph.num_nodes` must equal `store.size()`.
std::vector<uint32_t> NavigateProximityGraph(const ProximityGraphRef& graph,
                                             const FingerprintStore& store,
                                             Span<const uint64_t> query_keys,
                                             size_t window);

/// Serialized section payload (the v3 arena's ann_graph section,
/// storage/index_arena.h):
///   u32 format_version (= kAnnGraphFormatVersion)
///   u32 degree_bound
///   u32 entry_point
///   u32 reserved (0)
///   u64 num_nodes
///   u64 num_edges
///   u64 offsets[num_nodes + 1]
///   u32 neighbors[num_edges]
/// Fixed little-endian-native layout like every other arena section; the
/// 32-byte scalar header keeps the u64 offsets 8-aligned whenever the
/// payload itself is 8-aligned (arena sections are 64-byte aligned).
inline constexpr uint32_t kAnnGraphFormatVersion = 1;

std::string SerializeProximityGraph(const ProximityGraph& graph);

/// Validates a section payload and returns a ref pointing INTO `data`
/// (zero-copy; `data` must be 8-byte aligned and outlive the ref).
/// Checks the format version, the exact payload length, entry_point and
/// every neighbor id against num_nodes, and the offsets array
/// (offsets[0] == 0, nondecreasing, ends at num_edges) — O(nodes + edges)
/// once at open, so query-time navigation is unchecked. `expected_nodes`
/// cross-checks the graph against the artifact's corpus size.
Result<ProximityGraphRef> ParseProximityGraphSection(
    const void* data, size_t length, uint64_t expected_nodes,
    const std::string& source);

}  // namespace gbda
