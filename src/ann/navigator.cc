#include "ann/navigator.h"

#include <algorithm>
#include <utility>

namespace gbda {

Result<AnnContext> AnnContext::Build(FingerprintStore store,
                                     const AnnBuildParams& params) {
  AnnContext ctx;
  Result<ProximityGraph> graph = BuildProximityGraph(store, params);
  if (!graph.ok()) return graph.status();
  ctx.store_ = std::move(store);
  ctx.owned_ = std::move(*graph);
  return ctx;
}

Result<AnnContext> AnnContext::Adopt(FingerprintStore store,
                                     const ProximityGraphRef& graph) {
  if (graph.offsets == nullptr) {
    return Status::InvalidArgument("cannot adopt an unset proximity graph");
  }
  if (graph.num_nodes != store.size()) {
    return Status::FailedPrecondition(
        "proximity graph covers " + std::to_string(graph.num_nodes) +
        " nodes but the fingerprint store holds " +
        std::to_string(store.size()) + " graphs");
  }
  AnnContext ctx;
  ctx.store_ = std::move(store);
  ctx.adopted_ = graph;
  return ctx;
}

Status AnnSearchTopK(const AnnContext& ann, const ScanContext& ctx,
                     const IndexReader& index, const Prefilter* prefilter,
                     size_t k, PosteriorEngine* posterior,
                     SearchResult* result) {
  if (ctx.apply_gamma) {
    return Status::InvalidArgument(
        "approximate navigation serves ranking queries only (threshold "
        "queries are defined over the whole corpus)");
  }
  if (k == 0 || k == kScanAllMatches) {
    return Status::InvalidArgument(
        "approximate navigation needs a concrete k >= 1");
  }
  // The window can always hold a full result; a window below k could only
  // lower recall with nothing saved.
  const size_t window = std::max(ctx.options.search_window_size, k);
  const std::vector<uint32_t> visited = NavigateProximityGraph(
      ann.graph(), ann.store(),
      Span<const uint64_t>(ctx.query_profile.branch_keys.data(),
                           ctx.query_profile.branch_keys.size()),
      window);
  result->candidates_visited += visited.size();
  // The same PR-5 early termination the exhaustive ranking scan arms: only
  // provably strictly-worse candidates of the VISITED set are skipped, so
  // the survivors still contain its exact top-k. k >= |visited| can never
  // prune; skip the witness bookkeeping like the full scan does.
  const bool early_terminate =
      ctx.options.topk_early_termination && k < visited.size();
  ScanBounds bounds(k);
  GBDA_RETURN_IF_ERROR(ScanCandidateList(ctx, index, prefilter, visited,
                                         posterior, result,
                                         early_terminate ? &bounds : nullptr));
  SortTopK(&result->matches, k);
  return Status::OK();
}

}  // namespace gbda
