/// \file navigator.h
/// The query-time half of approximate mode: AnnContext bundles everything
/// navigation needs over one corpus (the fingerprint store plus a
/// proximity graph, owned or mmap-borrowed), and AnnSearchTopK runs
/// navigate-then-verify for one prepared query — beam search picks
/// candidates, core's ScanCandidateList scores them with the exact
/// posterior arithmetic and the PR-5 admissible bounds. The serving layers
/// (GbdaService, DynamicGbdaService) hold one AnnContext per corpus /
/// snapshot; see docs/ARCHITECTURE.md, "Approximate candidate navigation".

#pragma once

#include <string>

#include "ann/proximity_graph.h"
#include "common/result.h"
#include "core/gbda_search.h"
#include "core/posterior.h"
#include "core/prefilter.h"

namespace gbda {

/// Immutable per-corpus navigation state. Thread-safe for concurrent
/// readers after construction (everything is read-only). Movable; the
/// graph ref tracks the owned graph across moves (vector buffers are
/// stable under move).
class AnnContext {
 public:
  /// Builds the proximity graph offline over `store` (BuildProximityGraph)
  /// and owns it. The expensive path — O(corpus * build cost) — run once
  /// per corpus/snapshot and cached by the services.
  static Result<AnnContext> Build(FingerprintStore store,
                                  const AnnBuildParams& params);

  /// Adopts an already-validated graph (a mapped arena section,
  /// GbdaIndexView::ann_graph()) instead of building one. The mapped
  /// storage must outlive the context. Fails when the graph's node count
  /// does not match the store.
  static Result<AnnContext> Adopt(FingerprintStore store,
                                  const ProximityGraphRef& graph);

  ProximityGraphRef graph() const {
    return adopted_.offsets != nullptr ? adopted_ : owned_.ref();
  }
  const FingerprintStore& store() const { return store_; }
  /// The graph this context owns, if Build made it — empty after Adopt.
  /// Used by callers persisting the graph (gbda_indexctl).
  const ProximityGraph& owned_graph() const { return owned_; }

 private:
  AnnContext() = default;

  FingerprintStore store_;
  ProximityGraph owned_;
  ProximityGraphRef adopted_;
};

/// Approximate top-k for one prepared query: navigate the proximity graph
/// with a window of max(ctx.options.search_window_size, k), then verify
/// every visited candidate through ScanCandidateList — the same admission,
/// scoring and early-termination arithmetic as the exhaustive scan — and
/// sort/truncate the survivors to the top k. The result is a subset of the
/// exhaustive top-k with bit-exact scores; with a window >= corpus size it
/// IS the exhaustive top-k (the repair pass guarantees full reachability).
///
/// `ctx` must be a ranking context (apply_gamma == false) prepared with
/// options.approximate set, against the same index/corpus the context's
/// store was built from; `k >= 1`. Fills candidates_visited (navigation),
/// verified_count / pruned_by_bound (verification) and the deterministic
/// candidates_evaluated / prefiltered_out counters over the visited set.
/// Thread-compatible under ScanRange's rules (own posterior + result per
/// concurrent call).
Status AnnSearchTopK(const AnnContext& ann, const ScanContext& ctx,
                     const IndexReader& index, const Prefilter* prefilter,
                     size_t k, PosteriorEngine* posterior,
                     SearchResult* result);

}  // namespace gbda
