/// \file mutex.h
/// Annotated mutex / condition-variable wrappers (docs/ARCHITECTURE.md,
/// "Correctness tooling"). gbda::Mutex is a std::mutex carrying the Clang
/// thread-safety `capability` attribute, so members declared
/// GBDA_GUARDED_BY(mu) are compile-time checked under -Wthread-safety;
/// gbda::MutexLock is the scoped acquisition the analysis tracks; and
/// gbda::CondVar wraps std::condition_variable with GBDA_REQUIRES-annotated
/// waits, so a wait on a mutex the caller does not hold is a build error
/// instead of UB. Zero overhead: every method is an inline forward to the
/// underlying std type, and off-Clang the annotations vanish entirely
/// (common/thread_annotations.h).

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace gbda {

/// std::mutex as a Clang thread-safety capability. Prefer MutexLock over
/// calling Lock()/Unlock() directly; the raw pair exists for the rare
/// split-scope acquisition and stays visible to the analysis.
class GBDA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GBDA_ACQUIRE() { mu_.lock(); }
  void Unlock() GBDA_RELEASE() { mu_.unlock(); }
  bool TryLock() GBDA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // waits need the raw handle to re-lock atomically
  std::mutex mu_;
};

/// RAII scoped lock over gbda::Mutex — the annotated analogue of
/// std::lock_guard. Takes a pointer so the acquisition reads as
/// `MutexLock lock(&mu_);` and cannot silently copy a mutex.
class GBDA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) GBDA_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() GBDA_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to gbda::Mutex. Every wait requires the mutex
/// to be held (compile-time checked); the wait releases it while blocked
/// and re-acquires it before returning, exactly like the std type —
/// annotated GBDA_REQUIRES because from the analysis's point of view the
/// capability is held on entry and on exit.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Blocks until notified; spurious wakeups happen. There is deliberately
  /// no predicate overload: a lambda predicate is opaque to the
  /// thread-safety analysis, so waits are written as explicit
  /// `while (!cond) cv.Wait(mu);` loops whose guarded reads stay checked.
  void Wait(Mutex& mu) GBDA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope (MutexLock) still owns the mutex
  }

  /// Timed wait; returns std::cv_status::timeout when `deadline` passed
  /// without a notification.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           const std::chrono::time_point<Clock, Duration>&
                               deadline) GBDA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace gbda
