#include "common/kernels.h"

#include <algorithm>
#include <cstdlib>

namespace gbda {
namespace {

// -- Scalar reference implementations ----------------------------------------
// These are THE semantics: the AVX2 table (kernels_avx2.cc) and every
// consumer (core/prefilter.cc delegates its fingerprint merges here) are
// gated against them bit-for-bit.

// Branchless merge: branch fingerprints are effectively random, so the
// classic three-way if/else merge mispredicts its direction branch about
// half the time (~15 cycles a pop — it dominated the whole scan in
// profiles). Advancing both cursors by comparison results instead turns
// each step into a handful of flag-to-register ops with no unpredictable
// branch. Equal keys advance BOTH sides, which is exactly the
// one-match-consumes-one-element multiset rule.
int64_t IntersectCountScalar(const uint64_t* a, size_t na, const uint64_t* b,
                             size_t nb) {
  size_t i = 0, j = 0;
  int64_t common = 0;
  while (i < na && j < nb) {
    const uint64_t ai = a[i];
    const uint64_t bj = b[j];
    common += static_cast<int64_t>(ai == bj);
    i += static_cast<size_t>(ai <= bj);
    j += static_cast<size_t>(bj <= ai);
  }
  return common;
}

bool IntersectAtMostScalar(const uint64_t* a, size_t na, const uint64_t* b,
                           size_t nb, int64_t cap) {
  if (cap < 0) return false;
  size_t i = 0, j = 0;
  int64_t common = 0;
  while (i < na && j < nb) {
    // The intersection can still grow by at most min(tails). Both exit
    // branches fire at most once, so they stay predicted and the loop keeps
    // the branchless-merge cadence of IntersectCountScalar.
    const int64_t possible =
        common + static_cast<int64_t>(std::min(na - i, nb - j));
    if (possible <= cap) return true;
    const uint64_t ai = a[i];
    const uint64_t bj = b[j];
    common += static_cast<int64_t>(ai == bj);
    if (common > cap) return false;
    i += static_cast<size_t>(ai <= bj);
    j += static_cast<size_t>(bj <= ai);
  }
  return common <= cap;
}

void Tier1SizeBoundsScalar(const uint32_t* sizes, size_t n,
                           uint32_t query_size, uint32_t* out_lb) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t s = sizes[i];
    out_lb[i] = s >= query_size ? s - query_size : query_size - s;
  }
}

const ScanKernels kScalarKernels = {
    &IntersectCountScalar,
    &IntersectAtMostScalar,
    &Tier1SizeBoundsScalar,
    "scalar",
};

}  // namespace

bool CpuSupportsAvx2() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  // __builtin_cpu_supports folds cpuid leaf 7 AVX2 with the xgetbv/OSXSAVE
  // check, so it is false when the OS does not save ymm state.
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

bool ScalarKernelsForcedByEnv() {
  const char* v = std::getenv("GBDA_FORCE_SCALAR_KERNELS");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

KernelImpl ResolveKernels(KernelDispatch requested) {
  if (ScalarKernelsForcedByEnv()) return KernelImpl::kScalar;
  switch (requested) {
    case KernelDispatch::kForceScalar:
      return KernelImpl::kScalar;
    case KernelDispatch::kForceAvx2:
    case KernelDispatch::kAuto:
      break;
  }
  return CpuSupportsAvx2() && internal::Avx2ScanKernels() != nullptr
             ? KernelImpl::kAvx2
             : KernelImpl::kScalar;
}

const char* KernelImplName(KernelImpl impl) {
  return impl == KernelImpl::kAvx2 ? "avx2" : "scalar";
}

const ScanKernels& GetScanKernels(KernelImpl impl) {
  if (impl == KernelImpl::kAvx2) {
    const ScanKernels* avx2 = internal::Avx2ScanKernels();
    if (avx2 != nullptr) return *avx2;
  }
  return kScalarKernels;
}

}  // namespace gbda
