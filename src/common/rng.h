#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gbda {

/// Deterministic pseudo-random generator (xoshiro256** seeded via splitmix64).
///
/// Every stochastic component in the library (samplers, generators, GMM init)
/// takes an explicit Rng so experiments are reproducible from a single seed.
/// Not thread-safe; use one Rng per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal variate (Marsaglia polar method).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n). Requires k <= n.
  /// O(n) reservoir-free selection (partial Fisher-Yates over an index array
  /// when k is large, Floyd's algorithm when k is small).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Index in [0, weights.size()) drawn proportionally to non-negative weights.
  /// Returns weights.size() when all weights are zero or the vector is empty.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Derives an independent child generator; convenient for spawning one Rng
  /// per worker from a master seed.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace gbda
