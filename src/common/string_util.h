#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace gbda {

/// Splits `s` on `sep`, dropping empty tokens when `keep_empty` is false.
std::vector<std::string> Split(std::string_view s, char sep, bool keep_empty = false);

/// Joins tokens with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

/// Strict integer / floating-point parsers (whole string must parse).
Result<int64_t> ParseInt(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable byte count ("1.5 KB", "13.3 GB").
std::string HumanBytes(uint64_t bytes);

/// Human-readable duration ("231.4 ms", "3.8 h").
std::string HumanSeconds(double seconds);

}  // namespace gbda
