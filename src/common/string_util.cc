#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gbda {

std::vector<std::string> Split(std::string_view s, char sep, bool keep_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    std::string_view token = s.substr(start, end - start);
    if (keep_empty || !token.empty()) out.emplace_back(token);
    if (end == s.size()) break;
    start = end + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty integer token");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty float token");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("float out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a float: " + buf);
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  size_t u = 0;
  while (v >= 1024.0 && u + 1 < sizeof(units) / sizeof(units[0])) {
    v /= 1024.0;
    ++u;
  }
  return StrFormat(u == 0 ? "%.0f %s" : "%.2f %s", v, units[u]);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1e-3) return StrFormat("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.1f ms", seconds * 1e3);
  if (seconds < 120.0) return StrFormat("%.2f s", seconds);
  if (seconds < 7200.0) return StrFormat("%.1f min", seconds / 60.0);
  return StrFormat("%.2f h", seconds / 3600.0);
}

}  // namespace gbda
