/// \file thread_annotations.h
/// Clang thread-safety annotation macros (docs/ARCHITECTURE.md,
/// "Correctness tooling"). Under Clang these expand to the attributes the
/// `-Wthread-safety` analysis consumes ("C/C++ Thread Safety Analysis",
/// Hutchins et al.), turning every locking discipline comment in this
/// repo into a compile-time proof obligation; under every other compiler
/// they expand to nothing, so GCC/MSVC builds are unaffected. CI's lint
/// lane builds with clang++ and -Werror=thread-safety, so an access to a
/// GBDA_GUARDED_BY member without its mutex fails the build.
///
/// Conventions (enforced across src/):
///   - Shared mutable state is declared with GBDA_GUARDED_BY(mu); the
///     mutex member is a gbda::Mutex (common/mutex.h), never a bare
///     std::mutex, so the capability is visible to the analysis.
///   - Private helpers that assume the lock is already held are annotated
///     GBDA_REQUIRES(mu) instead of re-locking.
///   - The rare deliberate escape (e.g. an accessor documented to need
///     external synchronization, or a move constructor whose source must
///     be quiescent) is marked GBDA_NO_THREAD_SAFETY_ANALYSIS with a
///     comment justifying it — grep for the macro to audit every escape.

#pragma once

#if defined(__clang__)
#define GBDA_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define GBDA_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Declares a class to be a lockable capability ("mutex" names it in
/// diagnostics).
#define GBDA_CAPABILITY(x) GBDA_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class that acquires a capability at construction and
/// releases it at destruction (e.g. MutexLock).
#define GBDA_SCOPED_CAPABILITY GBDA_THREAD_ANNOTATION__(scoped_lockable)

/// The member is protected by the given mutex: reads and writes require it.
#define GBDA_GUARDED_BY(x) GBDA_THREAD_ANNOTATION__(guarded_by(x))

/// The pointed-to data (not the pointer itself) is protected by the mutex.
#define GBDA_PT_GUARDED_BY(x) GBDA_THREAD_ANNOTATION__(pt_guarded_by(x))

/// The function acquires the capability and holds it on return.
#define GBDA_ACQUIRE(...) \
  GBDA_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// The function releases the capability.
#define GBDA_RELEASE(...) \
  GBDA_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// The caller must hold the capability (exclusively) when calling.
#define GBDA_REQUIRES(...) \
  GBDA_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (the function acquires it
/// itself; calling with it held would self-deadlock).
#define GBDA_EXCLUDES(...) \
  GBDA_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Try-lock: acquires the capability iff the returned value equals the
/// first argument.
#define GBDA_TRY_ACQUIRE(...) \
  GBDA_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define GBDA_RETURN_CAPABILITY(x) GBDA_THREAD_ANNOTATION__(lock_returned(x))

/// Asserts (at runtime, from the analysis's point of view) that the
/// capability is held — for code reached only under the lock through a
/// path the analysis cannot see.
#define GBDA_ASSERT_CAPABILITY(x) \
  GBDA_THREAD_ANNOTATION__(assert_capability(x))

/// Opts one function out of the analysis entirely. Every use carries a
/// comment justifying why the access pattern is safe.
#define GBDA_NO_THREAD_SAFETY_ANALYSIS \
  GBDA_THREAD_ANNOTATION__(no_thread_safety_analysis)
