#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"

namespace gbda {

/// Tiny append-only binary encoder used for index persistence. Fixed-width
/// little-endian integers and IEEE doubles; strings and vectors are
/// length-prefixed. Matching decoder below returns Status on truncation.
class BinaryWriter {
 public:
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutString(const std::string& s) {
    PutU64(s.size());
    buffer_.append(s);
  }
  template <typename T>
  void PutPodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutU64(v.size());
    if (!v.empty()) PutRaw(v.data(), v.size() * sizeof(T));
  }

  const std::string& buffer() const { return buffer_; }
  std::string&& TakeBuffer() { return std::move(buffer_); }

 private:
  void PutRaw(const void* p, size_t n) {
    buffer_.append(static_cast<const char*>(p), n);
  }
  std::string buffer_;
};

/// Sequential decoder over a byte buffer; every getter checks bounds.
///
/// Pass a `source` (file path, section name) so every failure message names
/// the artifact and the byte offset of the bad record — corrupt-file triage
/// is actionable without a hex dump ("truncated vector at byte 18244 of
/// /data/aids.idx" instead of "truncated vector").
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data, std::string source = {})
      : data_(data), source_(std::move(source)) {}

  Result<uint32_t> GetU32() { return GetPod<uint32_t>(); }
  Result<uint64_t> GetU64() { return GetPod<uint64_t>(); }
  Result<int64_t> GetI64() { return GetPod<int64_t>(); }
  Result<double> GetDouble() { return GetPod<double>(); }

  Result<std::string> GetString() {
    const size_t at = pos_;
    Result<uint64_t> len = GetU64();
    if (!len.ok()) return len.status();
    // Compare against the bytes left, never against pos_ + *len: a hostile
    // length prefix near UINT64_MAX would wrap that sum past data_.size().
    if (*len > remaining()) {
      return Status::OutOfRange(Describe("truncated string", at));
    }
    std::string out(data_.substr(pos_, static_cast<size_t>(*len)));
    pos_ += static_cast<size_t>(*len);
    return out;
  }

  template <typename T>
  Result<std::vector<T>> GetPodVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t at = pos_;
    Result<uint64_t> len = GetU64();
    if (!len.ok()) return len.status();
    // *len * sizeof(T) can wrap in uint64 (e.g. len = 2^61 + 1 with an
    // 8-byte T), so bound the element count, not the byte count.
    if (*len > remaining() / sizeof(T)) {
      return Status::OutOfRange(Describe("truncated vector", at));
    }
    const size_t bytes = static_cast<size_t>(*len) * sizeof(T);
    std::vector<T> out(static_cast<size_t>(*len));
    if (bytes > 0) std::memcpy(out.data(), data_.data() + pos_, bytes);
    pos_ += bytes;
    return out;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }
  /// Bytes left to decode. Decoders validate on-disk element counts against
  /// this before allocating (a corrupt count must never drive a huge
  /// allocation; see GbdaIndex::LoadFromFile).
  size_t remaining() const { return data_.size() - pos_; }

  /// The artifact name failures are attributed to ("" when unnamed).
  const std::string& source() const { return source_; }
  /// "<what> at byte <offset> of <source>" — the error wording used by this
  /// reader's own failures, reusable by decoders layered on top of it (e.g.
  /// GbdaIndex::LoadFromFile) so the whole decode path reports uniformly.
  std::string Describe(const std::string& what, size_t offset) const {
    std::string msg = "binary decode: " + what + " at byte " +
                      std::to_string(offset);
    if (!source_.empty()) msg += " of " + source_;
    return msg;
  }
  std::string DescribeHere(const std::string& what) const {
    return Describe(what, pos_);
  }

 private:
  template <typename T>
  Result<T> GetPod() {
    if (sizeof(T) > remaining()) {
      return Status::OutOfRange(Describe("truncated value", pos_));
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  std::string source_;
  size_t pos_ = 0;
};

}  // namespace gbda
