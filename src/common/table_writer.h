#pragma once

#include <string>
#include <vector>

namespace gbda {

/// Fixed-width ASCII table emitter used by the benchmark harness to print
/// paper-style tables and figure series. Also exports CSV for plotting.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends one row; the cell count must match the header count (extra cells
  /// are dropped, missing cells are blank).
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns.
  std::string ToAscii() const;

  /// Renders as comma-separated values (quotes cells containing commas).
  std::string ToCsv() const;

  /// Prints the ASCII rendering to stdout with an optional caption line.
  void Print(const std::string& caption = "") const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gbda
