#include "common/status.h"

namespace gbda {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace gbda
