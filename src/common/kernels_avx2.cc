/// \file kernels_avx2.cc
/// The AVX2 half of the scan-kernel dispatch table (common/kernels.h).
/// This is the ONLY translation unit compiled with -mavx2 (see
/// src/common/CMakeLists.txt), so the rest of the library stays runnable
/// on any x86-64 baseline; callers reach this code exclusively through
/// GetScanKernels after a cpuid check. When the toolchain cannot target
/// AVX2 (non-x86), the TU compiles to a nullptr table and dispatch
/// resolves to scalar.
///
/// Bit-identity contract: every function returns exactly what its scalar
/// reference in kernels.cc returns.
///
/// The intersection kernels process the two sorted key arrays in 4-lane
/// windows: one all-pairs 4x4 equality test (four compares against the
/// rotations of the other window) counts the matches inside the window
/// pair, then the window whose maximum is smaller advances whole. With
/// each window internally duplicate-free this pairwise count IS the
/// multiset intersection count restricted to the windows:
///
///  - every counted pair is a one-for-one match (a value occurs at most
///    once per window on either side);
///  - nothing is missed: a discarded window's keys are all <= its max,
///    and every unprocessed key on the other side is >= that side's window
///    max >= the discarded max, with equality only when the max continues
///    as a run into the next window — excluded by the boundary guard;
///  - nothing is double-counted: a key from the retained window can match
///    again only if the advancing side repeats its max across the window
///    boundary — the same excluded run shape.
///
/// Windows that DO contain a duplicate (or a boundary-spanning run) fall
/// back to a short burst of the scalar rule, so collision-heavy multisets
/// stay exact; and because a corpus's duplicate density is a global
/// property, the loop samples its first window decisions and hands the
/// whole remainder to the branchless scalar merge when fallbacks dominate
/// — duplicate-light lists get the SIMD win, duplicate-heavy ones degrade
/// to scalar cadence instead of below it. The early exits of the capped
/// form are sound under any schedule (they only fire when the final
/// answer is already decided), so taking them at window granularity
/// changes nothing observable.

#include "common/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace gbda {
namespace {

/// Lane mask (one bit per 64-bit lane) of pairwise matches between a's
/// window and ANY lane of b's window. Precondition: both windows are
/// internally duplicate-free, so each set bit is exactly one one-for-one
/// match.
inline unsigned WindowMatchMask(__m256i va, __m256i vb) {
  const __m256i r1 = _mm256_permute4x64_epi64(vb, _MM_SHUFFLE(0, 3, 2, 1));
  const __m256i r2 = _mm256_permute4x64_epi64(vb, _MM_SHUFFLE(1, 0, 3, 2));
  const __m256i r3 = _mm256_permute4x64_epi64(vb, _MM_SHUFFLE(2, 1, 0, 3));
  __m256i eq = _mm256_cmpeq_epi64(va, vb);
  eq = _mm256_or_si256(eq, _mm256_cmpeq_epi64(va, r1));
  eq = _mm256_or_si256(eq, _mm256_cmpeq_epi64(va, r2));
  eq = _mm256_or_si256(eq, _mm256_cmpeq_epi64(va, r3));
  return static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
}

/// True when either window holds an adjacent equal pair (sorted input, so
/// any duplicate inside a window is adjacent). Lane 0 of the shifted
/// compare is lane-0-vs-itself noise and masked off.
inline bool WindowsHaveDuplicates(__m256i va, __m256i vb) {
  const __m256i sa = _mm256_permute4x64_epi64(va, _MM_SHUFFLE(2, 1, 0, 0));
  const __m256i sb = _mm256_permute4x64_epi64(vb, _MM_SHUFFLE(2, 1, 0, 0));
  const __m256i dup = _mm256_or_si256(_mm256_cmpeq_epi64(va, sa),
                                      _mm256_cmpeq_epi64(vb, sb));
  return (static_cast<unsigned>(
              _mm256_movemask_pd(_mm256_castsi256_pd(dup))) &
          0xEu) != 0;
}

int64_t IntersectCountAvx2(const uint64_t* a, size_t na, const uint64_t* b,
                           size_t nb) {
  size_t i = 0, j = 0;
  int64_t common = 0;
  // Duplicate-density adaptation: the window fast path needs both 4-lane
  // windows duplicate-free, so its hit rate collapses on collision-heavy
  // multisets (molecule corpora sit around 15% adjacent duplicates, leaving
  // only ~1/3 of window pairs clean). The first window decisions sample
  // that density; when trips dominate, the loop abandons windows and the
  // scalar tail below finishes the merge at full branchless cadence.
  int trips = 0, hits = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    if (trips >= 4 && trips > hits) break;
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const uint64_t amax = a[i + 3];
    const uint64_t bmax = b[j + 3];
    const bool a_adv = amax <= bmax;
    const bool b_adv = bmax <= amax;
    bool run = WindowsHaveDuplicates(va, vb);
    run |= a_adv && i + 4 < na && a[i + 4] == amax;
    run |= b_adv && j + 4 < nb && b[j + 4] == bmax;
    if (run) {
      // A duplicate run touches the window pair. One scalar step per trip
      // would pay the full window setup again for a single advance, so
      // burst four branchless steps (the scalar rule is sound from any
      // position) before re-forming the windows.
      ++trips;
      for (int s = 0; s < 4 && i < na && j < nb; ++s) {
        const uint64_t ai = a[i];
        const uint64_t bj = b[j];
        common += static_cast<int64_t>(ai == bj);
        i += static_cast<size_t>(ai <= bj);
        j += static_cast<size_t>(bj <= ai);
      }
      continue;
    }
    ++hits;
    common += __builtin_popcount(WindowMatchMask(va, vb));
    i += static_cast<size_t>(a_adv) * 4;
    j += static_cast<size_t>(b_adv) * 4;
  }
  // Branchless scalar tail, same as the reference.
  while (i < na && j < nb) {
    const uint64_t ai = a[i];
    const uint64_t bj = b[j];
    common += static_cast<int64_t>(ai == bj);
    i += static_cast<size_t>(ai <= bj);
    j += static_cast<size_t>(bj <= ai);
  }
  return common;
}

bool IntersectAtMostAvx2(const uint64_t* a, size_t na, const uint64_t* b,
                         size_t nb, int64_t cap) {
  if (cap < 0) return false;
  size_t i = 0, j = 0;
  int64_t common = 0;
  // Same duplicate-density adaptation as IntersectCountAvx2.
  int trips = 0, hits = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    if (trips >= 4 && trips > hits) break;
    // Same sound exits as the scalar reference: min(tails) bounds further
    // growth, and a count past the cap is final either way — both only
    // fire when `count <= cap` is already decided, so evaluating them once
    // per window yields the identical decision.
    const int64_t possible =
        common + static_cast<int64_t>(std::min(na - i, nb - j));
    if (possible <= cap) return true;
    if (common > cap) return false;
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const uint64_t amax = a[i + 3];
    const uint64_t bmax = b[j + 3];
    const bool a_adv = amax <= bmax;
    const bool b_adv = bmax <= amax;
    bool run = WindowsHaveDuplicates(va, vb);
    run |= a_adv && i + 4 < na && a[i + 4] == amax;
    run |= b_adv && j + 4 < nb && b[j + 4] == bmax;
    if (run) {
      // Same bounded scalar burst as the uncapped form; the cap exit is
      // re-evaluated at the head of the loop.
      ++trips;
      for (int s = 0; s < 4 && i < na && j < nb; ++s) {
        const uint64_t ai = a[i];
        const uint64_t bj = b[j];
        common += static_cast<int64_t>(ai == bj);
        i += static_cast<size_t>(ai <= bj);
        j += static_cast<size_t>(bj <= ai);
      }
      if (common > cap) return false;
      continue;
    }
    ++hits;
    common += __builtin_popcount(WindowMatchMask(va, vb));
    i += static_cast<size_t>(a_adv) * 4;
    j += static_cast<size_t>(b_adv) * 4;
  }
  while (i < na && j < nb) {
    const int64_t possible =
        common + static_cast<int64_t>(std::min(na - i, nb - j));
    if (possible <= cap) return true;
    const uint64_t ai = a[i];
    const uint64_t bj = b[j];
    common += static_cast<int64_t>(ai == bj);
    if (common > cap) return false;
    i += static_cast<size_t>(ai <= bj);
    j += static_cast<size_t>(bj <= ai);
  }
  return common <= cap;
}

void Tier1SizeBoundsAvx2(const uint32_t* sizes, size_t n, uint32_t query_size,
                         uint32_t* out_lb) {
  const __m256i vq = _mm256_set1_epi32(static_cast<int>(query_size));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sizes + i));
    // |s - q| on unsigned lanes as max(s, q) - min(s, q).
    const __m256i d = _mm256_sub_epi32(_mm256_max_epu32(vs, vq),
                                       _mm256_min_epu32(vs, vq));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_lb + i), d);
  }
  for (; i < n; ++i) {
    const uint32_t s = sizes[i];
    out_lb[i] = s >= query_size ? s - query_size : query_size - s;
  }
}

const ScanKernels kAvx2Kernels = {
    &IntersectCountAvx2,
    &IntersectAtMostAvx2,
    &Tier1SizeBoundsAvx2,
    "avx2",
};

}  // namespace

namespace internal {
const ScanKernels* Avx2ScanKernels() { return &kAvx2Kernels; }
}  // namespace internal

}  // namespace gbda

#else  // !defined(__AVX2__)

namespace gbda {
namespace internal {
const ScanKernels* Avx2ScanKernels() { return nullptr; }
}  // namespace internal
}  // namespace gbda

#endif
