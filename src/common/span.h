/// \file span.h
/// A minimal read-only view over a contiguous sequence, standing in for
/// C++20's std::span<const T> in this C++17 tree. Used by batch APIs
/// (GbdaService::QueryBatch) so callers can pass a vector, an array, or a
/// single object without copying. The viewed storage must outlive the Span.

#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

namespace gbda {

template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  /// Implicit from a vector (the common call site). The element type is
  /// cv-stripped so Span<const T> accepts a vector<T> — vector<const T>
  /// itself is ill-formed, and merely naming it (e.g. during overload
  /// resolution against a Span<const T> parameter) is a hard error.
  Span(const std::vector<std::remove_cv_t<T>>& v)
      : data_(v.data()), size_(v.size()) {}

  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr const T& operator[](size_t i) const { return data_[i]; }
  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace gbda
