#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace gbda {

/// Value-or-error return type (the StatusOr idiom). A Result is either OK and
/// holds a T, or holds a non-OK Status and no value. Accessing the value of a
/// failed Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from a non-OK status: failure. Constructing from an OK status
  /// without a value is invalid and converted to an Internal error.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without value");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when this Result failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>), propagating failure; on success assigns the
/// value to `lhs`. Usable in functions returning Status or Result<U>.
#define GBDA_ASSIGN_OR_RETURN(lhs, expr)               \
  do {                                                 \
    auto _res = (expr);                                \
    if (!_res.ok()) return _res.status();              \
    lhs = std::move(_res).value();                     \
  } while (0)

}  // namespace gbda
