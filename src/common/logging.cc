#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace gbda {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::once_flag g_env_once;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// GBDA_LOG_LEVEL accepts a level name (debug/info/warn[ing]/error, any case)
// or the numeric enum value. Applied once, lazily; SetLogLevel overrides it.
void ApplyEnvLevel() {
  const char* v = std::getenv("GBDA_LOG_LEVEL");
  if (v == nullptr || v[0] == '\0') return;
  std::string s;
  for (const char* p = v; *p != '\0'; ++p) s.push_back(static_cast<char>(std::tolower(*p)));
  if (s == "debug" || s == "0") {
    g_level.store(LogLevel::kDebug);
  } else if (s == "info" || s == "1") {
    g_level.store(LogLevel::kInfo);
  } else if (s == "warn" || s == "warning" || s == "2") {
    g_level.store(LogLevel::kWarning);
  } else if (s == "error" || s == "3") {
    g_level.store(LogLevel::kError);
  } else {
    std::fprintf(stderr, "[gbda WARN] unrecognized GBDA_LOG_LEVEL '%s' ignored\n", v);
  }
}

void EnsureEnvLevel() { std::call_once(g_env_once, ApplyEnvLevel); }

// Small sequential per-thread id: stable within a run, readable in logs
// (unlike the opaque pthread handle).
uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  EnsureEnvLevel();  // settle the env default so this call wins the race
  g_level.store(level);
}

LogLevel GetLogLevel() {
  EnsureEnvLevel();
  return g_level.load();
}

std::string FormatLogLine(LogLevel level, const std::string& msg) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char stamp[64];
  std::snprintf(stamp, sizeof(stamp), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(millis));
  std::string out = "[";
  out += stamp;
  out += " t";
  out += std::to_string(ThisThreadId());
  out += " gbda ";
  out += LevelName(level);
  out += "] ";
  out += msg;
  return out;
}

void Log(LogLevel level, const std::string& msg) {
  EnsureEnvLevel();
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const std::string line = FormatLogLine(level, msg);
  std::fprintf(stderr, "%s\n", line.c_str());
}

void LogDebug(const std::string& msg) { Log(LogLevel::kDebug, msg); }
void LogInfo(const std::string& msg) { Log(LogLevel::kInfo, msg); }
void LogWarning(const std::string& msg) { Log(LogLevel::kWarning, msg); }
void LogError(const std::string& msg) { Log(LogLevel::kError, msg); }

}  // namespace gbda
