#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace gbda {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void Log(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[gbda %s] %s\n", LevelName(level), msg.c_str());
}

void LogDebug(const std::string& msg) { Log(LogLevel::kDebug, msg); }
void LogInfo(const std::string& msg) { Log(LogLevel::kInfo, msg); }
void LogWarning(const std::string& msg) { Log(LogLevel::kWarning, msg); }
void LogError(const std::string& msg) { Log(LogLevel::kError, msg); }

}  // namespace gbda
