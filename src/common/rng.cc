#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

namespace gbda {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // xoshiro must not start in the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = range * (UINT64_MAX / range);
  uint64_t x;
  do {
    x = NextUint64();
  } while (x >= limit);
  return lo + static_cast<int64_t>(x % range);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k > n) k = n;
  std::vector<size_t> out;
  out.reserve(k);
  if (k * 4 >= n) {
    // Partial Fisher-Yates: O(n) memory, exact.
    std::vector<size_t> idx(n);
    std::iota(idx.begin(), idx.end(), size_t{0});
    for (size_t i = 0; i < k; ++i) {
      size_t j = static_cast<size_t>(
          UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
  } else {
    // Floyd's algorithm: O(k) memory, good when k << n.
    std::unordered_set<size_t> seen;
    for (size_t i = n - k; i < n; ++i) {
      size_t t = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      if (!seen.insert(t).second) {
        seen.insert(i);
        out.push_back(i);
      } else {
        out.push_back(t);
      }
    }
  }
  return out;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.size();
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  // Floating-point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size();
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace gbda
