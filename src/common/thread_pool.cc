#include "common/thread_pool.h"

#include <algorithm>

namespace gbda {

namespace {
// The slot records which pool the index belongs to: worker indices are only
// meaningful relative to their own pool, and with several pools alive a bare
// index would let pool B's worker 2 masquerade as pool A's worker 2.
struct TlsWorkerSlot {
  const ThreadPool* pool = nullptr;
  size_t index = ThreadPool::kNotAWorker;
};
thread_local TlsWorkerSlot tls_worker_slot;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::CurrentWorkerIndex() const {
  return tls_worker_slot.pool == this ? tls_worker_slot.index : kNotAWorker;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_worker_slot = {this, index};
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      // Explicit predicate loop (not a lambda) so the guarded accesses stay
      // visible to the thread-safety analysis.
      while (!stop_ && queue_.empty()) cv_.Wait(mutex_);
      // Exit only once the queue is drained, so destruction never drops
      // already-submitted tasks.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace gbda
