#include "common/table_writer.h"

#include <algorithm>
#include <cstdio>

namespace gbda {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::ToAscii() const {
  std::vector<size_t> width(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "+";
  }
  sep += "\n";
  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string TableWriter::ToCsv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find(',') == std::string::npos &&
        cell.find('"') == std::string::npos) {
      return cell;
    }
    std::string q = "\"";
    for (char ch : cell) {
      if (ch == '"') q += '"';
      q += ch;
    }
    return q + "\"";
  };
  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += quote(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c) out += ',';
      if (c < row.size()) out += quote(row[c]);
    }
    out += '\n';
  }
  return out;
}

void TableWriter::Print(const std::string& caption) const {
  if (!caption.empty()) std::printf("%s\n", caption.c_str());
  std::printf("%s", ToAscii().c_str());
  std::fflush(stdout);
}

}  // namespace gbda
