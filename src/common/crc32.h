/// \file crc32.h
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used for artifact
/// integrity: the v2 index footer (core/gbda_index.cc) and the per-section
/// checksums of the v3 arena format (storage/index_arena.h). Table-driven,
/// no external dependencies; matches zlib's crc32() bit for bit so artifacts
/// can be cross-checked with standard tooling.

#pragma once

#include <cstddef>
#include <cstdint>

namespace gbda {

/// CRC-32 of `data[0, size)`, seeded with `seed` (pass the previous return
/// value to checksum a logical stream in chunks; 0 starts a fresh sum).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace gbda
