#pragma once

#include <string>

namespace gbda {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. The default threshold is kInfo;
/// benchmarks lower it to kWarning to keep table output clean.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits `msg` when `level` passes the threshold. Prefer the convenience
/// functions below.
void Log(LogLevel level, const std::string& msg);

void LogDebug(const std::string& msg);
void LogInfo(const std::string& msg);
void LogWarning(const std::string& msg);
void LogError(const std::string& msg);

}  // namespace gbda
