#pragma once

#include <string>

namespace gbda {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. The default threshold is kInfo,
/// overridable via the GBDA_LOG_LEVEL environment variable (a level name or
/// its numeric value, applied lazily on first use); benchmarks lower it to
/// kWarning to keep table output clean. SetLogLevel always wins over the env.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// The exact line Log() writes (sans trailing newline):
/// `[<ISO-8601 UTC ms> t<thread id> gbda <LEVEL>] <msg>`. Exposed so tests
/// can pin the format without capturing stderr.
std::string FormatLogLine(LogLevel level, const std::string& msg);

/// Emits `msg` when `level` passes the threshold. Prefer the convenience
/// functions below.
void Log(LogLevel level, const std::string& msg);

void LogDebug(const std::string& msg);
void LogInfo(const std::string& msg);
void LogWarning(const std::string& msg);
void LogError(const std::string& msg);

}  // namespace gbda
