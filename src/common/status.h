#pragma once

#include <string>
#include <utility>

namespace gbda {

/// Error categories used across the library. Mirrors the usual embedded-database
/// convention (RocksDB/LevelDB): no exceptions cross the public API; fallible
/// operations return a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kResourceExhausted,
  kInternal,
  kNotSupported,
  /// Stored data failed an integrity check (CRC mismatch, torn write). The
  /// artifact is corrupt, not merely malformed — retrying the read will not
  /// help; restore from a replica or rebuild.
  kDataLoss,
};

/// Outcome of a fallible operation: a code plus a human-readable message.
/// A default-constructed Status is OK. Statuses are cheap to copy when OK
/// (empty message) and carry context otherwise.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<category>: <message>", suitable for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Name of a status code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Propagates a non-OK Status to the caller. Usable only in functions that
/// themselves return Status.
#define GBDA_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::gbda::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace gbda
