/// \file kernels.h
/// Runtime-dispatched scan kernels: the two batched primitives the online
/// scan's hot loops reduce to once candidate data is laid out as columns
/// (docs/ARCHITECTURE.md, "Scan kernels & column layout"):
///
///   (a) tier1_size_bounds — the batched tier-1 size bound |q - s_i| over a
///       contiguous column of per-candidate branch counts;
///   (b) intersect_count / intersect_at_most — multiset intersection
///       counting over two ascending uint64 fingerprint-key arrays, plus
///       its capped decision form (the tier-2 cut and, when the corpus
///       certifies collision-freedom, the exact GBD intersection itself).
///
/// Two implementations exist behind one table: a scalar reference (the
/// semantics every other path is gated against) and an AVX2 variant
/// compiled in its own translation unit with -mavx2 (kernels_avx2.cc), so
/// the rest of the library never emits AVX2 instructions. Dispatch is
/// resolved at runtime from cpuid — never at compile time — and both
/// implementations return bit-identical results on every input: the AVX2
/// merge only accelerates pointer advancement; counting and early-exit
/// decisions follow the same contract (tests/kernels_test.cc pins this
/// with randomized property sweeps).
///
/// Overrides, strongest first:
///   1. the GBDA_FORCE_SCALAR_KERNELS environment variable (any non-empty
///      value except "0") forces scalar process-wide — the CI lever that
///      keeps the fallback path green on AVX2 runners;
///   2. SearchOptions::kernel_dispatch forces one implementation for a
///      single scan (process-local; not wire-serialized);
///   3. otherwise cpuid decides (AVX2 when the CPU supports it).
/// Forcing AVX2 on hardware without it falls back to scalar rather than
/// faulting, so "--kernels=avx2" sweeps degrade gracefully.

#pragma once

#include <cstddef>
#include <cstdint>

namespace gbda {

/// Caller-facing dispatch request (SearchOptions::kernel_dispatch, the
/// bench --kernels flag). kAuto defers to cpuid + the environment override.
enum class KernelDispatch : uint8_t {
  kAuto = 0,
  kForceScalar = 1,
  kForceAvx2 = 2,
};

/// A resolved implementation choice.
enum class KernelImpl : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
};

/// True when the running CPU reports AVX2 via cpuid (and the OS saves the
/// ymm state). Always false on non-x86 builds. Cached after the first call.
bool CpuSupportsAvx2();

/// True when GBDA_FORCE_SCALAR_KERNELS is set to a non-empty value other
/// than "0". Read from the environment on every call (cheap relative to any
/// scan) so tests can toggle it without process restarts.
bool ScalarKernelsForcedByEnv();

/// Resolves a dispatch request against the environment override and cpuid;
/// see the file comment for the precedence order.
KernelImpl ResolveKernels(KernelDispatch requested);

const char* KernelImplName(KernelImpl impl);

/// The dispatch table: one function pointer per kernel. All pointers are
/// always non-null; unaligned inputs are fine (the arena's 64-byte column
/// alignment is a throughput property, not a requirement).
struct ScanKernels {
  /// Multiset intersection count of two ascending uint64 key arrays:
  /// sum over distinct keys of min(multiplicity_a, multiplicity_b).
  /// Exactly CommonBranchUpperBound's arithmetic (core/prefilter.h).
  int64_t (*intersect_count)(const uint64_t* a, size_t na, const uint64_t* b,
                             size_t nb);
  /// Decision form: true iff intersect_count(a, b) <= cap (cap < 0 is
  /// always false). Early-exits in both directions like
  /// CommonBranchUpperBoundAtMost; the decision — not the visit order — is
  /// the contract, so the AVX2 variant may schedule its exits differently
  /// and still return the identical boolean.
  bool (*intersect_at_most)(const uint64_t* a, size_t na, const uint64_t* b,
                            size_t nb, int64_t cap);
  /// Batched tier-1 size bound: out_lb[i] = |query_size - sizes[i]| for
  /// i in [0, n) — the GBD lower bound from multiset sizes alone
  /// (GBD >= max(|B1|,|B2|) - min(|B1|,|B2|)). `out_lb` may not alias
  /// `sizes`.
  void (*tier1_size_bounds)(const uint32_t* sizes, size_t n,
                            uint32_t query_size, uint32_t* out_lb);
  const char* name;
};

/// The table for a resolved implementation. kAvx2 returns the scalar table
/// when the AVX2 translation unit was compiled out (non-x86 toolchains).
const ScanKernels& GetScanKernels(KernelImpl impl);

namespace internal {
/// Defined in kernels_avx2.cc: the AVX2 table, or nullptr when that TU was
/// built without -mavx2 support.
const ScanKernels* Avx2ScanKernels();
}  // namespace internal

}  // namespace gbda
