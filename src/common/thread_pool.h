/// \file thread_pool.h
/// A fixed-size worker pool for the serving layer (docs/ARCHITECTURE.md,
/// "Serving layer"). Tasks are submitted as callables and return
/// std::future handles, so results and exceptions propagate to the
/// submitter. The destructor drains every task already enqueued before
/// joining, so work submitted during the pool's lifetime is never dropped.
/// Workers expose a stable index via CurrentWorkerIndex(), which lets
/// callers keep per-worker state (e.g. one PosteriorEngine replica per
/// worker) without locks.

#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace gbda {

/// Fixed-size FIFO thread pool. Submission is thread-safe; the queue is
/// unbounded. Tasks must not submit to the pool from within the pool's own
/// destructor window (tasks enqueued before destruction are always run).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue (every task already submitted runs to completion),
  /// then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Value of CurrentWorkerIndex() on threads that are not workers of the
  /// queried pool.
  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);

  /// Index in [0, size()) of the calling thread when it is a worker of THIS
  /// pool, kNotAWorker otherwise — including when the caller is a worker of
  /// a different pool. The thread-local slot records its owning pool, so
  /// with several pools alive (two services, a snapshot-rebuild pool) a
  /// worker of pool B can never alias into pool A's per-worker state; see
  /// the engine selection in service/parallel_scan.h (ParallelScanEnv).
  size_t CurrentWorkerIndex() const;

  /// Enqueues `f` and returns a future for its result. Exceptions thrown by
  /// the task surface on future.get().
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(&mutex_);
      queue_.push([task]() { (*task)(); });
    }
    cv_.NotifyOne();
    return future;
  }

 private:
  void WorkerLoop(size_t index);

  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ GBDA_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
  bool stop_ GBDA_GUARDED_BY(mutex_) = false;
};

}  // namespace gbda
