#include "graph/label_dict.h"

#include "common/string_util.h"

namespace gbda {
namespace {
const char kEpsilonName[] = "\xCE\xB5";  // UTF-8 for the Greek letter epsilon
}

LabelDict::LabelDict() {
  names_.push_back(kEpsilonName);
  ids_.emplace(kEpsilonName, kVirtualLabel);
}

LabelId LabelDict::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const LabelId id = static_cast<LabelId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

Result<LabelId> LabelDict::Find(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return Status::NotFound("label not interned: " + name);
  return it->second;
}

Result<std::string> LabelDict::Name(LabelId id) const {
  if (id >= names_.size()) {
    return Status::OutOfRange(StrFormat("label id %u out of range", id));
  }
  return names_[id];
}

void LabelDict::InternNumbered(size_t count, const std::string& prefix) {
  for (size_t i = 0; i < count; ++i) {
    Intern(prefix + std::to_string(i));
  }
}

}  // namespace gbda
