#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace gbda {

/// Interned label identifier. Labels are compared by id everywhere in the
/// library; strings only appear at the I/O boundary.
using LabelId = uint32_t;

/// The virtual label epsilon of Section II. Id 0 is reserved for it in every
/// dictionary; it never collides with a real label.
inline constexpr LabelId kVirtualLabel = 0;

/// Bidirectional string<->id mapping for one label universe (the library keeps
/// separate dictionaries for vertex labels L_V and edge labels L_E).
class LabelDict {
 public:
  LabelDict();

  /// Returns the id for `name`, interning it when unseen. Interning the
  /// reserved epsilon name returns kVirtualLabel.
  LabelId Intern(const std::string& name);

  /// Id lookup without interning.
  Result<LabelId> Find(const std::string& name) const;

  /// Name lookup; fails on out-of-range ids.
  Result<std::string> Name(LabelId id) const;

  /// Number of labels including the reserved virtual label.
  size_t size() const { return names_.size(); }

  /// Number of real (non-virtual) labels — the |L_V| / |L_E| of the paper.
  size_t num_real_labels() const { return names_.size() - 1; }

  /// Interns "L0", "L1", ..., "L{count-1}"; convenient for synthetic data.
  void InternNumbered(size_t count, const std::string& prefix = "L");

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;
};

}  // namespace gbda
