#pragma once

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace gbda {

/// Parameters for the synthetic graph generators of Appendix I. Both kinds
/// first build a random spanning tree (vertex i attaches to a uniform j < i,
/// guaranteeing connectivity) and then add extra edges:
///  - random (Syn-2): uniform non-adjacent vertex pairs;
///  - scale-free (Syn-1): `edges_per_vertex` extra edges per vertex, endpoint
///    chosen among earlier vertices with probability proportional to degree
///    (preferential attachment).
struct GeneratorOptions {
  size_t num_vertices = 16;
  /// Extra edges beyond the spanning tree for the random kind. Ignored by the
  /// scale-free kind.
  size_t extra_edges = 8;
  /// Preferential-attachment edges per vertex for the scale-free kind.
  size_t edges_per_vertex = 1;
  size_t num_vertex_labels = 4;
  size_t num_edge_labels = 3;
  bool scale_free = false;
};

/// Generates one connected labeled graph. Fails when num_vertices is 0 or an
/// alphabet is empty. Label ids are 1..num_*_labels (0 is the virtual label).
Result<Graph> GenerateConnectedGraph(const GeneratorOptions& options, Rng* rng);

}  // namespace gbda
