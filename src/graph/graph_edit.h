#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace gbda {

/// The six graph edit operation types of Definition 1.
enum class EditType {
  kAddVertex,      // AV: add one isolated vertex with a non-virtual label
  kDeleteVertex,   // DV: delete one isolated vertex
  kRelabelVertex,  // RV
  kAddEdge,        // AE: add one edge with a non-virtual label
  kDeleteEdge,     // DE
  kRelabelEdge,    // RE
};

const char* EditTypeName(EditType type);

/// One graph edit operation. `u` is the vertex for AV/DV/RV; `u`,`v` are the
/// endpoints for AE/DE/RE; `label` is the new label for AV/RV/AE/RE.
struct EditOp {
  EditType type = EditType::kRelabelVertex;
  uint32_t u = 0;
  uint32_t v = 0;
  LabelId label = kVirtualLabel;

  static EditOp AddVertex(LabelId label);
  static EditOp DeleteVertex(uint32_t u);
  static EditOp RelabelVertex(uint32_t u, LabelId label);
  static EditOp AddEdge(uint32_t u, uint32_t v, LabelId label);
  static EditOp DeleteEdge(uint32_t u, uint32_t v);
  static EditOp RelabelEdge(uint32_t u, uint32_t v, LabelId label);

  std::string ToString() const;
};

/// Applies one operation in place. Enforces the restrictions of Definition 1:
/// AV/RV/AE/RE labels must be non-virtual, DV requires an isolated vertex,
/// AE requires a fresh vertex pair. Note DV swap-removes, so indices in
/// subsequent operations must account for Graph::RemoveIsolatedVertex.
Status ApplyEdit(Graph* graph, const EditOp& op);

/// Applies a whole sequence, stopping at the first failure. On failure the
/// graph is left in the partially edited state (callers that need rollback
/// should copy first); the status reports the failing index.
Status ApplyEditSequence(Graph* graph, const std::vector<EditOp>& sequence);

/// Generates a random valid edit sequence of exactly `length` operations on a
/// copy of `base`, returning the edited graph and the sequence. Labels are
/// drawn from [1, num_labels]. By construction GED(base, result) <= length —
/// the upper-bound half of test oracles.
struct RandomEditResult {
  Graph edited;
  std::vector<EditOp> sequence;
};
Result<RandomEditResult> RandomEditSequence(const Graph& base, size_t length,
                                            size_t num_vertex_labels,
                                            size_t num_edge_labels, Rng* rng);

}  // namespace gbda
