#include "graph/graph_edit.h"

#include "common/string_util.h"

namespace gbda {

const char* EditTypeName(EditType type) {
  switch (type) {
    case EditType::kAddVertex:
      return "AV";
    case EditType::kDeleteVertex:
      return "DV";
    case EditType::kRelabelVertex:
      return "RV";
    case EditType::kAddEdge:
      return "AE";
    case EditType::kDeleteEdge:
      return "DE";
    case EditType::kRelabelEdge:
      return "RE";
  }
  return "?";
}

EditOp EditOp::AddVertex(LabelId label) {
  return EditOp{EditType::kAddVertex, 0, 0, label};
}
EditOp EditOp::DeleteVertex(uint32_t u) {
  return EditOp{EditType::kDeleteVertex, u, 0, kVirtualLabel};
}
EditOp EditOp::RelabelVertex(uint32_t u, LabelId label) {
  return EditOp{EditType::kRelabelVertex, u, 0, label};
}
EditOp EditOp::AddEdge(uint32_t u, uint32_t v, LabelId label) {
  return EditOp{EditType::kAddEdge, u, v, label};
}
EditOp EditOp::DeleteEdge(uint32_t u, uint32_t v) {
  return EditOp{EditType::kDeleteEdge, u, v, kVirtualLabel};
}
EditOp EditOp::RelabelEdge(uint32_t u, uint32_t v, LabelId label) {
  return EditOp{EditType::kRelabelEdge, u, v, label};
}

std::string EditOp::ToString() const {
  switch (type) {
    case EditType::kAddVertex:
      return StrFormat("AV(label=%u)", label);
    case EditType::kDeleteVertex:
      return StrFormat("DV(%u)", u);
    case EditType::kRelabelVertex:
      return StrFormat("RV(%u, label=%u)", u, label);
    case EditType::kAddEdge:
      return StrFormat("AE(%u, %u, label=%u)", u, v, label);
    case EditType::kDeleteEdge:
      return StrFormat("DE(%u, %u)", u, v);
    case EditType::kRelabelEdge:
      return StrFormat("RE(%u, %u, label=%u)", u, v, label);
  }
  return "?";
}

Status ApplyEdit(Graph* graph, const EditOp& op) {
  switch (op.type) {
    case EditType::kAddVertex:
      if (op.label == kVirtualLabel) {
        return Status::InvalidArgument("AV requires a non-virtual label");
      }
      graph->AddVertex(op.label);
      return Status::OK();
    case EditType::kDeleteVertex:
      return graph->RemoveIsolatedVertex(op.u);
    case EditType::kRelabelVertex:
      if (op.label == kVirtualLabel) {
        return Status::InvalidArgument("RV requires a non-virtual label");
      }
      return graph->RelabelVertex(op.u, op.label);
    case EditType::kAddEdge:
      if (op.label == kVirtualLabel) {
        return Status::InvalidArgument("AE requires a non-virtual label");
      }
      return graph->AddEdge(op.u, op.v, op.label);
    case EditType::kDeleteEdge:
      return graph->RemoveEdge(op.u, op.v);
    case EditType::kRelabelEdge:
      if (op.label == kVirtualLabel) {
        return Status::InvalidArgument("RE requires a non-virtual label");
      }
      return graph->RelabelEdge(op.u, op.v, op.label);
  }
  return Status::InvalidArgument("unknown edit type");
}

Status ApplyEditSequence(Graph* graph, const std::vector<EditOp>& sequence) {
  for (size_t i = 0; i < sequence.size(); ++i) {
    Status st = ApplyEdit(graph, sequence[i]);
    if (!st.ok()) {
      return Status(st.code(),
                    StrFormat("op %zu (%s): %s", i, sequence[i].ToString().c_str(),
                              st.message().c_str()));
    }
  }
  return Status::OK();
}

Result<RandomEditResult> RandomEditSequence(const Graph& base, size_t length,
                                            size_t num_vertex_labels,
                                            size_t num_edge_labels, Rng* rng) {
  if (num_vertex_labels == 0 || num_edge_labels == 0) {
    return Status::InvalidArgument("random edits need non-empty label alphabets");
  }
  RandomEditResult out;
  out.edited = base;
  Graph& g = out.edited;
  auto rand_vlabel = [&]() {
    return static_cast<LabelId>(rng->UniformInt(1, static_cast<int64_t>(num_vertex_labels)));
  };
  auto rand_elabel = [&]() {
    return static_cast<LabelId>(rng->UniformInt(1, static_cast<int64_t>(num_edge_labels)));
  };

  size_t attempts = 0;
  while (out.sequence.size() < length) {
    if (++attempts > 100 * (length + 1)) {
      return Status::Internal("random edit generation failed to converge");
    }
    const int kind = static_cast<int>(rng->UniformInt(0, 5));
    const size_t n = g.num_vertices();
    EditOp op;
    switch (kind) {
      case 0:
        op = EditOp::AddVertex(rand_vlabel());
        break;
      case 1: {
        // Find an isolated vertex; skip if none.
        std::vector<uint32_t> isolated;
        for (uint32_t v = 0; v < n; ++v) {
          if (g.Degree(v) == 0) isolated.push_back(v);
        }
        if (isolated.empty()) continue;
        op = EditOp::DeleteVertex(isolated[static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(isolated.size()) - 1))]);
        break;
      }
      case 2: {
        if (n == 0) continue;
        const uint32_t v = static_cast<uint32_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
        const LabelId lab = rand_vlabel();
        if (g.VertexLabel(v) == lab) continue;  // no-op relabel would not count
        op = EditOp::RelabelVertex(v, lab);
        break;
      }
      case 3: {
        if (n < 2) continue;
        const uint32_t u = static_cast<uint32_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
        const uint32_t v = static_cast<uint32_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
        if (u == v || g.HasEdge(u, v)) continue;
        op = EditOp::AddEdge(u, v, rand_elabel());
        break;
      }
      case 4:
      case 5: {
        if (g.num_edges() == 0) continue;
        const std::vector<Graph::EdgeTriple> edges = g.SortedEdges();
        const Graph::EdgeTriple e = edges[static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(edges.size()) - 1))];
        if (kind == 4) {
          op = EditOp::DeleteEdge(e.u, e.v);
        } else {
          const LabelId lab = rand_elabel();
          if (lab == e.label) continue;
          op = EditOp::RelabelEdge(e.u, e.v, lab);
        }
        break;
      }
      default:
        continue;
    }
    Status st = ApplyEdit(&g, op);
    if (!st.ok()) continue;
    out.sequence.push_back(op);
  }
  return out;
}

}  // namespace gbda
