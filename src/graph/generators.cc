#include "graph/generators.h"

#include <algorithm>

namespace gbda {

Result<Graph> GenerateConnectedGraph(const GeneratorOptions& options, Rng* rng) {
  if (options.num_vertices == 0) {
    return Status::InvalidArgument("generator: num_vertices must be positive");
  }
  if (options.num_vertex_labels == 0 || options.num_edge_labels == 0) {
    return Status::InvalidArgument("generator: label alphabets must be non-empty");
  }
  const size_t n = options.num_vertices;
  auto rand_vlabel = [&]() {
    return static_cast<LabelId>(
        rng->UniformInt(1, static_cast<int64_t>(options.num_vertex_labels)));
  };
  auto rand_elabel = [&]() {
    return static_cast<LabelId>(
        rng->UniformInt(1, static_cast<int64_t>(options.num_edge_labels)));
  };

  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex(rand_vlabel());

  // Every edge pushes both endpoints, so a uniform draw from the pool picks
  // a vertex with probability proportional to its degree — the O(1)
  // preferential-attachment sampler.
  std::vector<uint32_t> endpoint_pool;
  endpoint_pool.reserve(2 * (n + options.edges_per_vertex * n));
  auto record_edge = [&endpoint_pool](uint32_t a, uint32_t b) {
    endpoint_pool.push_back(a);
    endpoint_pool.push_back(b);
  };

  // Spanning tree guaranteeing connectivity. The scale-free kind grows a
  // Barabasi-Albert tree (attach proportional to degree, power-law degrees
  // with average ~2, matching the molecule datasets of Table III); the
  // random kind attaches uniformly.
  for (uint32_t i = 1; i < n; ++i) {
    uint32_t j;
    if (options.scale_free && !endpoint_pool.empty()) {
      j = endpoint_pool[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(endpoint_pool.size()) - 1))];
    } else {
      j = static_cast<uint32_t>(rng->UniformInt(0, i - 1));
    }
    Status st = g.AddEdge(i, j, rand_elabel());
    if (!st.ok()) return st;
    record_edge(i, j);
  }

  if (options.scale_free) {
    // Extra preferential edges (edges_per_vertex per vertex, skipped when 0).
    for (uint32_t i = 1; i < n; ++i) {
      for (size_t k = 0; k < options.edges_per_vertex; ++k) {
        bool added = false;
        for (int attempt = 0; attempt < 16 && !added; ++attempt) {
          const uint32_t t = endpoint_pool[static_cast<size_t>(rng->UniformInt(
              0, static_cast<int64_t>(endpoint_pool.size()) - 1))];
          if (t == i || g.HasEdge(i, t)) continue;
          Status st = g.AddEdge(i, t, rand_elabel());
          if (!st.ok()) return st;
          record_edge(i, t);
          added = true;
        }
      }
    }
  } else {
    const size_t max_possible = n * (n - 1) / 2 - (n - 1);
    const size_t target = std::min(options.extra_edges, max_possible);
    size_t added = 0;
    size_t attempts = 0;
    const size_t attempt_limit = 50 * (target + 1) + 1000;
    while (added < target && attempts < attempt_limit) {
      ++attempts;
      if (n < 2) break;
      const uint32_t u = static_cast<uint32_t>(
          rng->UniformInt(0, static_cast<int64_t>(n) - 1));
      const uint32_t v = static_cast<uint32_t>(
          rng->UniformInt(0, static_cast<int64_t>(n) - 1));
      if (u == v || g.HasEdge(u, v)) continue;
      Status st = g.AddEdge(u, v, rand_elabel());
      if (!st.ok()) return st;
      ++added;
    }
  }
  return g;
}

}  // namespace gbda
