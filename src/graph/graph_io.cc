#include "graph/graph_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"

namespace gbda {
namespace {

Status ParseError(size_t line_no, const std::string& detail) {
  return Status::InvalidArgument(
      StrFormat("transaction format, line %zu: %s", line_no, detail.c_str()));
}

}  // namespace

Result<GraphDatabase> ReadTransactionStream(std::istream& in) {
  GraphDatabase db;
  Graph current;
  bool in_graph = false;
  std::string line;
  size_t line_no = 0;

  auto flush = [&]() {
    if (in_graph) db.Add(std::move(current));
    current = Graph();
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    const std::vector<std::string> tok = Split(sv, ' ');
    if (tok[0] == "t") {
      flush();
      in_graph = true;
    } else if (tok[0] == "v") {
      if (!in_graph) return ParseError(line_no, "'v' before any 't' header");
      if (tok.size() != 3) return ParseError(line_no, "'v' needs index and label");
      Result<int64_t> idx = ParseInt(tok[1]);
      if (!idx.ok()) return ParseError(line_no, idx.status().message());
      if (*idx != static_cast<int64_t>(current.num_vertices())) {
        return ParseError(line_no,
                          StrFormat("vertex indices must be dense; expected %zu",
                                    current.num_vertices()));
      }
      current.AddVertex(db.vertex_labels().Intern(tok[2]));
    } else if (tok[0] == "e") {
      if (!in_graph) return ParseError(line_no, "'e' before any 't' header");
      if (tok.size() != 4) return ParseError(line_no, "'e' needs u, v and label");
      Result<int64_t> u = ParseInt(tok[1]);
      Result<int64_t> v = ParseInt(tok[2]);
      if (!u.ok()) return ParseError(line_no, u.status().message());
      if (!v.ok()) return ParseError(line_no, v.status().message());
      Status st = current.AddEdge(static_cast<uint32_t>(*u), static_cast<uint32_t>(*v),
                                  db.edge_labels().Intern(tok[3]));
      if (!st.ok()) return ParseError(line_no, st.message());
    } else {
      return ParseError(line_no, "unknown record type '" + tok[0] + "'");
    }
  }
  flush();
  return db;
}

Result<GraphDatabase> ReadTransactionFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  return ReadTransactionStream(in);
}

Status WriteTransactionStream(const GraphDatabase& db, std::ostream& out) {
  for (size_t id = 0; id < db.size(); ++id) {
    const Graph& g = db.graph(id);
    out << "t # " << id << "\n";
    for (uint32_t v = 0; v < g.num_vertices(); ++v) {
      Result<std::string> name = db.vertex_labels().Name(g.VertexLabel(v));
      if (!name.ok()) return name.status();
      out << "v " << v << " " << *name << "\n";
    }
    for (const Graph::EdgeTriple& e : g.SortedEdges()) {
      Result<std::string> name = db.edge_labels().Name(e.label);
      if (!name.ok()) return name.status();
      out << "e " << e.u << " " << e.v << " " << *name << "\n";
    }
  }
  if (!out) return Status::IOError("stream write failed");
  return Status::OK();
}

Status WriteTransactionFile(const GraphDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  return WriteTransactionStream(db, out);
}

}  // namespace gbda
