#include "graph/graph_database.h"

#include <algorithm>

#include "math/stats.h"

namespace gbda {

size_t GraphDatabase::Add(Graph graph) {
  graphs_.push_back(std::move(graph));
  return graphs_.size() - 1;
}

size_t GraphDatabase::MaxVertices() const {
  size_t m = 0;
  for (const Graph& g : graphs_) m = std::max(m, g.num_vertices());
  return m;
}

DatabaseStats GraphDatabase::Stats() const {
  DatabaseStats stats;
  stats.num_graphs = graphs_.size();
  stats.num_vertex_labels = vertex_labels_.num_real_labels();
  stats.num_edge_labels = edge_labels_.num_real_labels();
  if (graphs_.empty()) return stats;

  std::map<int64_t, size_t> degree_counts;
  double degree_sum = 0.0;
  double vertex_sum = 0.0;
  for (const Graph& g : graphs_) {
    stats.max_vertices = std::max(stats.max_vertices, g.num_vertices());
    stats.max_edges = std::max(stats.max_edges, g.num_edges());
    degree_sum += g.AvgDegree();
    vertex_sum += static_cast<double>(g.num_vertices());
    for (const auto& [deg, cnt] : g.DegreeHistogram()) degree_counts[deg] += cnt;
  }
  stats.avg_degree = degree_sum / static_cast<double>(graphs_.size());
  stats.avg_vertices = vertex_sum / static_cast<double>(graphs_.size());
  stats.scale_free = LooksScaleFree(degree_counts);
  return stats;
}

size_t GraphDatabase::MemoryBytes() const {
  size_t bytes = sizeof(GraphDatabase);
  for (const Graph& g : graphs_) bytes += g.MemoryBytes();
  return bytes;
}

}  // namespace gbda
