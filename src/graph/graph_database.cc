#include "graph/graph_database.h"

#include <algorithm>

#include "math/stats.h"

namespace gbda {

Status ValidateRemovalBatch(const std::vector<size_t>& ids, size_t size,
                            const std::function<bool(size_t)>& is_live,
                            const std::string& context) {
  std::vector<size_t> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    const size_t id = sorted[i];
    if (id >= size) {
      return Status::InvalidArgument(context + ": id out of range: " +
                                     std::to_string(id));
    }
    if (!is_live(id)) {
      return Status::NotFound(context + ": graph already removed: " +
                              std::to_string(id));
    }
    if (i > 0 && sorted[i - 1] == id) {
      return Status::InvalidArgument(context + ": duplicate id: " +
                                     std::to_string(id));
    }
  }
  return Status::OK();
}

size_t GraphDatabase::Add(Graph graph) {
  graphs_.push_back(std::move(graph));
  if (!alive_.empty()) {
    alive_.push_back(1);
    ++num_live_;
  }
  return graphs_.size() - 1;
}

Status GraphDatabase::RemoveGraphs(const std::vector<size_t>& ids) {
  Status valid = ValidateRemovalBatch(
      ids, graphs_.size(), [this](size_t id) { return is_live(id); },
      "db RemoveGraphs");
  if (!valid.ok()) return valid;
  if (alive_.empty()) {
    alive_.assign(graphs_.size(), 1);
    num_live_ = graphs_.size();
  }
  for (size_t id : ids) {
    alive_[id] = 0;
    --num_live_;
  }
  return Status::OK();
}

std::vector<size_t> GraphDatabase::LiveIds() const {
  std::vector<size_t> out;
  out.reserve(num_live());
  for (size_t id = 0; id < graphs_.size(); ++id) {
    if (is_live(id)) out.push_back(id);
  }
  return out;
}

size_t GraphDatabase::MaxVertices() const {
  size_t m = 0;
  for (size_t id = 0; id < graphs_.size(); ++id) {
    if (is_live(id)) m = std::max(m, graphs_[id].num_vertices());
  }
  return m;
}

DatabaseStats GraphDatabase::Stats() const {
  DatabaseStats stats;
  stats.num_graphs = num_live();
  stats.num_vertex_labels = vertex_labels_.num_real_labels();
  stats.num_edge_labels = edge_labels_.num_real_labels();
  if (stats.num_graphs == 0) return stats;

  std::map<int64_t, size_t> degree_counts;
  double degree_sum = 0.0;
  double vertex_sum = 0.0;
  for (size_t id = 0; id < graphs_.size(); ++id) {
    if (!is_live(id)) continue;
    const Graph& g = graphs_[id];
    stats.max_vertices = std::max(stats.max_vertices, g.num_vertices());
    stats.max_edges = std::max(stats.max_edges, g.num_edges());
    degree_sum += g.AvgDegree();
    vertex_sum += static_cast<double>(g.num_vertices());
    for (const auto& [deg, cnt] : g.DegreeHistogram()) degree_counts[deg] += cnt;
  }
  stats.avg_degree = degree_sum / static_cast<double>(stats.num_graphs);
  stats.avg_vertices = vertex_sum / static_cast<double>(stats.num_graphs);
  stats.scale_free = LooksScaleFree(degree_counts);
  return stats;
}

size_t GraphDatabase::MemoryBytes() const {
  size_t bytes = sizeof(GraphDatabase) + alive_.capacity();
  for (const Graph& g : graphs_) bytes += g.MemoryBytes();
  return bytes;
}

}  // namespace gbda
