#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "graph/label_dict.h"

namespace gbda {

/// One endpoint of an adjacency list: neighbour vertex and edge label.
struct AdjEdge {
  uint32_t to = 0;
  LabelId label = kVirtualLabel;

  bool operator==(const AdjEdge& o) const { return to == o.to && label == o.label; }
  bool operator!=(const AdjEdge& o) const { return !(*this == o); }
};

/// Simple labeled undirected graph (Section II): no self-loops, no parallel
/// edges, every vertex and edge carries a label id. Vertices are dense indices
/// 0..n-1. Adjacency lists are kept sorted by neighbour id, which makes edge
/// lookup O(log d) and iteration deterministic.
///
/// Mutating operations validate their arguments and return Status; the class
/// never throws. Directed or weighted graphs are handled by encoding
/// direction/weight into edge labels, as the paper prescribes.
class Graph {
 public:
  Graph() = default;

  /// Creates a graph with `n` vertices all labelled `label`.
  static Graph WithVertices(size_t n, LabelId label);

  /// Appends a vertex; returns its index.
  uint32_t AddVertex(LabelId label);

  /// Inserts edge {u, v} with `label`. Fails if an endpoint is out of range,
  /// u == v, or the edge already exists.
  Status AddEdge(uint32_t u, uint32_t v, LabelId label);

  /// Replaces the label of vertex v.
  Status RelabelVertex(uint32_t v, LabelId label);

  /// Replaces the label of edge {u, v}; fails when absent.
  Status RelabelEdge(uint32_t u, uint32_t v, LabelId label);

  /// Deletes edge {u, v}; fails when absent.
  Status RemoveEdge(uint32_t u, uint32_t v);

  /// Deletes vertex v, which must be isolated (the DV operation of
  /// Definition 1). The last vertex is swapped into position v, so callers
  /// must not hold on to vertex indices across this call.
  Status RemoveIsolatedVertex(uint32_t v);

  size_t num_vertices() const { return vertex_labels_.size(); }
  size_t num_edges() const { return num_edges_; }

  bool HasVertex(uint32_t v) const { return v < vertex_labels_.size(); }
  bool HasEdge(uint32_t u, uint32_t v) const;

  LabelId VertexLabel(uint32_t v) const { return vertex_labels_[v]; }
  Result<LabelId> EdgeLabel(uint32_t u, uint32_t v) const;

  size_t Degree(uint32_t v) const { return adjacency_[v].size(); }

  /// Average degree 2|E|/|V| (0 for the empty graph).
  double AvgDegree() const;

  /// Sorted adjacency list of v.
  const std::vector<AdjEdge>& Neighbors(uint32_t v) const { return adjacency_[v]; }

  /// Degree -> vertex count, the input of the scale-free test.
  std::map<int64_t, size_t> DegreeHistogram() const;

  /// True when the graph is connected (BFS); the empty graph is connected.
  bool IsConnected() const;

  /// All edges as (u, v, label) with u < v, sorted; convenient for I/O and
  /// comparisons.
  struct EdgeTriple {
    uint32_t u, v;
    LabelId label;
    bool operator==(const EdgeTriple& o) const {
      return u == o.u && v == o.v && label == o.label;
    }
    bool operator!=(const EdgeTriple& o) const { return !(*this == o); }
    bool operator<(const EdgeTriple& o) const {
      return std::tie(u, v, label) < std::tie(o.u, o.v, o.label);
    }
    bool operator>(const EdgeTriple& o) const { return o < *this; }
    bool operator<=(const EdgeTriple& o) const { return !(o < *this); }
    bool operator>=(const EdgeTriple& o) const { return !(*this < o); }
  };
  std::vector<EdgeTriple> SortedEdges() const;

  /// Structural equality: same vertex labels in index order and same edge set.
  /// (Not isomorphism — used by tests and serialization round-trips.)
  bool IdenticalTo(const Graph& other) const;

  /// Estimated heap footprint in bytes (capacity-based).
  size_t MemoryBytes() const;

 private:
  std::vector<LabelId> vertex_labels_;
  std::vector<std::vector<AdjEdge>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace gbda
