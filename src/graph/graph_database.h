#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/label_dict.h"

namespace gbda {

/// Summary statistics of a database, matching the columns of Table III.
struct DatabaseStats {
  size_t num_graphs = 0;
  size_t max_vertices = 0;   // V_m
  size_t max_edges = 0;      // E_m
  double avg_degree = 0.0;   // d, averaged over graphs
  double avg_vertices = 0.0;
  size_t num_vertex_labels = 0;  // |L_V|
  size_t num_edge_labels = 0;    // |L_E|
  bool scale_free = false;
};

/// A graph collection with shared vertex/edge label dictionaries — the
/// database D of the similarity-search problem statement. Graphs are
/// append-only and addressed by dense ids.
class GraphDatabase {
 public:
  GraphDatabase() = default;

  /// Appends a graph and returns its id. The caller must have produced label
  /// ids from this database's dictionaries.
  size_t Add(Graph graph);

  size_t size() const { return graphs_.size(); }
  bool empty() const { return graphs_.empty(); }

  const Graph& graph(size_t id) const { return graphs_[id]; }
  const std::vector<Graph>& graphs() const { return graphs_; }

  LabelDict& vertex_labels() { return vertex_labels_; }
  LabelDict& edge_labels() { return edge_labels_; }
  const LabelDict& vertex_labels() const { return vertex_labels_; }
  const LabelDict& edge_labels() const { return edge_labels_; }

  /// Maximum vertex count across graphs — the n of the complexity analyses.
  size_t MaxVertices() const;

  /// Table III style statistics. The scale-free flag aggregates per-graph
  /// degree histograms and runs the power-law test of stats.h.
  DatabaseStats Stats() const;

  /// Estimated heap footprint of all stored graphs.
  size_t MemoryBytes() const;

 private:
  std::vector<Graph> graphs_;
  LabelDict vertex_labels_;
  LabelDict edge_labels_;
};

}  // namespace gbda
