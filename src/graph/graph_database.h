#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/label_dict.h"

namespace gbda {

/// Shared validation for tombstone-removal batches (GraphDatabase and the
/// incremental GbdaIndex apply the same contract): every id must be in
/// [0, size), currently live per `is_live`, and unique within the batch.
/// Returns the first violation; callers mutate only after an OK, so a
/// failed removal is always a no-op.
Status ValidateRemovalBatch(const std::vector<size_t>& ids, size_t size,
                            const std::function<bool(size_t)>& is_live,
                            const std::string& context);

/// Summary statistics of a database, matching the columns of Table III.
/// Tombstoned (removed) graphs are excluded.
struct DatabaseStats {
  size_t num_graphs = 0;
  size_t max_vertices = 0;   // V_m
  size_t max_edges = 0;      // E_m
  double avg_degree = 0.0;   // d, averaged over graphs
  double avg_vertices = 0.0;
  size_t num_vertex_labels = 0;  // |L_V|
  size_t num_edge_labels = 0;    // |L_E|
  bool scale_free = false;
};

/// A graph collection with shared vertex/edge label dictionaries — the
/// database D of the similarity-search problem statement. Graphs are
/// addressed by dense stable ids: Add appends, RemoveGraphs tombstones in
/// place, and an id never changes meaning over the database's lifetime.
///
/// Storage is a deque so `graph(id)` references stay valid across Add —
/// the dynamic serving layer (src/service/dynamic_service.h) publishes
/// snapshots holding Graph pointers while the writer keeps appending.
/// Tombstoned slots keep their payload until the database is destroyed
/// (in-flight snapshots may still scan them); a compaction pass is future
/// work, see docs/ARCHITECTURE.md "Dynamic corpus".
class GraphDatabase {
 public:
  GraphDatabase() = default;

  /// Appends a graph and returns its stable id. The caller must have
  /// produced label ids from this database's dictionaries.
  size_t Add(Graph graph);

  /// Tombstones the given ids. Fails without modifying anything when any id
  /// is out of range, already removed, or duplicated in the call.
  Status RemoveGraphs(const std::vector<size_t>& ids);

  /// Total id slots, including tombstoned ones (ids are dense in [0, size)).
  size_t size() const { return graphs_.size(); }
  bool empty() const { return graphs_.empty(); }

  /// True when `id` has not been removed. Out-of-range ids are not alive.
  bool is_live(size_t id) const {
    return id < graphs_.size() && (alive_.empty() || alive_[id]);
  }
  /// Number of live (non-tombstoned) graphs.
  size_t num_live() const { return alive_.empty() ? graphs_.size() : num_live_; }
  bool has_tombstones() const { return num_live() != graphs_.size(); }
  /// Live ids in ascending order — the dense enumeration a compacted
  /// rebuild of this database would use.
  std::vector<size_t> LiveIds() const;

  const Graph& graph(size_t id) const { return graphs_[id]; }

  LabelDict& vertex_labels() { return vertex_labels_; }
  LabelDict& edge_labels() { return edge_labels_; }
  const LabelDict& vertex_labels() const { return vertex_labels_; }
  const LabelDict& edge_labels() const { return edge_labels_; }

  /// Maximum vertex count across live graphs — the n of the complexity
  /// analyses.
  size_t MaxVertices() const;

  /// Table III style statistics over live graphs. The scale-free flag
  /// aggregates per-graph degree histograms and runs the power-law test of
  /// stats.h.
  DatabaseStats Stats() const;

  /// Estimated heap footprint of all stored graphs (tombstoned payloads
  /// included — they are retained, see the class comment).
  size_t MemoryBytes() const;

 private:
  std::deque<Graph> graphs_;
  /// Liveness per id; empty means "everything alive" (the frozen-database
  /// fast path — no removal ever happened).
  std::vector<uint8_t> alive_;
  size_t num_live_ = 0;
  LabelDict vertex_labels_;
  LabelDict edge_labels_;
};

}  // namespace gbda
