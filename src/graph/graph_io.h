#pragma once

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "graph/graph_database.h"

namespace gbda {

/// Text serialization in the standard graph-transaction format used by the
/// AIDS-style chemical datasets:
///
///   t # <graph-id>
///   v <vertex-index> <vertex-label>
///   e <u> <v> <edge-label>
///
/// Vertex indices must be dense and ascending within each block; labels are
/// arbitrary whitespace-free strings interned into the database dictionaries.
/// Lines starting with '#' and blank lines are ignored.

/// Parses a whole database from a stream. Fails with a line-numbered message
/// on malformed input.
Result<GraphDatabase> ReadTransactionStream(std::istream& in);

/// Parses a database from a file path.
Result<GraphDatabase> ReadTransactionFile(const std::string& path);

/// Writes all graphs of `db` in transaction format.
Status WriteTransactionStream(const GraphDatabase& db, std::ostream& out);

Status WriteTransactionFile(const GraphDatabase& db, const std::string& path);

}  // namespace gbda
