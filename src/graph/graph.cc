#include "graph/graph.h"

#include <algorithm>
#include <queue>

#include "common/string_util.h"

namespace gbda {
namespace {

std::vector<AdjEdge>::const_iterator FindEdge(const std::vector<AdjEdge>& adj,
                                              uint32_t to) {
  auto it = std::lower_bound(
      adj.begin(), adj.end(), to,
      [](const AdjEdge& e, uint32_t target) { return e.to < target; });
  if (it != adj.end() && it->to == to) return it;
  return adj.end();
}

}  // namespace

Graph Graph::WithVertices(size_t n, LabelId label) {
  Graph g;
  g.vertex_labels_.assign(n, label);
  g.adjacency_.resize(n);
  return g;
}

uint32_t Graph::AddVertex(LabelId label) {
  vertex_labels_.push_back(label);
  adjacency_.emplace_back();
  return static_cast<uint32_t>(vertex_labels_.size() - 1);
}

Status Graph::AddEdge(uint32_t u, uint32_t v, LabelId label) {
  if (!HasVertex(u) || !HasVertex(v)) {
    return Status::OutOfRange(StrFormat("edge endpoint out of range: {%u, %u}", u, v));
  }
  if (u == v) {
    return Status::InvalidArgument(StrFormat("self-loop rejected at vertex %u", u));
  }
  if (HasEdge(u, v)) {
    return Status::InvalidArgument(StrFormat("parallel edge rejected: {%u, %u}", u, v));
  }
  auto insert_sorted = [](std::vector<AdjEdge>& adj, uint32_t to, LabelId lab) {
    auto it = std::lower_bound(
        adj.begin(), adj.end(), to,
        [](const AdjEdge& e, uint32_t target) { return e.to < target; });
    adj.insert(it, AdjEdge{to, lab});
  };
  insert_sorted(adjacency_[u], v, label);
  insert_sorted(adjacency_[v], u, label);
  ++num_edges_;
  return Status::OK();
}

Status Graph::RelabelVertex(uint32_t v, LabelId label) {
  if (!HasVertex(v)) {
    return Status::OutOfRange(StrFormat("vertex %u out of range", v));
  }
  vertex_labels_[v] = label;
  return Status::OK();
}

Status Graph::RelabelEdge(uint32_t u, uint32_t v, LabelId label) {
  if (!HasVertex(u) || !HasVertex(v)) {
    return Status::OutOfRange(StrFormat("edge endpoint out of range: {%u, %u}", u, v));
  }
  auto it_u = FindEdge(adjacency_[u], v);
  if (it_u == adjacency_[u].end()) {
    return Status::NotFound(StrFormat("edge {%u, %u} absent", u, v));
  }
  auto it_v = FindEdge(adjacency_[v], u);
  const_cast<AdjEdge&>(*it_u).label = label;
  const_cast<AdjEdge&>(*it_v).label = label;
  return Status::OK();
}

Status Graph::RemoveEdge(uint32_t u, uint32_t v) {
  if (!HasVertex(u) || !HasVertex(v)) {
    return Status::OutOfRange(StrFormat("edge endpoint out of range: {%u, %u}", u, v));
  }
  auto it_u = FindEdge(adjacency_[u], v);
  if (it_u == adjacency_[u].end()) {
    return Status::NotFound(StrFormat("edge {%u, %u} absent", u, v));
  }
  auto it_v = FindEdge(adjacency_[v], u);
  adjacency_[u].erase(it_u);
  adjacency_[v].erase(it_v);
  --num_edges_;
  return Status::OK();
}

Status Graph::RemoveIsolatedVertex(uint32_t v) {
  if (!HasVertex(v)) {
    return Status::OutOfRange(StrFormat("vertex %u out of range", v));
  }
  if (!adjacency_[v].empty()) {
    return Status::FailedPrecondition(
        StrFormat("vertex %u is not isolated (degree %zu)", v, adjacency_[v].size()));
  }
  const uint32_t last = static_cast<uint32_t>(vertex_labels_.size() - 1);
  if (v != last) {
    // Swap-remove: move the last vertex into slot v and rewrite references.
    vertex_labels_[v] = vertex_labels_[last];
    adjacency_[v] = std::move(adjacency_[last]);
    for (const AdjEdge& e : adjacency_[v]) {
      auto it = FindEdge(adjacency_[e.to], last);
      const LabelId lab = it->label;
      adjacency_[e.to].erase(it);
      auto ins = std::lower_bound(
          adjacency_[e.to].begin(), adjacency_[e.to].end(), v,
          [](const AdjEdge& ae, uint32_t target) { return ae.to < target; });
      adjacency_[e.to].insert(ins, AdjEdge{v, lab});
    }
  }
  vertex_labels_.pop_back();
  adjacency_.pop_back();
  return Status::OK();
}

bool Graph::HasEdge(uint32_t u, uint32_t v) const {
  if (!HasVertex(u) || !HasVertex(v)) return false;
  return FindEdge(adjacency_[u], v) != adjacency_[u].end();
}

Result<LabelId> Graph::EdgeLabel(uint32_t u, uint32_t v) const {
  if (!HasVertex(u) || !HasVertex(v)) {
    return Status::OutOfRange(StrFormat("edge endpoint out of range: {%u, %u}", u, v));
  }
  auto it = FindEdge(adjacency_[u], v);
  if (it == adjacency_[u].end()) {
    return Status::NotFound(StrFormat("edge {%u, %u} absent", u, v));
  }
  return it->label;
}

double Graph::AvgDegree() const {
  if (vertex_labels_.empty()) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(vertex_labels_.size());
}

std::map<int64_t, size_t> Graph::DegreeHistogram() const {
  std::map<int64_t, size_t> hist;
  for (const auto& adj : adjacency_) ++hist[static_cast<int64_t>(adj.size())];
  return hist;
}

bool Graph::IsConnected() const {
  if (vertex_labels_.empty()) return true;
  std::vector<char> seen(vertex_labels_.size(), 0);
  std::queue<uint32_t> frontier;
  frontier.push(0);
  seen[0] = 1;
  size_t visited = 1;
  while (!frontier.empty()) {
    const uint32_t v = frontier.front();
    frontier.pop();
    for (const AdjEdge& e : adjacency_[v]) {
      if (!seen[e.to]) {
        seen[e.to] = 1;
        ++visited;
        frontier.push(e.to);
      }
    }
  }
  return visited == vertex_labels_.size();
}

std::vector<Graph::EdgeTriple> Graph::SortedEdges() const {
  std::vector<EdgeTriple> edges;
  edges.reserve(num_edges_);
  for (uint32_t u = 0; u < vertex_labels_.size(); ++u) {
    for (const AdjEdge& e : adjacency_[u]) {
      if (u < e.to) edges.push_back(EdgeTriple{u, e.to, e.label});
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

bool Graph::IdenticalTo(const Graph& other) const {
  return vertex_labels_ == other.vertex_labels_ &&
         SortedEdges() == other.SortedEdges();
}

size_t Graph::MemoryBytes() const {
  size_t bytes = sizeof(Graph);
  bytes += vertex_labels_.capacity() * sizeof(LabelId);
  bytes += adjacency_.capacity() * sizeof(std::vector<AdjEdge>);
  for (const auto& adj : adjacency_) bytes += adj.capacity() * sizeof(AdjEdge);
  return bytes;
}

}  // namespace gbda
