/// \file index_view.h
/// GbdaIndexView: a non-owning, zero-deserialization implementation of the
/// IndexReader scan contract over a mapped v3 arena artifact
/// (storage/index_arena.h; docs/ARCHITECTURE.md, "Storage engine").
///
/// Open() maps the file, validates the header and the two offset tables
/// (the check that makes unchecked per-branch access in-bounds), and
/// decodes only the two small prior blobs — the branch arena, which
/// dominates artifact size, is served in place through BranchSetRef. Cold
/// start is therefore O(header + offsets + priors) instead of the v2
/// loader's O(total branches) decode with one heap allocation per branch,
/// and concurrent replicas mapping the same artifact share its pages
/// through the OS page cache (bench/bench_coldstart.cc quantifies both).
///
/// Queries through a view are bit-identical to queries through the decoded
/// GbdaIndex of the same artifact (tests/index_view_equivalence_test.cc):
/// GbdaSearch, GbdaService and DynamicGbdaService snapshots consume the
/// IndexReader interface, so the view plugs into all of them unchanged.
///
/// Lifetime: the view owns its mapping; BranchSetRefs handed out by
/// branch_set() and the priors returned by gbd_prior()/mutable_ged_prior()
/// are valid while the view lives. A service serving from a view must keep
/// it alive for as long as the service (exactly the contract an owned
/// GbdaIndex already has); snapshot generations pin it via shared_ptr.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/gbda_index.h"
#include "storage/index_arena.h"
#include "storage/mapped_file.h"

namespace gbda {

class GbdaIndexView : public IndexReader {
 public:
  struct OpenOptions {
    /// Verify every section's CRC32 at open. Reads every byte of the
    /// artifact — right for tooling (gbda_indexctl verify) and one-shot
    /// batch jobs, wasteful on the serving path where it defeats lazy page
    /// faulting. Structural validation (header CRC, offset-table
    /// monotonicity and bounds) always runs regardless.
    bool verify_checksums = false;
    /// Advise the kernel to fault the whole artifact in (MADV_WILLNEED).
    bool prefetch = true;
  };

  /// Maps and validates `path`. The returned view is self-contained and
  /// movable; moving does not invalidate pointers into the mapping. (Two
  /// overloads rather than a default argument: the in-class default would
  /// need OpenOptions complete before the enclosing class is.)
  static Result<GbdaIndexView> Open(const std::string& path,
                                    const OpenOptions& options);
  static Result<GbdaIndexView> Open(const std::string& path) {
    return Open(path, OpenOptions());
  }

  // -- IndexReader -----------------------------------------------------------
  size_t num_graphs() const override { return num_graphs_; }
  size_t num_live() const override { return num_graphs_; }
  /// Persisted artifacts never encode a drifted Lambda2 (both writers
  /// refuse), so a view is always fresh.
  size_t gbd_staleness() const override { return 0; }
  BranchSetRef branch_set(size_t id) const override {
    const uint64_t first = branch_start_[id];
    return BranchSetRef(roots_ + first, label_start_ + first, labels_,
                        static_cast<size_t>(branch_start_[id + 1] - first));
  }
  const GbdaIndexOptions& options() const override { return options_; }
  int64_t tau_max() const override { return options_.tau_max; }
  int64_t num_vertex_labels() const override { return num_vertex_labels_; }
  int64_t num_edge_labels() const override { return num_edge_labels_; }
  double avg_vertices() const override { return avg_vertices_; }
  const GbdPrior& gbd_prior() const override { return *gbd_prior_; }
  GedPriorTable* mutable_ged_prior() const override {
    return ged_prior_.get();
  }
  /// The mapped candidate-column sections, zero-copy (empty for a
  /// pre-column artifact — consumers then fall back to branch walks).
  /// Validated at open by ValidateArenaColumns.
  CandidateColumns columns() const override { return columns_; }

  // -- View-specific ---------------------------------------------------------
  const std::string& path() const { return file_.path(); }
  size_t file_bytes() const { return file_.size(); }
  uint64_t total_branches() const { return total_branches_; }
  uint64_t total_labels() const { return total_labels_; }

  /// Whether the artifact carries a readable proximity graph (optional
  /// ann_graph section). False when the section is absent — or present but
  /// written by a future format revision this build cannot read, in which
  /// case Open degrades to exhaustive-only instead of failing (the
  /// forward-compat contract in index_arena.h).
  bool has_ann_graph() const { return ann_graph_.offsets != nullptr; }
  /// The mapped proximity graph (empty ref unless has_ann_graph()). Valid
  /// while the view lives; zero-copy, like branch_set().
  const ProximityGraphRef& ann_graph() const { return ann_graph_; }

  /// Decodes the mapped arena into an owning GbdaIndex — the v3 -> v2
  /// conversion path of gbda_indexctl, and an escape hatch for callers that
  /// need incremental maintenance (AddGraph/RemoveGraphs) on top of a
  /// mapped artifact. The result answers queries bit-identically to this
  /// view. The ann_graph section, if any, is NOT carried over (GbdaIndex
  /// has no slot for it; rebuild with gbda_indexctl graph when needed).
  Result<GbdaIndex> Materialize() const;

 private:
  GbdaIndexView() = default;

  MappedFile file_;
  GbdaIndexOptions options_;
  int64_t num_vertex_labels_ = 1;
  int64_t num_edge_labels_ = 1;
  double avg_vertices_ = 0.0;
  size_t num_graphs_ = 0;
  uint64_t total_branches_ = 0;
  uint64_t total_labels_ = 0;
  /// Typed pointers into the mapping (64-byte aligned by the format).
  const uint64_t* branch_start_ = nullptr;
  const uint32_t* roots_ = nullptr;
  const uint64_t* label_start_ = nullptr;
  const LabelId* labels_ = nullptr;
  /// Typed pointers into the mapped column sections (all nullptr when the
  /// artifact predates them).
  CandidateColumns columns_;
  /// Parsed at open when the optional ann_graph section is present and
  /// readable; points into the mapping.
  ProximityGraphRef ann_graph_;
  /// Decoded prior blobs. shared_ptr so PosteriorEngine replicas handed out
  /// by a snapshot stay valid across view moves; GedPriorTable grows rows
  /// lazily under its own lock, exactly as in the owned index.
  std::shared_ptr<const GbdPrior> gbd_prior_;
  std::shared_ptr<GedPriorTable> ged_prior_;
};

}  // namespace gbda
