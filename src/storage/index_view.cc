#include "storage/index_view.h"

#include <string_view>
#include <utility>

#include "common/serialize.h"

namespace gbda {

Result<GbdaIndexView> GbdaIndexView::Open(const std::string& path,
                                          const OpenOptions& open_options) {
  Result<MappedFile> mapped =
      MappedFile::OpenReadOnly(path, open_options.prefetch);
  if (!mapped.ok()) return mapped.status();
  const std::string_view data(mapped->data(), mapped->size());

  Result<ArenaInfo> info = ParseArenaHeader(data, path);
  if (!info.ok()) return info.status();
  // Serving safety: after this check every branch_set() access derived from
  // the offset tables is in-bounds, so the scan can read unchecked.
  Status offsets_ok = ValidateArenaOffsets(data, *info, path);
  if (!offsets_ok.ok()) return offsets_ok;
  // Same serving-safety standard for the candidate-column sections: after
  // this, every column sweep and every fp_rep dereference the scan performs
  // is in-bounds. No-op for pre-column artifacts.
  Status columns_ok = ValidateArenaColumns(data, *info, path);
  if (!columns_ok.ok()) return columns_ok;
  if (open_options.verify_checksums) {
    Status crc_ok = VerifyArenaChecksums(data, *info, path);
    if (!crc_ok.ok()) return crc_ok;
  }

  GbdaIndexView view;
  view.options_ = info->options;
  view.num_vertex_labels_ = info->num_vertex_labels;
  view.num_edge_labels_ = info->num_edge_labels;
  view.avg_vertices_ = info->avg_vertices;
  view.num_graphs_ = static_cast<size_t>(info->num_graphs);
  view.total_branches_ = info->total_branches;
  view.total_labels_ = info->total_labels;

  // The format guarantees 64-byte aligned section offsets, so these casts
  // yield properly aligned typed arrays.
  const char* base = data.data();
  view.branch_start_ = reinterpret_cast<const uint64_t*>(
      base + info->sections[0].offset);
  view.roots_ =
      reinterpret_cast<const uint32_t*>(base + info->sections[1].offset);
  view.label_start_ = reinterpret_cast<const uint64_t*>(
      base + info->sections[2].offset);
  view.labels_ =
      reinterpret_cast<const LabelId*>(base + info->sections[3].offset);

  // Candidate columns, served in place like the branch arena. Absent on
  // pre-column artifacts: columns() then returns an empty value and the
  // scan falls back to branch walks (no on-the-fly build here — a view's
  // cold-start stays O(header + offsets + priors)).
  if (const ArenaSectionInfo* sec = info->FindSection(kSecGraphSizes)) {
    view.columns_.sizes =
        reinterpret_cast<const uint32_t*>(base + sec->offset);
    view.columns_.fp_offsets = reinterpret_cast<const uint64_t*>(
        base + info->FindSection(kSecFpOffsets)->offset);
    view.columns_.fp_keys = reinterpret_cast<const uint64_t*>(
        base + info->FindSection(kSecFpKeys)->offset);
    if (const ArenaSectionInfo* uniq = info->FindSection(kSecFpUnique)) {
      view.columns_.fp_unique =
          reinterpret_cast<const uint64_t*>(base + uniq->offset);
      view.columns_.fp_rep = reinterpret_cast<const uint64_t*>(
          base + info->FindSection(kSecFpRep)->offset);
      view.columns_.num_distinct = uniq->length / sizeof(uint64_t);
    }
  }

  // The prior blobs are the only decoded state: both are small (a GMM plus
  // probability tables, and the cached Lambda3 rows), and GedPriorTable is
  // inherently mutable — rows for unseen sizes build lazily at query time.
  {
    const ArenaSectionInfo& sec = info->sections[4];
    BinaryReader reader(data.substr(static_cast<size_t>(sec.offset),
                                    static_cast<size_t>(sec.length)),
                        path + " [gbd_prior]");
    Result<GbdPrior> prior = GbdPrior::Deserialize(&reader);
    if (!prior.ok()) return prior.status();
    if (!reader.AtEnd()) {
      return Status::InvalidArgument(
          reader.DescribeHere("trailing bytes after GBD prior section"));
    }
    view.gbd_prior_ = std::make_shared<const GbdPrior>(std::move(*prior));
  }
  {
    const ArenaSectionInfo& sec = info->sections[5];
    BinaryReader reader(data.substr(static_cast<size_t>(sec.offset),
                                    static_cast<size_t>(sec.length)),
                        path + " [ged_prior]");
    Result<GedPriorTable> ged = GedPriorTable::Deserialize(&reader);
    if (!ged.ok()) return ged.status();
    if (!reader.AtEnd()) {
      return Status::InvalidArgument(
          reader.DescribeHere("trailing bytes after GED prior section"));
    }
    // Same cross-check as the v2 loader: both headers pass their own
    // plausibility checks, but they must also agree with each other.
    if (ged->tau_max() != view.options_.tau_max ||
        ged->num_vertex_labels() != view.num_vertex_labels_ ||
        ged->num_edge_labels() != view.num_edge_labels_) {
      return Status::InvalidArgument(
          "index arena: GED prior header disagrees with the arena header in " +
          path);
    }
    view.ged_prior_ = std::make_shared<GedPriorTable>(std::move(*ged));
  }

  // Optional trailing section: the proximity graph for approximate
  // navigation. A parse failure from a future payload revision
  // (kNotSupported) degrades to "no graph" per the forward-compat contract;
  // anything else is corruption and fails the open like any other section.
  if (const ArenaSectionInfo* sec = info->FindSection(kSecAnnGraph)) {
    Result<ProximityGraphRef> graph = ParseProximityGraphSection(
        base + sec->offset, static_cast<size_t>(sec->length),
        info->num_graphs, path + " [ann_graph]");
    if (graph.ok()) {
      view.ann_graph_ = *graph;
    } else if (graph.status().code() != StatusCode::kNotSupported) {
      return graph.status();
    }
  }

  view.file_ = std::move(*mapped);
  return view;
}

Result<GbdaIndex> GbdaIndexView::Materialize() const {
  std::vector<BranchMultiset> branches;
  branches.reserve(num_graphs_);
  for (size_t g = 0; g < num_graphs_; ++g) {
    const BranchSetRef set = branch_set(g);
    BranchMultiset ms;
    ms.resize(set.size());
    for (size_t b = 0; b < set.size(); ++b) {
      ms[b].root = set.root(b);
      const Span<const LabelId> labels = set.edge_labels(b);
      ms[b].edge_labels.assign(labels.begin(), labels.end());
    }
    branches.push_back(std::move(ms));
  }
  // Re-decode the priors rather than copying: GedPriorTable is move-only
  // (it owns a row-cache lock), and a fresh decode of the same bytes is
  // bit-identical to what Open produced — including the cached-row set, so
  // a v3 -> v2 -> v3 roundtrip preserves the artifact's warm rows.
  BinaryWriter gbd_blob;
  gbd_prior_->Serialize(&gbd_blob);
  BinaryReader gbd_reader(gbd_blob.buffer(), path() + " [gbd_prior]");
  Result<GbdPrior> gbd = GbdPrior::Deserialize(&gbd_reader);
  if (!gbd.ok()) return gbd.status();
  BinaryWriter ged_blob;
  ged_prior_->Serialize(&ged_blob);
  BinaryReader ged_reader(ged_blob.buffer(), path() + " [ged_prior]");
  Result<GedPriorTable> ged = GedPriorTable::Deserialize(&ged_reader);
  if (!ged.ok()) return ged.status();
  return GbdaIndex::FromParts(options_, num_vertex_labels_, num_edge_labels_,
                              std::move(branches), std::move(*gbd),
                              std::move(*ged));
}

}  // namespace gbda
