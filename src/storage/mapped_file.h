/// \file mapped_file.h
/// RAII read-only memory mapping, the substrate of the zero-copy storage
/// engine (docs/ARCHITECTURE.md, "Storage engine"). A MappedFile maps a
/// whole artifact PROT_READ / MAP_PRIVATE, optionally advising the kernel
/// to fault pages in ahead of the first scan (MADV_WILLNEED), and unmaps on
/// destruction. Mappings of the same artifact share physical pages through
/// the OS page cache, so N serving replicas pay for the branch arena once.

#pragma once

#include <cstddef>
#include <string>

#include "common/result.h"

namespace gbda {

class MappedFile {
 public:
  /// Maps `path` read-only. `prefetch` issues MADV_WILLNEED over the whole
  /// range — right for a serving replica that will scan the arena soon;
  /// pass false for tooling that only touches the header. Fails on missing
  /// or empty files (no valid artifact is empty) and on platforms without
  /// mmap support.
  static Result<MappedFile> OpenReadOnly(const std::string& path,
                                         bool prefetch = true);

  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Base of the mapping (page-aligned); nullptr when default-constructed.
  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  /// Unmaps (when mapped) and returns to the default-constructed state.
  void Reset();

  void* addr_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

}  // namespace gbda
