/// \file index_arena.h
/// The v3 index artifact: a single relocatable arena of offset-based tables
/// designed to be mmap'ed and queried in place (docs/ARCHITECTURE.md,
/// "Storage engine"). Where the v2 stream interleaves per-graph records —
/// forcing a full decode with one heap allocation per branch — v3 lays the
/// same state out as four flat arrays plus two small prior blobs:
///
///   offset 0                                    (all integers little-endian)
///   +--------------------------------------------------------------+
///   | magic 'GBA3' | version 3 | endian tag | section count N >= 6 |
///   | file_bytes u64 | meta_crc u32 | reserved u32                 |
///   +-- meta block (covered by meta_crc) --------------------------+
///   | tau_max, GbdPriorOptions fields, seed, |L_V|, |L_E|,         |
///   | avg_vertices, num_graphs, total_branches, total_labels       |
///   | section table: N x {id, reserved, offset u64, length u64,    |
///   |                     crc32, reserved}                         |
///   +-- sections, each offset 64-byte aligned, zero-padded --------+
///   | 1 branch_start  u64[num_graphs + 1]   graph -> branch range  |
///   | 2 roots         u32[total_branches]   branch root labels     |
///   | 3 label_start   u64[total_branches+1] branch -> label range  |
///   | 4 labels        u32[total_labels]     ascending edge labels  |
///   | 5 gbd_prior     serialized GbdPrior blob (Lambda2)           |
///   | 6 ged_prior     serialized GedPriorTable blob (Lambda3)      |
///   | 7 ann_graph     optional proximity graph (ann/proximity_-    |
///   |                 graph.h payload), mmap'd by approximate mode |
///   | 8..12 candidate columns (SoA, read in place by the batched   |
///   |                 scan kernels): graph_sizes / fp_offsets /    |
///   |                 fp_keys, plus the optional fp_unique+fp_rep  |
///   |                 exactness directory (see ArenaSectionId)     |
///   +--------------------------------------------------------------+
///
/// The first six sections are mandatory and canonical; trailing sections
/// are OPTIONAL with strictly increasing ids. A reader structurally
/// validates (and CRC-covers) every trailing section but SKIPS ids it does
/// not know — forward compatibility: an artifact written by a newer build
/// with an extra section still opens here, minus that section's feature.
/// A known-id trailing section with an unreadable payload (e.g. an
/// ann_graph from a future format revision) degrades the same way on the
/// serving path instead of failing the open.
///
/// Graph g's branch multiset is branches [branch_start[g], branch_start[g+1])
/// and branch b's edge labels are labels [label_start[b], label_start[b+1]) —
/// exactly the flat backing BranchSetRef (core/branch.h) reads in place, so
/// opening an artifact costs header validation plus the (small) prior
/// decodes, never a per-branch allocation. Offsets are file-absolute and the
/// arena is position-independent: any base address works.
///
/// Contract (also documented in docs/ARCHITECTURE.md):
///   - little-endian only; the endian tag makes a foreign-order artifact
///     fail loudly at open instead of decoding garbage;
///   - section offsets are 64-byte aligned, so casting the mapped bytes to
///     u32/u64 arrays is valid on every supported platform and rows start
///     cache-line aligned;
///   - every section carries a CRC32 (common/crc32.h); structural offset
///     validation always runs at open, checksum verification is opt-in
///     (it touches every page, which defeats lazy faulting on the serving
///     path — tooling and `gbda_indexctl verify` turn it on).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ann/proximity_graph.h"
#include "common/result.h"
#include "core/gbda_index.h"  // GbdaIndexOptions, IndexReader, header checks

namespace gbda {

// -- Format constants --------------------------------------------------------

inline constexpr uint32_t kArenaMagic = 0x33414247;  // "GBA3"
inline constexpr uint32_t kArenaVersion = 3;
/// Written as 0x01020304; a big-endian writer would produce 0x04030201.
inline constexpr uint32_t kArenaEndianTag = 0x01020304;
/// The mandatory canonical sections every artifact carries (ids 1..6).
inline constexpr uint32_t kArenaSectionCount = 6;
/// Sanity cap on the declared section count: far above anything this
/// format family will ever need, low enough that a corrupt count cannot
/// drive a huge header allocation.
inline constexpr uint32_t kMaxArenaSectionCount = 64;
inline constexpr size_t kArenaSectionAlign = 64;

/// Section ids. Ids 1..6 are mandatory and appear in exactly this order;
/// higher ids are optional trailing sections in strictly increasing order
/// (unknown ones are skipped by readers — see the file comment).
enum ArenaSectionId : uint32_t {
  kSecBranchStart = 1,
  kSecRoots = 2,
  kSecLabelStart = 3,
  kSecLabels = 4,
  kSecGbdPrior = 5,
  kSecGedPrior = 6,
  /// Serialized proximity graph (SerializeProximityGraph payload) for
  /// approximate candidate navigation; present only when the artifact was
  /// built with one (gbda_indexctl build --ann / graph).
  kSecAnnGraph = 7,
  /// SoA candidate columns (core/index_reader.h, CandidateColumns): the
  /// batched scan kernels read these in place. Written as a GROUP — 8..10
  /// are either all present or all absent (column-aware writers always emit
  /// them; pre-column artifacts have none and readers fall back to branch
  /// walks):
  ///   8  graph_sizes  u32[num_graphs]        per-graph branch counts
  ///   9  fp_offsets   u64[num_graphs + 1]    == branch_start (one
  ///                                          fingerprint per branch)
  ///   10 fp_keys      u64[total_branches]    per-graph ASCENDING FNV
  ///                                          branch-fingerprint keys
  kSecGraphSizes = 8,
  kSecFpOffsets = 9,
  kSecFpKeys = 10,
  /// The exactness directory (also a both-or-neither pair, requiring
  /// 8..10): ascending distinct fingerprints over the whole corpus plus one
  /// representative branch each, packed (graph_id << 32 | branch_index).
  /// Emitted only when the fingerprint -> branch-content mapping is
  /// injective corpus-wide, which lets audited queries score candidates on
  /// fingerprints alone (core/candidate_columns.h).
  kSecFpUnique = 11,
  kSecFpRep = 12,
};

/// Human-readable section name ("branch_start", ...), for diagnostics.
const char* ArenaSectionName(uint32_t id);

/// Fixed byte ranges of the header (kept explicit so tooling in other
/// languages can parse the preamble without this library).
inline constexpr size_t kArenaPreambleBytes = 32;  // magic..reserved
inline constexpr size_t kArenaMetaScalarBytes = 15 * 8;
inline constexpr size_t kArenaSectionEntryBytes = 32;
/// Header size of an artifact declaring `section_count` sections: the
/// preamble, the meta scalars, then one table entry per section.
constexpr size_t ArenaHeaderBytes(uint32_t section_count) {
  return kArenaPreambleBytes + kArenaMetaScalarBytes +
         section_count * kArenaSectionEntryBytes;
}
/// Header size of a minimal (six-section) artifact — the smallest valid
/// file, and the layout every pre-ann writer produced.
inline constexpr size_t kArenaHeaderBytes = ArenaHeaderBytes(kArenaSectionCount);

// -- Parsed header -----------------------------------------------------------

struct ArenaSectionInfo {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc32 = 0;
};

/// Everything the fixed header states about an artifact; the `inspect`
/// payload of gbda_indexctl and the first validation stage of
/// GbdaIndexView::Open.
struct ArenaInfo {
  uint32_t version = 0;
  uint64_t file_bytes = 0;
  GbdaIndexOptions options;
  int64_t num_vertex_labels = 0;
  int64_t num_edge_labels = 0;
  double avg_vertices = 0.0;
  uint64_t num_graphs = 0;
  uint64_t total_branches = 0;
  uint64_t total_labels = 0;
  /// Every table entry, canonical then trailing — including trailing
  /// sections this build does not understand (so checksum verification
  /// still covers them).
  std::vector<ArenaSectionInfo> sections;

  /// The table entry with the given id, or nullptr when absent (optional
  /// trailing sections; the canonical six are always sections[id - 1]).
  const ArenaSectionInfo* FindSection(uint32_t id) const {
    for (const ArenaSectionInfo& sec : sections) {
      if (sec.id == id) return &sec;
    }
    return nullptr;
  }
};

// -- Building / inspecting ---------------------------------------------------

/// Serializes `index` (any IndexReader — a decoded GbdaIndex or another
/// mapped view) into a v3 arena. Fails on tombstoned indexes and, mirroring
/// the v2 writer, on a stale Lambda2 (the format carries no staleness) —
/// except for the empty index, whose prior is vacuously unfittable and is
/// persisted as-is. A non-null `ann_graph` (which must cover exactly
/// index.num_graphs() nodes) is appended as the optional ann_graph section;
/// null writes the minimal six-section artifact, byte-identical to what
/// pre-ann builds produced.
Result<std::string> BuildArena(const IndexReader& index,
                               const ProximityGraph* ann_graph = nullptr);

/// BuildArena + atomic-ish write (whole buffer, single ofstream).
Status WriteArenaFile(const IndexReader& index, const std::string& path,
                      const ProximityGraph* ann_graph = nullptr);

/// Parses and validates the fixed header of `data` (a whole mapped
/// artifact): magic/version/endianness, meta CRC, header plausibility
/// (core ValidatePersistedIndexHeader), and the section table's structural
/// invariants (canonical order for the mandatory six, strictly increasing
/// ids / 64-byte alignment / in-bounds for trailing sections, lengths
/// consistent with the graph/branch/label counts). Unknown trailing
/// sections pass — they are recorded in the table and otherwise skipped
/// (forward compatibility). Does NOT touch section payloads.
Result<ArenaInfo> ParseArenaHeader(std::string_view data,
                                   const std::string& source);

/// Validates the two offset tables: branch_start and label_start must start
/// at 0, be nondecreasing, and end at total_branches / total_labels. This is
/// the serving-safety check — it is what makes unchecked per-branch access
/// through BranchSetRef in-bounds — so GbdaIndexView runs it at every open.
/// O(total_branches) sequential reads of the two (small) offset sections.
Status ValidateArenaOffsets(std::string_view data, const ArenaInfo& info,
                            const std::string& source);

/// Validates the candidate-column sections (8..12) when present — the
/// serving-safety companion to ValidateArenaOffsets for the column scan
/// path: graph_sizes must equal the branch_start deltas (and hence fit
/// u32), fp_offsets must equal branch_start elementwise, fp_unique must be
/// strictly ascending, and every fp_rep entry must name an in-bounds branch
/// (graph_id < num_graphs, branch_index < that graph's size) — the check
/// that makes the query-side collision audit's branch_set() dereferences
/// in-bounds. A no-op for artifacts without columns. Runs at every view
/// open and under `gbda_indexctl verify`.
Status ValidateArenaColumns(std::string_view data, const ArenaInfo& info,
                            const std::string& source);

/// Verifies every section's CRC32 against the table. Reads every byte —
/// tooling-grade (gbda_indexctl verify), opt-in on the serving path where
/// it would defeat lazy page faulting.
Status VerifyArenaChecksums(std::string_view data, const ArenaInfo& info,
                            const std::string& source);

}  // namespace gbda
