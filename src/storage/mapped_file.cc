#include "storage/mapped_file.h"

#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace gbda {

#ifndef _WIN32

Result<MappedFile> MappedFile::OpenReadOnly(const std::string& path,
                                            bool prefetch) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open for mapping: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat: " + path + " (" +
                           std::strerror(err) + ")");
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot map empty file: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping pins the file contents independently of the descriptor.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError("mmap failed: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  if (prefetch) {
    // Best effort: a failed advise only loses readahead, never correctness.
    (void)::madvise(addr, size, MADV_WILLNEED);
  }
  MappedFile file;
  file.addr_ = addr;
  file.size_ = size;
  file.path_ = path;
  return file;
}

void MappedFile::Reset() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
  addr_ = nullptr;
  size_ = 0;
  path_.clear();
}

#else  // _WIN32

Result<MappedFile> MappedFile::OpenReadOnly(const std::string& path, bool) {
  return Status::NotSupported("memory-mapped artifacts require mmap: " + path);
}

void MappedFile::Reset() {
  addr_ = nullptr;
  size_ = 0;
  path_.clear();
}

#endif

MappedFile::~MappedFile() { Reset(); }

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

}  // namespace gbda
