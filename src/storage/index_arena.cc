#include "storage/index_arena.h"

#include <cstring>
#include <fstream>
#include <limits>

#include "common/crc32.h"
#include "common/serialize.h"
#include "core/candidate_columns.h"

namespace gbda {
namespace {

uint64_t AlignUp(uint64_t offset) {
  return (offset + kArenaSectionAlign - 1) & ~uint64_t{kArenaSectionAlign - 1};
}

/// Reads a u64 at an arbitrary (already bounds-checked) byte offset.
uint64_t ReadU64At(std::string_view data, size_t offset) {
  uint64_t v;
  std::memcpy(&v, data.data() + offset, sizeof(v));
  return v;
}

Status ArenaError(const std::string& source, const std::string& what) {
  return Status::InvalidArgument("index arena: " + what + " in " + source);
}

}  // namespace

const char* ArenaSectionName(uint32_t id) {
  switch (id) {
    case kSecBranchStart:
      return "branch_start";
    case kSecRoots:
      return "roots";
    case kSecLabelStart:
      return "label_start";
    case kSecLabels:
      return "labels";
    case kSecGbdPrior:
      return "gbd_prior";
    case kSecGedPrior:
      return "ged_prior";
    case kSecAnnGraph:
      return "ann_graph";
    case kSecGraphSizes:
      return "graph_sizes";
    case kSecFpOffsets:
      return "fp_offsets";
    case kSecFpKeys:
      return "fp_keys";
    case kSecFpUnique:
      return "fp_unique";
    case kSecFpRep:
      return "fp_rep";
  }
  return "unknown";
}

Result<std::string> BuildArena(const IndexReader& index,
                               const ProximityGraph* ann_graph) {
  const size_t num_graphs = index.num_graphs();
  if (index.num_live() != num_graphs) {
    return Status::FailedPrecondition(
        "arena build: tombstoned indexes cannot be persisted");
  }
  // Mirrors the v2 writer: the format has no staleness field, so a drifted
  // Lambda2 must be refit first. The empty index is the one exception — its
  // prior cannot be refit (a fit needs >= 2 graphs) and is vacuously
  // consistent with the (empty) corpus.
  if (index.gbd_staleness() != 0 && num_graphs != 0) {
    return Status::FailedPrecondition(
        "arena build: Lambda2 is stale (mutations since last fit); refit "
        "before persisting");
  }

  // Flatten the branch store. Works from any IndexReader backing: an owned
  // index walks its multisets, a mapped view copies its own arena slices.
  std::vector<uint64_t> branch_start(num_graphs + 1, 0);
  std::vector<uint32_t> roots;
  std::vector<uint64_t> label_start;
  std::vector<LabelId> labels;
  uint64_t total_branches = 0;
  for (size_t g = 0; g < num_graphs; ++g) {
    total_branches += index.branch_set(g).size();
    branch_start[g + 1] = total_branches;
  }
  roots.reserve(static_cast<size_t>(total_branches));
  label_start.reserve(static_cast<size_t>(total_branches) + 1);
  label_start.push_back(0);
  for (size_t g = 0; g < num_graphs; ++g) {
    const BranchSetRef set = index.branch_set(g);
    for (size_t b = 0; b < set.size(); ++b) {
      roots.push_back(set.root(b));
      const Span<const LabelId> edge_labels = set.edge_labels(b);
      labels.insert(labels.end(), edge_labels.begin(), edge_labels.end());
      label_start.push_back(labels.size());
    }
  }

  BinaryWriter gbd_blob;
  index.gbd_prior().Serialize(&gbd_blob);
  BinaryWriter ged_blob;
  index.mutable_ged_prior()->Serialize(&ged_blob);
  std::string ann_blob;
  if (ann_graph != nullptr) {
    if (ann_graph->num_nodes() != num_graphs) {
      return Status::FailedPrecondition(
          "arena build: proximity graph covers " +
          std::to_string(ann_graph->num_nodes()) +
          " nodes but the index holds " + std::to_string(num_graphs) +
          " graphs");
    }
    ann_blob = SerializeProximityGraph(*ann_graph);
  }

  // Candidate columns: taken from the backing when it already exposes them
  // (a mapped view re-persists its own sections byte-identically; an owned
  // index hands over its lazy cache), built fresh otherwise — e.g. when
  // converting a pre-column artifact. Either way the bytes equal what
  // BuildCandidateColumns computes, because that function is deterministic
  // in the branch data and every backing's columns come from it.
  OwnedCandidateColumns built_columns;
  CandidateColumns columns = index.columns();
  if (!columns.present()) {
    built_columns = BuildCandidateColumns(index);
    columns = built_columns.View();
  }

  struct SectionBytes {
    uint32_t id;
    const char* data;
    uint64_t length;
  };
  std::vector<SectionBytes> sections = {
      {kSecBranchStart, reinterpret_cast<const char*>(branch_start.data()),
       branch_start.size() * sizeof(uint64_t)},
      {kSecRoots, reinterpret_cast<const char*>(roots.data()),
       roots.size() * sizeof(uint32_t)},
      {kSecLabelStart, reinterpret_cast<const char*>(label_start.data()),
       label_start.size() * sizeof(uint64_t)},
      {kSecLabels, reinterpret_cast<const char*>(labels.data()),
       labels.size() * sizeof(LabelId)},
      {kSecGbdPrior, gbd_blob.buffer().data(), gbd_blob.buffer().size()},
      {kSecGedPrior, ged_blob.buffer().data(), ged_blob.buffer().size()},
  };
  if (ann_graph != nullptr) {
    sections.push_back({kSecAnnGraph, ann_blob.data(), ann_blob.size()});
  }
  sections.push_back({kSecGraphSizes,
                      reinterpret_cast<const char*>(columns.sizes),
                      num_graphs * sizeof(uint32_t)});
  sections.push_back({kSecFpOffsets,
                      reinterpret_cast<const char*>(columns.fp_offsets),
                      (num_graphs + 1) * sizeof(uint64_t)});
  sections.push_back({kSecFpKeys,
                      reinterpret_cast<const char*>(columns.fp_keys),
                      total_branches * sizeof(uint64_t)});
  if (columns.exactness_certified()) {
    sections.push_back({kSecFpUnique,
                        reinterpret_cast<const char*>(columns.fp_unique),
                        columns.num_distinct * sizeof(uint64_t)});
    sections.push_back({kSecFpRep,
                        reinterpret_cast<const char*>(columns.fp_rep),
                        columns.num_distinct * sizeof(uint64_t)});
  }
  const uint32_t section_count = static_cast<uint32_t>(sections.size());
  const size_t header_bytes = ArenaHeaderBytes(section_count);

  // Lay out the sections: each starts 64-byte aligned after the header.
  std::vector<uint64_t> offsets(section_count);
  uint64_t cursor = AlignUp(header_bytes);
  for (size_t s = 0; s < section_count; ++s) {
    offsets[s] = cursor;
    cursor = AlignUp(cursor + sections[s].length);
  }
  const uint64_t file_bytes = cursor;

  // Meta block (covered by meta_crc): scalars + section table.
  BinaryWriter meta;
  const GbdaIndexOptions& options = index.options();
  meta.PutI64(options.tau_max);
  meta.PutU64(options.gbd_prior.num_sample_pairs);
  meta.PutU64(options.seed);
  meta.PutDouble(options.gbd_prior.probability_floor);
  meta.PutI64(options.gbd_prior.gmm.num_components);
  meta.PutI64(options.gbd_prior.gmm.max_iterations);
  meta.PutDouble(options.gbd_prior.gmm.tolerance);
  meta.PutDouble(options.gbd_prior.gmm.stddev_floor);
  meta.PutU64(options.gbd_prior.gmm.seed);
  meta.PutI64(index.num_vertex_labels());
  meta.PutI64(index.num_edge_labels());
  meta.PutDouble(index.avg_vertices());
  meta.PutU64(num_graphs);
  meta.PutU64(total_branches);
  meta.PutU64(labels.size());
  for (size_t s = 0; s < section_count; ++s) {
    meta.PutU32(sections[s].id);
    meta.PutU32(0);  // reserved
    meta.PutU64(offsets[s]);
    meta.PutU64(sections[s].length);
    meta.PutU32(Crc32(sections[s].data, sections[s].length));
    meta.PutU32(0);  // reserved
  }

  BinaryWriter header;
  header.PutU32(kArenaMagic);
  header.PutU32(kArenaVersion);
  header.PutU32(kArenaEndianTag);
  header.PutU32(section_count);
  header.PutU64(file_bytes);
  header.PutU32(Crc32(meta.buffer().data(), meta.buffer().size()));
  header.PutU32(0);  // reserved

  std::string arena;
  arena.reserve(static_cast<size_t>(file_bytes));
  arena.append(header.buffer());
  arena.append(meta.buffer());
  for (size_t s = 0; s < section_count; ++s) {
    arena.resize(static_cast<size_t>(offsets[s]), '\0');  // alignment pad
    if (sections[s].length > 0) {
      arena.append(sections[s].data, static_cast<size_t>(sections[s].length));
    }
  }
  arena.resize(static_cast<size_t>(file_bytes), '\0');
  return arena;
}

Status WriteArenaFile(const IndexReader& index, const std::string& path,
                      const ProximityGraph* ann_graph) {
  Result<std::string> arena = BuildArena(index, ann_graph);
  if (!arena.ok()) return arena.status();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(arena->data(), static_cast<std::streamsize>(arena->size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<ArenaInfo> ParseArenaHeader(std::string_view data,
                                   const std::string& source) {
  if (data.size() < kArenaPreambleBytes) {
    return ArenaError(source, "file smaller than the fixed preamble");
  }
  BinaryReader reader(data, source);
  ArenaInfo info;
  const uint32_t magic = *reader.GetU32();
  if (magic != kArenaMagic) {
    return Status::InvalidArgument("not a GBDA v3 arena artifact: " + source);
  }
  info.version = *reader.GetU32();
  if (info.version != kArenaVersion) {
    return Status::NotSupported("unsupported arena version " +
                                std::to_string(info.version) + " in " +
                                source);
  }
  const uint32_t endian = *reader.GetU32();
  if (endian != kArenaEndianTag) {
    return ArenaError(source,
                      "endianness tag mismatch (artifact written on a "
                      "foreign-endian host)");
  }
  // Variable since the ann_graph section landed: the mandatory six, plus
  // any trailing optional sections (capped so a corrupt count cannot drive
  // a huge table read). Pre-ann artifacts declare exactly six and parse
  // unchanged.
  const uint32_t section_count = *reader.GetU32();
  if (section_count < kArenaSectionCount ||
      section_count > kMaxArenaSectionCount) {
    return ArenaError(source, "unexpected section count");
  }
  const size_t header_bytes = ArenaHeaderBytes(section_count);
  if (data.size() < header_bytes) {
    return ArenaError(source, "file smaller than its declared header");
  }
  info.file_bytes = *reader.GetU64();
  if (info.file_bytes != data.size()) {
    return ArenaError(source, "header file size disagrees with actual size");
  }
  const uint32_t meta_crc = *reader.GetU32();
  (void)*reader.GetU32();  // reserved
  const uint32_t actual_meta_crc =
      Crc32(data.data() + kArenaPreambleBytes,
            header_bytes - kArenaPreambleBytes);
  if (meta_crc != actual_meta_crc) {
    return Status::DataLoss("index arena: header CRC32 mismatch in " + source);
  }

  info.options.tau_max = *reader.GetI64();
  info.options.gbd_prior.num_sample_pairs = *reader.GetU64();
  info.options.seed = *reader.GetU64();
  info.options.gbd_prior.probability_floor = *reader.GetDouble();
  const int64_t ncomp = *reader.GetI64();
  const int64_t iters = *reader.GetI64();
  info.options.gbd_prior.gmm.tolerance = *reader.GetDouble();
  info.options.gbd_prior.gmm.stddev_floor = *reader.GetDouble();
  info.options.gbd_prior.gmm.seed = *reader.GetU64();
  info.num_vertex_labels = *reader.GetI64();
  info.num_edge_labels = *reader.GetI64();
  info.avg_vertices = *reader.GetDouble();
  info.num_graphs = *reader.GetU64();
  info.total_branches = *reader.GetU64();
  info.total_labels = *reader.GetU64();
  // Validated before the narrowing casts; the rest funnels through the
  // shared v2/v3 header plausibility check.
  if (ncomp < 1 || ncomp > std::numeric_limits<int>::max() || iters < 1 ||
      iters > std::numeric_limits<int>::max()) {
    return ArenaError(source, "implausible prior options");
  }
  info.options.gbd_prior.gmm.num_components = static_cast<int>(ncomp);
  info.options.gbd_prior.gmm.max_iterations = static_cast<int>(iters);
  Status header_ok = ValidatePersistedIndexHeader(
      info.options, info.num_vertex_labels, info.num_edge_labels,
      info.avg_vertices);
  if (!header_ok.ok()) return ArenaError(source, header_ok.message());

  // Count plausibility before any (num + 1) * width arithmetic can wrap.
  if (info.num_graphs > data.size() / sizeof(uint64_t) ||
      info.total_branches > data.size() / sizeof(uint32_t) ||
      info.total_labels > data.size() / sizeof(LabelId)) {
    return ArenaError(source, "element counts exceed file size");
  }
  const uint64_t expected_lengths[kArenaSectionCount] = {
      (info.num_graphs + 1) * sizeof(uint64_t),
      info.total_branches * sizeof(uint32_t),
      (info.total_branches + 1) * sizeof(uint64_t),
      info.total_labels * sizeof(LabelId),
      0,  // prior blobs: any length, bounds-checked below
      0,
  };

  info.sections.reserve(section_count);
  uint64_t previous_end = header_bytes;
  uint32_t previous_id = 0;
  for (uint32_t s = 0; s < section_count; ++s) {
    ArenaSectionInfo sec;
    sec.id = *reader.GetU32();
    (void)*reader.GetU32();  // reserved
    sec.offset = *reader.GetU64();
    sec.length = *reader.GetU64();
    sec.crc32 = *reader.GetU32();
    (void)*reader.GetU32();  // reserved
    if (s < kArenaSectionCount) {
      // Mandatory six: exactly ids 1..6 in order.
      if (sec.id != s + 1) {
        return ArenaError(source, "section table not in canonical order");
      }
    } else if (sec.id <= previous_id) {
      // Trailing optional sections: strictly increasing ids (hence > 6).
      // The id itself may be unknown to this build — it is structurally
      // validated and recorded, then skipped by consumers.
      return ArenaError(source,
                        "trailing section ids not strictly increasing");
    }
    previous_id = sec.id;
    if (sec.offset % kArenaSectionAlign != 0) {
      return ArenaError(source, std::string("section '") +
                                    ArenaSectionName(sec.id) +
                                    "' is misaligned");
    }
    if (sec.offset < previous_end || sec.offset > data.size() ||
        sec.length > data.size() - sec.offset) {
      return ArenaError(source, std::string("section '") +
                                    ArenaSectionName(sec.id) +
                                    "' lies outside the file");
    }
    if (s < 4 && sec.length != expected_lengths[s]) {
      return ArenaError(source, std::string("section '") +
                                    ArenaSectionName(sec.id) +
                                    "' length disagrees with header counts");
    }
    // Known trailing sections with count-determined lengths get the same
    // exact check as the canonical arrays; unknown ids stay length-free.
    uint64_t expected_trailing = 0;
    bool check_trailing = true;
    switch (sec.id) {
      case kSecGraphSizes:
        expected_trailing = info.num_graphs * sizeof(uint32_t);
        break;
      case kSecFpOffsets:
        expected_trailing = (info.num_graphs + 1) * sizeof(uint64_t);
        break;
      case kSecFpKeys:
        expected_trailing = info.total_branches * sizeof(uint64_t);
        break;
      default:
        check_trailing = false;
        break;
    }
    if (check_trailing && sec.length != expected_trailing) {
      return ArenaError(source, std::string("section '") +
                                    ArenaSectionName(sec.id) +
                                    "' length disagrees with header counts");
    }
    // The directory holds whole u64 entries for (at most) one distinct
    // fingerprint per branch.
    if ((sec.id == kSecFpUnique || sec.id == kSecFpRep) &&
        (sec.length % sizeof(uint64_t) != 0 ||
         sec.length / sizeof(uint64_t) > info.total_branches)) {
      return ArenaError(source, std::string("section '") +
                                    ArenaSectionName(sec.id) +
                                    "' length is not a plausible directory");
    }
    previous_end = sec.offset + sec.length;
    info.sections.push_back(sec);
  }

  // Cross-section structure of the candidate columns: 8..10 travel as a
  // group, and the exactness directory is a parallel pair requiring them.
  const bool has_sizes = info.FindSection(kSecGraphSizes) != nullptr;
  const bool has_fp_offsets = info.FindSection(kSecFpOffsets) != nullptr;
  const bool has_fp_keys = info.FindSection(kSecFpKeys) != nullptr;
  if (has_sizes != has_fp_offsets || has_sizes != has_fp_keys) {
    return ArenaError(source, "partial candidate-column section group");
  }
  const ArenaSectionInfo* fp_unique = info.FindSection(kSecFpUnique);
  const ArenaSectionInfo* fp_rep = info.FindSection(kSecFpRep);
  if ((fp_unique != nullptr) != (fp_rep != nullptr)) {
    return ArenaError(source, "partial exactness-directory section pair");
  }
  if (fp_unique != nullptr) {
    if (!has_sizes) {
      return ArenaError(source,
                        "exactness directory without candidate columns");
    }
    if (fp_unique->length != fp_rep->length) {
      return ArenaError(source,
                        "fp_unique and fp_rep lengths disagree (the "
                        "directory arrays are parallel)");
    }
  }
  return info;
}

Status ValidateArenaOffsets(std::string_view data, const ArenaInfo& info,
                            const std::string& source) {
  // branch_start: [0 .. total_branches], nondecreasing.
  const ArenaSectionInfo& bs = info.sections[0];
  uint64_t prev = ReadU64At(data, static_cast<size_t>(bs.offset));
  if (prev != 0) {
    return ArenaError(source, "branch_start[0] != 0");
  }
  for (uint64_t g = 1; g <= info.num_graphs; ++g) {
    const uint64_t cur = ReadU64At(
        data, static_cast<size_t>(bs.offset + g * sizeof(uint64_t)));
    if (cur < prev) {
      return ArenaError(source, "branch_start is not nondecreasing");
    }
    prev = cur;
  }
  if (prev != info.total_branches) {
    return ArenaError(source,
                      "branch_start does not end at total_branches");
  }
  // label_start: [0 .. total_labels], nondecreasing.
  const ArenaSectionInfo& ls = info.sections[2];
  prev = ReadU64At(data, static_cast<size_t>(ls.offset));
  if (prev != 0) {
    return ArenaError(source, "label_start[0] != 0");
  }
  for (uint64_t b = 1; b <= info.total_branches; ++b) {
    const uint64_t cur = ReadU64At(
        data, static_cast<size_t>(ls.offset + b * sizeof(uint64_t)));
    if (cur < prev) {
      return ArenaError(source, "label_start is not nondecreasing");
    }
    prev = cur;
  }
  if (prev != info.total_labels) {
    return ArenaError(source, "label_start does not end at total_labels");
  }
  return Status::OK();
}

Status ValidateArenaColumns(std::string_view data, const ArenaInfo& info,
                            const std::string& source) {
  const ArenaSectionInfo* sizes = info.FindSection(kSecGraphSizes);
  if (sizes == nullptr) return Status::OK();  // pre-column artifact
  const ArenaSectionInfo* fp_offsets = info.FindSection(kSecFpOffsets);
  const ArenaSectionInfo* branch_start = &info.sections[0];
  // graph_sizes must be the branch_start deltas (which also proves each
  // fits u32), and fp_offsets must BE branch_start: one fingerprint per
  // branch is what lets the scan address fp_keys with the same ranges it
  // uses for branches.
  for (uint64_t g = 0; g < info.num_graphs; ++g) {
    const uint64_t lo = ReadU64At(
        data, static_cast<size_t>(branch_start->offset + g * sizeof(uint64_t)));
    const uint64_t hi =
        ReadU64At(data, static_cast<size_t>(branch_start->offset +
                                            (g + 1) * sizeof(uint64_t)));
    uint32_t size;
    std::memcpy(&size,
                data.data() + sizes->offset + g * sizeof(uint32_t),
                sizeof(size));
    if (static_cast<uint64_t>(size) != hi - lo) {
      return ArenaError(source,
                        "graph_sizes disagrees with branch_start deltas");
    }
  }
  for (uint64_t g = 0; g <= info.num_graphs; ++g) {
    const uint64_t off = ReadU64At(
        data, static_cast<size_t>(fp_offsets->offset + g * sizeof(uint64_t)));
    const uint64_t bs = ReadU64At(
        data, static_cast<size_t>(branch_start->offset + g * sizeof(uint64_t)));
    if (off != bs) {
      return ArenaError(source, "fp_offsets disagrees with branch_start");
    }
  }

  const ArenaSectionInfo* fp_unique = info.FindSection(kSecFpUnique);
  if (fp_unique == nullptr) return Status::OK();
  const ArenaSectionInfo* fp_rep = info.FindSection(kSecFpRep);
  const uint64_t num_distinct = fp_unique->length / sizeof(uint64_t);
  // fp_unique strictly ascending (a set, and binary-searchable); every
  // fp_rep entry in-bounds — the check that makes the query-side audit's
  // branch_set() dereferences safe on an untrusted artifact.
  uint64_t prev_key = 0;
  for (uint64_t i = 0; i < num_distinct; ++i) {
    const uint64_t key = ReadU64At(
        data, static_cast<size_t>(fp_unique->offset + i * sizeof(uint64_t)));
    if (i > 0 && key <= prev_key) {
      return ArenaError(source, "fp_unique is not strictly ascending");
    }
    prev_key = key;
    const uint64_t rep = ReadU64At(
        data, static_cast<size_t>(fp_rep->offset + i * sizeof(uint64_t)));
    const uint64_t graph = rep >> 32;
    const uint64_t branch = rep & 0xFFFFFFFFull;
    if (graph >= info.num_graphs) {
      return ArenaError(source, "fp_rep names an out-of-range graph");
    }
    const uint64_t lo = ReadU64At(
        data,
        static_cast<size_t>(branch_start->offset + graph * sizeof(uint64_t)));
    const uint64_t hi =
        ReadU64At(data, static_cast<size_t>(branch_start->offset +
                                            (graph + 1) * sizeof(uint64_t)));
    if (branch >= hi - lo) {
      return ArenaError(source, "fp_rep names an out-of-range branch");
    }
  }
  return Status::OK();
}

Status VerifyArenaChecksums(std::string_view data, const ArenaInfo& info,
                            const std::string& source) {
  for (const ArenaSectionInfo& sec : info.sections) {
    const uint32_t actual =
        Crc32(data.data() + sec.offset, static_cast<size_t>(sec.length));
    if (actual != sec.crc32) {
      return Status::DataLoss(
          std::string("index arena: CRC32 mismatch in section '") +
          ArenaSectionName(sec.id) + "' (bytes " + std::to_string(sec.offset) +
          ".." + std::to_string(sec.offset + sec.length) + ") of " + source);
    }
  }
  return Status::OK();
}

}  // namespace gbda
