#pragma once

#include <cstdint>
#include <vector>

#include "baselines/cost_matrix.h"
#include "baselines/graph_seriation.h"
#include "common/result.h"
#include "graph/graph_database.h"

namespace gbda {

/// The three competitors of Section VII.
enum class BaselineMethod {
  kLsap,        // exact Hungarian on the bipartite cost matrix (lower bound)
  kGreedySort,  // greedy-sorted assignment estimate
  kSeriation,   // spectral seriation estimate
};

const char* BaselineMethodName(BaselineMethod method);

/// One accepted graph with its estimated distance.
struct BaselineMatch {
  size_t graph_id = 0;
  double estimate = 0.0;
};

struct BaselineResult {
  std::vector<BaselineMatch> matches;
  double seconds = 0.0;
};

/// Similarity search driven by a GED estimator: accept G iff
/// estimate(Q, G) <= tau_hat. Per the fairness assumption of Section III the
/// per-graph auxiliary structures (vertex profiles for the assignment
/// methods, seriation strings for the spectral method) are precomputed at
/// construction and stored with the database.
class BaselineSearch {
 public:
  /// Precomputes profiles for every database graph. `db` must outlive the
  /// object.
  explicit BaselineSearch(const GraphDatabase* db);

  /// Runs one query with the chosen estimator.
  Result<BaselineResult> Query(const Graph& query, BaselineMethod method,
                               int64_t tau_hat) const;

  /// Distance estimate for one pair (query profiles built on the fly).
  double Estimate(const Graph& query, size_t graph_id,
                  BaselineMethod method) const;

  size_t MemoryBytes() const;

 private:
  const GraphDatabase* db_;
  std::vector<std::vector<VertexProfile>> vertex_profiles_;
  std::vector<SeriationProfile> seriation_profiles_;
};

}  // namespace gbda
