#pragma once

#include "baselines/cost_matrix.h"
#include "graph/graph.h"

namespace gbda {

/// The LSAP baseline of the paper's experiments (Riesen & Bunke [11]): the
/// optimal assignment between vertex sets (augmented with dummy rows/columns
/// for deletions/insertions), solved exactly by the Hungarian algorithm in
/// O((n1+n2)^3).
///
/// With halved edge costs the optimum never exceeds the true GED — every
/// vertex operation is charged once and every edge operation at most twice
/// across its incident vertices — so the search that accepts when
/// LB <= tau_hat has 100% recall, exactly the behaviour the paper reports
/// for LSAP (Section VII-C).
double LsapGedLowerBound(const std::vector<VertexProfile>& p1,
                         const std::vector<VertexProfile>& p2);
double LsapGedLowerBound(const Graph& g1, const Graph& g2);

/// The plain estimation variant with full edge costs; not a bound in either
/// direction but typically closer to the true GED.
double LsapGedEstimate(const std::vector<VertexProfile>& p1,
                       const std::vector<VertexProfile>& p2);
double LsapGedEstimate(const Graph& g1, const Graph& g2);

}  // namespace gbda
