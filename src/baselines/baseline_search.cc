#include "baselines/baseline_search.h"

#include "baselines/greedy_sort_ged.h"
#include "baselines/lsap_ged.h"
#include "common/timer.h"

namespace gbda {

const char* BaselineMethodName(BaselineMethod method) {
  switch (method) {
    case BaselineMethod::kLsap:
      return "LSAP";
    case BaselineMethod::kGreedySort:
      return "greedysort";
    case BaselineMethod::kSeriation:
      return "seriation";
  }
  return "?";
}

BaselineSearch::BaselineSearch(const GraphDatabase* db) : db_(db) {
  vertex_profiles_.reserve(db->size());
  seriation_profiles_.reserve(db->size());
  for (size_t i = 0; i < db->size(); ++i) {
    vertex_profiles_.push_back(BuildVertexProfiles(db->graph(i)));
    seriation_profiles_.push_back(BuildSeriationProfile(db->graph(i)));
  }
}

Result<BaselineResult> BaselineSearch::Query(const Graph& query,
                                             BaselineMethod method,
                                             int64_t tau_hat) const {
  if (tau_hat < 0) {
    return Status::InvalidArgument("tau_hat must be non-negative");
  }
  WallTimer timer;
  BaselineResult result;

  // Query-side auxiliary structures are built once per query.
  std::vector<VertexProfile> query_profile;
  SeriationProfile query_seriation;
  if (method == BaselineMethod::kSeriation) {
    query_seriation = BuildSeriationProfile(query);
  } else {
    query_profile = BuildVertexProfiles(query);
  }

  const double threshold = static_cast<double>(tau_hat);
  for (size_t id = 0; id < db_->size(); ++id) {
    double estimate = 0.0;
    switch (method) {
      case BaselineMethod::kLsap:
        estimate = LsapGedLowerBound(query_profile, vertex_profiles_[id]);
        break;
      case BaselineMethod::kGreedySort:
        estimate = GreedySortGed(query_profile, vertex_profiles_[id]);
        break;
      case BaselineMethod::kSeriation:
        estimate = SeriationDistance(query_seriation, seriation_profiles_[id]);
        break;
    }
    if (estimate <= threshold) {
      result.matches.push_back(BaselineMatch{id, estimate});
    }
  }
  result.seconds = timer.Seconds();
  return result;
}

double BaselineSearch::Estimate(const Graph& query, size_t graph_id,
                                BaselineMethod method) const {
  switch (method) {
    case BaselineMethod::kLsap:
      return LsapGedLowerBound(BuildVertexProfiles(query),
                               vertex_profiles_[graph_id]);
    case BaselineMethod::kGreedySort:
      return GreedySortGed(BuildVertexProfiles(query), vertex_profiles_[graph_id]);
    case BaselineMethod::kSeriation:
      return SeriationDistance(BuildSeriationProfile(query),
                               seriation_profiles_[graph_id]);
  }
  return 0.0;
}

size_t BaselineSearch::MemoryBytes() const {
  size_t bytes = sizeof(BaselineSearch);
  for (const auto& profiles : vertex_profiles_) {
    for (const VertexProfile& p : profiles) {
      bytes += sizeof(VertexProfile) + p.incident.capacity() * sizeof(LabelId);
    }
  }
  for (const SeriationProfile& p : seriation_profiles_) {
    bytes += sizeof(SeriationProfile) + p.labels.capacity() * sizeof(LabelId) +
             p.degrees.capacity() * sizeof(int32_t);
  }
  return bytes;
}

}  // namespace gbda
