#include "baselines/astar_ged.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <vector>

namespace gbda {
namespace {

constexpr int32_t kEpsilon = -1;

struct Node {
  int64_t g = 0;        // accumulated cost
  int64_t h = 0;        // admissible remainder bound
  uint32_t depth = 0;   // number of g1 vertices assigned
  std::vector<int32_t> assignment;  // g1 order position -> g2 vertex or kEpsilon

  int64_t f() const { return g + h; }
};

struct NodeCompare {
  bool operator()(const Node& a, const Node& b) const {
    if (a.f() != b.f()) return a.f() > b.f();
    return a.depth < b.depth;  // prefer deeper nodes on ties
  }
};

/// Multiset edit distance on sorted vectors: max sizes minus intersection.
int64_t SortedDiff(const std::vector<LabelId>& a, const std::vector<LabelId>& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return static_cast<int64_t>(std::max(a.size(), b.size()) - common);
}

class AStarContext {
 public:
  AStarContext(const Graph& g1, const Graph& g2) : g1_(g1), g2_(g2) {
    // Assign high-degree vertices first: their edge terms prune earlier.
    order_.resize(g1.num_vertices());
    std::iota(order_.begin(), order_.end(), 0u);
    std::sort(order_.begin(), order_.end(), [&](uint32_t a, uint32_t b) {
      if (g1.Degree(a) != g1.Degree(b)) return g1.Degree(a) > g1.Degree(b);
      return a < b;
    });
  }

  uint32_t g1_vertex(uint32_t depth) const { return order_[depth]; }

  /// Incremental cost of assigning g1 vertex u (at `depth`) to image v
  /// (kEpsilon = delete): vertex op plus edge ops against already-assigned
  /// vertices.
  int64_t StepCost(const Node& node, uint32_t depth, int32_t v) const {
    const uint32_t u = order_[depth];
    int64_t cost = 0;
    if (v == kEpsilon) {
      cost += 1;  // DV (the incident edge deletions are charged below)
    } else {
      cost += g1_.VertexLabel(u) ==
                      g2_.VertexLabel(static_cast<uint32_t>(v))
                  ? 0
                  : 1;  // RV
    }
    for (uint32_t p = 0; p < depth; ++p) {
      const uint32_t u_prev = order_[p];
      const int32_t v_prev = node.assignment[p];
      const Result<LabelId> e1 = g1_.EdgeLabel(u, u_prev);
      const bool has1 = e1.ok();
      bool has2 = false;
      LabelId l2 = kVirtualLabel;
      if (v != kEpsilon && v_prev != kEpsilon) {
        const Result<LabelId> e2 = g2_.EdgeLabel(static_cast<uint32_t>(v),
                                                 static_cast<uint32_t>(v_prev));
        if (e2.ok()) {
          has2 = true;
          l2 = *e2;
        }
      }
      if (has1 && has2) {
        cost += (*e1 == l2) ? 0 : 1;  // RE
      } else if (has1 || has2) {
        cost += 1;  // DE or AE
      }
    }
    return cost;
  }

  /// Cost of finishing a complete assignment: insert unused g2 vertices and
  /// every g2 edge with at least one endpoint not used as an image.
  int64_t CompletionCost(const Node& node) const {
    std::vector<char> used(g2_.num_vertices(), 0);
    for (int32_t v : node.assignment) {
      if (v != kEpsilon) used[static_cast<size_t>(v)] = 1;
    }
    int64_t cost = 0;
    for (uint32_t v = 0; v < g2_.num_vertices(); ++v) {
      if (!used[v]) cost += 1;  // AV
    }
    for (const Graph::EdgeTriple& e : g2_.SortedEdges()) {
      if (!used[e.u] || !used[e.v]) cost += 1;  // AE
    }
    return cost;
  }

  /// Admissible heuristic: label-multiset lower bounds over the unmatched
  /// remainder (vertices and edges are charged by disjoint operations).
  int64_t Heuristic(const Node& node, uint32_t depth) const {
    // Remaining g1 vertex labels.
    std::vector<LabelId> r1;
    for (uint32_t p = depth; p < g1_.num_vertices(); ++p) {
      r1.push_back(g1_.VertexLabel(order_[p]));
    }
    std::sort(r1.begin(), r1.end());
    // Unused g2 vertex labels.
    std::vector<char> used(g2_.num_vertices(), 0);
    for (uint32_t p = 0; p < depth; ++p) {
      if (node.assignment[p] != kEpsilon) {
        used[static_cast<size_t>(node.assignment[p])] = 1;
      }
    }
    std::vector<LabelId> r2;
    for (uint32_t v = 0; v < g2_.num_vertices(); ++v) {
      if (!used[v]) r2.push_back(g2_.VertexLabel(v));
    }
    std::sort(r2.begin(), r2.end());
    const int64_t vertex_bound = SortedDiff(r1, r2);

    // g1 edges not yet accounted: at least one endpoint unassigned.
    std::vector<char> assigned1(g1_.num_vertices(), 0);
    for (uint32_t p = 0; p < depth; ++p) assigned1[order_[p]] = 1;
    std::vector<LabelId> e1;
    for (const Graph::EdgeTriple& e : g1_.SortedEdges()) {
      if (!assigned1[e.u] || !assigned1[e.v]) e1.push_back(e.label);
    }
    std::sort(e1.begin(), e1.end());
    // g2 edges not yet accounted: at least one endpoint unused.
    std::vector<LabelId> e2;
    for (const Graph::EdgeTriple& e : g2_.SortedEdges()) {
      if (!used[e.u] || !used[e.v]) e2.push_back(e.label);
    }
    std::sort(e2.begin(), e2.end());
    const int64_t edge_bound = SortedDiff(e1, e2);
    return vertex_bound + edge_bound;
  }

 private:
  const Graph& g1_;
  const Graph& g2_;
  std::vector<uint32_t> order_;
};

}  // namespace

Result<ExactGedResult> ExactGed(const Graph& g1, const Graph& g2,
                                const AStarOptions& options) {
  const uint32_t n1 = static_cast<uint32_t>(g1.num_vertices());
  const uint32_t n2 = static_cast<uint32_t>(g2.num_vertices());
  if (n1 == 0) {
    // Everything in g2 is inserted; the loop below would otherwise return
    // the root before folding in the completion cost.
    ExactGedResult trivial;
    const int64_t d =
        static_cast<int64_t>(n2) + static_cast<int64_t>(g2.num_edges());
    if (options.limit != INT64_MAX && d > options.limit) {
      trivial.distance = options.limit + 1;
      trivial.exact = false;
    } else {
      trivial.distance = d;
    }
    return trivial;
  }
  AStarContext ctx(g1, g2);

  std::priority_queue<Node, std::vector<Node>, NodeCompare> open;
  Node root;
  root.h = ctx.Heuristic(root, 0);
  open.push(root);

  ExactGedResult result;
  while (!open.empty()) {
    Node node = open.top();
    open.pop();

    if (options.limit != INT64_MAX && node.f() > options.limit) {
      // Best remaining path already exceeds the limit: GED > limit.
      result.distance = options.limit + 1;
      result.exact = false;
      return result;
    }
    if (node.depth == n1) {
      result.distance = node.g;  // completion cost folded in at expansion
      result.exact = true;
      return result;
    }
    if (++result.nodes_expanded > options.max_expansions) {
      return Status::ResourceExhausted(
          "A* GED exceeded its node-expansion budget");
    }

    const uint32_t depth = node.depth;
    std::vector<char> used(n2, 0);
    for (uint32_t p = 0; p < depth; ++p) {
      if (node.assignment[p] != kEpsilon) {
        used[static_cast<size_t>(node.assignment[p])] = 1;
      }
    }
    auto push_child = [&](int32_t image) {
      Node child;
      child.depth = depth + 1;
      child.assignment = node.assignment;
      child.assignment.push_back(image);
      child.g = node.g + ctx.StepCost(node, depth, image);
      if (child.depth == n1) {
        child.g += ctx.CompletionCost(child);
        child.h = 0;
      } else {
        child.h = ctx.Heuristic(child, child.depth);
      }
      if (options.limit == INT64_MAX || child.f() <= options.limit) {
        open.push(std::move(child));
      }
    };
    for (uint32_t v = 0; v < n2; ++v) {
      if (!used[v]) push_child(static_cast<int32_t>(v));
    }
    push_child(kEpsilon);
  }

  // Queue exhausted under a limit: every completion exceeds it.
  result.distance = options.limit == INT64_MAX ? 0 : options.limit + 1;
  result.exact = options.limit == INT64_MAX;
  return result;
}

Result<int64_t> ExactGedValue(const Graph& g1, const Graph& g2,
                              const AStarOptions& options) {
  Result<ExactGedResult> r = ExactGed(g1, g2, options);
  if (!r.ok()) return r.status();
  return r->distance;
}

}  // namespace gbda
