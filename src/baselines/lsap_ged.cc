#include "baselines/lsap_ged.h"

#include "math/hungarian.h"

namespace gbda {
namespace {

double SolveWithFactor(const std::vector<VertexProfile>& p1,
                       const std::vector<VertexProfile>& p2, double factor) {
  if (p1.empty() && p2.empty()) return 0.0;
  const DenseMatrix cost = BuildAssignmentCostMatrix(p1, p2, factor);
  Result<AssignmentResult> solved = SolveAssignment(cost);
  if (!solved.ok()) return 0.0;  // non-empty square matrix: cannot happen
  return solved->cost;
}

}  // namespace

double LsapGedLowerBound(const std::vector<VertexProfile>& p1,
                         const std::vector<VertexProfile>& p2) {
  return SolveWithFactor(p1, p2, 0.5);
}

double LsapGedLowerBound(const Graph& g1, const Graph& g2) {
  return LsapGedLowerBound(BuildVertexProfiles(g1), BuildVertexProfiles(g2));
}

double LsapGedEstimate(const std::vector<VertexProfile>& p1,
                       const std::vector<VertexProfile>& p2) {
  return SolveWithFactor(p1, p2, 1.0);
}

double LsapGedEstimate(const Graph& g1, const Graph& g2) {
  return LsapGedEstimate(BuildVertexProfiles(g1), BuildVertexProfiles(g2));
}

}  // namespace gbda
