#include "baselines/cost_matrix.h"

#include <algorithm>

namespace gbda {
namespace {
// Large finite penalty for forbidden cells; finite to keep the Hungarian
// potentials well-behaved.
constexpr double kForbidden = 1e9;
}  // namespace

std::vector<VertexProfile> BuildVertexProfiles(const Graph& g) {
  std::vector<VertexProfile> profiles(g.num_vertices());
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    VertexProfile& p = profiles[v];
    p.label = g.VertexLabel(v);
    p.incident.reserve(g.Degree(v));
    for (const AdjEdge& e : g.Neighbors(v)) {
      if (e.label != kVirtualLabel) p.incident.push_back(e.label);
    }
    std::sort(p.incident.begin(), p.incident.end());
  }
  return profiles;
}

size_t MultisetEditDistance(const std::vector<LabelId>& a,
                            const std::vector<LabelId>& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return std::max(a.size(), b.size()) - common;
}

DenseMatrix BuildAssignmentCostMatrix(const std::vector<VertexProfile>& p1,
                                      const std::vector<VertexProfile>& p2,
                                      double edge_factor) {
  const size_t n1 = p1.size();
  const size_t n2 = p2.size();
  const size_t n = n1 + n2;
  DenseMatrix cost(n, n, 0.0);

  for (size_t i = 0; i < n1; ++i) {
    // Substitutions.
    for (size_t j = 0; j < n2; ++j) {
      const double label_cost = p1[i].label == p2[j].label ? 0.0 : 1.0;
      const double edge_cost =
          edge_factor *
          static_cast<double>(MultisetEditDistance(p1[i].incident, p2[j].incident));
      cost.At(i, j) = label_cost + edge_cost;
    }
    // Deletion of vertex i: only its own dummy column is usable.
    for (size_t j = 0; j < n1; ++j) {
      cost.At(i, n2 + j) =
          i == j ? 1.0 + edge_factor * static_cast<double>(p1[i].incident.size())
                 : kForbidden;
    }
  }
  for (size_t i = 0; i < n2; ++i) {
    // Insertion of vertex i of g2: only its own dummy row is usable.
    for (size_t j = 0; j < n2; ++j) {
      cost.At(n1 + i, j) =
          i == j ? 1.0 + edge_factor * static_cast<double>(p2[i].incident.size())
                 : kForbidden;
    }
    // Dummy-to-dummy block stays zero.
  }
  return cost;
}

}  // namespace gbda
