#include "baselines/graph_seriation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "baselines/cost_matrix.h"
#include "math/eigen.h"

namespace gbda {

SeriationProfile BuildSeriationProfile(const Graph& g) {
  SeriationProfile profile;
  const size_t n = g.num_vertices();
  if (n == 0) return profile;

  auto matvec = [&g, n](const std::vector<double>& x) {
    std::vector<double> y(n, 0.0);
    for (uint32_t v = 0; v < n; ++v) {
      double acc = 0.0;
      for (const AdjEdge& e : g.Neighbors(v)) acc += x[e.to];
      y[v] = acc;
    }
    return y;
  };

  std::vector<double> eigenvector;
  Result<double> lambda = PowerIterationLeading(matvec, n, &eigenvector);
  if (!lambda.ok()) eigenvector.assign(n, 1.0);  // n > 0: cannot happen

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const double xa = eigenvector[a];
    const double xb = eigenvector[b];
    if (xa != xb) return xa > xb;
    if (g.Degree(a) != g.Degree(b)) return g.Degree(a) > g.Degree(b);
    return a < b;
  });

  profile.labels.reserve(n);
  profile.degrees.reserve(n);
  profile.incident.reserve(n);
  for (uint32_t v : order) {
    profile.labels.push_back(g.VertexLabel(v));
    profile.degrees.push_back(static_cast<int32_t>(g.Degree(v)));
    std::vector<LabelId> inc;
    inc.reserve(g.Degree(v));
    for (const AdjEdge& e : g.Neighbors(v)) {
      if (e.label != kVirtualLabel) inc.push_back(e.label);
    }
    std::sort(inc.begin(), inc.end());
    profile.incident.push_back(std::move(inc));
  }
  return profile;
}

double SeriationDistance(const SeriationProfile& a, const SeriationProfile& b) {
  const size_t n1 = a.labels.size();
  const size_t n2 = b.labels.size();
  // Unit gap costs: the vertex deletion op itself; its incident edge edits
  // surface through the neighbouring substitution costs.
  auto del_cost = [&](size_t i) {
    (void)i;
    return 1.0;
  };
  auto ins_cost = [&](size_t j) {
    (void)j;
    return 1.0;
  };
  auto sub_cost = [&](size_t i, size_t j) {
    const double label = a.labels[i] == b.labels[j] ? 0.0 : 1.0;
    const double structure =
        0.5 * static_cast<double>(
                  MultisetEditDistance(a.incident[i], b.incident[j]));
    return label + structure;
  };

  // Two-row Levenshtein DP: O(n2) memory.
  std::vector<double> prev(n2 + 1, 0.0), curr(n2 + 1, 0.0);
  for (size_t j = 1; j <= n2; ++j) prev[j] = prev[j - 1] + ins_cost(j - 1);
  for (size_t i = 1; i <= n1; ++i) {
    curr[0] = prev[0] + del_cost(i - 1);
    for (size_t j = 1; j <= n2; ++j) {
      const double via_sub = prev[j - 1] + sub_cost(i - 1, j - 1);
      const double via_del = prev[j] + del_cost(i - 1);
      const double via_ins = curr[j - 1] + ins_cost(j - 1);
      curr[j] = std::min({via_sub, via_del, via_ins});
    }
    std::swap(prev, curr);
  }
  return prev[n2];
}

double SeriationGed(const Graph& g1, const Graph& g2) {
  return SeriationDistance(BuildSeriationProfile(g1), BuildSeriationProfile(g2));
}

}  // namespace gbda
