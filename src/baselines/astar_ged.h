#pragma once

#include <cstdint>

#include "common/result.h"
#include "graph/graph.h"

namespace gbda {

/// Options for the exact A* GED search.
struct AStarOptions {
  /// Node-expansion budget; the search fails with ResourceExhausted beyond
  /// it. A* GED is exponential (Section I: infeasible past ~12 vertices), so
  /// the budget keeps callers honest.
  size_t max_expansions = 5'000'000;
  /// Early-exit threshold: paths with f-cost above it are pruned and the
  /// result saturates at limit + 1 (meaning "GED > limit"). Leave at the
  /// default for the unbounded exact distance.
  int64_t limit = INT64_MAX;
};

/// Outcome of an exact computation.
struct ExactGedResult {
  /// min(GED, limit + 1).
  int64_t distance = 0;
  /// True when `distance` is the exact GED (i.e. distance <= limit).
  bool exact = true;
  size_t nodes_expanded = 0;
};

/// Exact graph edit distance under the unit-cost model of Definition 1 via
/// A* over vertex mappings (the classical algorithm of [5]).
///
/// Vertices of g1 are assigned in descending-degree order to a distinct
/// vertex of g2 or to epsilon (deletion); remaining g2 vertices and their
/// pending edges are inserted at the end. The admissible heuristic is the
/// label-multiset lower bound on the unmatched remainder (vertex labels plus
/// edge labels, both chargeable by disjoint operations). Used for ground
/// truth on small graphs and to validate every estimator in the test suite.
Result<ExactGedResult> ExactGed(const Graph& g1, const Graph& g2,
                                const AStarOptions& options = {});

/// Convenience: exact GED as a bare integer, propagating failures.
Result<int64_t> ExactGedValue(const Graph& g1, const Graph& g2,
                              const AStarOptions& options = {});

}  // namespace gbda
