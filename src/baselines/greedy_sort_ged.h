#pragma once

#include "baselines/cost_matrix.h"
#include "graph/graph.h"

namespace gbda {

/// Greedy-Sort-GED (Riesen, Ferrer & Bunke [12]): the same assignment cost
/// matrix as the LSAP baseline (full edge costs), but assigned greedily by
/// ascending cell cost in O(n^2 log n^2) instead of O(n^3). The result upper-
/// bounds the Hungarian optimum on the same matrix and carries no bound
/// guarantee against the true GED, but is usually a sharper estimate than
/// the halved-cost lower bound, which is why it wins precision in the
/// paper's figures while losing recall.
double GreedySortGed(const std::vector<VertexProfile>& p1,
                     const std::vector<VertexProfile>& p2);
double GreedySortGed(const Graph& g1, const Graph& g2);

}  // namespace gbda
