#include "baselines/greedy_sort_ged.h"

#include "math/hungarian.h"

namespace gbda {

double GreedySortGed(const std::vector<VertexProfile>& p1,
                     const std::vector<VertexProfile>& p2) {
  if (p1.empty() && p2.empty()) return 0.0;
  const DenseMatrix cost = BuildAssignmentCostMatrix(p1, p2, 1.0);
  Result<AssignmentResult> solved = SolveAssignmentGreedySort(cost);
  if (!solved.ok()) return 0.0;
  return solved->cost;
}

double GreedySortGed(const Graph& g1, const Graph& g2) {
  return GreedySortGed(BuildVertexProfiles(g1), BuildVertexProfiles(g2));
}

}  // namespace gbda
