#pragma once

#include <vector>

#include "graph/graph.h"
#include "math/dense_matrix.h"

namespace gbda {

/// Per-vertex profile used by the assignment-based baselines: the vertex
/// label plus the sorted multiset of incident edge labels. Precomputed and
/// stored with each graph, per the fairness assumption of Section III.
struct VertexProfile {
  LabelId label = kVirtualLabel;
  std::vector<LabelId> incident;  // ascending
};

std::vector<VertexProfile> BuildVertexProfiles(const Graph& g);

/// max(|A|,|B|) - |A ∩ B| for sorted label multisets: the unit-cost edit
/// distance between two edge-label multisets.
size_t MultisetEditDistance(const std::vector<LabelId>& a,
                            const std::vector<LabelId>& b);

/// Builds the (n1+n2) x (n1+n2) assignment cost matrix of Riesen & Bunke:
///   - substitution block: [label mismatch] + edge_factor * multiset edit
///     distance of incident edge labels;
///   - deletion/insertion diagonals: 1 + edge_factor * degree;
///   - forbidden off-diagonal cells carry a large finite penalty;
///   - the dummy-to-dummy block is zero.
///
/// edge_factor = 0.5 yields the provable GED lower bound (each real edge
/// operation is charged to two incident vertices); edge_factor = 1.0 is the
/// plain estimation variant.
DenseMatrix BuildAssignmentCostMatrix(const std::vector<VertexProfile>& p1,
                                      const std::vector<VertexProfile>& p2,
                                      double edge_factor);

}  // namespace gbda
