#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gbda {

/// The per-graph artifact of the Graph Seriation baseline (Robles-Kelly &
/// Hancock [13]): vertices ordered by the leading eigenvector of the
/// adjacency matrix, stored as the resulting label/degree sequences. The
/// eigenvector is the "serial ordering" that converts the graph into a
/// string; it is precomputed offline like the paper's adjacency matrices.
struct SeriationProfile {
  std::vector<LabelId> labels;    // vertex labels in seriation order
  std::vector<int32_t> degrees;   // matching degrees (structural context)
  /// Sorted incident edge-label multisets in seriation order. The original
  /// estimator is structure-only; this labeled-graph adaptation lets the
  /// string alignment see edge relabels as well (each edge edit shows up in
  /// the multisets of its two endpoints, hence the 1/2 weight below).
  std::vector<std::vector<LabelId>> incident;
};

/// Computes the seriation profile. The leading eigenvector is obtained by
/// shifted power iteration on the sparse adjacency operator (O(|E|) per
/// iteration); ties are broken by degree then by index so the order is
/// deterministic.
///
/// Reconstruction note (see docs/ARCHITECTURE.md): the original method extracts leading
/// eigenvalues of a dense adjacency matrix (O(n^2) memory) and scores the
/// string alignment with a Bernoulli edit model. We keep the same pipeline —
/// spectral seriation, then sequence edit distance — but use the sparse
/// eigenvector and a unit-cost model with a degree-difference structural
/// term, which preserves the estimator's behaviour while staying usable on
/// the 100K-vertex synthetic graphs.
SeriationProfile BuildSeriationProfile(const Graph& g);

/// Edit distance between the two seriation strings: Levenshtein DP in
/// O(n1 * n2) with substitution cost
///   [vertex label mismatch] + (incident edge-label multiset distance) / 2
/// and unit insertion/deletion cost — the O(n m^2)-class
/// sequence-matching step of the seriation estimator collapsed to its
/// unit-cost core.
double SeriationDistance(const SeriationProfile& a, const SeriationProfile& b);

/// Convenience wrapper: profiles + distance in one call.
double SeriationGed(const Graph& g1, const Graph& g2);

}  // namespace gbda
