/// \file dynamic_service.h
/// The dynamic-corpus serving layer (docs/ARCHITECTURE.md, "Dynamic
/// corpus"). The paper's offline stage (Algorithm 1, Step 1*) freezes the
/// database; DynamicGbdaService lifts that restriction for production
/// traffic: graphs are added and retired while queries are in flight.
///
/// Concurrency model — immutable snapshots, atomically swapped:
///   - A Snapshot bundles everything one query generation needs: the dense
///     list of live graphs, a dense GbdaIndex view, the Prefilter, the
///     IndexShards partitioning and the per-worker PosteriorEngine
///     replicas. Once published it is never modified.
///   - Writers (AddGraph / AddGraphs / RemoveGraphs) are serialized by a
///     mutex; each commit updates the master index incrementally (O(1)
///     branch-multiset work per touched graph), derives the next snapshot
///     in O(live) pointer copies (artifacts are shared, nothing heavy is
///     rebuilt) and swaps the published shared_ptr atomically.
///   - Readers load the current shared_ptr and answer the whole query
///     against that one generation — they never block on writers, and a
///     generation stays alive until its last in-flight query drops it.
///
/// Freshness of the GMM prior Lambda2 (Section V-B) is a policy knob:
/// every commit advances a staleness counter, and once drift exceeds
/// gbd_refit_fraction the prior is re-fit from pairs sampled over the live
/// corpus. With the default fraction of 0 every published snapshot is
/// bit-identical — match set, ordering and counters — to a fresh
/// GbdaIndex::Build + GbdaService over a database holding exactly the live
/// graphs (the equivalence asserted by tests/dynamic_service_test.cc).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/span.h"
#include "common/thread_pool.h"
#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "core/prefilter.h"
#include "service/gbda_service.h"
#include "service/index_shards.h"

namespace gbda {

/// Knobs of the dynamic serving layer.
struct DynamicServiceOptions {
  /// Pool/shard configuration, as in GbdaService.
  ServiceOptions service;
  /// Lambda2 staleness policy: the prior is re-fit at a commit when
  /// (mutations since last fit) / (live graphs) exceeds this fraction.
  /// <= 0 re-fits on every commit, which keeps every snapshot bit-identical
  /// to a from-scratch Build over the live corpus; larger values trade that
  /// strictness for cheaper commits (the prior drifts within the bound).
  double gbd_refit_fraction = 0.0;
};

/// Mutation-side counters since construction.
struct DynamicServiceStats {
  uint64_t snapshots_published = 0;
  uint64_t graphs_added = 0;
  uint64_t graphs_removed = 0;
  uint64_t gbd_refits = 0;
  /// Commits where the refit policy fired but fitting failed (e.g. the live
  /// corpus degenerated); the previous prior is kept and serving continues.
  uint64_t gbd_refit_failures = 0;
  double total_rebuild_seconds = 0.0;  // snapshot derivation, incl. refits
  double max_rebuild_seconds = 0.0;
  double last_rebuild_seconds = 0.0;
  double total_swap_seconds = 0.0;  // the atomic publish itself
  double max_swap_seconds = 0.0;
  double last_swap_seconds = 0.0;
};

/// One published generation. Identity of the corpus at a point in time.
struct SnapshotInfo {
  uint64_t generation = 0;
  size_t num_live = 0;
  /// Mutations absorbed since Lambda2 was last fit (0 means the snapshot is
  /// bit-identical to a from-scratch Build of its corpus).
  size_t gbd_staleness = 0;
};

/// Concurrent query engine over a mutable graph corpus. Thread-safe:
/// queries may run from any number of threads concurrently with each other
/// and with mutations; mutations are serialized internally. Query results
/// report stable graph ids — the id returned by AddGraph stays valid for
/// the graph's lifetime regardless of later mutations.
class DynamicGbdaService {
 public:
  /// Takes ownership of the initial database (no tombstones; at least the
  /// two graphs GbdaIndex::Build needs) and publishes generation 1.
  static Result<std::unique_ptr<DynamicGbdaService>> Create(
      GraphDatabase db, const GbdaIndexOptions& index_options,
      const DynamicServiceOptions& options = DynamicServiceOptions());

  // -- Mutations (serialized; each returns after the snapshot swap) --------

  /// Adds a graph (label ids must come from this corpus's dictionaries, see
  /// InternVertexLabel/InternEdgeLabel) and returns its stable id.
  /// Mutations optionally report the snapshot generation their commit
  /// published (`published` non-null): captured under the write lock, so it
  /// is exactly this commit's generation even with concurrent mutators —
  /// the handoff token the network front-end (src/net/server.h) returns to
  /// clients so every mutation is attributable to one published snapshot.
  Result<size_t> AddGraph(Graph g, SnapshotInfo* published = nullptr);
  /// Adds a batch under one commit — one snapshot swap for the whole batch.
  Result<std::vector<size_t>> AddGraphs(std::vector<Graph> graphs,
                                        SnapshotInfo* published = nullptr);
  /// Retires graphs by stable id. Fails as a no-op when any id is unknown,
  /// already removed, or duplicated.
  Status RemoveGraphs(const std::vector<size_t>& ids,
                      SnapshotInfo* published = nullptr);
  /// Interns a label for use by later AddGraph calls. The enlarged label
  /// universe |L_V| / |L_E| (Eq. 33) takes effect at the next commit (or
  /// Flush) unless the index options pin explicit model label counts.
  LabelId InternVertexLabel(const std::string& name);
  LabelId InternEdgeLabel(const std::string& name);
  /// Publishes a snapshot without mutating the corpus: absorbs interned
  /// labels and forces any policy-deferred Lambda2 refit (the staleness
  /// threshold is bypassed). Fails — with the snapshot still published —
  /// when the refit could not run (fewer than two live graphs, or the fit
  /// itself failed), so success guarantees a drift-free prior.
  /// `published` reports the published generation even on failure.
  Status Flush(SnapshotInfo* published = nullptr);

  // -- Queries (against one consistent snapshot; ids are stable ids) ------

  Result<SearchResult> Query(const Graph& query, const SearchOptions& options);
  /// Top-k ranking over the pinned snapshot. Runs the early-terminated
  /// scan — the snapshot's prefilter profiles always sharpen the pruning
  /// bound, independent of options.use_prefilter — unless
  /// options.topk_early_termination is off; bit-identical either way.
  /// k == 0 is a defined-empty result (API-boundary decision, no scan; see
  /// core/gbda_search.h on kScanAllMatches vs k == 0).
  Result<SearchResult> QueryTopK(const Graph& query, size_t k,
                                 const SearchOptions& options);
  Result<std::vector<SearchResult>> QueryBatch(Span<Graph> queries,
                                               const SearchOptions& options);
  /// Batched top-k rankings, all against ONE pinned snapshot;
  /// results[i] is bit-identical to QueryTopK(queries[i], k, options)
  /// against that same snapshot. `served` (non-null) reports the pinned
  /// snapshot's identity — the batch handoff hook the network front-end
  /// uses to stamp every co-batched response with the generation it was
  /// served against (filled on success and failure; also for k == 0, where
  /// no scan runs but the result is still attributed to the current
  /// generation).
  Result<std::vector<SearchResult>> QueryTopKBatch(
      Span<Graph> queries, size_t k, const SearchOptions& options,
      SnapshotInfo* served = nullptr);

  // -- Introspection -------------------------------------------------------

  size_t num_threads() const { return pool_.size(); }
  /// The published generation's identity (atomic read, no locking).
  SnapshotInfo snapshot_info() const;
  /// Live graph count of the published generation.
  size_t num_live() const { return snapshot_info().num_live; }

  /// Ensures the CURRENT snapshot's approximate-navigation context exists,
  /// building it from the snapshot's prefilter with
  /// ServiceOptions::ann_build (see GbdaService::WarmAnnGraph). Each
  /// published generation owns its own lazily-built context — the corpus it
  /// navigates is exactly that generation's — so a warm is per-generation:
  /// the next commit starts cold again and the first approximate query
  /// against it pays the build unless re-warmed.
  Status WarmAnnGraph();

  /// Query-side counters, as in GbdaService (sharded, lock-free on the
  /// query path; exact once in-flight queries return).
  ServiceStats stats() const;
  /// Mutation-side counters.
  DynamicServiceStats dynamic_stats() const;
  /// Zeroes both counter sets. Quiesce queries first (obs::Counter::Reset).
  void ResetStats();

  /// Appends this service's metric families for a registry collector.
  void CollectMetrics(const std::string& labels,
                      std::vector<obs::MetricFamily>* out) const {
    counters_.Collect(labels, out);
  }

  /// The underlying database (stable-id space, including tombstoned slots).
  /// Reading it concurrently with mutations requires external
  /// synchronization; prefer the query API on the serving path. The
  /// analysis opt-out is that documented contract made visible: this
  /// accessor deliberately hands out write_mutex_-guarded state unlocked.
  const GraphDatabase& db() const GBDA_NO_THREAD_SAFETY_ANALYSIS {
    return db_;
  }

 private:
  /// Lazily-built approximate-navigation context of one snapshot. Shared
  /// mutable state hanging off an otherwise-immutable generation: call_once
  /// makes the build race-free, and a failed build is sticky (status) so
  /// approximate queries report it instead of silently rescanning.
  struct AnnState {
    std::once_flag once;
    std::unique_ptr<const AnnContext> ctx;
    Status status;
  };

  struct Snapshot {
    uint64_t generation = 0;
    std::vector<size_t> stable_ids;       // dense position -> stable id
    std::vector<const Graph*> graphs;     // dense; deque-stable pointers
    /// The generation's branch store, held through the IndexReader scan
    /// contract: today always an owned dense CompactView, but any reader —
    /// e.g. a mapped GbdaIndexView over a v3 artifact — satisfies the
    /// serving path (docs/ARCHITECTURE.md, "Storage engine").
    std::shared_ptr<const IndexReader> index;
    std::shared_ptr<const Prefilter> prefilter;
    std::unique_ptr<IndexShards> shards;
    /// One engine per pool worker + spare; shared with the previous
    /// generation when both priors are unchanged (replicas stay warm).
    std::shared_ptr<std::vector<std::unique_ptr<PosteriorEngine>>> engines;
    /// Built on the generation's first approximate query (or WarmAnnGraph);
    /// never shared across generations, since the navigable corpus changed.
    std::shared_ptr<AnnState> ann;
  };

  DynamicGbdaService(GraphDatabase db, GbdaIndex master,
                     const GbdaIndexOptions& index_options,
                     const DynamicServiceOptions& options);

  /// Validates that `g`'s label ids exist in the corpus dictionaries.
  Status ValidateLabels(const Graph& g) const GBDA_REQUIRES(write_mutex_);
  /// Derives and publishes the next snapshot. `force_refit` bypasses the
  /// Lambda2 staleness threshold (any accumulated drift is fit away).
  void Republish(bool force_refit = false) GBDA_REQUIRES(write_mutex_);
  /// Shared query path over one pinned snapshot; remaps dense match ids to
  /// stable ids.
  Result<std::vector<SearchResult>> RunBatchOn(
      const std::shared_ptr<const Snapshot>& snap, Span<Graph> queries,
      const SearchOptions& options, bool apply_gamma, size_t top_k);
  /// Builds (at most once) the snapshot's AnnState; returns its status.
  Status EnsureSnapshotAnn(const Snapshot& snap) const;
  std::shared_ptr<const Snapshot> LoadSnapshot() const;

  const GbdaIndexOptions index_options_;
  const DynamicServiceOptions options_;

  mutable Mutex write_mutex_;  // serializes mutations + publication
  /// Stable-id space; deque storage keeps refs valid. Queries never touch
  /// these — they pin a published Snapshot instead — so write_mutex_ is a
  /// writer-writer lock only.
  GraphDatabase db_ GBDA_GUARDED_BY(write_mutex_);
  GbdaIndex master_ GBDA_GUARDED_BY(write_mutex_);
  /// Per-stable-id filter profiles (built once per graph, shared by every
  /// snapshot that includes the graph).
  std::vector<std::shared_ptr<const FilterProfile>> profiles_
      GBDA_GUARDED_BY(write_mutex_);
  uint64_t generation_ GBDA_GUARDED_BY(write_mutex_) = 0;

  ThreadPool pool_;
  /// Deliberately unguarded: accessed exclusively through the free
  /// std::atomic_load/atomic_store shared_ptr overloads (LoadSnapshot /
  /// Republish), the readers-never-block-writers handoff.
  std::shared_ptr<const Snapshot> snapshot_;

  /// Query-side counters: sharded and lock-free (see ServiceCounters); the
  /// mutex below now guards only the mutation-side aggregates, which are
  /// written under the serialized commit path anyway.
  ServiceCounters counters_;
  mutable Mutex stats_mutex_;
  DynamicServiceStats dynamic_stats_ GBDA_GUARDED_BY(stats_mutex_);
};

}  // namespace gbda
