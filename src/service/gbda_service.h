/// \file gbda_service.h
/// The serving layer: a concurrent, sharded front-end over the one-shot
/// GbdaSearch (docs/ARCHITECTURE.md, "Serving layer"). A GbdaService owns a
/// fixed-size ThreadPool and an IndexShards partitioning of the database;
/// Query / QueryTopK / QueryBatch fan every (query, shard) pair onto the
/// pool and merge shard results deterministically, so the output — match
/// set, ordering, top-k tie-breaking and the candidates/prefilter counters
/// — is bit-identical to the serial GbdaSearch scan.
///
/// Each pool worker owns a private PosteriorEngine replica: the engine
/// lazily warms per-size Lambda1 calculators and a (v, phi, tau_hat) memo,
/// and sharing one engine would serialise every Phi evaluation on its memo
/// lock. The replicas share the index's thread-safe GedPriorTable and the
/// immutable GbdPrior, so replication costs only the (small, lazily filled)
/// memo tables.

#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "ann/navigator.h"
#include "common/result.h"
#include "common/span.h"
#include "common/thread_pool.h"
#include "core/gbda_search.h"
#include "core/prefilter.h"
#include "obs/metrics_registry.h"
#include "service/index_shards.h"

namespace gbda {

/// Concurrency knobs of the serving layer.
struct ServiceOptions {
  /// Pool workers; 0 means std::thread::hardware_concurrency (at least 1).
  size_t num_threads = 0;
  /// Contiguous database shards; 0 means one per worker. More shards than
  /// workers improves load balance on skewed databases; the result is
  /// identical for any shard count.
  size_t num_shards = 0;
  /// Proximity-graph construction knobs for approximate mode, used when
  /// the service builds its navigation graph (WarmAnnGraph, or lazily on
  /// the first approximate query) rather than adopting a persisted one.
  AnnBuildParams ann_build;
};

/// Aggregate serving statistics since construction (or ResetStats). A plain
/// value snapshot assembled from the owning service's sharded counters
/// (ServiceCounters) — concurrent client threads may call Query/QueryBatch/
/// stats() freely; no lock is taken anywhere on the query path.
struct ServiceStats {
  size_t queries_served = 0;
  size_t batches_served = 0;  // QueryBatch / QueryTopKBatch calls
  size_t candidates_evaluated = 0;
  size_t prefiltered_out = 0;
  /// Posterior evaluations skipped by top-k early termination (subset of
  /// candidates_evaluated; see SearchResult::pruned_by_bound).
  size_t pruned_by_bound = 0;
  /// Nodes the approximate navigator visited (0 for exhaustive queries) and
  /// candidates that paid the full verification tail. Cost observability,
  /// like pruned_by_bound: excluded from determinism comparisons (see
  /// SearchResult::candidates_visited / verified_count).
  size_t candidates_visited = 0;
  size_t verified_count = 0;
  size_t matches_returned = 0;
  /// Sum of per-query latencies (submission to last-shard completion).
  double total_latency_seconds = 0.0;
  /// Sum of top-level call wall times (a batch counts once).
  double total_wall_seconds = 0.0;

  double MeanLatencySeconds() const {
    return queries_served == 0 ? 0.0
                               : total_latency_seconds /
                                     static_cast<double>(queries_served);
  }
  /// Served-query throughput. The denominator is clamped to the timer's
  /// plausible resolution so a fast batch whose wall time rounds to zero
  /// (sub-tick) still reports a finite, nonzero QPS instead of 0 — by
  /// construction nonzero whenever queries_served > 0.
  double QueriesPerSecond() const {
    if (queries_served == 0) return 0.0;
    const double wall = total_wall_seconds > kMinWallSeconds
                            ? total_wall_seconds
                            : kMinWallSeconds;
    return static_cast<double>(queries_served) / wall;
  }

  /// Denominator clamp for QueriesPerSecond: one nanosecond, below any
  /// steady_clock tick a served query could take.
  static constexpr double kMinWallSeconds = 1e-9;
};

/// Lock-free backing store for ServiceStats: one sharded relaxed-atomic
/// counter per field (durations in integer nanoseconds — exact to the
/// steady_clock tick), so accumulation on the query path never contends and
/// never takes a mutex. Snapshot() is exact once writers quiesce and a
/// consistent lower bound while they run; Reset() requires quiesced writers
/// (same caveat as obs::Counter::Reset).
struct ServiceCounters {
  obs::Counter queries_served;
  obs::Counter batches_served;
  obs::Counter candidates_evaluated;
  obs::Counter prefiltered_out;
  obs::Counter pruned_by_bound;
  obs::Counter candidates_visited;
  obs::Counter verified_count;
  obs::Counter matches_returned;
  obs::Counter latency_nanos;  // sum of per-query latencies
  obs::Counter wall_nanos;     // sum of top-level call wall times
  /// Per-query scan-stage latency distribution (microseconds), recorded only
  /// when tracing samples the query (obs::TraceSampled) so the untraced hot
  /// path pays nothing for it.
  obs::ConcurrentHistogram scan_latency_micros;

  ServiceStats Snapshot() const;
  void Reset();
  /// Appends this service's gbda_service_* metric families, every point
  /// tagged with `labels` (may be empty). Feeds MetricsRegistry collectors.
  void Collect(const std::string& labels, std::vector<obs::MetricFamily>* out) const;
};

/// Folds one batch's results into the sharded counters (shared by
/// GbdaService and DynamicGbdaService; safe to call from any thread, no
/// locking). `wall_seconds` is the top-level call's wall time.
void AccumulateServiceStats(const std::vector<SearchResult>& results,
                            double wall_seconds, ServiceCounters* counters);

/// Concurrent sharded query engine over a prebuilt index. The index is
/// consumed through the IndexReader contract (core/index_reader.h), so the
/// service serves equally from a decoded GbdaIndex and from a zero-copy
/// GbdaIndexView over a mapped v3 artifact (storage/index_view.h) — results
/// are bit-identical either way. Thread-safe: concurrent public calls are
/// allowed (they share the pool and the per-worker engines; statistics are
/// mutex-guarded). `db` and `index` must outlive the service and the index
/// must have been built over exactly this database.
class GbdaService {
 public:
  /// Checked construction: fails when `index` does not agree with `db`
  /// (graph counts and per-graph branch sizes), e.g. a stale LoadFromFile
  /// artifact — an undetected mismatch would drive out-of-bounds branch and
  /// prefilter lookups in the shard scans.
  static Result<std::unique_ptr<GbdaService>> Create(
      const GraphDatabase* db, const IndexReader* index,
      const ServiceOptions& options = ServiceOptions());

  /// Raw constructor; Create enforces db/index agreement up front, the raw
  /// path defers it to query time (PrepareScan rejects a size mismatch
  /// before any out-of-bounds access can happen).
  GbdaService(const GraphDatabase* db, const IndexReader* index,
              const ServiceOptions& options = ServiceOptions());

  /// Threshold query, bit-identical to GbdaSearch::Query (matches in
  /// ascending graph id order). result.seconds is the query's wall latency.
  Result<SearchResult> Query(const Graph& query, const SearchOptions& options);

  /// Top-k ranking, bit-identical to GbdaSearch::QueryTopK including the
  /// (phi_score desc, gbd asc, id asc) tie-breaking. Each shard truncates
  /// to its local top-k before the global merge re-ranks. Runs the
  /// early-terminated scan (shards share the running k-th-best bound)
  /// unless options.topk_early_termination is off — results are identical
  /// either way. k == 0 is defined as an empty result (validated here at
  /// the API boundary, no scan runs; see core/gbda_search.h on the
  /// kScanAllMatches sentinel vs k == 0).
  Result<SearchResult> QueryTopK(const Graph& query, size_t k,
                                 const SearchOptions& options);

  /// Batched threshold queries: all (query, shard) pairs are in flight on
  /// the pool at once, so one slow query does not serialise the batch.
  /// results[i].seconds is query i's latency from batch submission to its
  /// last shard completing. Fails as a whole on the first invalid query /
  /// evaluation error (the only failure modes are option validation and
  /// posterior-domain errors, which are query-global).
  Result<std::vector<SearchResult>> QueryBatch(Span<Graph> queries,
                                               const SearchOptions& options);

  /// Batched top-k rankings with the same in-flight fan-out as QueryBatch;
  /// results[i] is bit-identical to QueryTopK(queries[i], k, options).
  /// Each query job carries its own shard-shared pruning bound.
  Result<std::vector<SearchResult>> QueryTopKBatch(Span<Graph> queries,
                                                   size_t k,
                                                   const SearchOptions& options);

  size_t num_threads() const { return pool_.size(); }
  size_t num_shards() const { return shards_.num_shards(); }

  // -- Approximate navigation ------------------------------------------------
  // Ranking queries with options.approximate walk a proximity graph over
  // branch-fingerprint similarity instead of scanning every shard, then
  // verify the visited candidates exactly (ann/navigator.h): the result is
  // a subset of the exhaustive top-k with bit-exact scores. The context is
  // built at most once per service — lazily on the first approximate query,
  // eagerly via WarmAnnGraph, or adopted from a mapped artifact.

  /// Ensures the navigation context exists, building it with
  /// ServiceOptions::ann_build when nothing was adopted. Idempotent;
  /// returns the (sticky) build status. Call it at startup to keep the
  /// O(corpus · degree · window) construction off the first query's latency.
  Status WarmAnnGraph();

  /// Adopts a prebuilt graph — typically GbdaIndexView::ann_graph() from a
  /// v3 artifact written with one — instead of building. The referenced
  /// storage must outlive the service, and the graph must cover exactly the
  /// index's graphs. Fails (FailedPrecondition) once the context exists,
  /// so adopt before the first approximate query or WarmAnnGraph call.
  Status AdoptAnnGraph(const ProximityGraphRef& graph);

  /// Snapshot of the aggregate counters (exact once in-flight queries have
  /// returned; a consistent lower bound while they run).
  ServiceStats stats() const;
  /// Zeroes the counters. Quiesce concurrent queries first: an accumulation
  /// racing the reset may survive it partially.
  void ResetStats();

  /// Appends this service's metric families for a registry collector.
  void CollectMetrics(const std::string& labels,
                      std::vector<obs::MetricFamily>* out) const {
    counters_.Collect(labels, out);
  }

 private:
  /// Shared fan-out/merge (service/parallel_scan.h). top_k ==
  /// kScanAllMatches keeps every match (threshold mode); otherwise each
  /// shard and the final merge truncate to top_k.
  Result<std::vector<SearchResult>> RunBatch(Span<Graph> queries,
                                             const SearchOptions& options,
                                             bool apply_gamma, size_t top_k);

  /// The layered prefilter, built on the first batch that enables it:
  /// profile extraction is O(corpus) and cold-start sensitive (the mapped
  /// v3 serving path opens in microseconds; an eager prefilter would put a
  /// corpus-sized decode right back into startup). Thread-safe via
  /// call_once; returns a stable pointer.
  const Prefilter* EnsurePrefilter();

  const GraphDatabase* db_;
  const IndexReader* index_;
  AnnBuildParams ann_build_;
  ThreadPool pool_;  // before shards_: the shard default is one per worker
  std::once_flag prefilter_once_;
  std::unique_ptr<Prefilter> prefilter_;
  IndexShards shards_;
  std::vector<std::unique_ptr<PosteriorEngine>> engines_;
  /// Approximate-navigation context, initialised at most once (build or
  /// adopt). A failed initialisation is sticky in ann_status_: every later
  /// approximate query reports it rather than silently degrading to an
  /// exhaustive scan the client did not ask to pay for.
  std::once_flag ann_once_;
  std::unique_ptr<const AnnContext> ann_;
  Status ann_status_;

  ServiceCounters counters_;
};

}  // namespace gbda
