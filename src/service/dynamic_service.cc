#include "service/dynamic_service.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/timer.h"
#include "service/parallel_scan.h"

namespace gbda {

Result<std::unique_ptr<DynamicGbdaService>> DynamicGbdaService::Create(
    GraphDatabase db, const GbdaIndexOptions& index_options,
    const DynamicServiceOptions& options) {
  if (db.has_tombstones()) {
    return Status::InvalidArgument(
        "dynamic service: the initial database must be tombstone-free");
  }
  Result<GbdaIndex> master = GbdaIndex::Build(db, index_options);
  if (!master.ok()) return master.status();
  // Build copies everything it needs out of `db`, so moving it afterwards
  // is safe; from here on the service owns the only mutable handle.
  return std::unique_ptr<DynamicGbdaService>(new DynamicGbdaService(
      std::move(db), std::move(*master), index_options, options));
}

DynamicGbdaService::DynamicGbdaService(GraphDatabase db, GbdaIndex master,
                                       const GbdaIndexOptions& index_options,
                                       const DynamicServiceOptions& options)
    : index_options_(index_options),
      options_(options),
      db_(std::move(db)),
      master_(std::move(master)),
      pool_(options.service.num_threads) {
  profiles_.reserve(db_.size());
  for (size_t id = 0; id < db_.size(); ++id) {
    profiles_.push_back(
        std::make_shared<const FilterProfile>(BuildFilterProfile(db_.graph(id))));
  }
  MutexLock lock(&write_mutex_);
  Republish();
}

Status DynamicGbdaService::ValidateLabels(const Graph& g) const {
  const size_t num_vertex_ids = db_.vertex_labels().size();
  const size_t num_edge_ids = db_.edge_labels().size();
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    if (g.VertexLabel(v) >= num_vertex_ids) {
      return Status::InvalidArgument(
          "AddGraph: unknown vertex label id " +
          std::to_string(g.VertexLabel(v)) +
          " (intern labels through the service first)");
    }
    for (const AdjEdge& e : g.Neighbors(v)) {
      if (e.label >= num_edge_ids) {
        return Status::InvalidArgument(
            "AddGraph: unknown edge label id " + std::to_string(e.label) +
            " (intern labels through the service first)");
      }
    }
  }
  return Status::OK();
}

void DynamicGbdaService::Republish(bool force_refit) {
  WallTimer rebuild_timer;

  // The model label universe may have grown (interned labels, new graphs);
  // explicit option overrides stay pinned, as in Build.
  const int64_t lv =
      index_options_.model_vertex_labels > 0
          ? index_options_.model_vertex_labels
          : static_cast<int64_t>(db_.vertex_labels().num_real_labels());
  const int64_t le =
      index_options_.model_edge_labels > 0
          ? index_options_.model_edge_labels
          : static_cast<int64_t>(db_.edge_labels().num_real_labels());
  master_.RefreshModelLabels(lv, le);

  // Lambda2 staleness policy (see DynamicServiceOptions). A refit that
  // cannot run (fit failure, or fewer than the two live graphs a fit
  // needs) keeps the previous prior: availability over freshness,
  // surfaced through dynamic_stats().gbd_refit_failures and the
  // still-nonzero SnapshotInfo::gbd_staleness.
  bool refit_failed = false;
  bool refit_done = false;
  if (master_.gbd_staleness() > 0 &&
      (force_refit || options_.gbd_refit_fraction <= 0.0 ||
       master_.GbdStalenessFraction() > options_.gbd_refit_fraction)) {
    if (master_.num_live() >= 2) {
      Status refit = master_.RefitGbdPrior();
      refit_done = refit.ok();
      refit_failed = !refit.ok();
    } else {
      refit_failed = true;
    }
  }

  auto snap = std::make_shared<Snapshot>();
  snap->generation = ++generation_;
  snap->index =
      std::make_shared<GbdaIndex>(master_.CompactView(&snap->stable_ids));
  snap->graphs.reserve(snap->stable_ids.size());
  std::vector<std::shared_ptr<const FilterProfile>> dense_profiles;
  dense_profiles.reserve(snap->stable_ids.size());
  for (size_t id : snap->stable_ids) {
    snap->graphs.push_back(&db_.graph(id));
    dense_profiles.push_back(profiles_[id]);
  }
  snap->prefilter = std::make_shared<const Prefilter>(std::move(dense_profiles));
  const size_t shard_count = options_.service.num_shards == 0
                                 ? pool_.size()
                                 : options_.service.num_shards;
  snap->shards = std::make_unique<IndexShards>(snap->index.get(),
                                               shard_count);
  snap->ann = std::make_shared<AnnState>();

  // Engine replicas memoise posterior values that depend only on the two
  // priors, so when neither prior object changed the previous generation's
  // warm replicas carry over; otherwise fresh ones are built against the
  // new prior objects (kept alive by the snapshot's index).
  std::shared_ptr<const Snapshot> prev = LoadSnapshot();
  if (prev && &prev->index->gbd_prior() == &snap->index->gbd_prior() &&
      prev->index->mutable_ged_prior() == snap->index->mutable_ged_prior()) {
    snap->engines = prev->engines;
  } else {
    auto engines =
        std::make_shared<std::vector<std::unique_ptr<PosteriorEngine>>>();
    engines->reserve(pool_.size() + 1);
    for (size_t i = 0; i < pool_.size() + 1; ++i) {
      engines->push_back(std::make_unique<PosteriorEngine>(
          snap->index->num_vertex_labels(), snap->index->num_edge_labels(),
          snap->index->tau_max(), snap->index->mutable_ged_prior(),
          &snap->index->gbd_prior()));
    }
    snap->engines = std::move(engines);
  }

  const double rebuild_seconds = rebuild_timer.Seconds();
  WallTimer swap_timer;
  std::atomic_store(&snapshot_,
                    std::shared_ptr<const Snapshot>(std::move(snap)));
  const double swap_seconds = swap_timer.Seconds();

  MutexLock lock(&stats_mutex_);
  ++dynamic_stats_.snapshots_published;
  if (refit_done) ++dynamic_stats_.gbd_refits;
  if (refit_failed) ++dynamic_stats_.gbd_refit_failures;
  dynamic_stats_.last_rebuild_seconds = rebuild_seconds;
  dynamic_stats_.total_rebuild_seconds += rebuild_seconds;
  dynamic_stats_.max_rebuild_seconds =
      std::max(dynamic_stats_.max_rebuild_seconds, rebuild_seconds);
  dynamic_stats_.last_swap_seconds = swap_seconds;
  dynamic_stats_.total_swap_seconds += swap_seconds;
  dynamic_stats_.max_swap_seconds =
      std::max(dynamic_stats_.max_swap_seconds, swap_seconds);
}

std::shared_ptr<const DynamicGbdaService::Snapshot>
DynamicGbdaService::LoadSnapshot() const {
  return std::atomic_load(&snapshot_);
}

namespace {

/// Fills the caller's generation token from the just-published snapshot.
/// Callers hold write_mutex_, so the loaded snapshot is exactly the one
/// their Republish stored (no later commit can have intervened).
void ReportPublished(const SnapshotInfo& info, SnapshotInfo* published) {
  if (published != nullptr) *published = info;
}

}  // namespace

Result<size_t> DynamicGbdaService::AddGraph(Graph g, SnapshotInfo* published) {
  Result<std::vector<size_t>> ids = AddGraphs({std::move(g)}, published);
  if (!ids.ok()) return ids.status();
  return (*ids)[0];
}

Result<std::vector<size_t>> DynamicGbdaService::AddGraphs(
    std::vector<Graph> graphs, SnapshotInfo* published) {
  if (graphs.empty()) {
    ReportPublished(snapshot_info(), published);  // no commit, current gen
    return std::vector<size_t>{};
  }
  MutexLock lock(&write_mutex_);
  for (const Graph& g : graphs) {
    Status labels = ValidateLabels(g);
    if (!labels.ok()) return labels;
  }
  std::vector<size_t> ids;
  ids.reserve(graphs.size());
  for (Graph& g : graphs) {
    const size_t id = db_.Add(std::move(g));
    const Graph& stored = db_.graph(id);
    master_.AddGraph(stored);
    profiles_.push_back(
        std::make_shared<const FilterProfile>(BuildFilterProfile(stored)));
    ids.push_back(id);
  }
  {
    MutexLock stats_lock(&stats_mutex_);
    dynamic_stats_.graphs_added += ids.size();
  }
  Republish();
  ReportPublished(snapshot_info(), published);
  return ids;
}

Status DynamicGbdaService::RemoveGraphs(const std::vector<size_t>& ids,
                                        SnapshotInfo* published) {
  if (ids.empty()) {
    ReportPublished(snapshot_info(), published);
    return Status::OK();
  }
  MutexLock lock(&write_mutex_);
  Status removed = db_.RemoveGraphs(ids);
  if (!removed.ok()) return removed;  // validated up front: no-op on failure
  Status index_removed = master_.RemoveGraphs(ids);
  if (!index_removed.ok()) return index_removed;  // unreachable: db agreed
  {
    MutexLock stats_lock(&stats_mutex_);
    dynamic_stats_.graphs_removed += ids.size();
  }
  Republish();
  ReportPublished(snapshot_info(), published);
  return Status::OK();
}

LabelId DynamicGbdaService::InternVertexLabel(const std::string& name) {
  MutexLock lock(&write_mutex_);
  return db_.vertex_labels().Intern(name);
}

LabelId DynamicGbdaService::InternEdgeLabel(const std::string& name) {
  MutexLock lock(&write_mutex_);
  return db_.edge_labels().Intern(name);
}

Status DynamicGbdaService::Flush(SnapshotInfo* published) {
  MutexLock lock(&write_mutex_);
  Republish(/*force_refit=*/true);
  ReportPublished(snapshot_info(), published);
  // The snapshot is published either way (availability), but a caller
  // flushing to guarantee a fresh Lambda2 must hear when the refit could
  // not run (degenerate corpus or fit failure).
  if (master_.gbd_staleness() > 0) {
    return Status::FailedPrecondition(
        "Flush: Lambda2 refit could not run (need >= 2 live graphs and a "
        "fit-able corpus); snapshot published with the stale prior");
  }
  return Status::OK();
}

Status DynamicGbdaService::EnsureSnapshotAnn(const Snapshot& snap) const {
  AnnState* state = snap.ann.get();
  std::call_once(state->once, [this, &snap, state] {
    // Built from the snapshot's own prefilter profiles: the dense ids the
    // graph navigates are exactly this generation's corpus positions.
    Result<AnnContext> ctx = AnnContext::Build(
        FingerprintStore::FromPrefilter(*snap.prefilter),
        options_.service.ann_build);
    if (ctx.ok()) {
      state->ctx = std::make_unique<const AnnContext>(std::move(*ctx));
    } else {
      state->status = ctx.status();
    }
  });
  return state->status;
}

Status DynamicGbdaService::WarmAnnGraph() {
  return EnsureSnapshotAnn(*LoadSnapshot());
}

Result<std::vector<SearchResult>> DynamicGbdaService::RunBatchOn(
    const std::shared_ptr<const Snapshot>& snap, Span<Graph> queries,
    const SearchOptions& options, bool apply_gamma, size_t top_k) {
  WallTimer timer;
  // Same routing rule as GbdaService::RunBatch: approximate serves
  // concrete-k rankings only, and the context (like everything else in the
  // env) belongs to the pinned generation.
  const bool approximate = options.approximate && !apply_gamma &&
                           top_k != kScanAllMatches && top_k > 0;
  if (approximate) {
    Status ann_ok = EnsureSnapshotAnn(*snap);
    if (!ann_ok.ok()) return ann_ok;
  }
  ParallelScanEnv env{&pool_, snap->shards.get(), snap->index.get(),
                      snap->prefilter.get(), CorpusRef(&snap->graphs),
                      snap->engines.get()};
  Result<std::vector<SearchResult>> results =
      approximate
          ? AnnScanBatch(env, *snap->ann->ctx, queries, options, top_k)
          : ParallelScanBatch(env, queries, options, apply_gamma, top_k);
  if (!results.ok()) return results;

  for (SearchResult& r : *results) {
    // Dense positions -> stable ids. The map is ascending, so the serial id
    // order and every top-k tie-break survive the translation.
    for (SearchMatch& m : r.matches) {
      m.graph_id = snap->stable_ids[m.graph_id];
    }
  }
  AccumulateServiceStats(*results, timer.Seconds(), &counters_);
  return results;
}

Result<SearchResult> DynamicGbdaService::Query(const Graph& query,
                                               const SearchOptions& options) {
  std::shared_ptr<const Snapshot> snap = LoadSnapshot();
  Result<std::vector<SearchResult>> batch =
      RunBatchOn(snap, Span<Graph>(&query, 1), options, /*apply_gamma=*/true,
                 kScanAllMatches);
  if (!batch.ok()) return batch.status();
  return std::move((*batch)[0]);
}

Result<SearchResult> DynamicGbdaService::QueryTopK(const Graph& query,
                                                   size_t k,
                                                   const SearchOptions& options) {
  // k == 0: defined-empty ranking, decided at the API boundary — no
  // snapshot scan runs (the query still counts as served).
  if (k == 0) {
    std::vector<SearchResult> empty(1);
    AccumulateServiceStats(empty, 0.0, &counters_);
    return SearchResult{};
  }
  std::shared_ptr<const Snapshot> snap = LoadSnapshot();
  // Clamp exactly as GbdaService does, against THIS snapshot's corpus, so an
  // oversized k cannot collide with the kScanAllMatches sentinel.
  k = std::min(k, snap->index->num_graphs());
  Result<std::vector<SearchResult>> batch = RunBatchOn(
      snap, Span<Graph>(&query, 1), options, /*apply_gamma=*/false, k);
  if (!batch.ok()) return batch.status();
  return std::move((*batch)[0]);
}

Result<std::vector<SearchResult>> DynamicGbdaService::QueryTopKBatch(
    Span<Graph> queries, size_t k, const SearchOptions& options,
    SnapshotInfo* served) {
  std::shared_ptr<const Snapshot> snap = LoadSnapshot();
  if (served != nullptr) {
    served->generation = snap->generation;
    served->num_live = snap->index->num_graphs();
    served->gbd_staleness = snap->index->gbd_staleness();
  }
  if (k == 0) {
    std::vector<SearchResult> empty(queries.size());
    AccumulateServiceStats(empty, 0.0, &counters_);
    counters_.batches_served.Add(1);
    return empty;
  }
  k = std::min(k, snap->index->num_graphs());
  Result<std::vector<SearchResult>> batch =
      RunBatchOn(snap, queries, options, /*apply_gamma=*/false, k);
  if (batch.ok()) counters_.batches_served.Add(1);
  return batch;
}

Result<std::vector<SearchResult>> DynamicGbdaService::QueryBatch(
    Span<Graph> queries, const SearchOptions& options) {
  std::shared_ptr<const Snapshot> snap = LoadSnapshot();
  Result<std::vector<SearchResult>> batch = RunBatchOn(
      snap, queries, options, /*apply_gamma=*/true, kScanAllMatches);
  if (batch.ok()) counters_.batches_served.Add(1);
  return batch;
}

SnapshotInfo DynamicGbdaService::snapshot_info() const {
  std::shared_ptr<const Snapshot> snap = LoadSnapshot();
  SnapshotInfo info;
  if (snap) {
    info.generation = snap->generation;
    info.num_live = snap->index->num_graphs();
    info.gbd_staleness = snap->index->gbd_staleness();
  }
  return info;
}

ServiceStats DynamicGbdaService::stats() const { return counters_.Snapshot(); }

DynamicServiceStats DynamicGbdaService::dynamic_stats() const {
  MutexLock lock(&stats_mutex_);
  return dynamic_stats_;
}

void DynamicGbdaService::ResetStats() {
  counters_.Reset();
  MutexLock lock(&stats_mutex_);
  dynamic_stats_ = DynamicServiceStats();
}

}  // namespace gbda
