/// \file parallel_scan.h
/// The shared fan-out/merge core of the serving layer: every (query, shard)
/// pair becomes one pool task running core ScanRange, and per-shard partials
/// are concatenated in shard order — bit-identical to the serial scan
/// (docs/ARCHITECTURE.md, "Serving layer"). GbdaService runs it against a
/// frozen database; DynamicGbdaService runs it against the dense corpus of
/// an immutable snapshot. Everything referenced by ParallelScanEnv is
/// borrowed and must stay alive for the duration of the call.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "ann/navigator.h"
#include "common/result.h"
#include "common/span.h"
#include "common/thread_pool.h"
#include "core/gbda_search.h"
#include "core/prefilter.h"
#include "service/index_shards.h"

namespace gbda {

// The top_k sentinel kScanAllMatches lives next to the scan pipeline in
// core/gbda_search.h (included above), which also documents the sentinel
// vs k == 0 distinction.

/// Borrowed execution environment of one batch scan.
struct ParallelScanEnv {
  ThreadPool* pool;
  const IndexShards* shards;
  const IndexReader* index;
  /// The layered prefilter for this batch; may be null when no query in
  /// the batch enables it (core ScanRange only dereferences it under
  /// SearchOptions::use_prefilter), so owners can build it lazily.
  const Prefilter* prefilter;
  CorpusRef corpus;
  /// One PosteriorEngine replica per pool worker plus a trailing spare
  /// (size == pool->size() + 1). The spare serves threads that are not
  /// workers of `pool` — including workers of OTHER pools, which
  /// ThreadPool::CurrentWorkerIndex reports as kNotAWorker so they can
  /// never alias a replica owned by one of this pool's workers.
  const std::vector<std::unique_ptr<PosteriorEngine>>* engines;
};

/// Fans all (query, shard) pairs onto the pool and merges deterministically.
/// top_k == kScanAllMatches keeps every match; otherwise each shard and the
/// final merge truncate to top_k under SearchMatchRankBefore. Each result's
/// `seconds` is that query's latency from batch submission to its last
/// shard completing.
///
/// Ranking calls (apply_gamma == false with a real top_k) run with top-k
/// early termination unless options.topk_early_termination is off: each
/// query job owns one ScanBounds, shared by that query's shard tasks
/// through ParallelScanEnv's fan-out, so the k-th-best phi_score witnessed
/// by any shard prunes the other shards' tails via a relaxed atomic. The
/// merged output stays bit-identical to the exhaustive scan — only
/// SearchResult::pruned_by_bound and timing vary (see core/gbda_search.h,
/// ScanBounds).
Result<std::vector<SearchResult>> ParallelScanBatch(const ParallelScanEnv& env,
                                                    Span<Graph> queries,
                                                    const SearchOptions& options,
                                                    bool apply_gamma,
                                                    size_t top_k);

/// The approximate ranking fan-out: one pool task PER QUERY (not per
/// shard) running ann/AnnSearchTopK over the whole corpus — beam
/// navigation is a global walk, so sharding it would change which
/// candidates it visits. `env.shards` is unused; `env.prefilter` plays its
/// usual two roles inside the verification scan (admission when
/// options.use_prefilter, bound sharpening when early termination is
/// armed). top_k must be a real k (not 0, not kScanAllMatches) — callers
/// route those to the exhaustive path. Returned matches are a subset of
/// the exhaustive top-k with bit-exact scores; only the match SET is
/// approximate (see ann/navigator.h).
Result<std::vector<SearchResult>> AnnScanBatch(const ParallelScanEnv& env,
                                               const AnnContext& ann,
                                               Span<Graph> queries,
                                               const SearchOptions& options,
                                               size_t top_k);

}  // namespace gbda
