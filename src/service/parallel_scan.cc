#include "service/parallel_scan.h"

#include <atomic>
#include <future>
#include <utility>

#include "common/timer.h"

namespace gbda {

Result<std::vector<SearchResult>> ParallelScanBatch(const ParallelScanEnv& env,
                                                    Span<Graph> queries,
                                                    const SearchOptions& options,
                                                    bool apply_gamma,
                                                    size_t top_k) {
  WallTimer timer;
  const size_t num_queries = queries.size();
  const size_t num_shards = env.shards->num_shards();

  // One ScanBounds per query job when early termination is armed: the
  // bound is a per-query property (the k-th best of THIS query's matches),
  // shared across that query's shard tasks, never across queries. k >=
  // corpus can never prune, so it skips the bookkeeping.
  const bool early_terminate =
      !apply_gamma && top_k != kScanAllMatches &&
      top_k < env.shards->num_graphs() && options.topk_early_termination;

  struct QueryJob {
    ScanContext ctx;
    std::vector<SearchResult> partials;
    std::vector<Status> statuses;
    // Brace-initialized: C++17 atomics are only well-defined after
    // constructor initialization (P0883 fixed the default in C++20).
    std::atomic<size_t> shards_left{0};
    double latency_seconds = 0.0;
    /// Shard-shared pruning state; null when scanning exhaustively.
    std::unique_ptr<ScanBounds> bounds;
  };
  std::vector<std::unique_ptr<QueryJob>> jobs;
  jobs.reserve(num_queries);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    Result<ScanContext> ctx =
        PrepareScan(queries[qi], options, apply_gamma, env.corpus, *env.index);
    if (!ctx.ok()) return ctx.status();
    auto job = std::make_unique<QueryJob>();
    job->ctx = std::move(*ctx);
    job->partials.resize(num_shards);
    job->statuses.resize(num_shards);
    job->shards_left.store(num_shards, std::memory_order_relaxed);
    if (early_terminate) job->bounds = std::make_unique<ScanBounds>(top_k);
    jobs.push_back(std::move(job));
  }

  // Fan out every (query, shard) pair; each task writes only its own slot,
  // so no synchronisation is needed beyond the completion countdown.
  std::vector<std::future<void>> futures;
  futures.reserve(num_queries * num_shards);
  try {
    for (size_t qi = 0; qi < num_queries; ++qi) {
      QueryJob* job = jobs[qi].get();
      for (size_t s = 0; s < num_shards; ++s) {
        futures.push_back(env.pool->Submit([&env, job, s, top_k, &timer]() {
          const ShardView& view = env.shards->shard(s);
          // The calling pool worker's engine replica; the spare (last slot)
          // serves any thread that is not a worker of env.pool — the check
          // is pool-aware, so a worker of a different pool lands on the
          // spare instead of aliasing a replica it does not own.
          const size_t worker = env.pool->CurrentWorkerIndex();
          PosteriorEngine* engine = worker == ThreadPool::kNotAWorker
                                        ? env.engines->back().get()
                                        : (*env.engines)[worker].get();
          SearchResult partial;
          Status status = ScanRange(job->ctx, view.index(), env.prefilter,
                                    view.begin(), view.end(), engine, &partial,
                                    job->bounds.get());
          // Local truncation keeps the merge O(S * k): any global top-k
          // match is also in its own shard's top-k.
          if (status.ok() && top_k != kScanAllMatches) {
            SortTopK(&partial.matches, top_k);
          }
          job->statuses[s] = std::move(status);
          job->partials[s] = std::move(partial);
          // acq_rel countdown: the release half publishes this shard's
          // statuses/partials writes above, the acquire half makes every
          // earlier shard's writes visible to whichever worker hits zero and
          // stamps the job latency. (The merge itself additionally
          // synchronizes through the futures' get().)
          if (job->shards_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            job->latency_seconds = timer.Seconds();
          }
        }));
      }
    }
  } catch (...) {
    // Submit itself failed (e.g. allocation): the tasks already enqueued
    // still hold pointers into `jobs` and `timer`, so wait them out before
    // letting the stack unwind.
    for (std::future<void>& f : futures) {
      try {
        f.get();
      } catch (...) {
      }
    }
    throw;
  }
  // Drain every future before any rethrow: tasks hold pointers into `jobs`
  // and `timer`, so unwinding while siblings are still running would be a
  // use-after-free.
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  // Deterministic merge: shards are contiguous ascending id ranges, so
  // concatenation in shard order equals the serial scan order; top-k re-ranks
  // under the same total order as the serial QueryTopK.
  std::vector<SearchResult> results;
  results.reserve(num_queries);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    QueryJob* job = jobs[qi].get();
    for (const Status& status : job->statuses) {
      if (!status.ok()) return status;
    }
    SearchResult merged;
    size_t match_count = 0;
    for (const SearchResult& partial : job->partials) {
      match_count += partial.matches.size();
    }
    merged.matches.reserve(match_count);
    for (SearchResult& partial : job->partials) {
      merged.matches.insert(merged.matches.end(), partial.matches.begin(),
                            partial.matches.end());
      merged.candidates_evaluated += partial.candidates_evaluated;
      merged.prefiltered_out += partial.prefiltered_out;
      merged.pruned_by_bound += partial.pruned_by_bound;
      merged.candidates_visited += partial.candidates_visited;
      merged.verified_count += partial.verified_count;
    }
    if (top_k != kScanAllMatches) SortTopK(&merged.matches, top_k);
    merged.seconds = job->latency_seconds;
    results.push_back(std::move(merged));
  }
  return results;
}

Result<std::vector<SearchResult>> AnnScanBatch(const ParallelScanEnv& env,
                                               const AnnContext& ann,
                                               Span<Graph> queries,
                                               const SearchOptions& options,
                                               size_t top_k) {
  WallTimer timer;
  const size_t num_queries = queries.size();

  // One job per query: the navigator's beam walk is sequential by nature
  // (each expansion depends on what the last one admitted), so parallelism
  // here is across queries only. Verification cost per query is bounded by
  // the window, which keeps single-query latency predictable.
  struct QueryJob {
    ScanContext ctx;
    SearchResult result;
    Status status;
    double latency_seconds = 0.0;
  };
  std::vector<std::unique_ptr<QueryJob>> jobs;
  jobs.reserve(num_queries);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    Result<ScanContext> ctx = PrepareScan(queries[qi], options,
                                          /*apply_gamma=*/false, env.corpus,
                                          *env.index);
    if (!ctx.ok()) return ctx.status();
    auto job = std::make_unique<QueryJob>();
    job->ctx = std::move(*ctx);
    jobs.push_back(std::move(job));
  }

  std::vector<std::future<void>> futures;
  futures.reserve(num_queries);
  try {
    for (size_t qi = 0; qi < num_queries; ++qi) {
      QueryJob* job = jobs[qi].get();
      futures.push_back(env.pool->Submit([&env, &ann, job, top_k, &timer]() {
        // Same replica-selection rule as the exhaustive fan-out (see
        // ParallelScanBatch): pool workers own their slot, everything else
        // shares the spare.
        const size_t worker = env.pool->CurrentWorkerIndex();
        PosteriorEngine* engine = worker == ThreadPool::kNotAWorker
                                      ? env.engines->back().get()
                                      : (*env.engines)[worker].get();
        job->status = AnnSearchTopK(ann, job->ctx, *env.index, env.prefilter,
                                    top_k, engine, &job->result);
        job->latency_seconds = timer.Seconds();
      }));
    }
  } catch (...) {
    // Mirror ParallelScanBatch: enqueued tasks hold pointers into `jobs`
    // and `timer`, so they must finish before the stack unwinds.
    for (std::future<void>& f : futures) {
      try {
        f.get();
      } catch (...) {
      }
    }
    throw;
  }
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  std::vector<SearchResult> results;
  results.reserve(num_queries);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    QueryJob* job = jobs[qi].get();
    if (!job->status.ok()) return job->status;
    job->result.seconds = job->latency_seconds;
    results.push_back(std::move(job->result));
  }
  return results;
}

}  // namespace gbda
