#include "service/gbda_service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/timer.h"
#include "obs/trace.h"
#include "service/parallel_scan.h"

namespace gbda {

namespace {

uint64_t SecondsToNanos(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(seconds * 1e9));
}

void AppendCounterFamily(std::vector<obs::MetricFamily>* out, const std::string& name,
                         const std::string& help, const std::string& labels,
                         double value) {
  obs::MetricPoint point;
  point.labels = labels;
  point.value = value;
  out->push_back(obs::MetricFamily{name, help, obs::MetricType::kCounter, {std::move(point)}});
}

}  // namespace

void AccumulateServiceStats(const std::vector<SearchResult>& results,
                            double wall_seconds, ServiceCounters* counters) {
  counters->queries_served.Add(results.size());
  for (const SearchResult& r : results) {
    counters->candidates_evaluated.Add(r.candidates_evaluated);
    counters->prefiltered_out.Add(r.prefiltered_out);
    counters->pruned_by_bound.Add(r.pruned_by_bound);
    counters->candidates_visited.Add(r.candidates_visited);
    counters->verified_count.Add(r.verified_count);
    counters->matches_returned.Add(r.matches.size());
    counters->latency_nanos.Add(SecondsToNanos(r.seconds));
    if (obs::TraceSampled()) {
      counters->scan_latency_micros.Record(SecondsToNanos(r.seconds) / 1000);
    }
  }
  counters->wall_nanos.Add(SecondsToNanos(wall_seconds));
}

ServiceStats ServiceCounters::Snapshot() const {
  ServiceStats stats;
  stats.queries_served = queries_served.Value();
  stats.batches_served = batches_served.Value();
  stats.candidates_evaluated = candidates_evaluated.Value();
  stats.prefiltered_out = prefiltered_out.Value();
  stats.pruned_by_bound = pruned_by_bound.Value();
  stats.candidates_visited = candidates_visited.Value();
  stats.verified_count = verified_count.Value();
  stats.matches_returned = matches_returned.Value();
  stats.total_latency_seconds = static_cast<double>(latency_nanos.Value()) * 1e-9;
  stats.total_wall_seconds = static_cast<double>(wall_nanos.Value()) * 1e-9;
  return stats;
}

void ServiceCounters::Reset() {
  queries_served.Reset();
  batches_served.Reset();
  candidates_evaluated.Reset();
  prefiltered_out.Reset();
  pruned_by_bound.Reset();
  candidates_visited.Reset();
  verified_count.Reset();
  matches_returned.Reset();
  latency_nanos.Reset();
  wall_nanos.Reset();
  scan_latency_micros.Reset();
}

void ServiceCounters::Collect(const std::string& labels,
                              std::vector<obs::MetricFamily>* out) const {
  AppendCounterFamily(out, "gbda_service_queries_total", "Queries served", labels,
                      static_cast<double>(queries_served.Value()));
  AppendCounterFamily(out, "gbda_service_batches_total", "Batch calls served", labels,
                      static_cast<double>(batches_served.Value()));
  AppendCounterFamily(out, "gbda_service_candidates_evaluated_total",
                      "Candidates scored by the posterior", labels,
                      static_cast<double>(candidates_evaluated.Value()));
  AppendCounterFamily(out, "gbda_service_prefiltered_out_total",
                      "Candidates rejected by the layered prefilter", labels,
                      static_cast<double>(prefiltered_out.Value()));
  AppendCounterFamily(out, "gbda_service_pruned_by_bound_total",
                      "Posterior evaluations skipped by top-k early termination",
                      labels, static_cast<double>(pruned_by_bound.Value()));
  AppendCounterFamily(out, "gbda_service_candidates_visited_total",
                      "Nodes visited by the approximate navigator", labels,
                      static_cast<double>(candidates_visited.Value()));
  AppendCounterFamily(out, "gbda_service_verified_total",
                      "Approximate candidates paying full verification", labels,
                      static_cast<double>(verified_count.Value()));
  AppendCounterFamily(out, "gbda_service_matches_returned_total", "Matches returned",
                      labels, static_cast<double>(matches_returned.Value()));
  AppendCounterFamily(out, "gbda_service_latency_seconds_total",
                      "Sum of per-query latencies", labels,
                      static_cast<double>(latency_nanos.Value()) * 1e-9);
  AppendCounterFamily(out, "gbda_service_wall_seconds_total",
                      "Sum of top-level call wall times", labels,
                      static_cast<double>(wall_nanos.Value()) * 1e-9);
  obs::MetricPoint scan_point;
  scan_point.labels = labels;
  scan_point.histogram = scan_latency_micros.Snapshot();
  out->push_back(obs::MetricFamily{
      "gbda_service_scan_latency_micros",
      "Per-query scan latency (microseconds), trace-sampled",
      obs::MetricType::kHistogram,
      {std::move(scan_point)}});
}

Result<std::unique_ptr<GbdaService>> GbdaService::Create(
    const GraphDatabase* db, const IndexReader* index,
    const ServiceOptions& options) {
  Status agree = ValidateIndexForDatabase(*db, *index);
  if (!agree.ok()) return agree;
  return std::make_unique<GbdaService>(db, index, options);
}

GbdaService::GbdaService(const GraphDatabase* db, const IndexReader* index,
                         const ServiceOptions& options)
    : db_(db),
      index_(index),
      ann_build_(options.ann_build),
      pool_(options.num_threads),
      shards_(index,
              options.num_shards == 0 ? pool_.size() : options.num_shards) {
  // One engine per worker plus a spare for non-pool threads; replicas share
  // the index's thread-safe priors (see the file comment).
  engines_.reserve(pool_.size() + 1);
  for (size_t i = 0; i < pool_.size() + 1; ++i) {
    engines_.push_back(std::make_unique<PosteriorEngine>(
        index_->num_vertex_labels(), index_->num_edge_labels(),
        index_->tau_max(), index_->mutable_ged_prior(),
        &index_->gbd_prior()));
  }
}

const Prefilter* GbdaService::EnsurePrefilter() {
  std::call_once(prefilter_once_,
                 [this] { prefilter_ = std::make_unique<Prefilter>(db_); });
  return prefilter_.get();
}

Status GbdaService::WarmAnnGraph() {
  std::call_once(ann_once_, [this] {
    // The fingerprint store reuses the prefilter's per-graph sorted branch
    // keys — the same keys the navigator compares against the query profile
    // at search time, so build-time and query-time geometry agree.
    Result<AnnContext> ctx = AnnContext::Build(
        FingerprintStore::FromPrefilter(*EnsurePrefilter()), ann_build_);
    if (ctx.ok()) {
      ann_ = std::make_unique<const AnnContext>(std::move(*ctx));
    } else {
      ann_status_ = ctx.status();
    }
  });
  return ann_status_;
}

Status GbdaService::AdoptAnnGraph(const ProximityGraphRef& graph) {
  bool ran = false;
  std::call_once(ann_once_, [this, &graph, &ran] {
    ran = true;
    Result<AnnContext> ctx = AnnContext::Adopt(
        FingerprintStore::FromPrefilter(*EnsurePrefilter()), graph);
    if (ctx.ok()) {
      ann_ = std::make_unique<const AnnContext>(std::move(*ctx));
    } else {
      ann_status_ = ctx.status();
    }
  });
  if (!ran) {
    return Status::FailedPrecondition(
        "AdoptAnnGraph: the approximate navigation context is already "
        "initialised — adopt before the first approximate query or "
        "WarmAnnGraph call");
  }
  return ann_status_;
}

Result<std::vector<SearchResult>> GbdaService::RunBatch(
    Span<Graph> queries, const SearchOptions& options, bool apply_gamma,
    size_t top_k) {
  WallTimer timer;
  // Retired db slots would otherwise still be scanned (their index entries
  // are intact); PrepareScan catches the tombstoned-index direction.
  if (db_->has_tombstones()) {
    return Status::FailedPrecondition(
        "database is tombstoned: the frozen scan cannot serve a mutated "
        "corpus — use DynamicGbdaService");
  }
  // Profiles are also the early-termination bound's teeth (ScanRange
  // sharpens its GBD lower bound through them without ever consulting
  // Passes), so an armed ranking scan builds them even when the prefilter
  // itself is off — one lazy O(corpus) build, amortized across all
  // queries. Mirrors ParallelScanBatch's arming condition exactly (incl.
  // k >= corpus, which never prunes), so the build never runs unread.
  const bool pruned_ranking = top_k != kScanAllMatches && !apply_gamma &&
                              top_k < shards_.num_graphs() &&
                              options.topk_early_termination;
  // Approximate navigation serves concrete-k rankings only: threshold
  // queries are defined over the whole corpus, and a clamped k of 0 (empty
  // corpus) already has a defined-empty exhaustive answer.
  const bool approximate = options.approximate && !apply_gamma &&
                           top_k != kScanAllMatches && top_k > 0;
  const Prefilter* prefilter = options.use_prefilter || pruned_ranking ||
                                       approximate
                                   ? EnsurePrefilter()
                                   : nullptr;
  ParallelScanEnv env{&pool_, &shards_, index_, prefilter, CorpusRef(db_),
                      &engines_};
  if (approximate) {
    Status warm = WarmAnnGraph();
    if (!warm.ok()) return warm;
  }
  Result<std::vector<SearchResult>> results =
      approximate
          ? AnnScanBatch(env, *ann_, queries, options, top_k)
          : ParallelScanBatch(env, queries, options, apply_gamma, top_k);
  if (!results.ok()) return results;

  AccumulateServiceStats(*results, timer.Seconds(), &counters_);
  return results;
}

Result<SearchResult> GbdaService::Query(const Graph& query,
                                        const SearchOptions& options) {
  Result<std::vector<SearchResult>> batch = RunBatch(
      Span<Graph>(&query, 1), options, /*apply_gamma=*/true, kScanAllMatches);
  if (!batch.ok()) return batch.status();
  return std::move((*batch)[0]);
}

Result<SearchResult> GbdaService::QueryTopK(const Graph& query, size_t k,
                                            const SearchOptions& options) {
  // k == 0 is a valid request for an empty ranking, decided here at the
  // API boundary: no scan runs (the query still counts as served). See
  // core/gbda_search.h on the kScanAllMatches sentinel vs k == 0.
  if (k == 0) {
    std::vector<SearchResult> empty(1);
    AccumulateServiceStats(empty, 0.0, &counters_);
    return SearchResult{};
  }
  // Clamp so an oversized k (notably SIZE_MAX) cannot collide with the
  // kScanAllMatches sentinel and skip the ranking sort; a scan never yields
  // more matches than the database has graphs, so the clamp is behavior-free.
  k = std::min(k, shards_.num_graphs());
  Result<std::vector<SearchResult>> batch =
      RunBatch(Span<Graph>(&query, 1), options, /*apply_gamma=*/false, k);
  if (!batch.ok()) return batch.status();
  return std::move((*batch)[0]);
}

Result<std::vector<SearchResult>> GbdaService::QueryBatch(
    Span<Graph> queries, const SearchOptions& options) {
  Result<std::vector<SearchResult>> batch =
      RunBatch(queries, options, /*apply_gamma=*/true, kScanAllMatches);
  if (batch.ok()) counters_.batches_served.Add(1);
  return batch;
}

Result<std::vector<SearchResult>> GbdaService::QueryTopKBatch(
    Span<Graph> queries, size_t k, const SearchOptions& options) {
  if (k == 0) {
    // Defined-empty rankings for the whole batch, no scan (see QueryTopK).
    std::vector<SearchResult> empty(queries.size());
    AccumulateServiceStats(empty, 0.0, &counters_);
    counters_.batches_served.Add(1);
    return empty;
  }
  k = std::min(k, shards_.num_graphs());
  Result<std::vector<SearchResult>> batch =
      RunBatch(queries, options, /*apply_gamma=*/false, k);
  if (batch.ok()) counters_.batches_served.Add(1);
  return batch;
}

ServiceStats GbdaService::stats() const { return counters_.Snapshot(); }

void GbdaService::ResetStats() { counters_.Reset(); }

}  // namespace gbda
