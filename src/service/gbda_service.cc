#include "service/gbda_service.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <utility>

#include "common/timer.h"

namespace gbda {

GbdaService::GbdaService(const GraphDatabase* db, GbdaIndex* index,
                         const ServiceOptions& options)
    : db_(db),
      index_(index),
      pool_(options.num_threads),
      shards_(db, index,
              options.num_shards == 0 ? pool_.size() : options.num_shards) {
  // One engine per worker plus a spare for non-pool threads; replicas share
  // the index's thread-safe priors (see the file comment).
  engines_.reserve(pool_.size() + 1);
  for (size_t i = 0; i < pool_.size() + 1; ++i) {
    engines_.push_back(std::make_unique<PosteriorEngine>(
        index_->num_vertex_labels(), index_->num_edge_labels(),
        index_->tau_max(), &index_->ged_prior(), &index_->gbd_prior()));
  }
}

PosteriorEngine* GbdaService::EngineForCurrentThread() {
  const size_t worker = ThreadPool::CurrentWorkerIndex();
  return worker == ThreadPool::kNotAWorker ? engines_.back().get()
                                           : engines_[worker].get();
}

Result<std::vector<SearchResult>> GbdaService::RunBatch(
    Span<Graph> queries, const SearchOptions& options, bool apply_gamma,
    size_t top_k) {
  WallTimer timer;
  const size_t num_queries = queries.size();
  const size_t num_shards = shards_.num_shards();

  struct QueryJob {
    ScanContext ctx;
    std::vector<SearchResult> partials;
    std::vector<Status> statuses;
    // Brace-initialized: C++17 atomics are only well-defined after
    // constructor initialization (P0883 fixed the default in C++20).
    std::atomic<size_t> shards_left{0};
    double latency_seconds = 0.0;
  };
  std::vector<std::unique_ptr<QueryJob>> jobs;
  jobs.reserve(num_queries);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    Result<ScanContext> ctx =
        PrepareScan(queries[qi], options, apply_gamma, *db_, *index_);
    if (!ctx.ok()) return ctx.status();
    auto job = std::make_unique<QueryJob>();
    job->ctx = std::move(*ctx);
    job->partials.resize(num_shards);
    job->statuses.resize(num_shards);
    job->shards_left.store(num_shards, std::memory_order_relaxed);
    jobs.push_back(std::move(job));
  }

  // Fan out every (query, shard) pair; each task writes only its own slot,
  // so no synchronisation is needed beyond the completion countdown.
  std::vector<std::future<void>> futures;
  futures.reserve(num_queries * num_shards);
  try {
    for (size_t qi = 0; qi < num_queries; ++qi) {
      QueryJob* job = jobs[qi].get();
      for (size_t s = 0; s < num_shards; ++s) {
        futures.push_back(pool_.Submit([this, job, s, top_k, &timer]() {
          const ShardView& view = shards_.shard(s);
          SearchResult partial;
          Status status =
              ScanRange(job->ctx, view.index(), &view.prefilter(),
                        view.begin(), view.end(), EngineForCurrentThread(),
                        &partial);
          // Local truncation keeps the merge O(S * k): any global top-k
          // match is also in its own shard's top-k.
          if (status.ok() && top_k != kNoTopK) {
            SortTopK(&partial.matches, top_k);
          }
          job->statuses[s] = std::move(status);
          job->partials[s] = std::move(partial);
          if (job->shards_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            job->latency_seconds = timer.Seconds();
          }
        }));
      }
    }
  } catch (...) {
    // Submit itself failed (e.g. allocation): the tasks already enqueued
    // still hold pointers into `jobs` and `timer`, so wait them out before
    // letting the stack unwind.
    for (std::future<void>& f : futures) {
      try {
        f.get();
      } catch (...) {
      }
    }
    throw;
  }
  // Drain every future before any rethrow: tasks hold pointers into `jobs`
  // and `timer`, so unwinding while siblings are still running would be a
  // use-after-free.
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  // Deterministic merge: shards are contiguous ascending id ranges, so
  // concatenation in shard order equals the serial scan order; top-k re-ranks
  // under the same total order as the serial QueryTopK.
  std::vector<SearchResult> results;
  results.reserve(num_queries);
  size_t total_matches = 0;
  size_t total_candidates = 0;
  size_t total_prefiltered = 0;
  double total_latency = 0.0;
  for (size_t qi = 0; qi < num_queries; ++qi) {
    QueryJob* job = jobs[qi].get();
    for (const Status& status : job->statuses) {
      if (!status.ok()) return status;
    }
    SearchResult merged;
    size_t match_count = 0;
    for (const SearchResult& partial : job->partials) {
      match_count += partial.matches.size();
    }
    merged.matches.reserve(match_count);
    for (SearchResult& partial : job->partials) {
      merged.matches.insert(merged.matches.end(), partial.matches.begin(),
                            partial.matches.end());
      merged.candidates_evaluated += partial.candidates_evaluated;
      merged.prefiltered_out += partial.prefiltered_out;
    }
    if (top_k != kNoTopK) SortTopK(&merged.matches, top_k);
    merged.seconds = job->latency_seconds;
    total_matches += merged.matches.size();
    total_candidates += merged.candidates_evaluated;
    total_prefiltered += merged.prefiltered_out;
    total_latency += merged.seconds;
    results.push_back(std::move(merged));
  }

  const double wall = timer.Seconds();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.queries_served += num_queries;
    stats_.candidates_evaluated += total_candidates;
    stats_.prefiltered_out += total_prefiltered;
    stats_.matches_returned += total_matches;
    stats_.total_latency_seconds += total_latency;
    stats_.total_wall_seconds += wall;
  }
  return results;
}

Result<SearchResult> GbdaService::Query(const Graph& query,
                                        const SearchOptions& options) {
  Result<std::vector<SearchResult>> batch =
      RunBatch(Span<Graph>(&query, 1), options, /*apply_gamma=*/true, kNoTopK);
  if (!batch.ok()) return batch.status();
  return std::move((*batch)[0]);
}

Result<SearchResult> GbdaService::QueryTopK(const Graph& query, size_t k,
                                            const SearchOptions& options) {
  // Clamp so an oversized k (notably SIZE_MAX) cannot collide with the
  // kNoTopK sentinel and skip the ranking sort; a scan never yields more
  // matches than the database has graphs, so the clamp is behavior-free.
  k = std::min(k, shards_.num_graphs());
  Result<std::vector<SearchResult>> batch =
      RunBatch(Span<Graph>(&query, 1), options, /*apply_gamma=*/false, k);
  if (!batch.ok()) return batch.status();
  return std::move((*batch)[0]);
}

Result<std::vector<SearchResult>> GbdaService::QueryBatch(
    Span<Graph> queries, const SearchOptions& options) {
  Result<std::vector<SearchResult>> batch =
      RunBatch(queries, options, /*apply_gamma=*/true, kNoTopK);
  if (batch.ok()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches_served;
  }
  return batch;
}

ServiceStats GbdaService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void GbdaService::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_ = ServiceStats();
}

}  // namespace gbda
