#include "service/gbda_service.h"

#include <algorithm>
#include <utility>

#include "common/timer.h"
#include "service/parallel_scan.h"

namespace gbda {

void AccumulateServiceStats(const std::vector<SearchResult>& results,
                            double wall_seconds, ServiceStats* stats) {
  stats->queries_served += results.size();
  for (const SearchResult& r : results) {
    stats->candidates_evaluated += r.candidates_evaluated;
    stats->prefiltered_out += r.prefiltered_out;
    stats->pruned_by_bound += r.pruned_by_bound;
    stats->candidates_visited += r.candidates_visited;
    stats->verified_count += r.verified_count;
    stats->matches_returned += r.matches.size();
    stats->total_latency_seconds += r.seconds;
  }
  stats->total_wall_seconds += wall_seconds;
}

Result<std::unique_ptr<GbdaService>> GbdaService::Create(
    const GraphDatabase* db, const IndexReader* index,
    const ServiceOptions& options) {
  Status agree = ValidateIndexForDatabase(*db, *index);
  if (!agree.ok()) return agree;
  return std::make_unique<GbdaService>(db, index, options);
}

GbdaService::GbdaService(const GraphDatabase* db, const IndexReader* index,
                         const ServiceOptions& options)
    : db_(db),
      index_(index),
      ann_build_(options.ann_build),
      pool_(options.num_threads),
      shards_(index,
              options.num_shards == 0 ? pool_.size() : options.num_shards) {
  // One engine per worker plus a spare for non-pool threads; replicas share
  // the index's thread-safe priors (see the file comment).
  engines_.reserve(pool_.size() + 1);
  for (size_t i = 0; i < pool_.size() + 1; ++i) {
    engines_.push_back(std::make_unique<PosteriorEngine>(
        index_->num_vertex_labels(), index_->num_edge_labels(),
        index_->tau_max(), index_->mutable_ged_prior(),
        &index_->gbd_prior()));
  }
}

const Prefilter* GbdaService::EnsurePrefilter() {
  std::call_once(prefilter_once_,
                 [this] { prefilter_ = std::make_unique<Prefilter>(db_); });
  return prefilter_.get();
}

Status GbdaService::WarmAnnGraph() {
  std::call_once(ann_once_, [this] {
    // The fingerprint store reuses the prefilter's per-graph sorted branch
    // keys — the same keys the navigator compares against the query profile
    // at search time, so build-time and query-time geometry agree.
    Result<AnnContext> ctx = AnnContext::Build(
        FingerprintStore::FromPrefilter(*EnsurePrefilter()), ann_build_);
    if (ctx.ok()) {
      ann_ = std::make_unique<const AnnContext>(std::move(*ctx));
    } else {
      ann_status_ = ctx.status();
    }
  });
  return ann_status_;
}

Status GbdaService::AdoptAnnGraph(const ProximityGraphRef& graph) {
  bool ran = false;
  std::call_once(ann_once_, [this, &graph, &ran] {
    ran = true;
    Result<AnnContext> ctx = AnnContext::Adopt(
        FingerprintStore::FromPrefilter(*EnsurePrefilter()), graph);
    if (ctx.ok()) {
      ann_ = std::make_unique<const AnnContext>(std::move(*ctx));
    } else {
      ann_status_ = ctx.status();
    }
  });
  if (!ran) {
    return Status::FailedPrecondition(
        "AdoptAnnGraph: the approximate navigation context is already "
        "initialised — adopt before the first approximate query or "
        "WarmAnnGraph call");
  }
  return ann_status_;
}

Result<std::vector<SearchResult>> GbdaService::RunBatch(
    Span<Graph> queries, const SearchOptions& options, bool apply_gamma,
    size_t top_k) {
  WallTimer timer;
  // Retired db slots would otherwise still be scanned (their index entries
  // are intact); PrepareScan catches the tombstoned-index direction.
  if (db_->has_tombstones()) {
    return Status::FailedPrecondition(
        "database is tombstoned: the frozen scan cannot serve a mutated "
        "corpus — use DynamicGbdaService");
  }
  // Profiles are also the early-termination bound's teeth (ScanRange
  // sharpens its GBD lower bound through them without ever consulting
  // Passes), so an armed ranking scan builds them even when the prefilter
  // itself is off — one lazy O(corpus) build, amortized across all
  // queries. Mirrors ParallelScanBatch's arming condition exactly (incl.
  // k >= corpus, which never prunes), so the build never runs unread.
  const bool pruned_ranking = top_k != kScanAllMatches && !apply_gamma &&
                              top_k < shards_.num_graphs() &&
                              options.topk_early_termination;
  // Approximate navigation serves concrete-k rankings only: threshold
  // queries are defined over the whole corpus, and a clamped k of 0 (empty
  // corpus) already has a defined-empty exhaustive answer.
  const bool approximate = options.approximate && !apply_gamma &&
                           top_k != kScanAllMatches && top_k > 0;
  const Prefilter* prefilter = options.use_prefilter || pruned_ranking ||
                                       approximate
                                   ? EnsurePrefilter()
                                   : nullptr;
  ParallelScanEnv env{&pool_, &shards_, index_, prefilter, CorpusRef(db_),
                      &engines_};
  if (approximate) {
    Status warm = WarmAnnGraph();
    if (!warm.ok()) return warm;
  }
  Result<std::vector<SearchResult>> results =
      approximate
          ? AnnScanBatch(env, *ann_, queries, options, top_k)
          : ParallelScanBatch(env, queries, options, apply_gamma, top_k);
  if (!results.ok()) return results;

  const double wall = timer.Seconds();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    AccumulateServiceStats(*results, wall, &stats_);
  }
  return results;
}

Result<SearchResult> GbdaService::Query(const Graph& query,
                                        const SearchOptions& options) {
  Result<std::vector<SearchResult>> batch = RunBatch(
      Span<Graph>(&query, 1), options, /*apply_gamma=*/true, kScanAllMatches);
  if (!batch.ok()) return batch.status();
  return std::move((*batch)[0]);
}

Result<SearchResult> GbdaService::QueryTopK(const Graph& query, size_t k,
                                            const SearchOptions& options) {
  // k == 0 is a valid request for an empty ranking, decided here at the
  // API boundary: no scan runs (the query still counts as served). See
  // core/gbda_search.h on the kScanAllMatches sentinel vs k == 0.
  if (k == 0) {
    std::vector<SearchResult> empty(1);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    AccumulateServiceStats(empty, 0.0, &stats_);
    return SearchResult{};
  }
  // Clamp so an oversized k (notably SIZE_MAX) cannot collide with the
  // kScanAllMatches sentinel and skip the ranking sort; a scan never yields
  // more matches than the database has graphs, so the clamp is behavior-free.
  k = std::min(k, shards_.num_graphs());
  Result<std::vector<SearchResult>> batch =
      RunBatch(Span<Graph>(&query, 1), options, /*apply_gamma=*/false, k);
  if (!batch.ok()) return batch.status();
  return std::move((*batch)[0]);
}

Result<std::vector<SearchResult>> GbdaService::QueryBatch(
    Span<Graph> queries, const SearchOptions& options) {
  Result<std::vector<SearchResult>> batch =
      RunBatch(queries, options, /*apply_gamma=*/true, kScanAllMatches);
  if (batch.ok()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches_served;
  }
  return batch;
}

Result<std::vector<SearchResult>> GbdaService::QueryTopKBatch(
    Span<Graph> queries, size_t k, const SearchOptions& options) {
  if (k == 0) {
    // Defined-empty rankings for the whole batch, no scan (see QueryTopK).
    std::vector<SearchResult> empty(queries.size());
    std::lock_guard<std::mutex> lock(stats_mutex_);
    AccumulateServiceStats(empty, 0.0, &stats_);
    ++stats_.batches_served;
    return empty;
  }
  k = std::min(k, shards_.num_graphs());
  Result<std::vector<SearchResult>> batch =
      RunBatch(queries, options, /*apply_gamma=*/false, k);
  if (batch.ok()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches_served;
  }
  return batch;
}

ServiceStats GbdaService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void GbdaService::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_ = ServiceStats();
}

}  // namespace gbda
