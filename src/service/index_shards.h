/// \file index_shards.h
/// Static partitioning of a GbdaIndex for shard-parallel scans. Graph ids
/// are split into contiguous, near-equal ranges; each ShardView bundles the
/// id range with a read-only view of the branch store, which is all a
/// worker needs to run core ScanRange over its slice (the per-batch
/// Prefilter travels in ParallelScanEnv — it may be built lazily by the
/// owner, after the shards). Because shards are contiguous and ascending,
/// concatenating per-shard results in shard order reproduces the serial
/// scan's id order exactly — the determinism contract of the serving layer
/// (docs/ARCHITECTURE.md, "Serving layer").

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/gbda_index.h"

namespace gbda {

/// Read-only view of one shard: the contiguous id range plus an accessor
/// into the shared index. Ids are positions in the partitioned index
/// (absolute database ids for a frozen database, dense live positions for a
/// dynamic snapshot). The index is consumed through the IndexReader contract,
/// so shards partition a decoded GbdaIndex and a mapped v3 artifact alike.
class ShardView {
 public:
  ShardView(size_t shard_id, size_t begin, size_t end,
            const IndexReader* index)
      : shard_id_(shard_id), begin_(begin), end_(end), index_(index) {}

  size_t shard_id() const { return shard_id_; }
  size_t begin() const { return begin_; }
  size_t end() const { return end_; }
  size_t size() const { return end_ - begin_; }

  /// The shared branch store; scan with core ScanRange over [begin, end).
  const IndexReader& index() const { return *index_; }

 private:
  size_t shard_id_;
  size_t begin_;
  size_t end_;
  const IndexReader* index_;
};

/// Splits [0, index.num_graphs()) into `num_shards` contiguous ranges whose
/// sizes differ by at most one. The index is borrowed — the owner
/// (GbdaService, or a dynamic-corpus Snapshot) must keep it alive.
class IndexShards {
 public:
  /// `num_shards` is clamped to [1, max(1, num_graphs)] so no shard is
  /// empty (except when the index itself is empty).
  IndexShards(const IndexReader* index, size_t num_shards);

  size_t num_shards() const { return shards_.size(); }
  size_t num_graphs() const { return num_graphs_; }
  const ShardView& shard(size_t s) const { return shards_[s]; }

 private:
  size_t num_graphs_;
  std::vector<ShardView> shards_;
};

}  // namespace gbda
