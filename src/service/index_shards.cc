#include "service/index_shards.h"

#include <algorithm>

namespace gbda {

IndexShards::IndexShards(const IndexReader* index, size_t num_shards)
    : num_graphs_(index->num_graphs()) {
  const size_t n = num_graphs_;
  num_shards = std::max<size_t>(1, std::min(num_shards, std::max<size_t>(1, n)));
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    // begin/end via the rounding-free split: shard s covers
    // [s*n/S, (s+1)*n/S), which tiles [0, n) with sizes differing by <= 1.
    const size_t begin = s * n / num_shards;
    const size_t end = (s + 1) * n / num_shards;
    shards_.emplace_back(s, begin, end, index);
  }
}

}  // namespace gbda
