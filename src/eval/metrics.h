#pragma once

#include <cstddef>
#include <vector>

namespace gbda {

/// Confusion counts of one query result against the ground truth.
struct Confusion {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;

  Confusion& operator+=(const Confusion& other);
};

/// Precision = TP / (TP + FP); defined as 1 when nothing was retrieved
/// (an empty answer makes no false claims — keeps the tau=1 points of
/// Figures 10-13 meaningful when answer sets are empty).
double Precision(const Confusion& c);

/// Recall = TP / (TP + FN); defined as 1 when nothing was relevant.
double Recall(const Confusion& c);

/// Harmonic mean of precision and recall; 0 when both are 0.
double F1Score(const Confusion& c);

/// Compares a retrieved id set against the relevant id set. Both vectors are
/// copied and sorted internally; duplicates are an error of the caller and
/// are deduplicated defensively.
Confusion CompareSets(std::vector<size_t> retrieved,
                      std::vector<size_t> relevant);

}  // namespace gbda
