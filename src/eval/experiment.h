#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_search.h"
#include "common/result.h"
#include "core/gbda_index.h"
#include "core/gbda_search.h"
#include "datagen/dataset_profiles.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"

namespace gbda {

/// Every search method compared in Section VII.
enum class Method {
  kGbda,
  kGbdaV1,
  kGbdaV2,
  kLsap,
  kGreedySort,
  kSeriation,
};

const char* MethodName(Method method);

/// One experimental cell: a method with its parameters.
struct ExperimentConfig {
  Method method = Method::kGbda;
  int64_t tau_hat = 5;
  double gamma = 0.9;        // GBDA variants only
  double vgbd_w = 0.5;       // GBDA-V2
  size_t v1_alpha = 100;     // GBDA-V1
};

/// Aggregated outcome over all queries of a dataset.
struct MethodMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  /// Mean wall-clock per query (the y-axis of Figures 7-9).
  double avg_query_seconds = 0.0;
  size_t num_queries = 0;
  Confusion confusion;
};

/// Shared experiment driver: builds the GBDA index and the baseline profiles
/// once per dataset, then evaluates any number of (method, parameter) cells
/// against the exact ground truth. This is the engine behind every
/// effectiveness and efficiency figure of the benchmark suite.
class ExperimentRunner {
 public:
  /// `dataset` must outlive the runner. index_tau_max bounds the largest
  /// tau_hat that will be queried (GED prior rows cover [0, index_tau_max]).
  static Result<std::unique_ptr<ExperimentRunner>> Create(
      const GeneratedDataset* dataset, int64_t index_tau_max,
      const GbdPriorOptions& prior_options = {});

  /// Runs one configuration over all queries (or the given subset);
  /// micro-averaged metrics.
  Result<MethodMetrics> Run(const ExperimentConfig& config,
                            const std::vector<size_t>* query_subset = nullptr);

  /// Threshold sweep. For the assignment/seriation baselines the estimate of
  /// each (query, graph) pair does not depend on tau, so it is computed once
  /// and thresholded for every entry of `taus` (their per-query time is
  /// reported identically across the sweep, matching the paper's
  /// tau-independent competitor costs). GBDA methods are evaluated per tau;
  /// the posterior memo makes repeated thresholds cheap.
  Result<std::vector<MethodMetrics>> RunTauSweep(
      const ExperimentConfig& base, const std::vector<int64_t>& taus,
      const std::vector<size_t>* query_subset = nullptr);

  /// Offline-stage costs of the GBDA index (Tables IV and V).
  const OfflineCosts& offline_costs() const { return index_->costs(); }

  const GbdaIndex& index() const { return *index_; }
  /// Mutable access for callers that instantiate their own search engines
  /// (e.g. the timing benches, which want a cold posterior memo per query).
  GbdaIndex* mutable_index() { return index_.get(); }
  const BaselineSearch& baselines() const { return *baselines_; }
  const GeneratedDataset& dataset() const { return *dataset_; }

 private:
  ExperimentRunner(const GeneratedDataset* dataset);

  const GeneratedDataset* dataset_;
  GroundTruthOracle oracle_;
  std::unique_ptr<GbdaIndex> index_;
  std::unique_ptr<GbdaSearch> gbda_;
  std::unique_ptr<BaselineSearch> baselines_;
};

}  // namespace gbda
