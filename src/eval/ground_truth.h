#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "datagen/dataset_profiles.h"

namespace gbda {

/// Ground-truth oracle over a generated dataset. Thin, validated wrapper
/// around GeneratedDataset::KnownGedOrFar that refuses thresholds beyond the
/// certification margin (a tau above the rung gap would silently mislabel
/// cross-rung pairs).
class GroundTruthOracle {
 public:
  explicit GroundTruthOracle(const GeneratedDataset* dataset);

  /// True answer set of query `query_idx` at threshold `tau`. Fails when tau
  /// exceeds the dataset's certified gap.
  Result<std::vector<size_t>> TrueMatches(size_t query_idx, int64_t tau) const;

  /// Exact GED for same-rung pairs; NotFound for certified far pairs.
  Result<int64_t> Distance(size_t query_idx, size_t graph_id) const;

  /// Largest threshold with certified labels.
  int64_t max_certified_tau() const { return dataset_->profile.certified_gap(); }

  size_t num_queries() const { return dataset_->queries.size(); }

 private:
  const GeneratedDataset* dataset_;
};

}  // namespace gbda
