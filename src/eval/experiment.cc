#include "eval/experiment.h"

#include "common/timer.h"

namespace gbda {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kGbda:
      return "GBDA";
    case Method::kGbdaV1:
      return "GBDA-V1";
    case Method::kGbdaV2:
      return "GBDA-V2";
    case Method::kLsap:
      return "LSAP";
    case Method::kGreedySort:
      return "greedysort";
    case Method::kSeriation:
      return "seriation";
  }
  return "?";
}

ExperimentRunner::ExperimentRunner(const GeneratedDataset* dataset)
    : dataset_(dataset), oracle_(dataset) {}

Result<std::unique_ptr<ExperimentRunner>> ExperimentRunner::Create(
    const GeneratedDataset* dataset, int64_t index_tau_max,
    const GbdPriorOptions& prior_options) {
  std::unique_ptr<ExperimentRunner> runner(new ExperimentRunner(dataset));
  GbdaIndexOptions options;
  options.tau_max = index_tau_max;
  options.gbd_prior = prior_options;
  // The model's label universe is the profile's core alphabet; the
  // family-identity marker labels are an artifact of the certified ground
  // truth and must not inflate the branch-type count D (Eq. 33).
  options.model_vertex_labels =
      static_cast<int64_t>(dataset->profile.num_vertex_labels);
  options.model_edge_labels =
      static_cast<int64_t>(dataset->profile.num_edge_labels);
  Result<GbdaIndex> index = GbdaIndex::Build(dataset->db, options);
  if (!index.ok()) return index.status();
  runner->index_ = std::make_unique<GbdaIndex>(std::move(*index));
  runner->gbda_ =
      std::make_unique<GbdaSearch>(&dataset->db, runner->index_.get());
  runner->baselines_ = std::make_unique<BaselineSearch>(&dataset->db);
  return runner;
}

namespace {

std::vector<size_t> AllQueryIndices(size_t count) {
  std::vector<size_t> all(count);
  for (size_t i = 0; i < count; ++i) all[i] = i;
  return all;
}

}  // namespace

Result<MethodMetrics> ExperimentRunner::Run(
    const ExperimentConfig& config, const std::vector<size_t>* query_subset) {
  const std::vector<size_t> all =
      query_subset ? *query_subset : AllQueryIndices(dataset_->queries.size());
  MethodMetrics metrics;
  metrics.num_queries = all.size();
  double total_seconds = 0.0;

  for (size_t q : all) {
    const Graph& query = dataset_->queries[q];
    std::vector<size_t> retrieved;

    switch (config.method) {
      case Method::kGbda:
      case Method::kGbdaV1:
      case Method::kGbdaV2: {
        SearchOptions opts;
        opts.tau_hat = config.tau_hat;
        opts.gamma = config.gamma;
        opts.vgbd_w = config.vgbd_w;
        opts.v1_sample_alpha = config.v1_alpha;
        opts.variant = config.method == Method::kGbdaV1
                           ? GbdaVariant::kAverageSize
                           : (config.method == Method::kGbdaV2
                                  ? GbdaVariant::kWeightedGbd
                                  : GbdaVariant::kStandard);
        Result<SearchResult> result = gbda_->Query(query, opts);
        if (!result.ok()) return result.status();
        total_seconds += result->seconds;
        retrieved.reserve(result->matches.size());
        for (const SearchMatch& m : result->matches) {
          retrieved.push_back(m.graph_id);
        }
        break;
      }
      case Method::kLsap:
      case Method::kGreedySort:
      case Method::kSeriation: {
        const BaselineMethod bm =
            config.method == Method::kLsap
                ? BaselineMethod::kLsap
                : (config.method == Method::kGreedySort
                       ? BaselineMethod::kGreedySort
                       : BaselineMethod::kSeriation);
        Result<BaselineResult> result =
            baselines_->Query(query, bm, config.tau_hat);
        if (!result.ok()) return result.status();
        total_seconds += result->seconds;
        retrieved.reserve(result->matches.size());
        for (const BaselineMatch& m : result->matches) {
          retrieved.push_back(m.graph_id);
        }
        break;
      }
    }

    Result<std::vector<size_t>> truth = oracle_.TrueMatches(q, config.tau_hat);
    if (!truth.ok()) return truth.status();
    metrics.confusion += CompareSets(std::move(retrieved), std::move(*truth));
  }

  metrics.precision = Precision(metrics.confusion);
  metrics.recall = Recall(metrics.confusion);
  metrics.f1 = F1Score(metrics.confusion);
  metrics.avg_query_seconds =
      metrics.num_queries == 0
          ? 0.0
          : total_seconds / static_cast<double>(metrics.num_queries);
  return metrics;
}

Result<std::vector<MethodMetrics>> ExperimentRunner::RunTauSweep(
    const ExperimentConfig& base, const std::vector<int64_t>& taus,
    const std::vector<size_t>* query_subset) {
  std::vector<MethodMetrics> out;
  const bool is_baseline = base.method == Method::kLsap ||
                           base.method == Method::kGreedySort ||
                           base.method == Method::kSeriation;
  if (!is_baseline) {
    for (int64_t tau : taus) {
      ExperimentConfig config = base;
      config.tau_hat = tau;
      Result<MethodMetrics> m = Run(config, query_subset);
      if (!m.ok()) return m.status();
      out.push_back(*m);
    }
    return out;
  }

  // Baselines: one estimate scan per query, thresholded for every tau.
  const std::vector<size_t> all =
      query_subset ? *query_subset : AllQueryIndices(dataset_->queries.size());
  const BaselineMethod bm =
      base.method == Method::kLsap
          ? BaselineMethod::kLsap
          : (base.method == Method::kGreedySort ? BaselineMethod::kGreedySort
                                                : BaselineMethod::kSeriation);
  out.assign(taus.size(), MethodMetrics{});
  double total_seconds = 0.0;
  for (size_t q : all) {
    // The scan with an infinite threshold returns every pair's estimate.
    Result<BaselineResult> scan =
        baselines_->Query(dataset_->queries[q], bm, INT64_MAX / 2);
    if (!scan.ok()) return scan.status();
    total_seconds += scan->seconds;
    for (size_t t = 0; t < taus.size(); ++t) {
      std::vector<size_t> retrieved;
      for (const BaselineMatch& m : scan->matches) {
        if (m.estimate <= static_cast<double>(taus[t])) {
          retrieved.push_back(m.graph_id);
        }
      }
      Result<std::vector<size_t>> truth = oracle_.TrueMatches(q, taus[t]);
      if (!truth.ok()) return truth.status();
      out[t].confusion += CompareSets(std::move(retrieved), std::move(*truth));
    }
  }
  for (MethodMetrics& m : out) {
    m.num_queries = all.size();
    m.precision = Precision(m.confusion);
    m.recall = Recall(m.confusion);
    m.f1 = F1Score(m.confusion);
    m.avg_query_seconds =
        all.empty() ? 0.0 : total_seconds / static_cast<double>(all.size());
  }
  return out;
}

}  // namespace gbda
