#include "eval/ground_truth.h"

#include "common/string_util.h"

namespace gbda {

GroundTruthOracle::GroundTruthOracle(const GeneratedDataset* dataset)
    : dataset_(dataset) {}

Result<std::vector<size_t>> GroundTruthOracle::TrueMatches(size_t query_idx,
                                                           int64_t tau) const {
  if (query_idx >= dataset_->queries.size()) {
    return Status::OutOfRange("query index out of range");
  }
  if (tau > max_certified_tau()) {
    return Status::InvalidArgument(StrFormat(
        "tau %lld exceeds the certified gap %lld of dataset %s",
        static_cast<long long>(tau),
        static_cast<long long>(max_certified_tau()),
        dataset_->profile.name.c_str()));
  }
  return dataset_->TrueMatches(query_idx, tau);
}

Result<int64_t> GroundTruthOracle::Distance(size_t query_idx,
                                            size_t graph_id) const {
  if (query_idx >= dataset_->queries.size()) {
    return Status::OutOfRange("query index out of range");
  }
  if (graph_id >= dataset_->db.size()) {
    return Status::OutOfRange("graph id out of range");
  }
  const int64_t ged = dataset_->KnownGedOrFar(query_idx, graph_id);
  if (ged < 0) {
    return Status::NotFound("certified far pair: GED exceeds the rung gap");
  }
  return ged;
}

}  // namespace gbda
