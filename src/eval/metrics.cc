#include "eval/metrics.h"

#include <algorithm>

namespace gbda {

Confusion& Confusion::operator+=(const Confusion& other) {
  true_positives += other.true_positives;
  false_positives += other.false_positives;
  false_negatives += other.false_negatives;
  return *this;
}

double Precision(const Confusion& c) {
  const size_t retrieved = c.true_positives + c.false_positives;
  if (retrieved == 0) return 1.0;
  return static_cast<double>(c.true_positives) / static_cast<double>(retrieved);
}

double Recall(const Confusion& c) {
  const size_t relevant = c.true_positives + c.false_negatives;
  if (relevant == 0) return 1.0;
  return static_cast<double>(c.true_positives) / static_cast<double>(relevant);
}

double F1Score(const Confusion& c) {
  const double p = Precision(c);
  const double r = Recall(c);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

Confusion CompareSets(std::vector<size_t> retrieved,
                      std::vector<size_t> relevant) {
  std::sort(retrieved.begin(), retrieved.end());
  retrieved.erase(std::unique(retrieved.begin(), retrieved.end()),
                  retrieved.end());
  std::sort(relevant.begin(), relevant.end());
  relevant.erase(std::unique(relevant.begin(), relevant.end()), relevant.end());

  Confusion c;
  size_t i = 0, j = 0;
  while (i < retrieved.size() && j < relevant.size()) {
    if (retrieved[i] < relevant[j]) {
      ++c.false_positives;
      ++i;
    } else if (retrieved[i] > relevant[j]) {
      ++c.false_negatives;
      ++j;
    } else {
      ++c.true_positives;
      ++i;
      ++j;
    }
  }
  c.false_positives += retrieved.size() - i;
  c.false_negatives += relevant.size() - j;
  return c;
}

}  // namespace gbda
