#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace gbda::net {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

/// The micro-batcher's coalescing key: two top-k requests may share one
/// QueryTopKBatch call iff k and every SearchOptions field agree (the
/// service API takes one (k, options) per batch; coalescing across
/// differing options would change results). Encoded options bytes compare
/// exactly — including the double fields, bit for bit.
std::string TopKBatchKey(const TopKRequest& req) {
  BinaryWriter w;
  w.PutU64(req.k);
  EncodeSearchOptions(req.options, &w);
  return std::move(w).TakeBuffer();
}

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AppendCounterFamily(const std::string& name, const std::string& help,
                         const std::string& labels, uint64_t value,
                         std::vector<obs::MetricFamily>* out) {
  obs::MetricFamily family;
  family.name = name;
  family.help = help;
  family.type = obs::MetricType::kCounter;
  obs::MetricPoint point;
  point.labels = labels;
  point.value = static_cast<double>(value);
  family.points.push_back(std::move(point));
  out->push_back(std::move(family));
}

}  // namespace

Result<std::unique_ptr<GbdaServer>> GbdaServer::Serve(
    GbdaService* service, const ServerConfig& config) {
  Backend backend;
  backend.frozen = service;
  return StartInternal(backend, config);
}

Result<std::unique_ptr<GbdaServer>> GbdaServer::Serve(
    DynamicGbdaService* service, const ServerConfig& config) {
  Backend backend;
  backend.dynamic = service;
  return StartInternal(backend, config);
}

Result<std::unique_ptr<GbdaServer>> GbdaServer::StartInternal(
    Backend backend, const ServerConfig& config) {
  if (backend.frozen == nullptr && backend.dynamic == nullptr) {
    return Status::InvalidArgument("server: no backend");
  }
  if (config.max_batch == 0) {
    return Status::InvalidArgument("server: max_batch must be >= 1");
  }
  if (config.max_queue == 0) {
    return Status::InvalidArgument("server: max_queue must be >= 1");
  }
  std::unique_ptr<GbdaServer> server(new GbdaServer(backend, config));
  GBDA_RETURN_IF_ERROR(server->Listen());
  server->io_thread_ = std::thread([s = server.get()] { s->IoLoop(); });
  const size_t workers = std::max<size_t>(1, config.num_workers);
  server->workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  return server;
}

GbdaServer::GbdaServer(Backend backend, const ServerConfig& config)
    : backend_(backend),
      config_(config),
      batch_size_histogram_(std::max<size_t>(1, config.max_batch)) {}

GbdaServer::~GbdaServer() { Shutdown(); }

Status GbdaServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("server: bad bind address " +
                                   config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, config_.listen_backlog) < 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  GBDA_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
  if (::pipe(wake_pipe_) < 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  GBDA_RETURN_IF_ERROR(SetNonBlocking(wake_pipe_[0]));
  GBDA_RETURN_IF_ERROR(SetNonBlocking(wake_pipe_[1]));
  return Status::OK();
}

void GbdaServer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    {
      MutexLock lock(&queue_mutex_);
      stopping_.store(true, std::memory_order_release);
      draining_paused_ = false;  // shutdown overrides an admin pause
    }
    queue_cv_.NotifyAll();
    WakeIo();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    // Workers have answered everything they will; let the I/O thread flush
    // outboxes (bounded — it exits once all outboxes drain or the grace
    // window ends) and close the sockets.
    workers_done_.store(true, std::memory_order_release);
    WakeIo();
    if (io_thread_.joinable()) io_thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
    if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
    listen_fd_ = -1;
    wake_pipe_[0] = wake_pipe_[1] = -1;
  });
}

WireServerStats GbdaServer::stats() const {
  WireServerStats s;
  s.connections_opened = connections_opened_.Value();
  s.connections_closed = connections_closed_.Value();
  s.frames_received = frames_received_.Value();
  s.decode_errors = decode_errors_.Value();
  s.requests_accepted = requests_accepted_.Value();
  s.rejected_overloaded = rejected_overloaded_.Value();
  s.rejected_deadline = rejected_deadline_.Value();
  s.rejected_invalid = rejected_invalid_.Value();
  s.responses_sent = responses_sent_.Value();
  s.batches_executed = batches_executed_.Value();
  s.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
  s.batch_size_histogram.reserve(batch_size_histogram_.size());
  for (const std::atomic<uint64_t>& slot : batch_size_histogram_) {
    s.batch_size_histogram.push_back(slot.load(std::memory_order_relaxed));
  }
  s.stage_latency.resize(obs::kNumQueryStages);
  for (int i = 0; i < obs::kNumQueryStages; ++i) {
    const obs::Histogram h = stage_latency_[i].Snapshot();
    WireStageStats& st = s.stage_latency[i];
    st.count = h.count();
    st.sum_micros = h.sum();
    st.min_micros = h.min();
    st.max_micros = h.max();
    st.p50_micros = h.Quantile(0.5);
    st.p99_micros = h.Quantile(0.99);
    st.p999_micros = h.Quantile(0.999);
  }
  return s;
}

void GbdaServer::CollectMetrics(const std::string& labels,
                                std::vector<obs::MetricFamily>* out) const {
  AppendCounterFamily("gbda_server_connections_opened_total",
                      "TCP connections accepted", labels,
                      connections_opened_.Value(), out);
  AppendCounterFamily("gbda_server_connections_closed_total",
                      "TCP connections closed", labels,
                      connections_closed_.Value(), out);
  AppendCounterFamily("gbda_server_frames_received_total",
                      "Well-framed protocol frames received", labels,
                      frames_received_.Value(), out);
  AppendCounterFamily("gbda_server_decode_errors_total",
                      "Framing violations (connection closed)", labels,
                      decode_errors_.Value(), out);
  AppendCounterFamily("gbda_server_requests_accepted_total",
                      "Requests admitted to the execution queue", labels,
                      requests_accepted_.Value(), out);
  AppendCounterFamily("gbda_server_rejected_overloaded_total",
                      "Requests rejected at the admission bound", labels,
                      rejected_overloaded_.Value(), out);
  AppendCounterFamily("gbda_server_rejected_deadline_total",
                      "Requests expired in queue (kDeadlineExceeded)", labels,
                      rejected_deadline_.Value(), out);
  AppendCounterFamily("gbda_server_rejected_invalid_total",
                      "Malformed request payloads answered kInvalidRequest",
                      labels, rejected_invalid_.Value(), out);
  AppendCounterFamily("gbda_server_responses_sent_total",
                      "Response frames queued for send", labels,
                      responses_sent_.Value(), out);
  AppendCounterFamily("gbda_server_batches_executed_total",
                      "Query micro-batches executed", labels,
                      batches_executed_.Value(), out);
  {
    obs::MetricFamily family;
    family.name = "gbda_server_queue_depth_peak";
    family.help = "High-water mark of the admission queue";
    family.type = obs::MetricType::kGauge;
    obs::MetricPoint point;
    point.labels = labels;
    point.value = static_cast<double>(
        queue_depth_peak_.load(std::memory_order_relaxed));
    family.points.push_back(std::move(point));
    out->push_back(std::move(family));
  }
  {
    obs::MetricFamily sizes;
    sizes.name = "gbda_server_batch_size_total";
    sizes.help = "Executed micro-batches by coalesced size";
    sizes.type = obs::MetricType::kCounter;
    for (size_t i = 0; i < batch_size_histogram_.size(); ++i) {
      const uint64_t n =
          batch_size_histogram_[i].load(std::memory_order_relaxed);
      if (n == 0) continue;
      obs::MetricPoint point;
      point.labels = "size=\"" + std::to_string(i + 1) + "\"";
      if (!labels.empty()) point.labels = labels + "," + point.labels;
      point.value = static_cast<double>(n);
      sizes.points.push_back(std::move(point));
    }
    if (!sizes.points.empty()) out->push_back(std::move(sizes));
  }
  obs::MetricFamily stages;
  stages.name = "gbda_stage_latency_micros";
  stages.help =
      "Per-stage serving latency in microseconds (admission/queue/batch/scan)";
  stages.type = obs::MetricType::kHistogram;
  for (int i = 0; i < obs::kNumQueryStages; ++i) {
    obs::MetricPoint point;
    point.labels = std::string("stage=\"") +
                   obs::QueryStageName(static_cast<obs::QueryStage>(i)) + "\"";
    if (!labels.empty()) point.labels = labels + "," + point.labels;
    point.histogram = stage_latency_[i].Snapshot();
    stages.points.push_back(std::move(point));
  }
  out->push_back(std::move(stages));
}

void GbdaServer::PauseDraining() {
  {
    MutexLock lock(&queue_mutex_);
    draining_paused_ = true;
  }
  queue_cv_.NotifyAll();
}

void GbdaServer::ResumeDraining() {
  {
    MutexLock lock(&queue_mutex_);
    draining_paused_ = false;
  }
  queue_cv_.NotifyAll();
}

void GbdaServer::WakeIo() {
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

// ---------------------------------------------------------------------------
// I/O thread
// ---------------------------------------------------------------------------

void GbdaServer::IoLoop() {
  bool flushing = false;  // true once stopping: no reads, drain outboxes
  std::chrono::steady_clock::time_point flush_start;
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // conn id per pollfd slot (0 = not a conn)

  for (;;) {
    // The flush phase starts only once Shutdown() has joined every worker
    // (workers_done_): until then admitted requests are still executing and
    // their responses must reach the outboxes. While merely stopping_, the
    // loop keeps reading — new requests are answered kShuttingDown by
    // admission.
    if (!flushing && workers_done_.load(std::memory_order_acquire)) {
      flushing = true;
      flush_start = std::chrono::steady_clock::now();
    }

    // Drain worker-posted responses into connection outboxes first, so the
    // poll below already watches for writability.
    {
      std::vector<std::pair<uint64_t, std::string>> posted;
      {
        MutexLock lock(&responses_mutex_);
        posted.swap(posted_responses_);
      }
      for (auto& [conn_id, bytes] : posted) {
        QueueResponse(conn_id, std::move(bytes));
      }
    }

    if (flushing) {
      bool all_drained = true;
      for (const auto& [id, conn] : conns_) {
        if (conn.outbox_sent < conn.outbox.size()) all_drained = false;
      }
      const bool grace_over =
          std::chrono::steady_clock::now() - flush_start >
          std::chrono::milliseconds(500);
      if (all_drained || grace_over) break;
    }

    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fd_conn.push_back(0);
    if (!flushing) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (const auto& [id, conn] : conns_) {
      short events = flushing ? 0 : POLLIN;
      if (conn.outbox_sent < conn.outbox.size()) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back({conn.fd, events, 0});
      fd_conn.push_back(id);
    }

    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/50);
    if (ready < 0 && errno != EINTR) break;  // unrecoverable poll failure
    if (ready <= 0) continue;

    for (size_t i = 0; i < fds.size(); ++i) {
      const short revents = fds[i].revents;
      if (revents == 0) continue;
      if (fds[i].fd == wake_pipe_[0]) {
        char buf[256];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (fds[i].fd == listen_fd_ && !flushing) {
        AcceptPending();
        continue;
      }
      const uint64_t conn_id = fd_conn[i];
      if (conns_.find(conn_id) == conns_.end()) continue;  // closed earlier
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // POLLHUP with readable data still pending is handled by the read
        // path returning 0; closing here is correct for both.
        CloseConnection(conn_id);
        continue;
      }
      if (revents & POLLIN) HandleReadable(conn_id);
      if (conns_.find(conn_id) == conns_.end()) continue;
      if (revents & POLLOUT) HandleWritable(conn_id);
    }
  }

  for (auto& [id, conn] : conns_) ::close(conn.fd);
  conns_.clear();
}

void GbdaServer::AcceptPending() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: next poll round
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection conn;
    conn.fd = fd;
    conns_.emplace(next_conn_id_, std::move(conn));
    ++next_conn_id_;
    connections_opened_.Increment();
  }
}

void GbdaServer::HandleReadable(uint64_t conn_id) {
  Connection& conn = conns_[conn_id];
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.decoder.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn_id);  // orderly close (0) or hard error
    return;
  }
  for (;;) {
    // The map can rehash while DispatchFrame queues responses, so re-find
    // the connection each iteration instead of holding a reference.
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    Result<std::optional<Frame>> next = it->second.decoder.Next();
    if (!next.ok()) {
      // Framing violation: the stream cannot be resynchronized.
      decode_errors_.Increment();
      CloseConnection(conn_id);
      return;
    }
    if (!next->has_value()) return;  // need more bytes
    frames_received_.Increment();
    if (!DispatchFrame(conn_id, std::move(**next))) {
      CloseConnection(conn_id);
      return;
    }
  }
}

bool GbdaServer::DispatchFrame(uint64_t conn_id, Frame frame) {
  const auto now = std::chrono::steady_clock::now();
  switch (frame.type) {
    case MessageType::kPingRequest: {
      Result<PingRequest> req = DecodePingRequest(frame.payload);
      if (!req.ok()) break;
      PingResponse resp;
      resp.request_id = req->request_id;
      QueueResponse(conn_id, EncodePingResponse(resp));
      return true;
    }
    case MessageType::kStatsRequest: {
      Result<StatsRequest> req = DecodeStatsRequest(frame.payload);
      if (!req.ok()) break;
      StatsResponse resp;
      resp.request_id = req->request_id;
      resp.stats = stats();
      QueueResponse(conn_id, EncodeStatsResponse(resp));
      return true;
    }
    case MessageType::kTopKRequest: {
      Result<TopKRequest> req = DecodeTopKRequest(frame.payload);
      if (!req.ok()) break;
      Pending pending;
      pending.conn_id = conn_id;
      pending.type = MessageType::kTopKRequest;
      pending.arrival = now;
      pending.deadline_ms = req->deadline_ms != 0 ? req->deadline_ms
                                                  : config_.default_deadline_ms;
      pending.topk = std::move(*req);
      const uint64_t request_id = pending.topk.request_id;
      // Admission span: decode + queueing work on the I/O thread, measured
      // just before the request becomes visible to workers.
      pending.admission_micros = ElapsedMicros(now);
      WireStatus admitted = WireStatus::kOk;
      size_t depth = 0;
      {
        MutexLock lock(&queue_mutex_);
        if (stopping_.load(std::memory_order_relaxed)) {
          admitted = WireStatus::kShuttingDown;
        } else if (queue_.size() >= config_.max_queue) {
          admitted = WireStatus::kOverloaded;
        } else {
          queue_.push_back(std::move(pending));
          depth = queue_.size();
        }
      }
      if (admitted == WireStatus::kOk) {
        requests_accepted_.Increment();
        AtomicMax(&queue_depth_peak_, depth);
        queue_cv_.NotifyOne();
      } else {
        TopKResponse resp;
        resp.request_id = request_id;
        resp.status = admitted;
        resp.message = admitted == WireStatus::kOverloaded
                           ? "request queue at capacity"
                           : "server shutting down";
        if (admitted == WireStatus::kOverloaded) {
          rejected_overloaded_.Increment();
        }
        QueueResponse(conn_id, EncodeTopKResponse(resp));
      }
      return true;
    }
    case MessageType::kMutateRequest: {
      Result<MutateRequest> req = DecodeMutateRequest(frame.payload);
      if (!req.ok()) break;
      Pending pending;
      pending.conn_id = conn_id;
      pending.type = MessageType::kMutateRequest;
      pending.arrival = now;
      pending.deadline_ms = req->deadline_ms != 0 ? req->deadline_ms
                                                  : config_.default_deadline_ms;
      pending.mutate = std::move(*req);
      const uint64_t request_id = pending.mutate.request_id;
      pending.admission_micros = ElapsedMicros(now);
      WireStatus admitted = WireStatus::kOk;
      size_t depth = 0;
      {
        MutexLock lock(&queue_mutex_);
        if (stopping_.load(std::memory_order_relaxed)) {
          admitted = WireStatus::kShuttingDown;
        } else if (queue_.size() >= config_.max_queue) {
          admitted = WireStatus::kOverloaded;
        } else {
          queue_.push_back(std::move(pending));
          depth = queue_.size();
        }
      }
      if (admitted == WireStatus::kOk) {
        requests_accepted_.Increment();
        AtomicMax(&queue_depth_peak_, depth);
        queue_cv_.NotifyOne();
      } else {
        MutateResponse resp;
        resp.request_id = request_id;
        resp.status = admitted;
        resp.message = admitted == WireStatus::kOverloaded
                           ? "request queue at capacity"
                           : "server shutting down";
        if (admitted == WireStatus::kOverloaded) {
          rejected_overloaded_.Increment();
        }
        QueueResponse(conn_id, EncodeMutateResponse(resp));
      }
      return true;
    }
    default:
      // A response type arriving at the server: well-framed nonsense.
      break;
  }
  // Payload decode failure (or a response-typed frame): the framing is
  // intact, so answer kInvalidRequest and keep the connection. The
  // request_id is unknown — the body did not parse — so 0 is reported.
  rejected_invalid_.Increment();
  TopKResponse resp;
  resp.status = WireStatus::kInvalidRequest;
  resp.message = "malformed request payload";
  QueueResponse(conn_id, EncodeTopKResponse(resp));
  return true;
}

void GbdaServer::QueueResponse(uint64_t conn_id, std::string frame_bytes) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // client went away; drop the response
  Connection& conn = it->second;
  if (conn.outbox_sent == conn.outbox.size()) {
    conn.outbox.clear();
    conn.outbox_sent = 0;
  }
  conn.outbox.append(frame_bytes);
  responses_sent_.Increment();
  HandleWritable(conn_id);  // opportunistic immediate send
}

void GbdaServer::HandleWritable(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  while (conn.outbox_sent < conn.outbox.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-response yields EPIPE instead of
    // a process-fatal SIGPIPE (the overload test kills clients mid-write).
    const ssize_t n =
        ::send(conn.fd, conn.outbox.data() + conn.outbox_sent,
               conn.outbox.size() - conn.outbox_sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbox_sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn_id);  // EPIPE / ECONNRESET / hard error
    return;
  }
}

void GbdaServer::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::close(it->second.fd);
  conns_.erase(it);
  connections_closed_.Increment();
}

// ---------------------------------------------------------------------------
// Worker threads: the adaptive micro-batcher
// ---------------------------------------------------------------------------

void GbdaServer::TakeCompatible(const std::string& key,
                                std::vector<Pending>* batch) {
  for (auto it = queue_.begin();
       it != queue_.end() && batch->size() < config_.max_batch;) {
    if (it->type == MessageType::kTopKRequest &&
        TopKBatchKey(it->topk) == key) {
      batch->push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<GbdaServer::Pending> GbdaServer::NextBatch(
    uint64_t* linger_micros, uint64_t* coalesce_micros) {
  std::vector<Pending> batch;
  *coalesce_micros = 0;
  MutexLock lock(&queue_mutex_);
  // Explicit predicate loop (not a lambda) so the guarded accesses stay
  // visible to the thread-safety analysis.
  while (!stopping_.load(std::memory_order_relaxed) &&
         (queue_.empty() || draining_paused_)) {
    queue_cv_.Wait(queue_mutex_);
  }
  if (queue_.empty()) return batch;  // stopping && drained
  // Shutdown drains without pausing: remaining admitted requests are still
  // answered below.

  // Batch-stage span: starts at the first pop (idle cv-wait above is queue
  // time, not coalescing) and ends when the batch is final.
  const auto coalesce_start = std::chrono::steady_clock::now();
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  if (batch.front().type != MessageType::kTopKRequest) {
    return batch;  // mutations execute alone, in admission order
  }

  const std::string key = TopKBatchKey(batch.front().topk);
  TakeCompatible(key, &batch);

  // Adaptive linger: when the previous batches filled up (high offered
  // load), waiting a bounded moment collects late arrivals into the same
  // QueryTopKBatch call; when traffic is sparse the window decays to zero
  // so singleton queries pay no added latency.
  if (batch.size() < config_.max_batch && *linger_micros > 0 &&
      !stopping_.load(std::memory_order_relaxed)) {
    const auto linger_until = std::chrono::steady_clock::now() +
                              std::chrono::microseconds(*linger_micros);
    while (batch.size() < config_.max_batch) {
      if (queue_cv_.WaitUntil(queue_mutex_, linger_until) ==
          std::cv_status::timeout) {
        TakeCompatible(key, &batch);
        break;
      }
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (!draining_paused_) TakeCompatible(key, &batch);
    }
  }

  // Batch-size feedback: full batch -> double the window (bounded);
  // singleton -> halve it toward zero.
  if (batch.size() >= config_.max_batch) {
    *linger_micros = std::min<uint64_t>(
        config_.max_linger_micros, *linger_micros == 0 ? 8 : *linger_micros * 2);
  } else if (batch.size() == 1) {
    *linger_micros /= 2;
  }
  *coalesce_micros = ElapsedMicros(coalesce_start);
  return batch;
}

void GbdaServer::WorkerLoop() {
  uint64_t linger_micros = 0;
  for (;;) {
    uint64_t coalesce_micros = 0;
    std::vector<Pending> batch = NextBatch(&linger_micros, &coalesce_micros);
    if (batch.empty()) return;  // shutdown, queue drained
    if (batch.front().type == MessageType::kMutateRequest) {
      ExecuteMutation(std::move(batch.front()));
    } else {
      ExecuteTopKBatch(std::move(batch), coalesce_micros);
    }
  }
}

void GbdaServer::ExecuteTopKBatch(std::vector<Pending> batch,
                                  uint64_t coalesce_micros) {
  // Deadline accounting happens at execution time: a request that spent its
  // whole budget queued is answered kDeadlineExceeded, never executed.
  std::vector<Pending> live;
  std::vector<uint64_t> queued_micros;  // parallel to live, arrival -> here
  live.reserve(batch.size());
  queued_micros.reserve(batch.size());
  for (Pending& p : batch) {
    const uint64_t qm = ElapsedMicros(p.arrival);
    const uint64_t queued_ms = qm / 1000;
    if (queued_ms > p.deadline_ms) {
      TopKResponse resp;
      resp.request_id = p.topk.request_id;
      resp.status = WireStatus::kDeadlineExceeded;
      resp.message = "deadline of " + std::to_string(p.deadline_ms) +
                     " ms exceeded after " + std::to_string(queued_ms) +
                     " ms in queue";
      resp.queue_micros = qm;
      resp.admission_micros = p.admission_micros;
      rejected_deadline_.Increment();
      PostResponse(p.conn_id, EncodeTopKResponse(resp));
    } else {
      queued_micros.push_back(qm);
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  std::vector<Graph> queries;
  queries.reserve(live.size());
  for (Pending& p : live) queries.push_back(std::move(p.topk.query));
  const size_t k = static_cast<size_t>(live.front().topk.k);
  const SearchOptions& options = live.front().topk.options;

  SnapshotInfo served;
  Result<std::vector<SearchResult>> results =
      backend_.dynamic
          ? backend_.dynamic->QueryTopKBatch(Span<Graph>(queries),
                                             k, options, &served)
          : backend_.frozen->QueryTopKBatch(Span<Graph>(queries), k, options);

  batches_executed_.Increment();
  const size_t slot = std::min(live.size(), batch_size_histogram_.size()) - 1;
  batch_size_histogram_[slot].fetch_add(1, std::memory_order_relaxed);
  stage_latency_[static_cast<int>(obs::QueryStage::kBatch)].Record(
      coalesce_micros);

  for (size_t i = 0; i < live.size(); ++i) {
    TopKResponse resp;
    resp.request_id = live[i].topk.request_id;
    resp.generation = served.generation;
    resp.queue_micros = queued_micros[i];
    resp.batch_size = live.size();
    resp.admission_micros = live[i].admission_micros;
    resp.batch_micros = coalesce_micros;
    if (results.ok()) {
      SearchResult& r = (*results)[i];
      resp.candidates_evaluated = r.candidates_evaluated;
      resp.prefiltered_out = r.prefiltered_out;
      resp.pruned_by_bound = r.pruned_by_bound;
      resp.candidates_visited = r.candidates_visited;
      resp.verified_count = r.verified_count;
      resp.scan_micros =
          r.seconds > 0 ? static_cast<uint64_t>(r.seconds * 1e6 + 0.5) : 0;
      resp.matches = std::move(r.matches);
    } else {
      // The only batch-global failure modes are option validation and
      // posterior-domain errors — attributable to every co-batched request
      // (they share (k, options) by construction of the batch key).
      resp.status = WireStatus::kInvalidRequest;
      resp.message = results.status().ToString();
    }
    stage_latency_[static_cast<int>(obs::QueryStage::kAdmission)].Record(
        resp.admission_micros);
    stage_latency_[static_cast<int>(obs::QueryStage::kQueue)].Record(
        resp.queue_micros);
    stage_latency_[static_cast<int>(obs::QueryStage::kScan)].Record(
        resp.scan_micros);
    if (obs::SlowQueryLogEnabled()) {
      obs::TraceSpans spans;
      spans.Set(obs::QueryStage::kAdmission, resp.admission_micros);
      spans.Set(obs::QueryStage::kQueue, resp.queue_micros);
      spans.Set(obs::QueryStage::kBatch, resp.batch_micros);
      spans.Set(obs::QueryStage::kScan, resp.scan_micros);
      obs::MaybeLogSlowQuery(spans.TotalMicros(), spans, resp.pruned_by_bound,
                             resp.candidates_visited, live.size());
    }
    PostResponse(live[i].conn_id, EncodeTopKResponse(resp));
  }
}

void GbdaServer::ExecuteMutation(Pending request) {
  MutateRequest& req = request.mutate;
  MutateResponse resp;
  resp.request_id = req.request_id;

  const uint64_t queued_ms = ElapsedMicros(request.arrival) / 1000;
  if (queued_ms > request.deadline_ms) {
    resp.status = WireStatus::kDeadlineExceeded;
    resp.message = "deadline of " + std::to_string(request.deadline_ms) +
                   " ms exceeded after " + std::to_string(queued_ms) +
                   " ms in queue";
    rejected_deadline_.Increment();
    PostResponse(request.conn_id, EncodeMutateResponse(resp));
    return;
  }

  DynamicGbdaService* service = backend_.dynamic;
  if (service == nullptr) {
    resp.status = WireStatus::kUnsupported;
    resp.message = "mutation requests require a dynamic-corpus backend";
    PostResponse(request.conn_id, EncodeMutateResponse(resp));
    return;
  }

  SnapshotInfo published;
  switch (req.op) {
    case MutationOp::kAddGraphs: {
      Result<std::vector<size_t>> ids =
          service->AddGraphs(std::move(req.graphs), &published);
      if (!ids.ok()) {
        resp.status = WireStatus::kInvalidRequest;
        resp.message = ids.status().ToString();
      } else {
        resp.generation = published.generation;
        resp.assigned_ids.assign(ids->begin(), ids->end());
      }
      break;
    }
    case MutationOp::kRemoveGraphs: {
      std::vector<size_t> ids(req.ids.begin(), req.ids.end());
      Status removed = service->RemoveGraphs(ids, &published);
      if (!removed.ok()) {
        resp.status = WireStatus::kInvalidRequest;
        resp.message = removed.ToString();
      } else {
        resp.generation = published.generation;
      }
      break;
    }
    case MutationOp::kInternVertexLabel:
      resp.label_id = service->InternVertexLabel(req.label);
      resp.generation = service->snapshot_info().generation;
      break;
    case MutationOp::kInternEdgeLabel:
      resp.label_id = service->InternEdgeLabel(req.label);
      resp.generation = service->snapshot_info().generation;
      break;
    case MutationOp::kFlush: {
      Status flushed = service->Flush(&published);
      // Flush publishes even when the forced refit fails; report the
      // generation either way so the client can pin it.
      resp.generation = published.generation;
      if (!flushed.ok()) {
        resp.status = WireStatus::kInvalidRequest;
        resp.message = flushed.ToString();
      }
      break;
    }
  }
  PostResponse(request.conn_id, EncodeMutateResponse(resp));
}

void GbdaServer::PostResponse(uint64_t conn_id, std::string frame_bytes) {
  {
    MutexLock lock(&responses_mutex_);
    posted_responses_.emplace_back(conn_id, std::move(frame_bytes));
  }
  WakeIo();
}

}  // namespace gbda::net
