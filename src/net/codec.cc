#include "net/codec.h"

#include <cstring>

#include "common/crc32.h"

namespace gbda::net {

namespace {

/// Shared tail check: every message decoder calls this last so a payload
/// with valid fields followed by junk is rejected, exactly like the
/// artifact loaders (core/gbda_index.cc LoadFromFile).
Status RejectTrailing(const BinaryReader& reader) {
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        reader.DescribeHere("trailing bytes after message"));
  }
  return Status::OK();
}

Result<WireStatus> GetWireStatus(BinaryReader* reader) {
  Result<uint32_t> raw = reader->GetU32();
  if (!raw.ok()) return raw.status();
  if (*raw > kMaxWireStatus) {
    return Status::InvalidArgument(
        reader->DescribeHere("unknown wire status " + std::to_string(*raw)));
  }
  return static_cast<WireStatus>(*raw);
}

}  // namespace

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "Ok";
    case WireStatus::kInvalidRequest:
      return "InvalidRequest";
    case WireStatus::kOverloaded:
      return "Overloaded";
    case WireStatus::kDeadlineExceeded:
      return "DeadlineExceeded";
    case WireStatus::kUnsupported:
      return "Unsupported";
    case WireStatus::kInternal:
      return "Internal";
    case WireStatus::kShuttingDown:
      return "ShuttingDown";
  }
  return "Unknown";
}

std::string EncodeFrame(MessageType type, std::string_view payload) {
  BinaryWriter header;
  header.PutU32(kWireMagic);
  header.PutU32(kWireVersion);
  header.PutU32(static_cast<uint32_t>(type));
  header.PutU64(payload.size());
  header.PutU32(Crc32(payload.data(), payload.size()));
  std::string frame = std::move(header).TakeBuffer();
  frame.append(payload.data(), payload.size());
  return frame;
}

void FrameDecoder::Feed(const char* data, size_t size) {
  // Compact lazily: once the consumed prefix dominates the buffer, drop it
  // so a long-lived connection does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return std::optional<Frame>();

  BinaryReader header(
      std::string_view(buffer_.data() + consumed_, kFrameHeaderBytes),
      "frame header");
  // The four header getters cannot fail (24 bytes are present); decode and
  // validate in order so the first malformed field names the error.
  const uint32_t magic = *header.GetU32();
  const uint32_t version = *header.GetU32();
  const uint32_t type = *header.GetU32();
  const uint64_t payload_len = *header.GetU64();
  const uint32_t payload_crc = *header.GetU32();

  if (magic != kWireMagic) {
    return Status::InvalidArgument("wire: bad frame magic");
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument("wire: unsupported protocol version " +
                                   std::to_string(version));
  }
  if (type == 0 || type > kMaxMessageType) {
    return Status::InvalidArgument("wire: unknown message type " +
                                   std::to_string(type));
  }
  // Bound before any arithmetic with payload_len: a hostile length near
  // UINT64_MAX must neither allocate nor wrap the availability check.
  if (payload_len > kMaxPayloadBytes) {
    return Status::InvalidArgument("wire: declared payload length " +
                                   std::to_string(payload_len) +
                                   " exceeds the protocol bound");
  }
  if (available - kFrameHeaderBytes < payload_len) {
    return std::optional<Frame>();  // wait for the rest of the payload
  }

  const char* payload = buffer_.data() + consumed_ + kFrameHeaderBytes;
  const uint32_t actual_crc = Crc32(payload, static_cast<size_t>(payload_len));
  if (actual_crc != payload_crc) {
    return Status::DataLoss("wire: payload CRC mismatch");
  }

  Frame frame;
  frame.type = static_cast<MessageType>(type);
  frame.payload.assign(payload, static_cast<size_t>(payload_len));
  consumed_ += kFrameHeaderBytes + static_cast<size_t>(payload_len);
  return std::optional<Frame>(std::move(frame));
}

// ---------------------------------------------------------------------------
// Component codecs
// ---------------------------------------------------------------------------

void EncodeGraph(const Graph& g, BinaryWriter* writer) {
  std::vector<LabelId> vertex_labels;
  vertex_labels.reserve(g.num_vertices());
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    vertex_labels.push_back(g.VertexLabel(v));
  }
  writer->PutPodVector(vertex_labels);
  writer->PutPodVector(g.SortedEdges());
}

Result<Graph> DecodeGraph(BinaryReader* reader) {
  Result<std::vector<LabelId>> vertex_labels =
      reader->GetPodVector<LabelId>();
  if (!vertex_labels.ok()) return vertex_labels.status();
  Result<std::vector<Graph::EdgeTriple>> edges =
      reader->GetPodVector<Graph::EdgeTriple>();
  if (!edges.ok()) return edges.status();

  Graph g;
  for (LabelId label : *vertex_labels) g.AddVertex(label);
  for (const Graph::EdgeTriple& e : *edges) {
    Status added = g.AddEdge(e.u, e.v, e.label);
    if (!added.ok()) {
      return Status::InvalidArgument(
          reader->DescribeHere("invalid graph edge: " + added.message()));
    }
  }
  return g;
}

void EncodeSearchOptions(const SearchOptions& options, BinaryWriter* writer) {
  writer->PutI64(options.tau_hat);
  writer->PutDouble(options.gamma);
  writer->PutU32(static_cast<uint32_t>(options.variant));
  writer->PutDouble(options.vgbd_w);
  writer->PutU64(options.v1_sample_alpha);
  writer->PutU64(options.seed);
  uint32_t flags = 0;
  if (options.use_prefilter) flags |= 1u;
  if (options.topk_early_termination) flags |= 2u;
  if (options.approximate) flags |= 4u;
  writer->PutU32(flags);
  writer->PutU64(options.search_window_size);
}

Result<SearchOptions> DecodeSearchOptions(BinaryReader* reader) {
  SearchOptions options;
  GBDA_ASSIGN_OR_RETURN(options.tau_hat, reader->GetI64());
  GBDA_ASSIGN_OR_RETURN(options.gamma, reader->GetDouble());
  Result<uint32_t> variant = reader->GetU32();
  if (!variant.ok()) return variant.status();
  if (*variant > static_cast<uint32_t>(GbdaVariant::kWeightedGbd)) {
    return Status::InvalidArgument(
        reader->DescribeHere("unknown search variant " +
                             std::to_string(*variant)));
  }
  options.variant = static_cast<GbdaVariant>(*variant);
  GBDA_ASSIGN_OR_RETURN(options.vgbd_w, reader->GetDouble());
  GBDA_ASSIGN_OR_RETURN(options.v1_sample_alpha, reader->GetU64());
  GBDA_ASSIGN_OR_RETURN(options.seed, reader->GetU64());
  Result<uint32_t> flags = reader->GetU32();
  if (!flags.ok()) return flags.status();
  if (*flags > 7u) {
    return Status::InvalidArgument(
        reader->DescribeHere("unknown search option flags"));
  }
  options.use_prefilter = (*flags & 1u) != 0;
  options.topk_early_termination = (*flags & 2u) != 0;
  options.approximate = (*flags & 4u) != 0;
  Result<uint64_t> window = reader->GetU64();
  if (!window.ok()) return window.status();
  if (*window == 0) {
    return Status::InvalidArgument(
        reader->DescribeHere("search window size must be >= 1"));
  }
  options.search_window_size = static_cast<size_t>(*window);
  return options;
}

namespace {

void EncodeMatches(const std::vector<SearchMatch>& matches,
                   BinaryWriter* writer) {
  writer->PutU64(matches.size());
  for (const SearchMatch& m : matches) {
    writer->PutU64(m.graph_id);
    writer->PutDouble(m.phi_score);
    writer->PutI64(m.gbd);
  }
}

Result<std::vector<SearchMatch>> DecodeMatches(BinaryReader* reader) {
  const size_t at = reader->position();
  Result<uint64_t> count = reader->GetU64();
  if (!count.ok()) return count.status();
  constexpr size_t kMatchBytes = 8 + 8 + 8;
  if (*count > reader->remaining() / kMatchBytes) {
    return Status::OutOfRange(reader->Describe("truncated match list", at));
  }
  std::vector<SearchMatch> matches(static_cast<size_t>(*count));
  for (SearchMatch& m : matches) {
    Result<uint64_t> id = reader->GetU64();
    if (!id.ok()) return id.status();
    m.graph_id = static_cast<size_t>(*id);
    GBDA_ASSIGN_OR_RETURN(m.phi_score, reader->GetDouble());
    GBDA_ASSIGN_OR_RETURN(m.gbd, reader->GetI64());
  }
  return matches;
}

Result<std::vector<uint64_t>> DecodeIdVector(BinaryReader* reader) {
  return reader->GetPodVector<uint64_t>();
}

}  // namespace

// ---------------------------------------------------------------------------
// Message codecs
// ---------------------------------------------------------------------------

std::string EncodePingRequest(const PingRequest& msg) {
  BinaryWriter w;
  w.PutU64(msg.request_id);
  return EncodeFrame(MessageType::kPingRequest, w.buffer());
}

Result<PingRequest> DecodePingRequest(std::string_view payload) {
  BinaryReader r(payload, "ping request");
  PingRequest msg;
  GBDA_ASSIGN_OR_RETURN(msg.request_id, r.GetU64());
  GBDA_RETURN_IF_ERROR(RejectTrailing(r));
  return msg;
}

std::string EncodePingResponse(const PingResponse& msg) {
  BinaryWriter w;
  w.PutU64(msg.request_id);
  return EncodeFrame(MessageType::kPingResponse, w.buffer());
}

Result<PingResponse> DecodePingResponse(std::string_view payload) {
  BinaryReader r(payload, "ping response");
  PingResponse msg;
  GBDA_ASSIGN_OR_RETURN(msg.request_id, r.GetU64());
  GBDA_RETURN_IF_ERROR(RejectTrailing(r));
  return msg;
}

std::string EncodeTopKRequest(const TopKRequest& msg) {
  BinaryWriter w;
  w.PutU64(msg.request_id);
  w.PutU64(msg.k);
  w.PutU64(msg.deadline_ms);
  EncodeSearchOptions(msg.options, &w);
  EncodeGraph(msg.query, &w);
  return EncodeFrame(MessageType::kTopKRequest, w.buffer());
}

Result<TopKRequest> DecodeTopKRequest(std::string_view payload) {
  BinaryReader r(payload, "top-k request");
  TopKRequest msg;
  GBDA_ASSIGN_OR_RETURN(msg.request_id, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.k, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.deadline_ms, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.options, DecodeSearchOptions(&r));
  GBDA_ASSIGN_OR_RETURN(msg.query, DecodeGraph(&r));
  GBDA_RETURN_IF_ERROR(RejectTrailing(r));
  return msg;
}

std::string EncodeTopKResponse(const TopKResponse& msg) {
  BinaryWriter w;
  w.PutU64(msg.request_id);
  w.PutU32(static_cast<uint32_t>(msg.status));
  w.PutString(msg.message);
  w.PutU64(msg.generation);
  w.PutU64(msg.candidates_evaluated);
  w.PutU64(msg.prefiltered_out);
  w.PutU64(msg.pruned_by_bound);
  w.PutU64(msg.candidates_visited);
  w.PutU64(msg.verified_count);
  w.PutU64(msg.queue_micros);
  w.PutU64(msg.batch_size);
  w.PutU64(msg.admission_micros);
  w.PutU64(msg.batch_micros);
  w.PutU64(msg.scan_micros);
  EncodeMatches(msg.matches, &w);
  return EncodeFrame(MessageType::kTopKResponse, w.buffer());
}

Result<TopKResponse> DecodeTopKResponse(std::string_view payload) {
  BinaryReader r(payload, "top-k response");
  TopKResponse msg;
  GBDA_ASSIGN_OR_RETURN(msg.request_id, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.status, GetWireStatus(&r));
  GBDA_ASSIGN_OR_RETURN(msg.message, r.GetString());
  GBDA_ASSIGN_OR_RETURN(msg.generation, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.candidates_evaluated, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.prefiltered_out, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.pruned_by_bound, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.candidates_visited, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.verified_count, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.queue_micros, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.batch_size, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.admission_micros, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.batch_micros, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.scan_micros, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.matches, DecodeMatches(&r));
  GBDA_RETURN_IF_ERROR(RejectTrailing(r));
  return msg;
}

std::string EncodeMutateRequest(const MutateRequest& msg) {
  BinaryWriter w;
  w.PutU64(msg.request_id);
  w.PutU32(static_cast<uint32_t>(msg.op));
  w.PutU64(msg.deadline_ms);
  w.PutU64(msg.graphs.size());
  for (const Graph& g : msg.graphs) EncodeGraph(g, &w);
  w.PutPodVector(msg.ids);
  w.PutString(msg.label);
  return EncodeFrame(MessageType::kMutateRequest, w.buffer());
}

Result<MutateRequest> DecodeMutateRequest(std::string_view payload) {
  BinaryReader r(payload, "mutate request");
  MutateRequest msg;
  GBDA_ASSIGN_OR_RETURN(msg.request_id, r.GetU64());
  Result<uint32_t> op = r.GetU32();
  if (!op.ok()) return op.status();
  if (*op == 0 || *op > kMaxMutationOp) {
    return Status::InvalidArgument(
        r.DescribeHere("unknown mutation op " + std::to_string(*op)));
  }
  msg.op = static_cast<MutationOp>(*op);
  GBDA_ASSIGN_OR_RETURN(msg.deadline_ms, r.GetU64());
  const size_t count_at = r.position();
  Result<uint64_t> graph_count = r.GetU64();
  if (!graph_count.ok()) return graph_count.status();
  // An empty graph still costs two u64 length prefixes, so the count is
  // bounded by the remaining bytes — a hostile count cannot force a huge
  // reserve.
  if (*graph_count > r.remaining() / 16) {
    return Status::OutOfRange(r.Describe("truncated graph list", count_at));
  }
  msg.graphs.reserve(static_cast<size_t>(*graph_count));
  for (uint64_t i = 0; i < *graph_count; ++i) {
    Result<Graph> g = DecodeGraph(&r);
    if (!g.ok()) return g.status();
    msg.graphs.push_back(std::move(*g));
  }
  GBDA_ASSIGN_OR_RETURN(msg.ids, DecodeIdVector(&r));
  GBDA_ASSIGN_OR_RETURN(msg.label, r.GetString());
  GBDA_RETURN_IF_ERROR(RejectTrailing(r));
  return msg;
}

std::string EncodeMutateResponse(const MutateResponse& msg) {
  BinaryWriter w;
  w.PutU64(msg.request_id);
  w.PutU32(static_cast<uint32_t>(msg.status));
  w.PutString(msg.message);
  w.PutU64(msg.generation);
  w.PutPodVector(msg.assigned_ids);
  w.PutU64(msg.label_id);
  return EncodeFrame(MessageType::kMutateResponse, w.buffer());
}

Result<MutateResponse> DecodeMutateResponse(std::string_view payload) {
  BinaryReader r(payload, "mutate response");
  MutateResponse msg;
  GBDA_ASSIGN_OR_RETURN(msg.request_id, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.status, GetWireStatus(&r));
  GBDA_ASSIGN_OR_RETURN(msg.message, r.GetString());
  GBDA_ASSIGN_OR_RETURN(msg.generation, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.assigned_ids, DecodeIdVector(&r));
  GBDA_ASSIGN_OR_RETURN(msg.label_id, r.GetU64());
  GBDA_RETURN_IF_ERROR(RejectTrailing(r));
  return msg;
}

std::string EncodeStatsRequest(const StatsRequest& msg) {
  BinaryWriter w;
  w.PutU64(msg.request_id);
  return EncodeFrame(MessageType::kStatsRequest, w.buffer());
}

Result<StatsRequest> DecodeStatsRequest(std::string_view payload) {
  BinaryReader r(payload, "stats request");
  StatsRequest msg;
  GBDA_ASSIGN_OR_RETURN(msg.request_id, r.GetU64());
  GBDA_RETURN_IF_ERROR(RejectTrailing(r));
  return msg;
}

std::string EncodeStatsResponse(const StatsResponse& msg) {
  BinaryWriter w;
  w.PutU64(msg.request_id);
  w.PutU32(static_cast<uint32_t>(msg.status));
  const WireServerStats& s = msg.stats;
  w.PutU64(s.connections_opened);
  w.PutU64(s.connections_closed);
  w.PutU64(s.frames_received);
  w.PutU64(s.decode_errors);
  w.PutU64(s.requests_accepted);
  w.PutU64(s.rejected_overloaded);
  w.PutU64(s.rejected_deadline);
  w.PutU64(s.rejected_invalid);
  w.PutU64(s.responses_sent);
  w.PutU64(s.batches_executed);
  w.PutU64(s.queue_depth_peak);
  w.PutPodVector(s.batch_size_histogram);
  w.PutU64(s.stage_latency.size());
  for (const WireStageStats& stage : s.stage_latency) {
    w.PutU64(stage.count);
    w.PutU64(stage.sum_micros);
    w.PutU64(stage.min_micros);
    w.PutU64(stage.max_micros);
    w.PutU64(stage.p50_micros);
    w.PutU64(stage.p99_micros);
    w.PutU64(stage.p999_micros);
  }
  return EncodeFrame(MessageType::kStatsResponse, w.buffer());
}

Result<StatsResponse> DecodeStatsResponse(std::string_view payload) {
  BinaryReader r(payload, "stats response");
  StatsResponse msg;
  GBDA_ASSIGN_OR_RETURN(msg.request_id, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(msg.status, GetWireStatus(&r));
  WireServerStats& s = msg.stats;
  GBDA_ASSIGN_OR_RETURN(s.connections_opened, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(s.connections_closed, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(s.frames_received, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(s.decode_errors, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(s.requests_accepted, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(s.rejected_overloaded, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(s.rejected_deadline, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(s.rejected_invalid, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(s.responses_sent, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(s.batches_executed, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(s.queue_depth_peak, r.GetU64());
  GBDA_ASSIGN_OR_RETURN(s.batch_size_histogram, DecodeIdVector(&r));
  const size_t stages_at = r.position();
  Result<uint64_t> stage_count = r.GetU64();
  if (!stage_count.ok()) return stage_count.status();
  // Seven u64 fields per entry bound the plausible count, so a hostile
  // length cannot drive a huge reserve (BinaryReader idiom).
  if (*stage_count > r.remaining() / (7 * sizeof(uint64_t))) {
    return Status::OutOfRange(r.Describe("truncated stage stats", stages_at));
  }
  s.stage_latency.resize(static_cast<size_t>(*stage_count));
  for (WireStageStats& stage : s.stage_latency) {
    GBDA_ASSIGN_OR_RETURN(stage.count, r.GetU64());
    GBDA_ASSIGN_OR_RETURN(stage.sum_micros, r.GetU64());
    GBDA_ASSIGN_OR_RETURN(stage.min_micros, r.GetU64());
    GBDA_ASSIGN_OR_RETURN(stage.max_micros, r.GetU64());
    GBDA_ASSIGN_OR_RETURN(stage.p50_micros, r.GetU64());
    GBDA_ASSIGN_OR_RETURN(stage.p99_micros, r.GetU64());
    GBDA_ASSIGN_OR_RETURN(stage.p999_micros, r.GetU64());
  }
  GBDA_RETURN_IF_ERROR(RejectTrailing(r));
  return msg;
}

}  // namespace gbda::net
