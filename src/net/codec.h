/// \file codec.h
/// Wire protocol of the network serving front-end (docs/ARCHITECTURE.md,
/// "Network serving"). Every message travels in one length-prefixed frame:
///
///   offset size field
///        0    4 magic        0x41444247 ("GBDA" on the wire, little-endian)
///        4    4 version      kWireVersion; bumped on incompatible change
///        8    4 type         MessageType
///       12    8 payload_len  bytes following the header, <= kMaxPayloadBytes
///       20    4 payload_crc  CRC-32 (common/crc32.h) of the payload bytes
///       24    - payload      BinaryWriter-encoded message body
///
/// Framing errors (bad magic/version/type, oversized or wrapping lengths,
/// CRC mismatch) are unrecoverable for a byte stream — there is no resync
/// point — so FrameDecoder returns an error and the connection must be
/// closed. Payload decode errors (a well-framed but malformed body) leave
/// the stream synchronized; the server answers WireStatus::kInvalidRequest
/// and keeps the connection. Every Decode* rejects trailing bytes, hostile
/// element counts and out-of-domain enum values, in the same style as the
/// artifact decode hardening of core/gbda_index.cc (the sweep lives in
/// tests/net_codec_test.cc).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/serialize.h"
#include "core/gbda_search.h"
#include "graph/graph.h"

namespace gbda::net {

inline constexpr uint32_t kWireMagic = 0x41444247;  // "GBDA"
/// v2: SearchOptions carries the approximate flag + search_window_size, and
/// TopKResponse the candidates_visited / verified_count cost counters.
/// v3: TopKResponse carries the per-stage trace spans (admission / batch /
/// scan micros alongside the v2 queue_micros), and StatsResponse the
/// per-stage latency summaries (WireStageStats).
inline constexpr uint32_t kWireVersion = 3;
inline constexpr size_t kFrameHeaderBytes = 24;
/// Upper bound on a single payload; a declared length above this is treated
/// as hostile (the bound exists so a corrupt length can never drive a huge
/// allocation, mirroring BinaryReader's element-count checks).
inline constexpr uint64_t kMaxPayloadBytes = 32ull << 20;

enum class MessageType : uint32_t {
  kPingRequest = 1,
  kPingResponse = 2,
  kTopKRequest = 3,
  kTopKResponse = 4,
  kMutateRequest = 5,
  kMutateResponse = 6,
  kStatsRequest = 7,
  kStatsResponse = 8,
};
inline constexpr uint32_t kMaxMessageType =
    static_cast<uint32_t>(MessageType::kStatsResponse);

/// Typed outcome carried by every response. kOverloaded and
/// kDeadlineExceeded are the admission-control rejections: the request was
/// understood but not served (queue bound hit, or the request expired in
/// the queue), and the client may retry with backoff.
enum class WireStatus : uint32_t {
  kOk = 0,
  kInvalidRequest = 1,
  kOverloaded = 2,
  kDeadlineExceeded = 3,
  kUnsupported = 4,
  kInternal = 5,
  kShuttingDown = 6,
};
inline constexpr uint32_t kMaxWireStatus =
    static_cast<uint32_t>(WireStatus::kShuttingDown);

const char* WireStatusName(WireStatus status);

/// One decoded frame: the type tag and the raw (CRC-verified) payload.
struct Frame {
  MessageType type = MessageType::kPingRequest;
  std::string payload;
};

/// Frames `payload` under `type` (header + CRC; the payload is not
/// interpreted).
std::string EncodeFrame(MessageType type, std::string_view payload);

/// Incremental frame parser over a TCP byte stream. Feed bytes as they
/// arrive; Next() yields complete frames in order. One decoder per
/// connection — it owns the partial-frame buffer.
class FrameDecoder {
 public:
  void Feed(const char* data, size_t size);

  /// The next complete frame; std::nullopt when more bytes are needed; a
  /// non-OK status when the stream is malformed (close the connection — a
  /// byte stream past a framing error cannot be resynchronized).
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by a returned frame.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
};

// ---------------------------------------------------------------------------
// Message bodies. Encode* returns a complete frame (header included);
// Decode* consumes a Frame's payload and rejects malformed or trailing
// bytes.
// ---------------------------------------------------------------------------

struct PingRequest {
  uint64_t request_id = 0;
};
struct PingResponse {
  uint64_t request_id = 0;
};

/// Top-k query request. `deadline_ms` is the client's total queueing+serving
/// budget starting at server admission; 0 means the server default. The
/// query graph's label ids must come from the served corpus's dictionaries
/// (see MutationOp::kInternVertexLabel for the dynamic path).
struct TopKRequest {
  uint64_t request_id = 0;
  uint64_t k = 0;
  uint64_t deadline_ms = 0;
  SearchOptions options;
  Graph query;
};

struct TopKResponse {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  std::string message;  // empty on kOk
  /// Snapshot generation the query was served against (0 for a frozen
  /// backend): the consistency token of the dynamic soak contract — every
  /// response is attributable to one published corpus generation.
  uint64_t generation = 0;
  uint64_t candidates_evaluated = 0;
  uint64_t prefiltered_out = 0;
  uint64_t pruned_by_bound = 0;
  /// Cost counters of approximate navigation (0 on exhaustive queries);
  /// observability only, excluded from determinism comparisons like
  /// pruned_by_bound (see core SearchResult).
  uint64_t candidates_visited = 0;
  uint64_t verified_count = 0;
  /// Time spent queued before execution and size of the micro-batch this
  /// query was coalesced into (observability for the adaptive batcher).
  uint64_t queue_micros = 0;
  uint64_t batch_size = 0;
  /// Per-stage trace spans (v3): time on the I/O thread from frame dispatch
  /// to admission, time the worker spent coalescing this query's micro-batch
  /// (shared by every co-batched query), and the query's own scan latency.
  /// With queue_micros these give the full where-did-the-time-go breakdown.
  /// Observational like pruned_by_bound: excluded from determinism
  /// comparisons.
  uint64_t admission_micros = 0;
  uint64_t batch_micros = 0;
  uint64_t scan_micros = 0;
  std::vector<SearchMatch> matches;
};

enum class MutationOp : uint32_t {
  kAddGraphs = 1,
  kRemoveGraphs = 2,
  kInternVertexLabel = 3,
  kInternEdgeLabel = 4,
  kFlush = 5,
};
inline constexpr uint32_t kMaxMutationOp =
    static_cast<uint32_t>(MutationOp::kFlush);

/// Corpus mutation request (dynamic backend only; a frozen server answers
/// kUnsupported). Exactly the DynamicGbdaService mutation API over the
/// wire: graphs for kAddGraphs, stable ids for kRemoveGraphs, a label name
/// for the intern ops.
struct MutateRequest {
  uint64_t request_id = 0;
  MutationOp op = MutationOp::kFlush;
  uint64_t deadline_ms = 0;
  std::vector<Graph> graphs;
  std::vector<uint64_t> ids;
  std::string label;
};

struct MutateResponse {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  std::string message;
  /// Generation published by this commit (intern ops report the current
  /// generation — they take effect at the next commit).
  uint64_t generation = 0;
  std::vector<uint64_t> assigned_ids;  // kAddGraphs
  uint64_t label_id = 0;               // intern ops
};

struct StatsRequest {
  uint64_t request_id = 0;
};

/// Server-side counters (tools/gbda_serverd exposes them over the wire and
/// prints them at shutdown). batch_size_histogram[i] counts executed query
/// micro-batches of size i+1 — the acceptance signal that the adaptive
/// batcher actually coalesces under load.
/// Compact latency summary of one pipeline stage (microseconds), derived
/// from the server's log-bucketed stage histograms (src/obs/histogram.h):
/// count/sum/min/max are exact, the quantiles are within one histogram
/// bucket of exact. The full bucket state is exposed on the HTTP metrics
/// endpoint; the wire carries this summary.
struct WireStageStats {
  uint64_t count = 0;
  uint64_t sum_micros = 0;
  uint64_t min_micros = 0;
  uint64_t max_micros = 0;
  uint64_t p50_micros = 0;
  uint64_t p99_micros = 0;
  uint64_t p999_micros = 0;
};

struct WireServerStats {
  uint64_t connections_opened = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t decode_errors = 0;
  uint64_t requests_accepted = 0;
  uint64_t rejected_overloaded = 0;
  uint64_t rejected_deadline = 0;
  uint64_t rejected_invalid = 0;
  uint64_t responses_sent = 0;
  uint64_t batches_executed = 0;
  uint64_t queue_depth_peak = 0;
  std::vector<uint64_t> batch_size_histogram;
  /// Per-stage latency summaries (v3), indexed in obs::QueryStage order:
  /// admission, queue, batch, scan.
  std::vector<WireStageStats> stage_latency;
};

struct StatsResponse {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  WireServerStats stats;
};

// -- Component codecs (shared by the message codecs; exposed for tests) ----

void EncodeGraph(const Graph& g, BinaryWriter* writer);
/// Rebuilds the graph through the mutating Graph API, so structurally
/// invalid payloads (dangling endpoints, self-loops, duplicate edges) are
/// rejected with the API's own validation.
Result<Graph> DecodeGraph(BinaryReader* reader);

void EncodeSearchOptions(const SearchOptions& options, BinaryWriter* writer);
Result<SearchOptions> DecodeSearchOptions(BinaryReader* reader);

// -- Message codecs ---------------------------------------------------------

std::string EncodePingRequest(const PingRequest& msg);
std::string EncodePingResponse(const PingResponse& msg);
std::string EncodeTopKRequest(const TopKRequest& msg);
std::string EncodeTopKResponse(const TopKResponse& msg);
std::string EncodeMutateRequest(const MutateRequest& msg);
std::string EncodeMutateResponse(const MutateResponse& msg);
std::string EncodeStatsRequest(const StatsRequest& msg);
std::string EncodeStatsResponse(const StatsResponse& msg);

Result<PingRequest> DecodePingRequest(std::string_view payload);
Result<PingResponse> DecodePingResponse(std::string_view payload);
Result<TopKRequest> DecodeTopKRequest(std::string_view payload);
Result<TopKResponse> DecodeTopKResponse(std::string_view payload);
Result<MutateRequest> DecodeMutateRequest(std::string_view payload);
Result<MutateResponse> DecodeMutateResponse(std::string_view payload);
Result<StatsRequest> DecodeStatsRequest(std::string_view payload);
Result<StatsResponse> DecodeStatsResponse(std::string_view payload);

}  // namespace gbda::net
